/**
 * @file
 * Harness-side helpers over the deterministic fault-injection core in
 * common/fault.hh (spec format, sites and firing semantics are
 * documented there).
 *
 * ScopedFault is how tests and tools arm a fault for one bounded
 * region: arming is process-global state, so leaving a fault armed past
 * a test body would sabotage whatever runs next — the RAII disarm makes
 * that impossible even on assertion failure. FaultScope is the batch
 * runner's per-job-attempt scope marker; it is what makes `site:nth`
 * specs hit job `nth` deterministically under any thread count.
 */

#ifndef BFSIM_HARNESS_FAULT_HH_
#define BFSIM_HARNESS_FAULT_HH_

#include <cstdint>
#include <string>

#include "common/fault.hh"

namespace bfsim::harness {

/** Arm one injected fault for the current C++ scope; disarm on exit. */
class ScopedFault
{
  public:
    /** Arm `site` for fault scope `scope` (0 = any) with `seed`. */
    ScopedFault(fault::Site site, std::uint64_t scope,
                std::uint64_t seed = 0);

    /** Arm from a "site:nth[:seed]" spec; check ok() for parse result. */
    explicit ScopedFault(const std::string &spec);

    ~ScopedFault();

    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

    /** False when the spec constructor failed to parse (nothing armed). */
    bool ok() const { return armedOk; }

    /** True once the armed fault has been injected. */
    bool fired() const { return fault::firedCount() > 0; }

  private:
    bool armedOk = true;
};

/** Enter a fault scope for the current C++ scope; unscope on exit. */
class FaultScope
{
  public:
    explicit FaultScope(std::uint64_t ordinal);
    ~FaultScope();

    FaultScope(const FaultScope &) = delete;
    FaultScope &operator=(const FaultScope &) = delete;
};

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_FAULT_HH_
