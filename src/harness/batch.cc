#include "harness/batch.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"
#include "harness/fault.hh"
#include "harness/journal.hh"
#include "harness/process_pool.hh"
#include "workloads/workload.hh"

namespace bfsim::harness {

namespace {

std::string
schemeSlash(const std::string &kind)
{
    std::string scheme = "/";
    scheme += sim::prefetcherName(kind);
    return scheme;
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
progressEnabled()
{
    const char *env = std::getenv("BFSIM_PROGRESS");
    return !(env && std::string(env) == "0");
}

std::string
joinNames(const std::vector<std::string> &names)
{
    std::string joined;
    for (const auto &name : names) {
        if (!joined.empty())
            joined += '+';
        joined += name;
    }
    return joined;
}

/**
 * Shared state of one runBatch call. Heap-allocated and co-owned by
 * every pool task: when a job blows its wall-clock deadline the batch
 * abandons it and returns, and the zombie worker still needs valid
 * jobs/items to finish (harmlessly) against.
 */
struct RunState
{
    std::vector<BatchJob> jobs;
    BatchOptions options;
    BatchProgress progress;
    std::size_t total = 0;
    std::chrono::steady_clock::time_point batchStart;
    /** Sweep journal for this batch (null when none configured).
     * Shared so a zombie worker outliving runBatch keeps it valid. */
    std::shared_ptr<SweepJournal> journal;

    /** Guards items/done/finished/abandoned and progress callbacks. */
    std::mutex mutex;
    std::vector<BatchItem> items;
    std::size_t done = 0;
    std::vector<char> finished;  ///< item published or abandoned
    std::vector<char> abandoned; ///< deadline-expired, result discarded

    /** ns after batchStart when the job began + 1 (0 = not started). */
    std::vector<std::atomic<std::int64_t>> startNs;
    /** Fail-fast latch: set after the first failure. */
    std::atomic<bool> stopRequested{false};
};

std::int64_t
nsSinceStart(const RunState &state)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - state.batchStart)
        .count();
}

/**
 * Hand a completed (or skipped) item to the batch. Discards it when the
 * job was already abandoned on deadline — the waiter published a
 * timeout item and moved on, and this thread is a zombie.
 */
void
publish(RunState &state, std::size_t index, BatchItem item)
{
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.abandoned[index])
        return;
    // Journal before announcing: once the progress line prints, a
    // crash+resume must not recompute this job. Restored items carry
    // `journaled` and are not rewritten.
    if (state.journal && !item.failed && !item.journaled)
        state.journal->append(state.jobs[index], item);
    item.index = index;
    state.items[index] = std::move(item);
    state.finished[index] = 1;
    ++state.done;
    if (state.progress)
        state.progress(state.items[index], state.done, state.total);
}

/** Run one job, all its permitted attempts, and publish the outcome. */
void
runJob(RunState &state, std::size_t index)
{
    state.startNs[index].store(nsSinceStart(state) + 1,
                               std::memory_order_relaxed);

    if (state.stopRequested.load(std::memory_order_relaxed)) {
        BatchItem item;
        item.label = state.jobs[index].label;
        item.kind = state.jobs[index].kind;
        item.failed = true;
        item.attempts = 0;
        item.error = "skipped: fail-fast stop after an earlier failure";
        publish(state, index, std::move(item));
        return;
    }

    BatchItem item = runJobAttempts(state.jobs[index], index + 1,
                                    state.options.retries);
    if (item.failed && state.options.failFast)
        state.stopRequested.store(true, std::memory_order_relaxed);
    publish(state, index, std::move(item));
}

/**
 * Mark every over-deadline in-flight job failed+abandoned, publishing a
 * timeout item in its worker's stead.
 */
void
enforceDeadlines(RunState &state, double deadline)
{
    const std::int64_t now_ns = nsSinceStart(state);
    const auto limit_ns =
        static_cast<std::int64_t>(deadline * 1e9);
    std::lock_guard<std::mutex> lock(state.mutex);
    for (std::size_t j = 0; j < state.jobs.size(); ++j) {
        if (state.finished[j] || state.abandoned[j])
            continue;
        std::int64_t started =
            state.startNs[j].load(std::memory_order_relaxed);
        if (started == 0 || now_ns - (started - 1) < limit_ns)
            continue;
        state.abandoned[j] = 1;
        state.finished[j] = 1;
        BatchItem &item = state.items[j];
        item.label = state.jobs[j].label;
        item.index = j;
        item.kind = state.jobs[j].kind;
        item.failed = true;
        item.attempts = 1; // the deadline budget spans all attempts
        item.seconds =
            static_cast<double>(now_ns - (started - 1)) / 1e9;
        char text[96];
        std::snprintf(text, sizeof text,
                      "job exceeded its %.3gs wall-clock deadline",
                      deadline);
        item.error = text;
        if (state.options.failFast)
            state.stopRequested.store(true, std::memory_order_relaxed);
        ++state.done;
        if (state.progress)
            state.progress(item, state.done, state.total);
    }
}

/**
 * Wait for job `index`, policing the per-job deadline across *all*
 * in-flight jobs while blocked. Returns as soon as the job finishes or
 * is abandoned.
 */
void
awaitJob(RunState &state, std::future<void> &future, std::size_t index,
         double deadline)
{
    for (;;) {
        if (deadline <= 0.0 ||
            future.wait_for(std::chrono::milliseconds(20)) ==
                std::future_status::ready) {
            try {
                future.get();
            } catch (const std::exception &error) {
                // Pool-level rejection (shutdown race); the job never
                // ran, so synthesize its failure here.
                BatchItem item;
                item.label = state.jobs[index].label;
                item.kind = state.jobs[index].kind;
                item.failed = true;
                item.error = error.what();
                publish(state, index, std::move(item));
            }
            return;
        }
        enforceDeadlines(state, deadline);
        std::lock_guard<std::mutex> lock(state.mutex);
        if (state.abandoned[index])
            return; // stop waiting; the worker is a zombie now
    }
}

/**
 * Registry of thread pools abandoned on deadline expiry. Each pool
 * drains (its zombie worker finishes or hangs) on a background thread;
 * historically that thread was detached outright, which let it race
 * static destruction during process teardown. Now every drainer stays
 * joinable here, and an atexit hook performs a *bounded* join: cleanly
 * drained pools are reclaimed, genuinely wedged ones are detached with
 * a warning — teardown is delayed by at most the timeout, never hung.
 */
class AbandonedPoolRegistry
{
  public:
    void
    add(ThreadPool *pool)
    {
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::thread drainer([this, pool, done] {
            delete pool; // blocks until the zombie worker returns
            done->store(true);
            cv.notify_all();
        });
        std::lock_guard<std::mutex> lock(mutex);
        pools.push_back({std::move(drainer), std::move(done)});
    }

    /** Bounded join; returns pools still draining after the timeout. */
    std::size_t
    drain(double timeout_seconds)
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait_for(
            lock,
            std::chrono::duration<double>(timeout_seconds),
            [this] {
                for (const Entry &entry : pools)
                    if (!entry.done->load())
                        return false;
                return true;
            });
        std::size_t wedged = 0;
        std::vector<Entry> keep;
        for (Entry &entry : pools) {
            if (entry.done->load()) {
                entry.drainer.join();
            } else {
                ++wedged;
                keep.push_back(std::move(entry));
            }
        }
        pools = std::move(keep);
        return wedged;
    }

    /** atexit: bounded join, then detach stragglers so teardown ends. */
    void
    drainAtExit()
    {
        if (drain(2.0) == 0)
            return;
        std::lock_guard<std::mutex> lock(mutex);
        for (Entry &entry : pools) {
            warn("abandoning a wedged batch worker at exit (its job "
                 "never returned)");
            entry.drainer.detach();
        }
        pools.clear();
    }

  private:
    struct Entry
    {
        std::thread drainer;
        std::shared_ptr<std::atomic<bool>> done;
    };

    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Entry> pools;
};

AbandonedPoolRegistry &
abandonedPools()
{
    // Constructed before the atexit hook registers, so the hook runs
    // before this static is destroyed.
    static AbandonedPoolRegistry registry;
    static const bool hooked = [] {
        std::atexit([] { abandonedPools().drainAtExit(); });
        return true;
    }();
    (void)hooked;
    return registry;
}

} // namespace

BatchItem
runJobAttempts(const BatchJob &job, std::size_t ordinal, unsigned retries)
{
    BatchItem item;
    item.label = job.label;
    item.kind = job.kind;

    const std::string workload_names = joinNames(job.workloads);
    for (unsigned attempt = 1;; ++attempt) {
        item.attempts = attempt;
        auto start = std::chrono::steady_clock::now();
        takeThreadCacheCounters(); // drop activity from earlier jobs
        try {
            // Fault scope = job ordinal: an injected `site:nth` fault
            // hits job `nth` regardless of which worker runs it, so
            // serial and parallel batches fail identically.
            FaultScope fault_scope(ordinal);
            SimJobScope job_scope(workload_names, job.label);
            bool computed = true;
            switch (job.kind) {
              case BatchJob::Kind::Single:
                item.single = &runSingleCached(job.workloads.at(0),
                                               job.prefetcher,
                                               job.options, &computed);
                break;
              case BatchJob::Kind::Mix:
                item.mix = &runMixCached(job.workloads, job.prefetcher,
                                         job.options, &computed);
                break;
              case BatchJob::Kind::Custom:
                item.value = job.body ? job.body() : 0.0;
                break;
            }
            item.cached = !computed;
            item.failed = false;
            item.error.clear();
        } catch (const std::exception &error) {
            item.failed = true;
            item.error = error.what();
        } catch (...) {
            item.failed = true;
            item.error = "non-standard exception";
        }
        item.seconds += secondsSince(start);
        ThreadCacheCounters caches = takeThreadCacheCounters();
        item.traceHits += caches.traceHits;
        item.traceMisses += caches.traceMisses;
        item.traceFallbacks += caches.traceFallbacks;
        item.traceDiskHits += caches.traceDiskHits;
        item.traceDiskMisses += caches.traceDiskMisses;
        if (!item.failed || attempt > retries)
            break;
        // Simulation jobs are deterministic and their failed memo entry
        // was evicted, so they retry immediately; Custom bodies may
        // touch external state and get capped exponential backoff.
        if (job.kind == BatchJob::Kind::Custom) {
            long ms = std::min(25L << std::min(attempt - 1, 5u), 1000L);
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        }
    }
    return item;
}

std::size_t
drainAbandonedPools(double timeoutSeconds)
{
    return abandonedPools().drain(timeoutSeconds);
}

BatchOptions
BatchOptions::fromEnv()
{
    BatchOptions options;
    if (const char *env = std::getenv("BFSIM_RETRIES")) {
        char *end = nullptr;
        unsigned long value = std::strtoul(env, &end, 10);
        if (end && *end == '\0')
            options.retries = static_cast<unsigned>(value);
        else
            warn("ignoring malformed BFSIM_RETRIES value");
    }
    if (const char *env = std::getenv("BFSIM_FAIL_FAST"))
        options.failFast = std::string(env) != "0";
    if (const char *env = std::getenv("BFSIM_JOB_DEADLINE")) {
        char *end = nullptr;
        double value = std::strtod(env, &end);
        if (end && *end == '\0' && value >= 0.0)
            options.jobDeadlineSeconds = value;
        else
            warn("ignoring malformed BFSIM_JOB_DEADLINE value");
    }
    if (const char *env = std::getenv("BFSIM_ISOLATE")) {
        std::string value(env);
        if (value == "process")
            options.isolate = IsolateMode::Process;
        else if (value == "none" || value == "0" || value.empty())
            options.isolate = IsolateMode::None;
        else
            warn("ignoring unknown BFSIM_ISOLATE value '" + value +
                 "' (want process|none)");
    }
    if (const char *env = std::getenv("BFSIM_JOURNAL_DIR"))
        options.journalDir = env;
    if (const char *env = std::getenv("BFSIM_POISON_THRESHOLD")) {
        char *end = nullptr;
        unsigned long value = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && value > 0)
            options.poisonThreshold = static_cast<unsigned>(value);
        else
            warn("ignoring malformed BFSIM_POISON_THRESHOLD value");
    }
    if (const char *env = std::getenv("BFSIM_HEARTBEAT_TIMEOUT")) {
        char *end = nullptr;
        double value = std::strtod(env, &end);
        if (end && *end == '\0' && value >= 0.0)
            options.heartbeatTimeoutSeconds = value;
        else
            warn("ignoring malformed BFSIM_HEARTBEAT_TIMEOUT value");
    }
    return options;
}

BatchJob
BatchJob::single(const std::string &workload, const std::string &kind,
                 const RunOptions &options, std::string label)
{
    BatchJob job;
    job.kind = Kind::Single;
    job.workloads = {workload};
    job.prefetcher = kind;
    job.options = options;
    job.label = label.empty() ? workload + schemeSlash(kind)
                              : std::move(label);
    return job;
}

BatchJob
BatchJob::mix(const std::vector<std::string> &workloads,
              const std::string &kind, const RunOptions &options,
              std::string label)
{
    BatchJob job;
    job.kind = Kind::Mix;
    job.workloads = workloads;
    job.prefetcher = kind;
    job.options = options;
    if (label.empty())
        job.label = joinNames(workloads) + schemeSlash(kind);
    else
        job.label = std::move(label);
    return job;
}

BatchJob
BatchJob::custom(std::string label, std::function<double()> body)
{
    BatchJob job;
    job.kind = Kind::Custom;
    job.label = std::move(label);
    job.body = std::move(body);
    return job;
}

std::uint64_t
BatchResult::simInstructions() const
{
    std::uint64_t total = 0;
    for (const BatchItem &item : items) {
        if (item.cached || item.failed)
            continue;
        if (item.single)
            total += item.single->simInstructions;
        else if (item.mix)
            total += item.mix->simInstructions;
    }
    return total;
}

double
BatchResult::simSeconds() const
{
    double total = 0.0;
    for (const BatchItem &item : items) {
        if (item.cached || item.failed)
            continue;
        if (item.single)
            total += item.single->simSeconds;
        else if (item.mix)
            total += item.mix->simSeconds;
    }
    return total;
}

double
BatchResult::mips() const
{
    double seconds = simSeconds();
    return seconds > 0.0
               ? static_cast<double>(simInstructions()) / seconds / 1e6
               : 0.0;
}

void
defaultBatchProgress(const BatchItem &item, std::size_t done,
                     std::size_t total)
{
    if (!progressEnabled())
        return;
    if (item.failed) {
        std::fprintf(stderr, "[%3zu/%zu] %s %.2fs FAILED (%s)\n", done,
                     total, item.label.c_str(), item.seconds,
                     item.error.c_str());
        return;
    }
    std::fprintf(stderr, "[%3zu/%zu] %s %.2fs%s%s%s\n", done, total,
                 item.label.c_str(), item.seconds,
                 item.journaled ? " (journal)"
                                : (item.cached ? " (cached)" : ""),
                 item.attempts > 1 ? " (retried)" : "",
                 item.crashes > 0 ? " (respawned worker)" : "");
}

BatchResult
runBatch(const std::vector<BatchJob> &jobs, unsigned n_threads,
         const BatchProgress &progress, const BatchOptions &options)
{
    BatchResult batch;
    if (n_threads == 0)
        n_threads = ThreadPool::defaultThreadCount();
    batch.threads = n_threads;
    batch.isolate = options.isolate;
    if (jobs.empty())
        return batch;

    // Build the (multi-megabyte) workload suite before fanning out so
    // its one-time construction cost is not billed to the first job.
    workloads::allWorkloads();

    auto state = std::make_shared<RunState>();
    state->jobs = jobs;
    state->options = options;
    state->progress = progress;
    state->total = jobs.size();
    state->items.resize(jobs.size());
    state->finished.assign(jobs.size(), 0);
    state->abandoned.assign(jobs.size(), 0);
    state->startNs =
        std::vector<std::atomic<std::int64_t>>(jobs.size());
    state->batchStart = std::chrono::steady_clock::now();

    // Checkpoint/resume: jobs already completed in this journal
    // directory are restored (their results adopted into the memo
    // cache) instead of recomputed, whichever backend runs the rest.
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    if (!options.journalDir.empty()) {
        state->journal =
            std::make_shared<SweepJournal>(options.journalDir);
        SweepJournal *journal = state->journal.get();
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            BatchItem item;
            if (journal->restore(jobs[i], item))
                publish(*state, i, std::move(item));
            else
                pending.push_back(i);
        }
    } else {
        for (std::size_t i = 0; i < jobs.size(); ++i)
            pending.push_back(i);
    }

    const double deadline = options.jobDeadlineSeconds;
    if (pending.empty()) {
        // Fully restored from the journal; nothing to run.
    } else if (options.isolate == IsolateMode::Process) {
        ProcessPoolOptions pool_options;
        pool_options.workers = n_threads;
        pool_options.retries = options.retries;
        pool_options.failFast = options.failFast;
        pool_options.jobDeadlineSeconds = deadline;
        pool_options.poisonThreshold = options.poisonThreshold;
        pool_options.heartbeatTimeoutSeconds =
            options.heartbeatTimeoutSeconds;
        runProcessPool(state->jobs, pending, pool_options,
                       [&state](std::size_t index, BatchItem item) {
                           publish(*state, index, std::move(item));
                       });
    } else if (n_threads <= 1 && deadline <= 0.0) {
        // Serial reference path: no pool, same code path per job.
        for (std::size_t i : pending)
            runJob(*state, i);
    } else {
        // Deadlines need a waiter distinct from the worker, so the
        // pool path also serves n_threads == 1 when one is set.
        auto pool = std::make_unique<ThreadPool>(n_threads);
        std::vector<std::future<void>> futures;
        futures.reserve(pending.size());
        for (std::size_t i : pending)
            futures.push_back(
                pool->submit([state, i] { runJob(*state, i); }));
        for (std::size_t f = 0; f < futures.size(); ++f)
            awaitJob(*state, futures[f], pending[f], deadline);

        bool any_abandoned = false;
        {
            std::lock_guard<std::mutex> lock(state->mutex);
            for (char abandoned : state->abandoned)
                any_abandoned = any_abandoned || abandoned != 0;
        }
        if (any_abandoned) {
            // A zombie worker may be wedged inside its job; joining it
            // here would hang the batch exactly like the job it just
            // isolated. Hand the pool to the abandoned-pool registry,
            // which drains it on a background thread and joins that
            // thread (bounded) at exit — the zombie's closure keeps
            // `state` alive via shared_ptr either way.
            abandonedPools().add(pool.release());
        }
    }

    batch.wallSeconds = secondsSince(state->batchStart);
    {
        std::lock_guard<std::mutex> lock(state->mutex);
        batch.items = state->items;
    }
    for (const BatchItem &item : batch.items)
        batch.cpuSeconds += item.seconds;

    // Persist fresh/grown captures to the on-disk trace store (no-op
    // unless BFSIM_TRACE_DIR / --trace-dir configured one): once per
    // batch, after the jobs, so job timings never include artifact
    // serialization.
    persistTraceStore();
    return batch;
}

} // namespace bfsim::harness
