#include "harness/batch.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <mutex>
#include <utility>

#include "common/log.hh"
#include "common/thread_pool.hh"
#include "workloads/workload.hh"

namespace bfsim::harness {

namespace {

std::string
schemeSlash(sim::PrefetcherKind kind)
{
    return std::string("/") + sim::prefetcherName(kind);
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
progressEnabled()
{
    const char *env = std::getenv("BFSIM_PROGRESS");
    return !(env && std::string(env) == "0");
}

} // namespace

BatchJob
BatchJob::single(const std::string &workload, sim::PrefetcherKind kind,
                 const RunOptions &options, std::string label)
{
    BatchJob job;
    job.kind = Kind::Single;
    job.workloads = {workload};
    job.prefetcher = kind;
    job.options = options;
    job.label = label.empty() ? workload + schemeSlash(kind)
                              : std::move(label);
    return job;
}

BatchJob
BatchJob::mix(const std::vector<std::string> &workloads,
              sim::PrefetcherKind kind, const RunOptions &options,
              std::string label)
{
    BatchJob job;
    job.kind = Kind::Mix;
    job.workloads = workloads;
    job.prefetcher = kind;
    job.options = options;
    if (label.empty()) {
        for (const auto &name : workloads) {
            if (!job.label.empty())
                job.label += '+';
            job.label += name;
        }
        job.label += schemeSlash(kind);
    } else {
        job.label = std::move(label);
    }
    return job;
}

BatchJob
BatchJob::custom(std::string label, std::function<double()> body)
{
    BatchJob job;
    job.kind = Kind::Custom;
    job.label = std::move(label);
    job.body = std::move(body);
    return job;
}

void
defaultBatchProgress(const BatchItem &item, std::size_t done,
                     std::size_t total)
{
    if (!progressEnabled())
        return;
    std::fprintf(stderr, "[%3zu/%zu] %s %.2fs%s\n", done, total,
                 item.label.c_str(), item.seconds,
                 item.cached ? " (cached)" : "");
}

BatchResult
runBatch(const std::vector<BatchJob> &jobs, unsigned n_threads,
         const BatchProgress &progress)
{
    BatchResult batch;
    batch.items.resize(jobs.size());
    if (n_threads == 0)
        n_threads = ThreadPool::defaultThreadCount();
    batch.threads = n_threads;
    if (jobs.empty())
        return batch;

    // Build the (multi-megabyte) workload suite before fanning out so
    // its one-time construction cost is not billed to the first job.
    workloads::allWorkloads();

    std::mutex progress_mutex;
    std::size_t done = 0;
    const std::size_t total = jobs.size();
    auto batch_start = std::chrono::steady_clock::now();

    auto run_job = [&](std::size_t index) {
        const BatchJob &job = jobs[index];
        BatchItem &item = batch.items[index];
        item.label = job.label;
        item.kind = job.kind;
        auto start = std::chrono::steady_clock::now();
        bool computed = true;
        takeThreadCacheCounters(); // drop activity from earlier jobs
        switch (job.kind) {
          case BatchJob::Kind::Single:
            item.single = &runSingleCached(job.workloads.at(0),
                                           job.prefetcher, job.options,
                                           &computed);
            break;
          case BatchJob::Kind::Mix:
            item.mix = &runMixCached(job.workloads, job.prefetcher,
                                     job.options, &computed);
            break;
          case BatchJob::Kind::Custom:
            item.value = job.body ? job.body() : 0.0;
            break;
        }
        item.seconds = secondsSince(start);
        item.cached = !computed;
        ThreadCacheCounters caches = takeThreadCacheCounters();
        item.traceHits = caches.traceHits;
        item.traceMisses = caches.traceMisses;
        std::lock_guard<std::mutex> lock(progress_mutex);
        ++done;
        if (progress)
            progress(item, done, total);
    };

    std::exception_ptr first_error;
    if (n_threads <= 1) {
        // Serial reference path: no pool, same code path per job.
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            try {
                run_job(i);
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    } else {
        ThreadPool pool(n_threads);
        std::vector<std::future<void>> futures;
        futures.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i)
            futures.push_back(pool.submit([&run_job, i] { run_job(i); }));
        for (auto &future : futures) {
            try {
                future.get();
            } catch (...) {
                if (!first_error)
                    first_error = std::current_exception();
            }
        }
    }

    batch.wallSeconds = secondsSince(batch_start);
    for (const BatchItem &item : batch.items)
        batch.cpuSeconds += item.seconds;
    if (first_error)
        std::rethrow_exception(first_error);
    return batch;
}

} // namespace bfsim::harness
