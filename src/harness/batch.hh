/**
 * @file
 * Parallel experiment batch runner: fans independent runSingle / runMix
 * jobs across a common ThreadPool, deduplicating shared work (e.g. the
 * no-prefetch baselines every figure normalizes to) through the
 * thread-safe future-based memo cache in harness/experiment, and
 * returning results in deterministic submission order regardless of
 * completion order.
 *
 * Every bench binary builds its whole sweep as a vector of BatchJobs
 * and submits it through runBatch before printing its paper table; the
 * per-job wall times and the batch-level wall/cpu seconds feed the JSON
 * report (harness/report.hh) CI archives.
 */

#ifndef BFSIM_HARNESS_BATCH_HH_
#define BFSIM_HARNESS_BATCH_HH_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace bfsim::harness {

/** One independent unit of work in a batch. */
struct BatchJob
{
    enum class Kind { Single, Mix, Custom };

    Kind kind = Kind::Single;
    /** Progress/report label; the factories synthesize one if empty. */
    std::string label;
    /** Workload names: exactly one for Single, the mix members for Mix. */
    std::vector<std::string> workloads;
    sim::PrefetcherKind prefetcher = sim::PrefetcherKind::None;
    RunOptions options;
    /** Kind::Custom only: arbitrary computation returning one value. */
    std::function<double()> body;

    /** A single-core (workload, prefetcher, options) simulation. */
    static BatchJob single(const std::string &workload,
                           sim::PrefetcherKind kind,
                           const RunOptions &options,
                           std::string label = {});

    /** A multiprogrammed mix simulation. */
    static BatchJob mix(const std::vector<std::string> &workloads,
                        sim::PrefetcherKind kind,
                        const RunOptions &options, std::string label = {});

    /** An arbitrary computation (profiling passes, storage sizing...). */
    static BatchJob custom(std::string label,
                           std::function<double()> body);
};

/** Per-job outcome, in the submission order of the jobs vector. */
struct BatchItem
{
    std::string label;
    BatchJob::Kind kind = BatchJob::Kind::Single;
    /** Valid for Kind::Single (stable: memo-cache lifetime). */
    const SingleResult *single = nullptr;
    /** Valid for Kind::Mix (stable: memo-cache lifetime). */
    const MixResult *mix = nullptr;
    /** Kind::Custom result value. */
    double value = 0.0;
    /** Wall seconds this job spent in its worker. */
    double seconds = 0.0;
    /** True when the memo cache satisfied the job without simulating. */
    bool cached = false;
    /** Trace-cache hits (replays of a cached DynOp stream) this job. */
    std::uint64_t traceHits = 0;
    /** Trace-cache misses (fresh captures) this job. */
    std::uint64_t traceMisses = 0;
};

/** Results and timing of one runBatch call. */
struct BatchResult
{
    std::vector<BatchItem> items;
    unsigned threads = 1;
    /** Wall seconds for the whole batch (submit to last completion). */
    double wallSeconds = 0.0;
    /** Sum of per-job worker seconds (serial-equivalent cost). */
    double cpuSeconds = 0.0;

    /** Measured wall-clock speedup over the serial-equivalent cost. */
    double
    speedup() const
    {
        return wallSeconds > 0.0 ? cpuSeconds / wallSeconds : 0.0;
    }
};

/**
 * Progress callback: invoked (serialized) after each job completes with
 * the finished item and the done/total counts.
 */
using BatchProgress = std::function<void(
    const BatchItem &item, std::size_t done, std::size_t total)>;

/**
 * Emit the default "[done/total] label seconds" progress line to
 * stderr. Disabled wholesale by setting BFSIM_PROGRESS=0.
 */
void defaultBatchProgress(const BatchItem &item, std::size_t done,
                          std::size_t total);

/**
 * Run `jobs` across `n_threads` workers (0 = BFSIM_JOBS env, else
 * hardware concurrency). Results are returned in job order; duplicate
 * jobs and shared baselines are computed exactly once via the memo
 * cache. Exceptions from jobs are rethrown (first in job order) after
 * every worker finishes.
 */
BatchResult runBatch(const std::vector<BatchJob> &jobs,
                     unsigned n_threads = 0,
                     const BatchProgress &progress = defaultBatchProgress);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_BATCH_HH_
