/**
 * @file
 * Parallel experiment batch runner: fans independent runSingle / runMix
 * jobs across a common ThreadPool, deduplicating shared work (e.g. the
 * no-prefetch baselines every figure normalizes to) through the
 * thread-safe future-based memo cache in harness/experiment, and
 * returning results in deterministic submission order regardless of
 * completion order.
 *
 * Every bench binary builds its whole sweep as a vector of BatchJobs
 * and submits it through runBatch before printing its paper table; the
 * per-job wall times and the batch-level wall/cpu seconds feed the JSON
 * report (harness/report.hh) CI archives.
 */

#ifndef BFSIM_HARNESS_BATCH_HH_
#define BFSIM_HARNESS_BATCH_HH_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"

namespace bfsim::harness {

/** One independent unit of work in a batch. */
struct BatchJob
{
    enum class Kind { Single, Mix, Custom };

    Kind kind = Kind::Single;
    /** Progress/report label; the factories synthesize one if empty. */
    std::string label;
    /** Workload names: exactly one for Single, the mix members for Mix. */
    std::vector<std::string> workloads;
    /** Prefetch-scheme registry spec (see prefetch/registry.hh). */
    std::string prefetcher = "None";
    RunOptions options;
    /**
     * Scheduling hint (higher runs earlier) honoured by the sharded
     * coordinator's dispatch queue. Not part of the job's journal
     * identity: priority changes scheduling, never results.
     */
    int priority = 0;
    /** Kind::Custom only: arbitrary computation returning one value. */
    std::function<double()> body;

    /** A single-core (workload, prefetcher, options) simulation. */
    static BatchJob single(const std::string &workload,
                           const std::string &kind,
                           const RunOptions &options,
                           std::string label = {});

    /** A multiprogrammed mix simulation. */
    static BatchJob mix(const std::vector<std::string> &workloads,
                        const std::string &kind,
                        const RunOptions &options, std::string label = {});

    /** An arbitrary computation (profiling passes, storage sizing...). */
    static BatchJob custom(std::string label,
                           std::function<double()> body);
};

/** Per-job outcome, in the submission order of the jobs vector. */
struct BatchItem
{
    std::string label;
    /**
     * Submission index of the job this item answers. Progress callbacks
     * fire in completion order; this field lets a consumer that streams
     * results elsewhere (the sharded coordinator's worker daemons) map
     * each completion back to its global ordinal.
     */
    std::size_t index = 0;
    BatchJob::Kind kind = BatchJob::Kind::Single;
    /** Valid for Kind::Single (stable: memo-cache lifetime). */
    const SingleResult *single = nullptr;
    /** Valid for Kind::Mix (stable: memo-cache lifetime). */
    const MixResult *mix = nullptr;
    /** Kind::Custom result value. */
    double value = 0.0;
    /** Wall seconds this job spent in its worker (summed over retries). */
    double seconds = 0.0;
    /** True when the memo cache satisfied the job without simulating. */
    bool cached = false;
    /** Trace-cache hits (replays of a cached DynOp stream) this job. */
    std::uint64_t traceHits = 0;
    /** Trace-cache misses (fresh captures) this job. */
    std::uint64_t traceMisses = 0;
    /** Trace-path failures this job degraded to live execution. */
    std::uint64_t traceFallbacks = 0;
    /** Trace buffers this job seeded from an on-disk store artifact. */
    std::uint64_t traceDiskHits = 0;
    /** Disk-store lookups this job made that found no usable artifact. */
    std::uint64_t traceDiskMisses = 0;
    /** True when the job failed every attempt (or was skipped/timed out). */
    bool failed = false;
    /** what() of the final failure; empty when !failed. */
    std::string error;
    /** Attempts consumed: 1 = first try; 0 = skipped by fail-fast. */
    unsigned attempts = 0;
    /**
     * True when the result was restored from a sweep journal
     * (BatchOptions::journalDir) instead of being computed this run.
     */
    bool journaled = false;
    /**
     * Worker processes this job killed (--isolate=process only): each
     * crash redispatches the job until BatchOptions::poisonThreshold
     * quarantines it as poison.
     */
    unsigned crashes = 0;
};

/** How runBatch executes its jobs. */
enum class IsolateMode
{
    /** Worker threads in this process (the historical backend). */
    None,
    /**
     * A pool of forked worker processes supervised over pipes
     * (harness/process_pool): a job that segfaults, gets OOM-killed or
     * wedges costs one worker respawn, not the batch. Results come back
     * as length-prefixed frames and are adopted into this process's
     * memo caches, so post-batch table assembly behaves identically.
     */
    Process,
};

/** Failure-handling policy for one runBatch call. */
struct BatchOptions
{
    /** Retries granted after a failed attempt (0 = one attempt only). */
    unsigned retries = 0;
    /** Stop launching new jobs after the first failure. */
    bool failFast = false;
    /**
     * Per-job wall-clock budget in seconds, covering all of the job's
     * attempts (0 = unlimited). An over-budget job is marked failed and
     * *abandoned*: in-process, the batch returns without it and the
     * wedged worker thread drains in the background (see
     * drainAbandonedPools); under --isolate=process the worker is
     * simply killed and respawned.
     */
    double jobDeadlineSeconds = 0.0;
    /** Execution backend (BFSIM_ISOLATE / --isolate). */
    IsolateMode isolate = IsolateMode::None;
    /**
     * Sweep journal directory ("" = no journal). Every completed job is
     * appended as a crash-safe record (tmp+fsync+rename); a rerun of
     * the same jobs against the same directory restores those results
     * (BatchItem::journaled) instead of recomputing them.
     */
    std::string journalDir;
    /**
     * Worker crashes a single job may cause before it is quarantined as
     * poison (failed without further redispatch). Process backend only.
     */
    unsigned poisonThreshold = 3;
    /**
     * Seconds without any frame (heartbeat or result) from a worker
     * with a job in flight before the supervisor declares it wedged,
     * kills it and treats the job as having crashed the worker.
     * 0 disables the heartbeat watchdog. Process backend only.
     */
    double heartbeatTimeoutSeconds = 30.0;

    /**
     * Defaults from the environment: BFSIM_RETRIES (count),
     * BFSIM_FAIL_FAST (any value but 0 enables), BFSIM_JOB_DEADLINE
     * (seconds, fractional allowed), BFSIM_ISOLATE ("process" enables
     * the forked-worker backend), BFSIM_JOURNAL_DIR (sweep journal
     * directory), BFSIM_POISON_THRESHOLD (crash quarantine count),
     * BFSIM_HEARTBEAT_TIMEOUT (seconds, 0 disables).
     */
    static BatchOptions fromEnv();
};

/** Results and timing of one runBatch call. */
struct BatchResult
{
    std::vector<BatchItem> items;
    unsigned threads = 1;
    /** Wall seconds for the whole batch (submit to last completion). */
    double wallSeconds = 0.0;
    /** Sum of per-job worker seconds (serial-equivalent cost). */
    double cpuSeconds = 0.0;
    /** Backend that executed the batch (for report provenance). */
    IsolateMode isolate = IsolateMode::None;

    /** Items restored from the sweep journal instead of computed. */
    std::size_t
    journaled() const
    {
        std::size_t count = 0;
        for (const BatchItem &item : items)
            count += item.journaled ? 1 : 0;
        return count;
    }

    /** Measured wall-clock speedup over the serial-equivalent cost. */
    double
    speedup() const
    {
        return wallSeconds > 0.0 ? cpuSeconds / wallSeconds : 0.0;
    }

    /** Items that failed (including fail-fast skips and timeouts). */
    std::size_t
    failures() const
    {
        std::size_t count = 0;
        for (const BatchItem &item : items)
            count += item.failed ? 1 : 0;
        return count;
    }

    /**
     * Aggregate simulator throughput over the simulations this batch
     * actually performed (cached items reuse another run's result and
     * would double-count it; failed and custom items carry none).
     */
    std::uint64_t simInstructions() const;

    /** Wall seconds inside Cmp::run, summed like simInstructions(). */
    double simSeconds() const;

    /** Aggregate simulated MIPS: simInstructions()/simSeconds()/1e6. */
    double mips() const;
};

/**
 * Progress callback: invoked (serialized) after each job completes with
 * the finished item and the done/total counts.
 */
using BatchProgress = std::function<void(
    const BatchItem &item, std::size_t done, std::size_t total)>;

/**
 * Emit the default "[done/total] label seconds" progress line to
 * stderr. Disabled wholesale by setting BFSIM_PROGRESS=0.
 */
void defaultBatchProgress(const BatchItem &item, std::size_t done,
                          std::size_t total);

/**
 * Run `jobs` across `n_threads` workers (0 = BFSIM_JOBS env, else
 * hardware concurrency). Results are returned in job order; duplicate
 * jobs and shared baselines are computed exactly once via the memo
 * cache.
 *
 * Failures are isolated per job: a job that throws (from any attempt
 * permitted by `options.retries`) yields an item with `failed` set and
 * `error` populated instead of aborting the batch, and a failed
 * memoized computation is evicted so retries — and later batches in
 * the same process — recompute it. Which jobs fail is deterministic in
 * the jobs vector, independent of `n_threads`.
 */
BatchResult runBatch(const std::vector<BatchJob> &jobs,
                     unsigned n_threads = 0,
                     const BatchProgress &progress = defaultBatchProgress,
                     const BatchOptions &options = BatchOptions::fromEnv());

/**
 * Run one job through all its permitted attempts on the calling thread
 * and return the outcome (never throws; failures land in the item).
 * `ordinal` is the job's 1-based batch position, used as the fault
 * scope so injected `site:nth` faults strike deterministically. This is
 * the single execution path shared by every backend: in-process batch
 * workers, forked --isolate=process workers and the bfsimd daemon all
 * funnel through it, which is what keeps their results byte-identical.
 */
BatchItem runJobAttempts(const BatchJob &job, std::size_t ordinal,
                         unsigned retries);

/**
 * Join the background threads draining thread pools that runBatch
 * abandoned on a job-deadline expiry. Returns the number of pools
 * still wedged after `timeoutSeconds`. Called automatically at process
 * exit (bounded, with a warning for stragglers) so an abandoned pool
 * can never race static destruction; exposed for tests and for
 * long-lived services that want to reap between sweeps.
 */
std::size_t drainAbandonedPools(double timeoutSeconds);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_BATCH_HH_
