/**
 * @file
 * SMARTS-style statistical sampling of timing simulation (DESIGN.md
 * §13): instead of walking the full dynamic instruction budget through
 * the cycle-level model, measure short windows at a fixed period —
 * each window runs `warmupOps` instructions of detailed warmup (healing
 * the cold caches and predictors of a freshly built window simulator)
 * followed by `measureOps` measured instructions — and estimate CPI as
 * total measured cycles over total measured instructions, with a 95%
 * confidence interval from the per-window CPI spread.
 *
 * The instructions *between* windows are never timed. On the memory
 * trace tier they are fetched by functional execution or sequential
 * artifact decode once per (workload, budget); on the disk tier a
 * format-v2 artifact's chunk index lets each window seek directly to
 * its first chunk, so skipped instructions cost nothing at all. Either
 * way the windows observe the identical DynOp values a full run would,
 * so sampled CPI is deterministic: the same schedule yields
 * bit-identical aggregates across {serial, parallel} window execution
 * and across {memory, disk} tiers.
 *
 * Windows are independent simulations, so they parallelize across a
 * ThreadPool (BFSIM_SAMPLE_JOBS / SampleConfig::jobs); results are
 * recombined in schedule order, keeping aggregation deterministic.
 */

#ifndef BFSIM_HARNESS_SAMPLING_HH_
#define BFSIM_HARNESS_SAMPLING_HH_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bfsim::harness {

/** Sampling-mode knobs for one run (disabled by default). */
struct SampleConfig
{
    bool enabled = false;
    /** Instructions from one window start to the next. */
    std::uint64_t periodOps = 200'000;
    /** Detailed (unmeasured) instructions at each window start. */
    std::uint64_t warmupOps = 4'000;
    /** Measured instructions per window. */
    std::uint64_t measureOps = 8'000;
    /**
     * Checkpoint-restored windows: locate the newest trace checkpoint
     * at-or-before each window's begin, skip the functional
     * fast-forward it covers, and install its L1-D tag snapshot as
     * functional cache warmup — letting warmupOps shrink while the CI
     * error gate keeps the IPC estimate honest. Windows with no
     * covering checkpoint (v1 artifacts, op 0) run exactly as before.
     */
    bool ckptWarm = false;
    /**
     * Worker threads for window execution; 1 = serial. Not part of
     * key(): parallelism never changes the aggregated numbers.
     */
    unsigned jobs = 1;

    /**
     * Memo-cache key fragment: "" when disabled (so full-run keys are
     * unchanged), "/sample:period:warmup:measure" when enabled (with
     * ":ckpt" appended in checkpoint-restored mode) — sampled and full
     * results never collide.
     */
    std::string key() const;

    /**
     * Parse a "period:warmup:measure" spec (instruction counts; the
     * window must fit in the period), optionally suffixed ":ckpt" for
     * checkpoint-restored mode. Returns an enabled config; throws
     * SimError on malformed input.
     */
    static SampleConfig parse(const std::string &spec);

    /**
     * Config from the environment: BFSIM_SAMPLE unset/"0" = disabled,
     * "1" = enabled with defaults, otherwise a parse() spec; plus
     * BFSIM_SAMPLE_JOBS for window parallelism and BFSIM_SAMPLE_CKPT
     * (unset/"0" off, anything else on) for checkpoint-restored mode.
     */
    static SampleConfig fromEnv();
};

/**
 * The process-default sampling config applied by the bench harness
 * (seeded from the environment; --sample overrides it).
 */
SampleConfig defaultSampleConfig();
void setDefaultSampleConfig(const SampleConfig &config);

/** One scheduled measurement window over a dynamic op stream. */
struct SampleWindow
{
    std::uint64_t begin = 0;   ///< op index where warmup starts
    std::uint64_t warmup = 0;  ///< warmup instructions
    std::uint64_t measure = 0; ///< measured instructions

    /** One past the last op the window measures. */
    std::uint64_t end() const { return begin + warmup + measure; }
};

/**
 * The deterministic window schedule for `budget` instructions: windows
 * at begin = 0, period, 2*period, ... whose warmup+measure region fits
 * the budget. A budget smaller than one full window degrades to a
 * single clamped window (measure-what-there-is), never to zero windows,
 * so sampled runs always produce a CPI. Empty when sampling is off.
 */
std::vector<SampleWindow> sampleSchedule(std::uint64_t budget,
                                         const SampleConfig &config);

/** Aggregated sampling statistics carried in run results and reports. */
struct SampledStats
{
    bool enabled = false;
    std::uint64_t windows = 0;
    /** Instructions inside measurement regions (the CPI denominator). */
    std::uint64_t measuredInstructions = 0;
    /**
     * Instructions burned as *detailed* warmup across windows (the
     * scheduled warmupOps). Functional fast-forward work is reported
     * separately below — earlier releases conflated the two, making
     * speedup denominators computed from this field dishonest whenever
     * windows fell back to sequential prefix materialisation.
     */
    std::uint64_t warmupInstructions = 0;
    /** The full budget the sample represents. */
    std::uint64_t budgetInstructions = 0;
    /**
     * Prefix ops windows skipped outright — chunk-index seeks on the
     * artifact tier (no decode, no execution) — summed per window and
     * core. The headline win of checkpoint/seek-native sampling.
     */
    std::uint64_t ffSkippedOps = 0;
    /**
     * Prefix ops that still had to be materialised sequentially
     * (functional execution or in-order artifact decode) because a
     * window ran on the buffer tier, summed per window and core. The
     * honest fast-forward cost term, kept apart from
     * warmupInstructions.
     */
    std::uint64_t ffInstructions = 0;
    /** Per-window-per-core checkpoint restores (ckptWarm hits). */
    std::uint64_t checkpointHits = 0;
    /** Aggregate CPI: total measured cycles / measured instructions. */
    double cpi = 0.0;
    /** 95% confidence half-width on the per-window CPI mean. */
    double cpiCi95 = 0.0;
    /** 1 / cpi (0 when nothing measured). */
    double ipc = 0.0;
};

/**
 * Combine per-window measurement results (schedule order; `cycles` and
 * `instructions` are each window's measured deltas) into aggregate CPI
 * and its confidence interval. Aggregation is ratio-of-sums, matching
 * how a full run computes IPC; the CI comes from the spread of
 * individual window CPIs (sample stddev, normal approximation).
 */
SampledStats summarizeWindows(const std::vector<SampleWindow> &schedule,
                              const std::vector<std::uint64_t> &cycles,
                              const std::vector<std::uint64_t> &instructions,
                              std::uint64_t budget);

/**
 * Run `fn(index)` for every index in [0, count), on `jobs` worker
 * threads when jobs > 1 (inline otherwise). Blocks until all complete.
 * The first exception thrown by any invocation is rethrown after every
 * worker has finished; `fn` must write results to disjoint slots.
 */
void forEachWindow(std::size_t count, unsigned jobs,
                   const std::function<void(std::size_t)> &fn);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_SAMPLING_HH_
