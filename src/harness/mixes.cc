#include "harness/mixes.hh"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/log.hh"
#include "harness/experiment.hh"

namespace bfsim::harness {

double
foaProfile(const std::string &workload_name)
{
    // Guarded for runBatch workers; the underlying profiling run is
    // deduplicated by the experiment memo cache, this map only avoids
    // re-deriving the ratio.
    static std::mutex mutex;
    static std::map<std::string, double> cache;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(workload_name);
        if (it != cache.end())
            return it->second;
    }

    RunOptions options;
    options.instructions = 200'000; // short profiling run
    const SingleResult &result = runSingleCached(
        workload_name, "None", options);

    // LLC pressure: accesses that reached the L3 (L2 misses), per
    // kilo-instruction.
    double l3_accesses = static_cast<double>(result.mem.l3Hits +
                                             result.mem.dramAccesses);
    double foa = 1000.0 * l3_accesses /
                 static_cast<double>(result.core.instructions);
    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(workload_name, foa);
    return foa;
}

std::vector<Mix>
selectMixes(unsigned size, unsigned count)
{
    if (size < 1)
        fatal("mix size must be positive");
    std::vector<std::string> names = workloads::workloadNames();

    // Enumerate all combinations of `size` workloads.
    std::vector<Mix> candidates;
    std::vector<unsigned> idx(size);
    for (unsigned i = 0; i < size; ++i)
        idx[i] = i;
    const unsigned n = static_cast<unsigned>(names.size());
    if (size > n)
        fatal("mix size exceeds suite size");
    for (;;) {
        Mix mix;
        for (unsigned i : idx) {
            mix.workloads.push_back(names[i]);
            mix.contentionScore += foaProfile(names[i]);
        }
        candidates.push_back(std::move(mix));

        // Advance the combination (lexicographic).
        int pos = static_cast<int>(size) - 1;
        while (pos >= 0 &&
               idx[pos] == n - size + static_cast<unsigned>(pos)) {
            --pos;
        }
        if (pos < 0)
            break;
        ++idx[pos];
        for (unsigned i = static_cast<unsigned>(pos) + 1; i < size; ++i)
            idx[i] = idx[i - 1] + 1;
    }

    // Highest contention first; ties broken by name for determinism.
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Mix &a, const Mix &b) {
                         if (a.contentionScore != b.contentionScore)
                             return a.contentionScore > b.contentionScore;
                         return a.workloads < b.workloads;
                     });

    // Greedy pick with a per-workload appearance cap so a single
    // high-pressure application cannot dominate the whole mix set
    // (the paper's mixes visibly cover the suite).
    std::size_t cap =
        std::max<std::size_t>(2, (count * size + n - 1) / n + 1);
    std::map<std::string, std::size_t> appearances;
    std::vector<Mix> selected;
    for (const Mix &mix : candidates) {
        if (selected.size() >= count)
            break;
        bool fits = true;
        for (const auto &name : mix.workloads)
            if (appearances[name] >= cap)
                fits = false;
        if (!fits)
            continue;
        for (const auto &name : mix.workloads)
            ++appearances[name];
        selected.push_back(mix);
    }
    // If the cap was too strict to fill the quota, relax with the
    // remaining highest-contention mixes.
    for (const Mix &mix : candidates) {
        if (selected.size() >= count)
            break;
        bool already = false;
        for (const Mix &s : selected)
            if (s.workloads == mix.workloads)
                already = true;
        if (!already)
            selected.push_back(mix);
    }
    return selected;
}

} // namespace bfsim::harness
