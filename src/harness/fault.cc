#include "harness/fault.hh"

namespace bfsim::harness {

ScopedFault::ScopedFault(fault::Site site, std::uint64_t scope,
                         std::uint64_t seed)
{
    fault::arm(site, scope, seed);
}

ScopedFault::ScopedFault(const std::string &spec)
    : armedOk(fault::armFromSpec(spec))
{
}

ScopedFault::~ScopedFault()
{
    fault::disarm();
}

FaultScope::FaultScope(std::uint64_t ordinal)
{
    fault::beginScope(ordinal);
}

FaultScope::~FaultScope()
{
    fault::beginScope(0);
}

} // namespace bfsim::harness
