#include "harness/report.hh"

#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <locale>
#include <ostream>
#include <sstream>

#include "common/log.hh"
#include "common/stats.hh"
#include "harness/fault.hh"
#include "sim/ooo_core.hh"
#include "sim/trace_store.hh"

namespace bfsim::harness {

double
seriesGeomean(const SpeedupSeries &series,
              const std::vector<std::string> &workloads)
{
    std::vector<double> values;
    for (const auto &name : workloads) {
        auto it = series.values.find(name);
        if (it == series.values.end())
            fatal("series '" + series.name + "' missing workload '" +
                  name + "'");
        values.push_back(it->second);
    }
    return geometricMean(values);
}

TextTable
speedupTable(const std::vector<std::string> &workload_order,
             const std::vector<std::string> &sensitive,
             const std::vector<SpeedupSeries> &series)
{
    std::vector<std::string> headers{"benchmark"};
    for (const auto &s : series)
        headers.push_back(s.name);
    TextTable table(std::move(headers));

    for (const auto &workload : workload_order) {
        std::vector<std::string> row{workload};
        for (const auto &s : series) {
            auto it = s.values.find(workload);
            row.push_back(it == s.values.end()
                              ? "-"
                              : TextTable::fmt(it->second));
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> geo_row{"Geomean"};
    std::vector<std::string> sens_row{"Geomean pf. sens."};
    for (const auto &s : series) {
        geo_row.push_back(
            TextTable::fmt(seriesGeomean(s, workload_order)));
        if (!sensitive.empty())
            sens_row.push_back(
                TextTable::fmt(seriesGeomean(s, sensitive)));
    }
    table.addRow(std::move(geo_row));
    // A --filter subset may contain no prefetch-sensitive workload;
    // omit the row rather than print a geomean over nothing.
    if (!sensitive.empty())
        table.addRow(std::move(sens_row));
    return table;
}

namespace {

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** JSON-safe double formatting (finite, fixed grammar, no locale). */
std::string
jsonNumber(double value)
{
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os.precision(9);
    os << value;
    return os.str();
}

/**
 * Emit the sampling-estimate block for a sampled result, leading with
 * the estimate and its confidence interval so report consumers can
 * gate on error bounds without re-deriving them.
 */
void
writeSampledJson(std::ostream &os, const SampledStats &sampled)
{
    os << ", \"sampled\": {\"windows\": " << sampled.windows
       << ", \"measured_instructions\": " << sampled.measuredInstructions
       << ", \"warmup_instructions\": " << sampled.warmupInstructions
       << ", \"budget_instructions\": " << sampled.budgetInstructions
       << ", \"ff_skipped_ops\": " << sampled.ffSkippedOps
       << ", \"ff_instructions\": " << sampled.ffInstructions
       << ", \"checkpoint_hits\": " << sampled.checkpointHits
       << ", \"cpi\": " << jsonNumber(sampled.cpi)
       << ", \"cpi_ci95\": " << jsonNumber(sampled.cpiCi95)
       << ", \"ipc\": " << jsonNumber(sampled.ipc) << '}';
}

/**
 * Aggregate IPC of one batch item over its measured region(s): the
 * single-core IPC, or ratio-of-sums across a mix's cores. This is the
 * figure perf_compare.py diffs between a full and a sampled run of the
 * same bench, so both run modes must define it identically.
 */
double
itemIpc(const BatchItem &item)
{
    if (item.single)
        return item.single->core.ipc;
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    for (const sim::CoreStats &core : item.mix->cores) {
        cycles += core.cycles;
        insts += core.instructions;
    }
    return cycles ? static_cast<double>(insts) /
                        static_cast<double>(cycles)
                  : 0.0;
}

const char *
kindName(BatchJob::Kind kind)
{
    switch (kind) {
      case BatchJob::Kind::Single: return "single";
      case BatchJob::Kind::Mix: return "mix";
      case BatchJob::Kind::Custom: return "custom";
    }
    return "?";
}

} // namespace

void
writeBatchReportJson(std::ostream &os, const std::string &bench_name,
                     const BatchResult &batch)
{
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(bench_name) << "\",\n";
    os << "  \"threads\": " << batch.threads << ",\n";
    os << "  \"jobs\": " << batch.items.size() << ",\n";
    os << "  \"wall_seconds\": " << jsonNumber(batch.wallSeconds)
       << ",\n";
    os << "  \"cpu_seconds\": " << jsonNumber(batch.cpuSeconds) << ",\n";
    os << "  \"speedup\": " << jsonNumber(batch.speedup()) << ",\n";
    os << "  \"failures\": " << batch.failures() << ",\n";
    os << "  \"isolate\": \""
       << (batch.isolate == IsolateMode::Process ? "process" : "none")
       << "\",\n";
    os << "  \"journaled\": " << batch.journaled() << ",\n";

    // Simulator-throughput aggregate over the jobs this batch computed
    // fresh (cached jobs reuse another run's simulation).
    os << "  \"perf\": {\"sim_instructions\": " << batch.simInstructions()
       << ", \"sim_seconds\": " << jsonNumber(batch.simSeconds())
       << ", \"mips\": " << jsonNumber(batch.mips()) << "},\n";

    // Process-wide cache behaviour at report time, so sweep
    // observability covers both memoized results and shared traces.
    MemoStats memo = memoStats();
    TraceCacheStats trace = traceCacheStats();
    os << "  \"caches\": {\n";
    os << "    \"memo\": {\"single_computes\": " << memo.singleComputes
       << ", \"single_hits\": " << memo.singleHits
       << ", \"mix_computes\": " << memo.mixComputes
       << ", \"mix_hits\": " << memo.mixHits
       << ", \"single_adopts\": " << memo.singleAdopts
       << ", \"mix_adopts\": " << memo.mixAdopts << "},\n";
    os << "    \"trace\": {\"enabled\": "
       << (traceCacheEnabled() ? "true" : "false")
       << ", \"buffers\": " << trace.buffers
       << ", \"attaches\": " << trace.attaches
       << ", \"ops_executed\": " << trace.opsExecuted
       << ", \"resident_bytes\": " << trace.residentBytes
       << ", \"capture_seconds\": "
       << jsonNumber(trace.captureSeconds) << "},\n";
    sim::trace_store::Stats disk = sim::trace_store::stats();
    os << "    \"trace_disk\": {\"enabled\": "
       << (sim::trace_store::enabled() ? "true" : "false")
       << ", \"hits\": " << disk.hits << ", \"misses\": " << disk.misses
       << ", \"fallbacks\": " << disk.fallbacks
       << ", \"bytes_written\": " << disk.bytesWritten
       << ", \"bytes_read\": " << disk.bytesRead
       << ", \"ops_written\": " << disk.opsWritten
       << ", \"ops_read\": " << disk.opsRead
       << ", \"bytes_per_op\": " << jsonNumber(disk.bytesPerOp())
       << ", \"decode_seconds\": " << jsonNumber(disk.decodeSeconds)
       << ", \"publish_abandoned\": " << disk.publishAbandoned
       << ", \"checkpoints_written\": " << disk.checkpointsWritten
       << ", \"checkpoint_bytes\": " << disk.checkpointBytesWritten
       << ", \"remote_enabled\": "
       << (sim::trace_store::remoteEnabled() ? "true" : "false")
       << ", \"remote_hits\": " << disk.remoteHits
       << ", \"remote_misses\": " << disk.remoteMisses
       << ", \"remote_bytes_fetched\": " << disk.remoteBytesFetched
       << ", \"remote_pushes\": " << disk.remotePushes
       << ", \"remote_errors\": " << disk.remoteErrors
       << "}\n";
    os << "  },\n";
    os << "  \"results\": [\n";
    for (std::size_t i = 0; i < batch.items.size(); ++i) {
        const BatchItem &item = batch.items[i];
        os << "    {\"label\": \"" << jsonEscape(item.label)
           << "\", \"kind\": \"" << kindName(item.kind)
           << "\", \"seconds\": " << jsonNumber(item.seconds)
           << ", \"cached\": " << (item.cached ? "true" : "false")
           << ", \"trace_hits\": " << item.traceHits
           << ", \"trace_misses\": " << item.traceMisses
           << ", \"trace_fallbacks\": " << item.traceFallbacks
           << ", \"trace_disk_hits\": " << item.traceDiskHits
           << ", \"trace_disk_misses\": " << item.traceDiskMisses
           << ", \"failed\": " << (item.failed ? "true" : "false")
           << ", \"attempts\": " << item.attempts
           << ", \"journaled\": " << (item.journaled ? "true" : "false")
           << ", \"crashes\": " << item.crashes;
        if (item.failed) {
            // Failed jobs carry their error instead of metrics a reader
            // could mistake for real (zero) results.
            os << ", \"error\": \"" << jsonEscape(item.error) << '"';
        } else if (item.single) {
            os << ", \"prefetcher\": \""
               << sim::prefetcherName(item.single->prefetcher)
               << "\", \"predictor\": \""
               << jsonEscape(item.single->predictor)
               << "\", \"workloads\": [\""
               << jsonEscape(item.single->workload)
               << "\"], \"ipc\": ["
               << jsonNumber(item.single->core.ipc) << "]"
               << ", \"sim_instructions\": "
               << item.single->simInstructions
               << ", \"sim_seconds\": "
               << jsonNumber(item.single->simSeconds)
               << ", \"mips\": " << jsonNumber(item.single->mips);
            if (item.single->sampled.enabled)
                writeSampledJson(os, item.single->sampled);
        } else if (item.mix) {
            os << ", \"prefetcher\": \""
               << sim::prefetcherName(item.mix->prefetcher)
               << "\", \"predictor\": \""
               << jsonEscape(item.mix->predictor)
               << "\", \"workloads\": [";
            for (std::size_t w = 0; w < item.mix->workloads.size(); ++w) {
                os << (w ? ", " : "") << '"'
                   << jsonEscape(item.mix->workloads[w]) << '"';
            }
            os << "], \"ipc\": [";
            for (std::size_t c = 0; c < item.mix->cores.size(); ++c) {
                os << (c ? ", " : "")
                   << jsonNumber(item.mix->cores[c].ipc);
            }
            os << "], \"weighted_speedup\": "
               << jsonNumber(item.mix->weightedSpeedup)
               << ", \"sim_instructions\": " << item.mix->simInstructions
               << ", \"sim_seconds\": "
               << jsonNumber(item.mix->simSeconds)
               << ", \"mips\": " << jsonNumber(item.mix->mips);
            if (item.mix->sampled.enabled)
                writeSampledJson(os, item.mix->sampled);
        } else {
            os << ", \"value\": " << jsonNumber(item.value);
        }
        os << '}' << (i + 1 < batch.items.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

namespace {

/**
 * Crash-safe JSON file write shared by the report emitters: serialize
 * into <path>.tmp and atomically rename over the destination, so an
 * interrupted (or fault-injected) run leaves either the previous
 * complete report or the new one — never a truncated JSON a CI parser
 * would choke on. `path` "-" streams to stdout instead.
 */
bool
writeJsonFile(const std::string &path, const std::string &what,
              const std::function<void(std::ostream &)> &serialize)
{
    if (path == "-") {
        serialize(std::cout);
        return true;
    }
    const std::string tmp_path = path + ".tmp";
    {
        std::ofstream file(tmp_path);
        if (!file) {
            warn("cannot open " + what + " file '" + tmp_path + "'");
            return false;
        }
        serialize(file);
        if (fault::shouldFail(fault::Site::ReportWrite))
            file.setstate(std::ios::badbit);
        if (!file) {
            warn("failed writing " + what + " '" + tmp_path + "'");
            file.close();
            std::remove(tmp_path.c_str());
            return false;
        }
    }
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        warn("cannot rename '" + tmp_path + "' to '" + path + "'");
        std::remove(tmp_path.c_str());
        return false;
    }
    return true;
}

} // namespace

bool
writeBatchReportFile(const std::string &path,
                     const std::string &bench_name,
                     const BatchResult &batch)
{
    return writeJsonFile(path, "batch report", [&](std::ostream &os) {
        writeBatchReportJson(os, bench_name, batch);
    });
}

void
writePerfReportJson(std::ostream &os, const std::string &bench_name,
                    const BatchResult &batch)
{
    os << "{\n";
    os << "  \"bench\": \"" << jsonEscape(bench_name) << "\",\n";
    os << "  \"batch_ops\": "
       << (sim::batchOpsEnabled() ? "true" : "false") << ",\n";
    os << "  \"threads\": " << batch.threads << ",\n";
    os << "  \"wall_seconds\": " << jsonNumber(batch.wallSeconds)
       << ",\n";
    os << "  \"sim_instructions\": " << batch.simInstructions() << ",\n";
    os << "  \"sim_seconds\": " << jsonNumber(batch.simSeconds())
       << ",\n";
    os << "  \"mips\": " << jsonNumber(batch.mips()) << ",\n";
    os << "  \"jobs\": [\n";
    bool first = true;
    for (const BatchItem &item : batch.items) {
        // Only fresh simulations carry a measurement of their own.
        if (item.cached || item.failed || (!item.single && !item.mix))
            continue;
        double mips = item.single ? item.single->mips : item.mix->mips;
        std::uint64_t insts = item.single ? item.single->simInstructions
                                          : item.mix->simInstructions;
        double seconds = item.single ? item.single->simSeconds
                                     : item.mix->simSeconds;
        os << (first ? "" : ",\n");
        first = false;
        os << "    {\"label\": \"" << jsonEscape(item.label)
           << "\", \"sim_instructions\": " << insts
           << ", \"sim_seconds\": " << jsonNumber(seconds)
           << ", \"mips\": " << jsonNumber(mips)
           << ", \"ipc\": " << jsonNumber(itemIpc(item)) << '}';
    }
    os << "\n  ]\n}\n";
}

bool
writePerfReportFile(const std::string &path,
                    const std::string &bench_name,
                    const BatchResult &batch)
{
    return writeJsonFile(path, "perf report", [&](std::ostream &os) {
        writePerfReportJson(os, bench_name, batch);
    });
}

} // namespace bfsim::harness
