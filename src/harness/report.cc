#include "harness/report.hh"

#include "common/log.hh"
#include "common/stats.hh"

namespace bfsim::harness {

double
seriesGeomean(const SpeedupSeries &series,
              const std::vector<std::string> &workloads)
{
    std::vector<double> values;
    for (const auto &name : workloads) {
        auto it = series.values.find(name);
        if (it == series.values.end())
            fatal("series '" + series.name + "' missing workload '" +
                  name + "'");
        values.push_back(it->second);
    }
    return geometricMean(values);
}

TextTable
speedupTable(const std::vector<std::string> &workload_order,
             const std::vector<std::string> &sensitive,
             const std::vector<SpeedupSeries> &series)
{
    std::vector<std::string> headers{"benchmark"};
    for (const auto &s : series)
        headers.push_back(s.name);
    TextTable table(std::move(headers));

    for (const auto &workload : workload_order) {
        std::vector<std::string> row{workload};
        for (const auto &s : series) {
            auto it = s.values.find(workload);
            row.push_back(it == s.values.end()
                              ? "-"
                              : TextTable::fmt(it->second));
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> geo_row{"Geomean"};
    std::vector<std::string> sens_row{"Geomean pf. sens."};
    for (const auto &s : series) {
        geo_row.push_back(
            TextTable::fmt(seriesGeomean(s, workload_order)));
        sens_row.push_back(TextTable::fmt(seriesGeomean(s, sensitive)));
    }
    table.addRow(std::move(geo_row));
    table.addRow(std::move(sens_row));
    return table;
}

} // namespace bfsim::harness
