#include "harness/process_pool.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/fault.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/signal_util.hh"
#include "common/subprocess.hh"
#include "harness/experiment.hh"
#include "harness/fault.hh"
#include "harness/journal.hh"
#include "harness/wire.hh"

namespace bfsim::harness {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

std::int64_t
nowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * The injected worker-crash fault (BFSIM_FAULT=crash:nth): raise the
 * configured fatal signal, default SIGSEGV, killing this worker the way
 * a real wild pointer would. BFSIM_CRASH_SIGNAL: segv|kill|abort.
 */
[[noreturn]] void
raiseCrashSignal()
{
    int sig = SIGSEGV;
    if (const char *env = std::getenv("BFSIM_CRASH_SIGNAL")) {
        std::string name(env);
        if (name == "kill")
            sig = SIGKILL;
        else if (name == "abort")
            sig = SIGABRT;
    }
    // Restore the default disposition first: the harness may have
    // installed counting handlers, and this must actually kill us.
    std::signal(sig, SIG_DFL);
    ::raise(sig);
    ::_exit(101); // unreachable unless the signal was blocked
}

/**
 * Worker process main loop. Never returns: reads Job frames off
 * `job_fd`, executes them through the same runJobAttempts path as every
 * other backend, writes Result frames to `result_fd`, and exits via
 * _exit on an Exit frame or parent death (job pipe EOF).
 *
 * A heartbeat thread writes a frame ~4 times a second so the supervisor
 * can tell "long job" from "wedged worker". All result-fd writes are
 * serialized by a mutex so heartbeat and result frames never interleave
 * mid-frame.
 */
[[noreturn]] void
workerMain(const std::vector<BatchJob> &jobs, int job_fd, int result_fd)
{
    // Shutdown is the supervisor's job: a terminal ^C signals the whole
    // process group, and a worker that died to SIGINT would read as a
    // crash. Ignore, finish the current job, and wait for Exit.
    std::signal(SIGINT, SIG_IGN);
    std::signal(SIGTERM, SIG_IGN);
    std::signal(SIGPIPE, SIG_IGN);

    std::mutex write_mutex;
    std::atomic<bool> running{true};
    std::thread heartbeat([&] {
        while (running.load(std::memory_order_relaxed)) {
            {
                std::lock_guard<std::mutex> lock(write_mutex);
                if (!subprocess::writeFrame(
                        result_fd, subprocess::FrameType::Heartbeat,
                        nullptr, 0)) {
                    break; // supervisor is gone; the main loop will see EOF
                }
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(250));
        }
    });

    {
        std::lock_guard<std::mutex> lock(write_mutex);
        subprocess::writeFrame(result_fd, subprocess::FrameType::Hello,
                               nullptr, 0);
    }

    for (;;) {
        subprocess::FrameType type;
        std::vector<unsigned char> payload;
        if (!subprocess::readFrame(job_fd, type, payload))
            break; // supervisor died; exit quietly
        if (type == subprocess::FrameType::Exit)
            break;
        if (type != subprocess::FrameType::Job || payload.size() != 8)
            continue;

        wire::Reader reader(payload);
        std::size_t index = reader.u32();
        unsigned retries = reader.u32();
        if (index >= jobs.size())
            continue;

        {
            // The crash fault site lives here — in the worker, inside
            // the job's fault scope — and nowhere else: in-process
            // backends never check it, because there the "recovery"
            // would be losing the whole batch.
            FaultScope fault_scope(index + 1);
            if (fault::shouldFail(fault::Site::WorkerCrash))
                raiseCrashSignal();
        }

        BatchItem item = runJobAttempts(jobs[index], index + 1, retries);

        wire::Writer w;
        w.u32(static_cast<std::uint32_t>(index));
        wire::encodeBatchItem(w, item);
        std::lock_guard<std::mutex> lock(write_mutex);
        if (!subprocess::writeFrame(result_fd,
                                    subprocess::FrameType::Result,
                                    w.bytes().data(),
                                    w.bytes().size())) {
            break;
        }
    }

    running.store(false, std::memory_order_relaxed);
    heartbeat.join();
    // Persist captured traces so a resumed/parallel sweep finds them on
    // disk; the supervisor never executed anything, so this is the only
    // place worker capture work can reach the store.
    persistTraceStore();
    std::fflush(nullptr);
    // _exit, not exit: static destructors of the forked image would run
    // against copy-on-write state the parent still owns.
    ::_exit(0);
}

struct WorkerSlot
{
    pid_t pid = -1;
    int jobFd = -1;    ///< supervisor -> worker (blocking writes)
    int resultFd = -1; ///< worker -> supervisor (non-blocking reads)
    subprocess::FrameDecoder decoder;
    bool alive = false;
    std::size_t jobIndex = npos; ///< in-flight job (npos = idle)
    std::int64_t lastFrameNs = 0;
    std::int64_t respawnAtNs = 0;
    unsigned consecutiveCrashes = 0;
    /** In-flight job already resolved (deadline); EOF is not a crash. */
    bool pardonNextDeath = false;
};

/** Everything the supervision loop tracks about one runProcessPool. */
struct Supervisor
{
    const std::vector<BatchJob> &jobs;
    const ProcessPoolOptions &options;
    const ProcessPublish &publish;

    std::vector<WorkerSlot> slots;
    std::deque<std::size_t> queue;
    std::vector<char> resolved;
    std::vector<unsigned> crashes;
    std::vector<std::int64_t> firstDispatchNs;
    /** Identity -> resolved-successfully, for duplicate-job dedup. */
    std::map<std::string, char> identityDone;
    std::size_t remaining = 0;
    bool stopDispatch = false; ///< fail-fast or drain: no new dispatches
    bool interrupted = false;

    Supervisor(const std::vector<BatchJob> &jobs,
               const ProcessPoolOptions &options,
               const ProcessPublish &publish)
        : jobs(jobs), options(options), publish(publish)
    {
        resolved.assign(jobs.size(), 0);
        crashes.assign(jobs.size(), 0);
        firstDispatchNs.assign(jobs.size(), 0);
    }

    void
    resolve(std::size_t index, BatchItem item)
    {
        if (resolved[index])
            return;
        resolved[index] = 1;
        --remaining;
        if (!item.failed &&
            jobs[index].kind != BatchJob::Kind::Custom) {
            identityDone[SweepJournal::jobKeyString(jobs[index])] = 1;
        }
        if (item.failed && options.failFast)
            stopDispatch = true;
        publish(index, std::move(item));
    }

    BatchItem
    failureItem(std::size_t index, std::string error) const
    {
        BatchItem item;
        item.label = jobs[index].label;
        item.kind = jobs[index].kind;
        item.failed = true;
        item.error = std::move(error);
        item.crashes = crashes[index];
        // Attempts mirror the in-process backend: 0 = never started
        // (skipped), otherwise one per dispatch of this job.
        item.attempts =
            crashes[index] > 0
                ? crashes[index]
                : (firstDispatchNs[index] != 0 ? 1u : 0u);
        if (firstDispatchNs[index] != 0) {
            item.seconds =
                static_cast<double>(nowNs() - firstDispatchNs[index]) /
                1e9;
        }
        return item;
    }

    bool
    spawn(WorkerSlot &slot)
    {
        subprocess::Pipe job_pipe, result_pipe;
        if (!job_pipe.open())
            return false;
        if (!result_pipe.open()) {
            job_pipe.close();
            return false;
        }
        pid_t pid = ::fork();
        if (pid < 0) {
            job_pipe.close();
            result_pipe.close();
            warn(std::string("worker fork failed: ") +
                 std::strerror(errno));
            return false;
        }
        if (pid == 0) {
            job_pipe.closeWrite();
            result_pipe.closeRead();
            workerMain(jobs, job_pipe.readFd, result_pipe.writeFd);
        }
        job_pipe.closeRead();
        result_pipe.closeWrite();
        subprocess::setNonBlocking(result_pipe.readFd);
        slot.pid = pid;
        slot.jobFd = job_pipe.writeFd;
        slot.resultFd = result_pipe.readFd;
        slot.decoder = subprocess::FrameDecoder{};
        slot.alive = true;
        slot.jobIndex = npos;
        slot.lastFrameNs = nowNs();
        slot.pardonNextDeath = false;
        return true;
    }

    void
    closeSlot(WorkerSlot &slot)
    {
        if (slot.jobFd >= 0)
            ::close(slot.jobFd);
        if (slot.resultFd >= 0)
            ::close(slot.resultFd);
        slot.jobFd = -1;
        slot.resultFd = -1;
        slot.alive = false;
        slot.pid = -1;
    }

    /**
     * The worker behind `slot` died (pipe EOF or failed write). Reap
     * it, account the in-flight job (crash, poison, or pardoned), and
     * schedule the respawn backoff.
     */
    void
    handleDeath(WorkerSlot &slot)
    {
        int status = 0;
        std::string cause = "vanished";
        if (slot.pid > 0 && ::waitpid(slot.pid, &status, 0) == slot.pid)
            cause = signal_util::describeWaitStatus(status);

        std::size_t index = slot.jobIndex;
        slot.jobIndex = npos;
        bool pardoned = slot.pardonNextDeath;
        closeSlot(slot);

        if (index == npos || resolved[index] || pardoned) {
            // Idle death (e.g. after Exit) or a kill we already
            // accounted: no job consequences, no backoff escalation.
            // A pardoned worker can still carry an unresolved job if a
            // dispatch raced its SIGKILL and the Job frame landed in
            // the pipe buffer; drop that job back on the queue or it
            // leaks and the pool never drains.
            if (index != npos && !resolved[index])
                queue.push_front(index);
            return;
        }

        ++crashes[index];
        ++slot.consecutiveCrashes;
        std::int64_t backoff_ms = std::min<std::int64_t>(
            20LL << std::min(slot.consecutiveCrashes - 1, 6u), 1000);
        slot.respawnAtNs = nowNs() + backoff_ms * 1'000'000;

        if (crashes[index] >= options.poisonThreshold) {
            warn("job '" + jobs[index].label +
                 "' quarantined as poison: crashed its worker " +
                 std::to_string(crashes[index]) + " time(s) (last: " +
                 cause + ")");
            resolve(index,
                    failureItem(index,
                                "quarantined as poison after " +
                                    std::to_string(crashes[index]) +
                                    " worker crash(es); last worker " +
                                    cause));
        } else {
            warn("worker running '" + jobs[index].label + "' " + cause +
                 "; respawning and retrying the job");
            queue.push_front(index); // retry promptly, preserving order
        }
    }

    /**
     * Process every complete frame `slot` has buffered. Result frames
     * resolve jobs: the embedded Single/Mix result is adopted into the
     * memo cache so the published item's pointers are stable and later
     * lookups under the same key are hits.
     */
    void
    processFrames(WorkerSlot &slot)
    {
        subprocess::Frame frame;
        while (slot.decoder.next(frame)) {
            slot.lastFrameNs = nowNs();
            if (frame.type != subprocess::FrameType::Result)
                continue; // Hello/Heartbeat: liveness only
            try {
                wire::Reader reader(frame.payload);
                std::size_t index = reader.u32();
                if (index >= jobs.size())
                    continue;
                wire::DecodedItem decoded = wire::decodeBatchItem(reader);
                const BatchJob &job = jobs[index];
                BatchItem item = std::move(decoded.item);
                if (decoded.single) {
                    item.single = &adoptSingleResult(
                        job.workloads.at(0), job.prefetcher, job.options,
                        std::move(*decoded.single));
                }
                if (decoded.mix) {
                    item.mix = &adoptMixResult(job.workloads,
                                               job.prefetcher,
                                               job.options,
                                               std::move(*decoded.mix));
                }
                item.crashes = crashes[index];
                if (slot.jobIndex == index)
                    slot.jobIndex = npos;
                slot.consecutiveCrashes = 0;
                resolve(index, std::move(item));
            } catch (const SimError &error) {
                warn(std::string("discarding undecodable worker result (") +
                     error.what() + ")");
            }
        }
        if (slot.decoder.corrupt()) {
            warn("worker stream corrupt; killing the worker");
            ::kill(slot.pid, SIGKILL);
        }
    }

    /** Hand the next queued jobs to idle workers. */
    void
    dispatch()
    {
        // Drain/fail-fast resolves every queued job at once — no
        // worker needed, so no reason to trickle one per poll tick.
        while (stopDispatch && !queue.empty()) {
            std::size_t index = queue.front();
            queue.pop_front();
            resolve(index,
                    failureItem(index,
                                interrupted
                                    ? "interrupted: shutdown requested "
                                      "before this job started"
                                    : "skipped: fail-fast stop after "
                                      "an earlier failure"));
        }
        for (WorkerSlot &slot : slots) {
            if (queue.empty())
                return;
            // A pardoned slot has already been SIGKILLed (deadline or
            // abort); handing it a job would race the kill and strand
            // the job on a dead worker. Wait for the EOF + respawn.
            if (!slot.alive || slot.jobIndex != npos ||
                slot.pardonNextDeath)
                continue;
            std::size_t index = queue.front();

            // Duplicate-job dedup: an identical job already resolved
            // in a worker left its result in our memo cache, so the
            // shared execution path returns it instantly as a cached
            // item — same semantics as the in-process backend's memo.
            if (jobs[index].kind != BatchJob::Kind::Custom &&
                identityDone.count(
                    SweepJournal::jobKeyString(jobs[index]))) {
                queue.pop_front();
                resolve(index,
                        runJobAttempts(jobs[index], index + 1,
                                       options.retries));
                continue;
            }

            wire::Writer w;
            w.u32(static_cast<std::uint32_t>(index));
            w.u32(options.retries);
            if (!subprocess::writeFrame(slot.jobFd,
                                        subprocess::FrameType::Job,
                                        w.bytes().data(),
                                        w.bytes().size())) {
                // Worker died between frames; the job never started, so
                // it is not a crash against the job's budget.
                slot.pardonNextDeath = true;
                handleDeath(slot);
                continue;
            }
            queue.pop_front();
            slot.jobIndex = index;
            slot.lastFrameNs = nowNs();
            if (firstDispatchNs[index] == 0)
                firstDispatchNs[index] = nowNs();
        }
    }

    /** Deadline + heartbeat policing, once per poll tick. */
    void
    police()
    {
        std::int64_t now = nowNs();
        const double deadline = options.jobDeadlineSeconds;
        const double hb_timeout = options.heartbeatTimeoutSeconds;
        for (WorkerSlot &slot : slots) {
            if (!slot.alive || slot.jobIndex == npos)
                continue;
            std::size_t index = slot.jobIndex;
            if (deadline > 0.0 &&
                now - firstDispatchNs[index] >
                    static_cast<std::int64_t>(deadline * 1e9)) {
                char text[96];
                std::snprintf(text, sizeof text,
                              "job exceeded its %.3gs wall-clock "
                              "deadline",
                              deadline);
                resolve(index, failureItem(index, text));
                slot.jobIndex = npos;
                slot.pardonNextDeath = true;
                ::kill(slot.pid, SIGKILL);
                continue;
            }
            if (hb_timeout > 0.0 &&
                now - slot.lastFrameNs >
                    static_cast<std::int64_t>(hb_timeout * 1e9)) {
                warn("worker running '" + jobs[index].label +
                     "' sent no heartbeat for " +
                     std::to_string(hb_timeout) +
                     "s; killing it as wedged");
                // Leave the job in flight: the EOF path accounts it as
                // a crash (counting toward poison) and redispatches.
                ::kill(slot.pid, SIGKILL);
            }
        }
    }

    /** React to SIGINT/SIGTERM: first drain, second abort. */
    void
    handleSignals()
    {
        int count = signal_util::shutdownSignalCount();
        if (count <= 0)
            return;
        signal_util::drainShutdownFd();
        if (!interrupted) {
            interrupted = true;
            stopDispatch = true;
            warn("shutdown requested: draining in-flight jobs "
                 "(signal again to abort them)");
        }
        if (count >= 2) {
            warn("second shutdown signal: aborting in-flight jobs");
            for (WorkerSlot &slot : slots) {
                if (!slot.alive)
                    continue;
                if (slot.jobIndex != npos) {
                    resolve(slot.jobIndex,
                            failureItem(slot.jobIndex,
                                        "aborted: shutdown requested "
                                        "while the job was in flight"));
                    slot.jobIndex = npos;
                }
                slot.pardonNextDeath = true;
                ::kill(slot.pid, SIGKILL);
            }
        }
    }

    /** Respawn dead workers whose backoff has elapsed, while needed. */
    void
    respawn()
    {
        if (queue.empty())
            return;
        std::int64_t now = nowNs();
        for (WorkerSlot &slot : slots) {
            if (slot.alive || now < slot.respawnAtNs || queue.empty())
                continue;
            if (!spawn(slot))
                slot.respawnAtNs = now + 100'000'000; // retry in 100ms
        }
    }

    /** Ask live workers to exit (persisting traces), then reap. */
    void
    shutdownWorkers()
    {
        for (WorkerSlot &slot : slots) {
            if (!slot.alive)
                continue;
            subprocess::writeFrame(slot.jobFd,
                                   subprocess::FrameType::Exit, nullptr,
                                   0);
        }
        std::int64_t give_up = nowNs() + 5'000'000'000LL;
        for (WorkerSlot &slot : slots) {
            if (!slot.alive)
                continue;
            for (;;) {
                int status = 0;
                pid_t got = ::waitpid(slot.pid, &status, WNOHANG);
                if (got == slot.pid || got < 0)
                    break;
                if (nowNs() > give_up) {
                    warn("worker ignored Exit; killing it");
                    ::kill(slot.pid, SIGKILL);
                    ::waitpid(slot.pid, &status, 0);
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            closeSlot(slot);
        }
    }
};

} // namespace

bool
runProcessPool(const std::vector<BatchJob> &jobs,
               const std::vector<std::size_t> &pending,
               const ProcessPoolOptions &options,
               const ProcessPublish &publish)
{
    if (pending.empty())
        return false;

    signal_util::installShutdownHandlers();

    Supervisor sup(jobs, options, publish);
    for (std::size_t index : pending)
        sup.queue.push_back(index);
    sup.remaining = pending.size();

    // Materialise every pending job's shared trace before forking:
    // workers inherit the decoded buffers copy-on-write, so the batch
    // pays for one functional pass instead of one per worker. Sampled
    // jobs skip the warmup — they read windows straight from disk
    // artifacts and never need the whole stream resident.
    for (std::size_t index : pending) {
        const BatchJob &job = jobs[index];
        if (job.kind == BatchJob::Kind::Custom || job.options.sample.enabled)
            continue;
        for (const std::string &workload : job.workloads)
            warmSharedTrace(workload, job.options);
    }

    unsigned workers = std::max(1u, options.workers);
    workers = static_cast<unsigned>(
        std::min<std::size_t>(workers, pending.size()));
    sup.slots.resize(workers);
    for (WorkerSlot &slot : sup.slots) {
        if (!sup.spawn(slot))
            slot.respawnAtNs = nowNs() + 100'000'000;
    }

    while (sup.remaining > 0) {
        sup.handleSignals();
        sup.respawn();
        sup.dispatch();
        if (sup.remaining == 0)
            break;

        std::vector<pollfd> fds;
        std::vector<std::size_t> fd_slots;
        for (std::size_t s = 0; s < sup.slots.size(); ++s) {
            if (!sup.slots[s].alive)
                continue;
            fds.push_back({sup.slots[s].resultFd, POLLIN, 0});
            fd_slots.push_back(s);
        }
        int shutdown_fd = signal_util::shutdownFd();
        if (shutdown_fd >= 0)
            fds.push_back({shutdown_fd, POLLIN, 0});

        if (fds.empty()) {
            // Every worker is in respawn backoff; just wait it out.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        } else {
            ::poll(fds.data(), fds.size(), 50);
        }

        for (std::size_t f = 0; f < fd_slots.size(); ++f) {
            WorkerSlot &slot = sup.slots[fd_slots[f]];
            if (!slot.alive)
                continue; // killed by an earlier frame this tick
            if (!(fds[f].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            bool open = subprocess::drainIntoDecoder(slot.resultFd,
                                                     slot.decoder);
            sup.processFrames(slot);
            if (!open)
                sup.handleDeath(slot);
        }

        sup.police();
    }

    sup.shutdownWorkers();
    return sup.interrupted;
}

} // namespace bfsim::harness
