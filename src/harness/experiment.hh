/**
 * @file
 * Experiment harness: single-threaded and multiprogrammed simulation
 * runs with the paper's baseline configuration (Table II), plus the
 * speedup arithmetic used throughout the evaluation section.
 *
 * Results for repeated (workload, prefetcher, options) combinations are
 * memoized per process so bench binaries that share baselines (e.g. the
 * no-prefetch IPCs every figure normalizes to) pay for them once. The
 * memo cache is thread-safe and future-based: under harness::runBatch
 * the first requester of a combination computes it while concurrent
 * requesters block on the shared result, so no simulation ever runs
 * twice even when jobs race.
 *
 * Below the memo cache sits the trace cache (same future-based
 * pattern, keyed by workload and instruction budget): because the
 * functional DynOp stream is bit-identical across prefetcher/core
 * configurations, a figure sweeping N prefetchers over one workload
 * pays for functional execution once and replays the captured
 * sim::TraceBuffer N-1 times, including under runBatch parallelism.
 * Timing results are byte-identical either way; BFSIM_TRACE_CACHE=0
 * falls back to live execution per run.
 */

#ifndef BFSIM_HARNESS_EXPERIMENT_HH_
#define BFSIM_HARNESS_EXPERIMENT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "harness/sampling.hh"
#include "mem/hierarchy.hh"
#include "sim/cmp.hh"
#include "sim/ooo_core.hh"
#include "workloads/workload.hh"

namespace bfsim::harness {

/**
 * The process-default branch-predictor spec: BFSIM_PREDICTOR from the
 * environment (read once), falling back to the paper's "tournament"
 * baseline. setDefaultPredictorSpec overrides it (--predictor CLI);
 * freshly constructed RunOptions pick it up.
 */
std::string defaultPredictorSpec();
void setDefaultPredictorSpec(const std::string &spec);

/** Knobs for one experiment run (defaults: paper baseline). */
struct RunOptions
{
    /** Instructions simulated per core. Benches override via env. */
    std::uint64_t instructions = 2'000'000;
    unsigned width = 4;
    unsigned robSize = 192;
    double bpSizeScale = 1.0;
    /**
     * Branch-predictor registry spec (branch/registry.hh), part of
     * every memo/report cache key so sweeps over predictors are
     * first-class jobs. Defaults to BFSIM_PREDICTOR / --predictor, or
     * "tournament".
     */
    std::string predictor = defaultPredictorSpec();
    core::BFetchConfig bfetch{};
    /** LLC capacity per core (Table II: 2MB/core). */
    std::size_t l3PerCoreBytes = 2 * 1024 * 1024;
    /**
     * Commit-progress watchdog: a core that goes this many cycles
     * without committing throws SimError instead of spinning forever.
     * 0 means "use the BFSIM_DEADLOCK_CYCLES environment variable, or
     * the built-in default" (see sim::CoreConfig::deadlockCycles).
     */
    std::uint64_t deadlockCycles = 0;
    /**
     * Statistical sampling (disabled by default: full detailed run).
     * When enabled, the run times only the scheduled warmup+measure
     * windows (see harness/sampling.hh) and the result's core/mem stats
     * are the measured-region aggregates, with `sampled` describing the
     * estimate quality. Sampled and full results memoize under
     * different keys.
     */
    SampleConfig sample{};

    /** Stable cache key for memoization. */
    std::string cacheKey() const;
};

/** Results of one single-core run. */
struct SingleResult
{
    std::string workload;
    /** Prefetch-scheme spec the run was configured with. */
    std::string prefetcher = "None";
    /** Branch-predictor spec the run was configured with. */
    std::string predictor = "tournament";
    sim::CoreStats core;
    mem::CoreMemStats mem;
    /** Populated only for B-Fetch runs. */
    core::BFetchStats bfetch;
    double avgLookaheadDepth = 0.0;
    double branchPredictorKB = 0.0;
    /**
     * Simulator throughput for the run that computed this result (for a
     * memoized result: the original computation, not the lookup). Wall
     * seconds inside Cmp::run, dynamic instructions retired (including
     * contention-tail work), and their ratio in millions per second.
     */
    double simSeconds = 0.0;
    std::uint64_t simInstructions = 0;
    double mips = 0.0;
    /** Sampling estimate quality (enabled=false for full runs). */
    SampledStats sampled{};
};

/**
 * Run one workload on one core with one prefetching scheme (a
 * prefetch/registry.hh spec such as "None", "sms" or
 * "stride:degree=4"; lookup is case-insensitive).
 */
SingleResult runSingle(const std::string &workload_name,
                       const std::string &kind,
                       const RunOptions &options = {});

/**
 * Memoizing wrapper around runSingle (per-process, thread-safe).
 * If `computed` is non-null it is set to true when this call performed
 * the simulation, false when it reused (or waited on) a cached result.
 */
const SingleResult &runSingleCached(const std::string &workload_name,
                                    const std::string &kind,
                                    const RunOptions &options = {},
                                    bool *computed = nullptr);

/** Results of one multiprogrammed run. */
struct MixResult
{
    std::vector<std::string> workloads;
    /** Prefetch-scheme spec the run was configured with. */
    std::string prefetcher = "None";
    /** Branch-predictor spec the run was configured with. */
    std::string predictor = "tournament";
    std::vector<sim::CoreStats> cores;
    std::vector<mem::CoreMemStats> mem;
    /** Raw weighted speedup: sum_i IPC_multi(i) / IPC_single_base(i). */
    double weightedSpeedup = 0.0;
    /** Simulator throughput (see SingleResult::simSeconds et al.). */
    double simSeconds = 0.0;
    std::uint64_t simInstructions = 0;
    double mips = 0.0;
    /** Sampling estimate quality over all cores (see SingleResult). */
    SampledStats sampled{};
};

/**
 * Run a mix of workloads on an equal number of cores sharing the L3 and
 * DRAM. IPC_single baselines (no-prefetch, single-core, same options)
 * are obtained through the memoized runner.
 */
MixResult runMix(const std::vector<std::string> &workload_names,
                 const std::string &kind, const RunOptions &options = {});

/**
 * Memoizing wrapper around runMix (per-process, thread-safe).
 * `computed` reports whether this call performed the simulation, as in
 * runSingleCached.
 */
const MixResult &runMixCached(const std::vector<std::string> &workload_names,
                              const std::string &kind,
                              const RunOptions &options = {},
                              bool *computed = nullptr);

/**
 * Install an externally computed result into the memo cache under the
 * same key runSingleCached would use, returning the interned (stable)
 * reference. Used by the process-isolation backend and the sweep
 * journal: a result computed in a worker process or restored from disk
 * is adopted here so later lookups (post-batch table assembly,
 * speedupVsBaseline) are memo hits — never recomputes — and so
 * BatchItem::single pointers have memo-cache lifetime.
 *
 * If the key is already cached the existing value wins (the adopter's
 * copy is dropped) — both were produced by the same deterministic
 * simulation, so they are interchangeable. Adoption counts as neither a
 * compute nor a hit; see MemoStats::singleAdopts.
 */
const SingleResult &adoptSingleResult(const std::string &workload_name,
                                      const std::string &kind,
                                      const RunOptions &options,
                                      SingleResult result);

/** Mix-flavoured adoption; see adoptSingleResult. */
const MixResult &adoptMixResult(
    const std::vector<std::string> &workload_names,
    const std::string &kind, const RunOptions &options, MixResult result);

/** Counters describing memo-cache behaviour since the last clear. */
struct MemoStats
{
    /** runSingle simulations actually performed. */
    std::uint64_t singleComputes = 0;
    /** runSingleCached lookups satisfied without a new simulation. */
    std::uint64_t singleHits = 0;
    /** runMix simulations actually performed. */
    std::uint64_t mixComputes = 0;
    /** runMixCached lookups satisfied without a new simulation. */
    std::uint64_t mixHits = 0;
    /** Results installed by adoptSingleResult (worker/journal imports). */
    std::uint64_t singleAdopts = 0;
    /** Results installed by adoptMixResult (worker/journal imports). */
    std::uint64_t mixAdopts = 0;
};

/** Snapshot of the memo-cache counters. */
MemoStats memoStats();

/**
 * Whether simulation runs share functional execution through the
 * per-process trace cache: the first run of a (workload, instruction
 * budget) captures the DynOp stream into a sim::TraceBuffer and every
 * later run of the same pair — any prefetcher, any core config, any
 * runBatch thread — replays it with zero functional work. Defaults to
 * on; BFSIM_TRACE_CACHE=0 disables it (every run executes live).
 */
bool traceCacheEnabled();

/** Programmatic override of BFSIM_TRACE_CACHE (tests, tools). */
void setTraceCacheEnabled(bool enabled);

/** Counters describing trace-cache behaviour since the last clear. */
struct TraceCacheStats
{
    /** Distinct trace buffers created (cache misses). */
    std::uint64_t buffers = 0;
    /** Replay attachments to an existing buffer (cache hits). */
    std::uint64_t attaches = 0;
    /** Dynamic ops functionally executed across all buffers. */
    std::uint64_t opsExecuted = 0;
    /** Bytes of trace storage currently resident. */
    std::uint64_t residentBytes = 0;
    /**
     * Wall seconds spent acquiring ops by live functional execution
     * across all resident buffers. On a warm disk-store run this
     * collapses toward zero (decode time is reported separately under
     * the trace_store stats); the cold-vs-warm ratio of acquisition
     * time is the store's measured benefit.
     */
    double captureSeconds = 0.0;
};

/** Snapshot of the trace-cache counters. */
TraceCacheStats traceCacheStats();

/**
 * Drop every cached trace buffer and reset the counters. Safe while no
 * simulation is in flight; buffers still referenced by live sources
 * stay alive until those sources are destroyed.
 */
void clearTraceCache();

/**
 * Per-thread memo/trace cache activity counters, drained by the batch
 * runner to attribute cache behaviour to individual jobs.
 */
struct ThreadCacheCounters
{
    std::uint64_t traceHits = 0;   ///< sources attached to a cached trace
    std::uint64_t traceMisses = 0; ///< sources that created a new trace
    /**
     * Trace-path failures gracefully degraded to live execution —
     * in-memory capture probes AND disk-store artifacts rejected at
     * open or mid-decode (both tiers degrade the same way).
     */
    std::uint64_t traceFallbacks = 0;
    /** Trace buffers seeded from an on-disk store artifact. */
    std::uint64_t traceDiskHits = 0;
    /** Store lookups that found no usable artifact (captured live). */
    std::uint64_t traceDiskMisses = 0;
};

/** Return this thread's counters accumulated since the last take. */
ThreadCacheCounters takeThreadCacheCounters();

/**
 * Write every resident trace buffer to the on-disk store
 * (sim::trace_store) when one is configured: new captures become
 * artifacts, and buffers that grew past a stale artifact rewrite it.
 * Called by runBatch after the last job so capture work is persisted
 * once per process, not once per job. Safe to call repeatedly — saves
 * of up-to-date artifacts are skipped. @return artifacts written.
 */
std::size_t persistTraceStore();

/**
 * Fully materialise the shared trace buffer for (workload, budget):
 * acquire it through the trace cache (seeding from the on-disk store
 * when configured) and decode/execute the whole instruction budget now.
 *
 * The process-isolation backend calls this in the supervisor before
 * forking workers: forked children inherit the materialised buffer via
 * copy-on-write, so N workers replay one decode instead of each
 * lazily re-decoding (or worse, re-capturing) the same stream. A
 * no-op when the trace cache is disabled; acquisition failures are
 * swallowed (workers fall back to live sources, bit-identically).
 */
void warmSharedTrace(const std::string &workload_name,
                     const RunOptions &options);

/**
 * Drop all memoized results and reset the counters. Test support only:
 * references previously returned by the cached runners are invalidated,
 * and no concurrent batch may be in flight.
 */
void clearMemoCaches();

/** Speedup of a run against the no-prefetch baseline (same options). */
double speedupVsBaseline(const std::string &workload_name,
                         const std::string &kind,
                         const RunOptions &options = {});

/**
 * Default per-core instruction budget for bench binaries: reads the
 * BFSIM_INSTRUCTIONS environment variable (or its historical alias
 * BFSIM_INSTS), falling back to `fallback`. Every bench binary routes
 * its budget through this so CI smoke runs can shrink all of them
 * uniformly.
 */
std::uint64_t benchInstructionBudget(std::uint64_t fallback = 2'000'000);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_EXPERIMENT_HH_
