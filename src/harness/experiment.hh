/**
 * @file
 * Experiment harness: single-threaded and multiprogrammed simulation
 * runs with the paper's baseline configuration (Table II), plus the
 * speedup arithmetic used throughout the evaluation section.
 *
 * Results for repeated (workload, prefetcher, options) combinations are
 * memoized per process so bench binaries that share baselines (e.g. the
 * no-prefetch IPCs every figure normalizes to) pay for them once.
 */

#ifndef BFSIM_HARNESS_EXPERIMENT_HH_
#define BFSIM_HARNESS_EXPERIMENT_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hh"
#include "mem/hierarchy.hh"
#include "sim/cmp.hh"
#include "sim/ooo_core.hh"
#include "workloads/workload.hh"

namespace bfsim::harness {

/** Knobs for one experiment run (defaults: paper baseline). */
struct RunOptions
{
    /** Instructions simulated per core. Benches override via env. */
    std::uint64_t instructions = 2'000'000;
    unsigned width = 4;
    unsigned robSize = 192;
    double bpSizeScale = 1.0;
    core::BFetchConfig bfetch{};
    /** LLC capacity per core (Table II: 2MB/core). */
    std::size_t l3PerCoreBytes = 2 * 1024 * 1024;

    /** Stable cache key for memoization. */
    std::string cacheKey() const;
};

/** Results of one single-core run. */
struct SingleResult
{
    std::string workload;
    sim::PrefetcherKind prefetcher = sim::PrefetcherKind::None;
    sim::CoreStats core;
    mem::CoreMemStats mem;
    /** Populated only for B-Fetch runs. */
    core::BFetchStats bfetch;
    double avgLookaheadDepth = 0.0;
    double branchPredictorKB = 0.0;
};

/** Run one workload on one core with one prefetching scheme. */
SingleResult runSingle(const std::string &workload_name,
                       sim::PrefetcherKind kind,
                       const RunOptions &options = {});

/** Memoizing wrapper around runSingle (per-process cache). */
const SingleResult &runSingleCached(const std::string &workload_name,
                                    sim::PrefetcherKind kind,
                                    const RunOptions &options = {});

/** Results of one multiprogrammed run. */
struct MixResult
{
    std::vector<std::string> workloads;
    sim::PrefetcherKind prefetcher = sim::PrefetcherKind::None;
    std::vector<sim::CoreStats> cores;
    std::vector<mem::CoreMemStats> mem;
    /** Raw weighted speedup: sum_i IPC_multi(i) / IPC_single_base(i). */
    double weightedSpeedup = 0.0;
};

/**
 * Run a mix of workloads on an equal number of cores sharing the L3 and
 * DRAM. IPC_single baselines (no-prefetch, single-core, same options)
 * are obtained through the memoized runner.
 */
MixResult runMix(const std::vector<std::string> &workload_names,
                 sim::PrefetcherKind kind, const RunOptions &options = {});

/** Memoizing wrapper around runMix (per-process cache). */
const MixResult &runMixCached(const std::vector<std::string> &workload_names,
                              sim::PrefetcherKind kind,
                              const RunOptions &options = {});

/** Speedup of a run against the no-prefetch baseline (same options). */
double speedupVsBaseline(const std::string &workload_name,
                         sim::PrefetcherKind kind,
                         const RunOptions &options = {});

/**
 * Default per-core instruction budget for bench binaries: reads the
 * BFSIM_INSTS environment variable, falling back to `fallback`.
 */
std::uint64_t benchInstructionBudget(std::uint64_t fallback = 2'000'000);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_EXPERIMENT_HH_
