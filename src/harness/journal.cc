#include "harness/journal.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

#include "common/checksum.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "harness/wire.hh"
#include "sim/cmp.hh"

namespace fs = std::filesystem;

namespace bfsim::harness {

namespace {

/** "BFJR" little-endian: Branch-Fetch Journal Record. */
constexpr std::uint32_t recordMagic = 0x524a4642u;
constexpr std::uint32_t recordVersion = 1;

std::string
recordFileName(std::uint64_t key)
{
    char name[32];
    std::snprintf(name, sizeof name, "rec-%016llx.rec",
                  static_cast<unsigned long long>(key));
    return name;
}

const char *
kindName(BatchJob::Kind kind)
{
    switch (kind) {
      case BatchJob::Kind::Single: return "single";
      case BatchJob::Kind::Mix: return "mix";
      case BatchJob::Kind::Custom: return "custom";
    }
    return "?";
}

/**
 * Write `bytes` to `path` durably: pid-suffixed temp file in the same
 * directory, fsync, rename into place, fsync the directory. Any step
 * failing cleans up the temp file and reports failure.
 */
bool
writeDurably(const fs::path &path, const std::vector<unsigned char> &bytes)
{
    fs::path tmp = path;
    tmp += ".tmp." + std::to_string(::getpid());

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0)
        return false;
    const unsigned char *data = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        ssize_t n = ::write(fd, data, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        data += n;
        left -= static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    ::close(fd);

    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        ::unlink(tmp.c_str());
        return false;
    }

    // Make the rename itself durable. Best effort: a journal whose
    // directory entry evaporates in a power cut merely recomputes.
    int dir_fd = ::open(path.parent_path().c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dir_fd >= 0) {
        ::fsync(dir_fd);
        ::close(dir_fd);
    }
    return true;
}

} // namespace

std::string
SweepJournal::jobKeyString(const BatchJob &job)
{
    std::ostringstream os;
    os << kindName(job.kind) << '|' << job.label;
    if (job.kind != BatchJob::Kind::Custom) {
        os << '|' << sim::prefetcherName(job.prefetcher);
        for (const std::string &workload : job.workloads)
            os << '|' << workload;
        os << '|' << job.options.cacheKey();
    }
    return os.str();
}

std::uint64_t
SweepJournal::jobKey(const BatchJob &job)
{
    std::string text = jobKeyString(job);
    return Fnv1a64().update(text.data(), text.size()).value();
}

SweepJournal::SweepJournal(std::string directory) : dir(std::move(directory))
{
    if (dir.empty())
        return;

    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        throw SimError("journal", "cannot create journal directory '" +
                                      dir + "': " + ec.message());
    }

    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        if (ec)
            break;
        const fs::path &path = entry.path();
        if (path.extension() != ".rec")
            continue;

        std::ifstream in(path, std::ios::binary);
        std::vector<unsigned char> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        if (!in.good() && !in.eof()) {
            ++corrupt;
            continue;
        }

        // Seal check first: the CRC covers everything before itself.
        if (bytes.size() < 4) {
            ++corrupt;
            continue;
        }
        std::size_t body = bytes.size() - 4;
        wire::Reader crc_reader(bytes.data() + body, 4);
        if (crc_reader.u32() != crc32c(bytes.data(), body)) {
            ++corrupt;
            continue;
        }

        try {
            wire::Reader r(bytes.data(), body);
            if (r.u32() != recordMagic || r.u32() != recordVersion) {
                ++corrupt;
                continue;
            }
            std::uint64_t key = r.u64();
            std::string key_string = r.str();
            std::uint32_t payload_len = r.u32();
            if (payload_len != r.remaining()) {
                ++corrupt;
                continue;
            }
            std::vector<unsigned char> payload(
                bytes.begin() + (body - payload_len),
                bytes.begin() + body);
            // Probe-decode now so a record that cannot decode is
            // counted at load time, not discovered mid-restore.
            wire::Reader probe(payload.data(), payload.size());
            wire::decodeBatchItem(probe);
            records[key] = {std::move(key_string), std::move(payload)};
            ++loaded;
        } catch (const SimError &) {
            ++corrupt;
        }
    }
    if (corrupt > 0) {
        warn("journal '" + dir + "': skipped " +
             std::to_string(corrupt) + " corrupt record file(s)");
    }
}

bool
SweepJournal::restore(const BatchJob &job, BatchItem &item)
{
    if (!enabled())
        return false;

    std::string key_string = jobKeyString(job);
    std::uint64_t key =
        Fnv1a64().update(key_string.data(), key_string.size()).value();

    std::vector<unsigned char> payload;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = records.find(key);
        if (it == records.end())
            return false;
        // Hash-collision guard: the stored identity must match exactly.
        if (it->second.first != key_string)
            return false;
        payload = it->second.second;
    }

    try {
        wire::Reader r(payload.data(), payload.size());
        wire::DecodedItem decoded = wire::decodeBatchItem(r);
        if (decoded.item.failed)
            return false; // never written, but never trust a record
        if (decoded.item.kind != job.kind)
            return false;
        item = decoded.item;
        if (decoded.single) {
            item.single = &adoptSingleResult(
                job.workloads.at(0), job.prefetcher, job.options,
                std::move(*decoded.single));
        }
        if (decoded.mix) {
            item.mix = &adoptMixResult(job.workloads, job.prefetcher,
                                       job.options,
                                       std::move(*decoded.mix));
        }
    } catch (const SimError &error) {
        warn(std::string("journal record for '") + job.label +
             "' unusable (" + error.what() + "); recomputing");
        return false;
    }
    item.journaled = true;
    {
        std::lock_guard<std::mutex> lock(mutex);
        ++restored;
    }
    return true;
}

bool
SweepJournal::append(const BatchJob &job, const BatchItem &item)
{
    if (!enabled() || item.failed)
        return false;

    std::string key_string = jobKeyString(job);
    std::uint64_t key =
        Fnv1a64().update(key_string.data(), key_string.size()).value();

    wire::Writer w;
    w.u32(recordMagic);
    w.u32(recordVersion);
    w.u64(key);
    w.str(key_string);
    wire::Writer payload;
    wire::encodeBatchItem(payload, item);
    w.blob(payload.bytes().data(), payload.bytes().size());
    std::vector<unsigned char> bytes = w.take();
    std::uint32_t crc = crc32c(bytes.data(), bytes.size());
    for (int i = 0; i < 4; ++i)
        bytes.push_back(static_cast<unsigned char>(crc >> (i * 8)));

    if (!writeDurably(fs::path(dir) / recordFileName(key), bytes)) {
        warn("journal '" + dir + "': failed to persist record for '" +
             job.label + "' (will recompute on resume)");
        return false;
    }

    std::lock_guard<std::mutex> lock(mutex);
    records[key] = {std::move(key_string), payload.take()};
    ++written;
    return true;
}

} // namespace bfsim::harness
