/**
 * @file
 * Report helpers shared by the bench binaries: paper-style speedup
 * tables with per-benchmark rows plus the Geomean / "Geomean pf. sens."
 * summary columns of Figs. 1 and 8, and the machine-readable JSON
 * batch report (per-job results and timings) CI archives to track the
 * reproduction's performance trajectory.
 */

#ifndef BFSIM_HARNESS_REPORT_HH_
#define BFSIM_HARNESS_REPORT_HH_

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/table.hh"
#include "harness/batch.hh"

namespace bfsim::harness {

/** A named series of per-benchmark speedups (one figure line/bar set). */
struct SpeedupSeries
{
    std::string name;                       ///< e.g. "SMS", "Bfetch"
    std::map<std::string, double> values;   ///< workload -> speedup
};

/**
 * Build a Fig. 1 / Fig. 8 style table: one row per workload in
 * `workload_order`, one column per series, then Geomean and
 * "Geomean pf. sens." rows (the latter over `sensitive` workloads).
 */
TextTable speedupTable(const std::vector<std::string> &workload_order,
                       const std::vector<std::string> &sensitive,
                       const std::vector<SpeedupSeries> &series);

/** Geometric mean of one series over the given workloads. */
double seriesGeomean(const SpeedupSeries &series,
                     const std::vector<std::string> &workloads);

/**
 * Serialize a batch outcome as JSON: batch-level threads / wall seconds
 * / serial-equivalent cpu seconds / measured speedup / failure count
 * and a process-wide memo/trace cache snapshot (`caches.trace` for the
 * in-memory tier including `capture_seconds`, `caches.trace_disk` for
 * the on-disk store with hit/miss/fallback counts, bytes written/read,
 * `bytes_per_op` and `decode_seconds`), plus one entry per job with its
 * label, kind, timing, memo-cache status, per-job trace-cache
 * hit/miss/fallback and disk-tier hit/miss counts, failure state
 * (`failed`, `attempts`, and `error` in place of metrics when failed)
 * and headline metrics (per-core IPC, weighted speedup, custom value).
 */
void writeBatchReportJson(std::ostream &os, const std::string &bench_name,
                          const BatchResult &batch);

/**
 * Write the JSON batch report to `path` ("-" means stdout). File
 * writes are crash-safe: the report is serialized to `<path>.tmp` and
 * renamed into place only when complete, so `path` never holds a
 * truncated report.
 * @return false (with a warning) when the report cannot be written; no
 *         partial file (or leftover .tmp) remains in that case.
 */
bool writeBatchReportFile(const std::string &path,
                          const std::string &bench_name,
                          const BatchResult &batch);

/**
 * Serialize the simulator-throughput (MIPS) view of a batch: the
 * batched-delivery mode flag, aggregate sim_instructions / sim_seconds
 * / mips, and one entry per freshly simulated job (cached, failed and
 * custom jobs carry no measurement of their own). This is the compact
 * trajectory record CI archives as BENCH_perf.json.
 */
void writePerfReportJson(std::ostream &os, const std::string &bench_name,
                         const BatchResult &batch);

/**
 * Write the perf report to `path` ("-" means stdout), with the same
 * crash-safe tmp-and-rename discipline as writeBatchReportFile.
 */
bool writePerfReportFile(const std::string &path,
                         const std::string &bench_name,
                         const BatchResult &batch);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_REPORT_HH_
