/**
 * @file
 * Binary wire format for experiment results crossing a process
 * boundary: the --isolate=process worker pipes (harness/process_pool)
 * and the crash-safe sweep journal (harness/journal) both move
 * SingleResult / MixResult / BatchItem values between address spaces,
 * and both need the decoded values to be *byte-identical* to the
 * originals so report tables cannot drift depending on which backend
 * computed them.
 *
 * Encoding rules:
 *  - integers are little-endian fixed width; doubles are their IEEE-754
 *    bit pattern (memcpy through uint64_t), so no text round-trip ever
 *    perturbs a stat;
 *  - the plain-old-data stats structs (sim::CoreStats,
 *    mem::CoreMemStats, core::BFetchStats, harness::SampledStats) are
 *    written as raw bytes behind a size field. Producer and consumer
 *    are always the *same binary* (a forked worker, or a journal replay
 *    by the same bench executable), so layout always matches; the size
 *    field turns a version skew (stale journal read by a rebuilt
 *    binary) into a clean decode error instead of garbage stats.
 *
 * Decode errors throw SimError("wire", ...): callers treat the payload
 * as lost and recompute, never trust a partial decode.
 */

#ifndef BFSIM_HARNESS_WIRE_HH_
#define BFSIM_HARNESS_WIRE_HH_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/batch.hh"
#include "harness/experiment.hh"

namespace bfsim::harness::wire {

/** Append-only encoder producing a byte vector. */
class Writer
{
  public:
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    void f64(double value);
    void str(const std::string &value);
    /** Raw bytes behind a u32 size field. */
    void blob(const void *data, std::size_t len);

    /** Write a trivially-copyable stats struct as a sized blob. */
    template <typename T>
    void
    pod(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "wire pod encoding requires trivially copyable");
        blob(&value, sizeof value);
    }

    const std::vector<unsigned char> &bytes() const { return buffer; }
    std::vector<unsigned char> take() { return std::move(buffer); }

  private:
    std::vector<unsigned char> buffer;
};

/** Bounds-checked decoder over a byte span; throws SimError("wire"). */
class Reader
{
  public:
    Reader(const unsigned char *data, std::size_t len)
        : data(data), len(len)
    {}
    explicit Reader(const std::vector<unsigned char> &bytes)
        : Reader(bytes.data(), bytes.size())
    {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /** Read a sized blob into a trivially-copyable struct; the stored
     * size must equal sizeof(T) (else: version skew, decode error). */
    template <typename T>
    T
    pod()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "wire pod decoding requires trivially copyable");
        T value{};
        podInto(&value, sizeof value);
        return value;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return len - pos; }
    bool atEnd() const { return pos == len; }

  private:
    void need(std::size_t n) const;
    void podInto(void *out, std::size_t size);

    const unsigned char *data;
    std::size_t len;
    std::size_t pos = 0;
};

void encodeSingleResult(Writer &w, const SingleResult &result);
SingleResult decodeSingleResult(Reader &r);

void encodeMixResult(Writer &w, const MixResult &result);
MixResult decodeMixResult(Reader &r);

/**
 * A BatchItem decoded from the wire. The item's `single`/`mix` pointers
 * are left null — they must point at memo-cache storage, which only the
 * caller can arrange (adoptSingleResult / adoptMixResult under the
 * job's key); the payload travels alongside instead.
 */
struct DecodedItem
{
    BatchItem item;
    std::optional<SingleResult> single;
    std::optional<MixResult> mix;
};

/**
 * Encode a BatchItem, inlining the pointed-to Single/Mix result (when
 * present and the item did not fail).
 */
void encodeBatchItem(Writer &w, const BatchItem &item);
DecodedItem decodeBatchItem(Reader &r);

/**
 * Encode a BatchJob — label, workloads, prefetcher spec, priority and
 * the full RunOptions — so the sharded coordinator can ship jobs to
 * worker daemons and receive results computed from exactly the options
 * the client submitted. Kind::Custom jobs carry an opaque closure and
 * cannot cross a process boundary: encoding one throws SimError("wire")
 * (the coordinator runs them locally instead).
 *
 * The POD config structs (core::BFetchConfig, SampleConfig) ride as
 * sized blobs like the stats structs do: both ends of a fleet must run
 * the same build, and a version skew decodes as a clean wire error the
 * coordinator turns into a job failure, never silent option drift.
 */
void encodeBatchJob(Writer &w, const BatchJob &job);
BatchJob decodeBatchJob(Reader &r);

} // namespace bfsim::harness::wire

#endif // BFSIM_HARNESS_WIRE_HH_
