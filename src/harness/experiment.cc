#include "harness/experiment.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "sim/trace.hh"
#include "sim/trace_store.hh"

namespace bfsim::harness {

namespace {

/** The mutable process default behind defaultPredictorSpec(). */
std::string &
defaultPredictorStorage()
{
    static std::string spec = [] {
        const char *env = std::getenv("BFSIM_PREDICTOR");
        return std::string(env && *env ? env : "tournament");
    }();
    return spec;
}

std::mutex &
defaultPredictorMutex()
{
    static std::mutex mutex;
    return mutex;
}

} // namespace

std::string
defaultPredictorSpec()
{
    std::lock_guard<std::mutex> lock(defaultPredictorMutex());
    return defaultPredictorStorage();
}

void
setDefaultPredictorSpec(const std::string &spec)
{
    std::lock_guard<std::mutex> lock(defaultPredictorMutex());
    defaultPredictorStorage() = spec;
}

std::string
RunOptions::cacheKey() const
{
    std::ostringstream os;
    os << instructions << '/' << width << '/' << robSize << '/'
       << bpSizeScale << '/' << l3PerCoreBytes << '/'
       << bfetch.brtcEntries << '/' << bfetch.mhtEntries << '/'
       << bfetch.pathConfidenceThreshold << '/'
       << bfetch.perLoadThreshold << '/' << bfetch.maxLookaheadDepth
       << '/' << bfetch.enableLoopPrefetch << bfetch.enablePattPrefetch
       << bfetch.enablePerLoadFilter << bfetch.arfFromCommitOnly << '/'
       << deadlockCycles << '/' << predictor << sample.key();
    return os.str();
}

namespace {

sim::CoreConfig
makeCoreConfig(const std::string &kind, const RunOptions &options)
{
    sim::CoreConfig cfg;
    cfg.width = options.width;
    cfg.robSize = options.robSize;
    cfg.bpSizeScale = options.bpSizeScale;
    cfg.predictor = options.predictor;
    cfg.prefetcher = kind;
    cfg.bfetch = options.bfetch;
    cfg.deadlockCycles = options.deadlockCycles;
    return cfg;
}

mem::HierarchyConfig
makeHierarchyConfig(unsigned num_cores, const RunOptions &options)
{
    mem::HierarchyConfig cfg;
    cfg.numCores = num_cores;
    cfg.l3PerCoreBytes = options.l3PerCoreBytes;
    return cfg;
}

/**
 * Thread-safe, future-based memo cache. The first requester of a key
 * installs a shared_future and computes the value outside the lock;
 * concurrent requesters of the same key block on that future instead of
 * duplicating the computation. Values are immortal for the process
 * lifetime (barring clearMemoCaches), so returned references are stable.
 *
 * A failed computation does NOT poison the key: waiters that already
 * joined the in-flight future see the exception (the failure belongs to
 * their request too), but the owner then evicts the exceptional entry
 * under the lock, so the next requester recomputes. Without this, one
 * transient fault (injected or real) would pin every later lookup of
 * that key to the same stale exception.
 */
template <typename Result>
class FutureCache
{
  public:
    const Result &
    getOrCompute(const std::string &key,
                 const std::function<Result()> &compute, bool *computed)
    {
        std::shared_ptr<Entry> entry;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex);
            auto it = entries.find(key);
            if (it == entries.end()) {
                entry = std::make_shared<Entry>();
                entries.emplace(key, entry);
                owner = true;
            } else {
                entry = it->second;
            }
        }
        if (owner) {
            ++computes;
            try {
                entry->promise.set_value(compute());
            } catch (...) {
                entry->promise.set_exception(std::current_exception());
                std::lock_guard<std::mutex> lock(mutex);
                auto it = entries.find(key);
                // Evict only our own failed entry; a concurrent clear()
                // + recompute may already have replaced it.
                if (it != entries.end() && it->second == entry)
                    entries.erase(it);
            }
        } else {
            ++hits;
        }
        if (computed)
            *computed = owner;
        return entry->future.get();
    }

    /**
     * Install an already-computed value under `key` without running (or
     * counting) a compute. First writer wins: if the key already holds
     * an entry — cached or currently being computed — that entry's
     * value is returned and `value` is discarded; both sides are
     * products of the same deterministic simulation.
     */
    const Result &
    adopt(const std::string &key, Result value)
    {
        std::shared_ptr<Entry> entry;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(mutex);
            auto it = entries.find(key);
            if (it == entries.end()) {
                entry = std::make_shared<Entry>();
                entries.emplace(key, entry);
                owner = true;
            } else {
                entry = it->second;
            }
        }
        if (owner) {
            ++adopted;
            entry->promise.set_value(std::move(value));
        }
        return entry->future.get();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lock(mutex);
        entries.clear();
        computes = 0;
        hits = 0;
        adopted = 0;
    }

    /**
     * Visit every successfully computed value (blocks on in-flight
     * ones; entries whose computation failed are skipped).
     */
    void
    forEachValue(const std::function<void(const Result &)> &visit)
    {
        std::vector<std::shared_ptr<Entry>> snapshot;
        {
            std::lock_guard<std::mutex> lock(mutex);
            for (const auto &[key, entry] : entries)
                snapshot.push_back(entry);
        }
        for (const auto &entry : snapshot) {
            try {
                visit(entry->future.get());
            } catch (...) {
                // Failed computation racing its own eviction; skip.
            }
        }
    }

    std::uint64_t computeCount() const { return computes.load(); }
    std::uint64_t hitCount() const { return hits.load(); }
    std::uint64_t adoptCount() const { return adopted.load(); }

  private:
    struct Entry
    {
        Entry() : future(promise.get_future().share()) {}
        std::promise<Result> promise;
        std::shared_future<Result> future;
    };

    std::mutex mutex;
    std::map<std::string, std::shared_ptr<Entry>> entries;
    std::atomic<std::uint64_t> computes{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> adopted{0};
};

FutureCache<SingleResult> &
singleCache()
{
    static FutureCache<SingleResult> cache;
    return cache;
}

FutureCache<MixResult> &
mixCache()
{
    static FutureCache<MixResult> cache;
    return cache;
}

/**
 * Trace cache: (workload, instruction budget) -> shared TraceBuffer.
 * Creation (loading the workload's initial data image) happens inside
 * the future, so concurrent first requesters block instead of building
 * the multi-megabyte image twice; the functional execution itself is
 * lazy and serialized inside TraceBuffer::ensure.
 */
FutureCache<std::shared_ptr<sim::TraceBuffer>> &
traceCache()
{
    static FutureCache<std::shared_ptr<sim::TraceBuffer>> cache;
    return cache;
}

std::atomic<bool> &
traceCacheFlag()
{
    static std::atomic<bool> enabled{[] {
        const char *env = std::getenv("BFSIM_TRACE_CACHE");
        return !(env && std::string(env) == "0");
    }()};
    return enabled;
}

thread_local ThreadCacheCounters threadCacheCounters;

/**
 * Buffers eligible for persistence to the on-disk store, keyed by the
 * trace-cache key so each buffer registers once. Weak references: the
 * trace cache owns the buffers; persistTraceStore only saves the ones
 * still resident.
 */
struct StoreRegistry
{
    std::mutex mutex;
    std::map<std::string, std::pair<sim::trace_store::Key,
                                    std::weak_ptr<sim::TraceBuffer>>>
        entries;
};

StoreRegistry &
storeRegistry()
{
    static StoreRegistry registry;
    return registry;
}

void
registerForPersist(const std::string &cache_key,
                   sim::trace_store::Key key,
                   const std::shared_ptr<sim::TraceBuffer> &buffer)
{
    StoreRegistry &registry = storeRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.entries[cache_key] = {std::move(key), buffer};
}

/**
 * Produce one core's dynamic-op source for `workload_name`: a shared
 * trace cursor when the trace cache is on (TraceCapture for the
 * requester that created the buffer, TraceReplay for everyone reusing
 * it), a private live executor otherwise.
 *
 * The trace path is an optimization, not a correctness dependency: if
 * buffer creation or the initial-extension probe throws SimError, the
 * run degrades to a private LiveSource (bit-identical timing results)
 * and only records the fallback in the thread counters. Failures past
 * this probe — mid-run extension faults — propagate, because by then
 * the core is wired to the shared cursor and cannot be rewired.
 */
/**
 * Acquire the shared trace buffer for (workload, budget) through the
 * trace cache, seeding it from the on-disk store when one is
 * configured. Throws SimError when neither buffer creation nor its
 * first-extension probe succeeds.
 */
std::shared_ptr<sim::TraceBuffer>
acquireSharedBuffer(const std::string &workload_name,
                    const workloads::Workload &workload,
                    const RunOptions &options, bool *computed)
{
    std::string key =
        workload_name + '|' + std::to_string(options.instructions);
    return traceCache().getOrCompute(
        key,
        [&] {
            std::shared_ptr<sim::TraceBuffer> b;
            if (sim::trace_store::enabled()) {
                // Second tier: seed the buffer from an on-disk
                // artifact when a valid one exists (skipping
                // functional capture entirely), and register
                // the buffer for persistence either way so the
                // batch-end save writes new or grown streams.
                auto store_key = sim::trace_store::makeKey(
                    workload_name, options.instructions,
                    workload.program);
                auto artifact = sim::trace_store::openArtifact(
                    store_key, workload.program);
                b = artifact ? std::make_shared<sim::TraceBuffer>(
                                   workload.program, std::move(artifact))
                             : std::make_shared<sim::TraceBuffer>(
                                   workload.program);
                registerForPersist(key, std::move(store_key), b);
            } else {
                b = std::make_shared<sim::TraceBuffer>(workload.program);
            }
            // Probe the first extension now, while falling back
            // to live execution is still possible.
            b->ensure(1);
            return b;
        },
        computed);
}

std::unique_ptr<sim::DynOpSource>
makeSource(const std::string &workload_name, const RunOptions &options)
{
    const workloads::Workload &workload =
        workloads::workloadByName(workload_name);
    if (!traceCacheEnabled())
        return std::make_unique<sim::LiveSource>(workload.program);

    try {
        bool computed = false;
        std::shared_ptr<sim::TraceBuffer> buffer = acquireSharedBuffer(
            workload_name, workload, options, &computed);
        if (computed) {
            ++threadCacheCounters.traceMisses;
            return std::make_unique<sim::TraceCapture>(std::move(buffer));
        }
        ++threadCacheCounters.traceHits;
        return std::make_unique<sim::TraceReplay>(std::move(buffer));
    } catch (const SimError &error) {
        ++threadCacheCounters.traceFallbacks;
        warn(std::string("trace cache unavailable for ") + workload_name +
             " (" + error.what() + "); falling back to live execution");
        return std::make_unique<sim::LiveSource>(workload.program);
    }
}

/**
 * Per-run producer of bounded per-window op sources over one
 * workload's stream (see harness/sampling.hh). Prefers the disk tier —
 * a private seekable v2 artifact reader per window, which makes the
 * skipped instructions between windows genuinely free — and falls back
 * to bounded cursors over the shared (or, with the trace cache off, a
 * run-private) TraceBuffer, which materialises ops up to each window's
 * end by sequential decode or live execution. Both tiers deliver
 * bit-identical op values at identical absolute positions.
 */
class WindowSourceFactory
{
  public:
    WindowSourceFactory(const std::string &workload_name,
                        const RunOptions &options)
        : name(workload_name),
          workload(workloads::workloadByName(workload_name)),
          options(options)
    {
        if (traceCacheEnabled() && sim::trace_store::enabled()) {
            storeKey = sim::trace_store::makeKey(
                name, options.instructions, workload.program);
            haveStoreKey = true;
            // One validated open per factory; every window clones this
            // reader (a fresh cursor over the shared mmap) instead of
            // re-opening and re-validating the file per window.
            metaReader = sim::trace_store::openArtifact(
                storeKey, workload.program);
        }
        // Resolve the buffer tier eagerly so cache hit/miss accounting
        // lands on the requesting thread, exactly like a full run.
        if (traceCacheEnabled()) {
            try {
                bool computed = false;
                buffer = acquireSharedBuffer(name, workload, options,
                                             &computed);
                if (computed)
                    ++threadCacheCounters.traceMisses;
                else
                    ++threadCacheCounters.traceHits;
            } catch (const SimError &error) {
                ++threadCacheCounters.traceFallbacks;
                warn(std::string("trace cache unavailable for ") + name +
                     " (" + error.what() +
                     "); sampling from a private capture");
            }
        }
        if (!buffer)
            buffer = std::make_shared<sim::TraceBuffer>(workload.program);
    }

    /**
     * A source for ops [begin, end). `allow_artifact` false forces the
     * buffer tier (the retry path after a mid-window decode failure).
     * `artifact_tier` reports which tier served the window, for the
     * fast-forward accounting in SampledStats.
     */
    std::unique_ptr<sim::DynOpSource>
    make(std::uint64_t begin, std::uint64_t end, bool allow_artifact,
         bool &artifact_tier)
    {
        artifact_tier = false;
        if (metaReader && allow_artifact && metaReader->seekable() &&
            metaReader->opCount() >= end) {
            try {
                auto source =
                    std::make_unique<sim::ArtifactWindowSource>(
                        workload.program, metaReader->clone(), begin,
                        end);
                artifact_tier = true;
                return source;
            } catch (const SimError &) {
                // Window construction failed; use the buffer tier.
            }
        }
        return std::make_unique<sim::TraceWindowReplay>(buffer, begin,
                                                        end);
    }

    /**
     * The newest architectural checkpoint at-or-before `begin`
     * (ckptWarm mode). On the disk tier the buffer adopted the
     * artifact's records at construction, so this costs a binary
     * search; on the memory tier capture-time records appear as the
     * stream materialises, so a miss first ensures the prefix — work a
     * buffer-tier window performs anyway — and retries. Deterministic
     * regardless of window execution order. Returns false when no
     * record covers `begin` (v1 artifacts, op 0, early halt); the
     * window then runs cold exactly as non-ckpt mode would.
     */
    bool
    checkpointFor(std::uint64_t begin, sim::trace_store::Checkpoint &out)
    {
        if (begin == 0)
            return false;
        if (buffer->checkpointAtOrBefore(begin, out))
            return true;
        try {
            buffer->ensure(begin + 1);
        } catch (const SimError &) {
            return false;
        }
        return buffer->checkpointAtOrBefore(begin, out);
    }

  private:
    std::string name;
    const workloads::Workload &workload;
    RunOptions options;
    sim::trace_store::Key storeKey{};
    bool haveStoreKey = false;
    std::unique_ptr<sim::trace_store::ArtifactReader> metaReader;
    std::shared_ptr<sim::TraceBuffer> buffer;
};

void
accumulateBFetchStats(core::BFetchStats &into,
                      const core::BFetchStats &from)
{
    into.lookaheadWalks += from.lookaheadWalks;
    into.blocksVisited += from.blocksVisited;
    into.prefetchesGenerated += from.prefetchesGenerated;
    into.pattPrefetches += from.pattPrefetches;
    into.loopPrefetches += from.loopPrefetches;
    into.filteredByPerLoad += from.filteredByPerLoad;
    into.stopsConfidence += from.stopsConfidence;
    into.stopsBrtcMiss += from.stopsBrtcMiss;
    into.stopsDepth += from.stopsDepth;
    into.mhtLearnUpdates += from.mhtLearnUpdates;
    into.brtcUpdates += from.brtcUpdates;
}

/** Per-window simulation output collected before aggregation. */
struct WindowOutput
{
    sim::CmpResult result;
    core::BFetchStats bfetch{};
    bool haveBFetch = false;
    double predictorKB = 0.0;
    /** Prefix ops skipped by artifact chunk-index seeks (all cores). */
    std::uint64_t ffSkippedOps = 0;
    /** Prefix ops demanded sequentially on the buffer tier (all cores). */
    std::uint64_t ffOps = 0;
    /** Cores restored from a checkpoint in this window. */
    std::uint64_t checkpointHits = 0;
};

/**
 * Simulate every scheduled window of a (possibly multi-core) run and
 * return the outputs in schedule order. Each window builds a fresh Cmp
 * whose cold structures the warmup region heals; windows execute in
 * parallel when options.sample.jobs > 1, and a window whose disk-tier
 * source fails mid-decode is re-run once through the buffer tier
 * (which degrades to live capture bit-identically).
 */
std::vector<WindowOutput>
runWindows(const std::vector<SampleWindow> &schedule,
           std::vector<WindowSourceFactory> &factories,
           const std::string &kind, const RunOptions &options)
{
    const unsigned n = static_cast<unsigned>(factories.size());
    // Multi-core windows provision ops for the contention tail frozen
    // cores keep executing; single-core windows stop at the target.
    const std::uint64_t tail =
        n > 1 ? sim::Cmp::contentionTailFactor : 1;

    std::vector<WindowOutput> outputs(schedule.size());
    forEachWindow(
        schedule.size(), options.sample.jobs, [&](std::size_t w) {
            const SampleWindow &win = schedule[w];
            std::uint64_t end =
                win.begin + (win.warmup + win.measure) * tail;
            auto attempt = [&](bool allow_artifact) {
                WindowOutput out;
                std::vector<sim::CoreConfig> cfgs(
                    n, makeCoreConfig(kind, options));
                std::vector<std::unique_ptr<sim::DynOpSource>> sources;
                for (unsigned c = 0; c < n; ++c) {
                    bool artifact_tier = false;
                    sources.push_back(factories[c].make(
                        win.begin, end, allow_artifact,
                        artifact_tier));
                    // Fast-forward accounting: a seekable window skips
                    // every whole chunk before `begin` outright; a
                    // buffer-tier window demands the prefix be
                    // materialised sequentially. Tier choice is
                    // deterministic, so these sums are too.
                    if (artifact_tier) {
                        out.ffSkippedOps +=
                            (win.begin / sim::TraceBuffer::chunkOps) *
                            sim::TraceBuffer::chunkOps;
                    } else {
                        out.ffOps += win.begin;
                    }
                }
                // Checkpoint-restored mode: install each core's newest
                // at-or-before-begin L1-D tag snapshot as functional
                // warmup before the window's first cycle.
                sim::WindowWarmup warm;
                bool have_warm = false;
                if (options.sample.ckptWarm) {
                    warm.l1Tags.resize(n);
                    warm.snapshotWays =
                        sim::trace_store::checkpointCacheWays;
                    for (unsigned c = 0; c < n; ++c) {
                        sim::trace_store::Checkpoint ckpt;
                        if (factories[c].checkpointFor(win.begin,
                                                       ckpt)) {
                            warm.l1Tags[c] = std::move(ckpt.cacheTags);
                            ++out.checkpointHits;
                            have_warm = true;
                        }
                    }
                }
                sim::Cmp cmp(cfgs, std::move(sources),
                             makeHierarchyConfig(n, options));
                out.result = cmp.runWindow(win.warmup, win.measure,
                                           have_warm ? &warm : nullptr);
                if (const core::BFetchEngine *engine =
                        cmp.core(0).bfetchEngine()) {
                    out.bfetch = engine->stats();
                    out.haveBFetch = true;
                }
                out.predictorKB =
                    static_cast<double>(
                        cmp.core(0).predictor().storageBits()) /
                    8.0 / 1024.0;
                return out;
            };
            try {
                outputs[w] = attempt(true);
            } catch (const SimError &) {
                outputs[w] = attempt(false);
            }
        });
    return outputs;
}

SingleResult
runSampledSingle(const std::string &workload_name,
                 const std::string &kind, const RunOptions &options)
{
    std::vector<SampleWindow> schedule =
        sampleSchedule(options.instructions, options.sample);
    std::vector<WindowSourceFactory> factories;
    factories.emplace_back(workload_name, options);

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<WindowOutput> outputs =
        runWindows(schedule, factories, kind, options);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;

    SingleResult result;
    result.workload = workload_name;
    result.prefetcher = kind;
    result.predictor = options.predictor;
    std::vector<std::uint64_t> window_cycles;
    std::vector<std::uint64_t> window_insts;
    core::BFetchStats bfetch_sum;
    bool have_bfetch = false;
    for (const WindowOutput &out : outputs) {
        const sim::CoreStats &core = out.result.cores.at(0);
        sim::accumulateCoreStats(result.core, core);
        mem::accumulateMemStats(result.mem, out.result.memStats.at(0));
        result.simInstructions += out.result.totalRetired;
        window_cycles.push_back(core.cycles);
        window_insts.push_back(core.instructions);
        if (out.haveBFetch) {
            accumulateBFetchStats(bfetch_sum, out.bfetch);
            have_bfetch = true;
        }
    }
    result.sampled = summarizeWindows(schedule, window_cycles,
                                      window_insts,
                                      options.instructions);
    for (const WindowOutput &out : outputs) {
        result.sampled.ffSkippedOps += out.ffSkippedOps;
        result.sampled.ffInstructions += out.ffOps;
        result.sampled.checkpointHits += out.checkpointHits;
    }
    result.simSeconds = wall.count();
    if (result.simSeconds > 0.0) {
        result.mips = static_cast<double>(result.simInstructions) /
                      result.simSeconds / 1e6;
    }
    if (have_bfetch) {
        result.bfetch = bfetch_sum;
        result.avgLookaheadDepth =
            bfetch_sum.lookaheadWalks
                ? static_cast<double>(bfetch_sum.blocksVisited) /
                      static_cast<double>(bfetch_sum.lookaheadWalks)
                : 0.0;
    }
    result.branchPredictorKB = outputs.front().predictorKB;
    return result;
}

MixResult
runSampledMix(const std::vector<std::string> &workload_names,
              const std::string &kind, const RunOptions &options)
{
    const unsigned n = static_cast<unsigned>(workload_names.size());
    std::vector<SampleWindow> schedule =
        sampleSchedule(options.instructions, options.sample);
    std::vector<WindowSourceFactory> factories;
    factories.reserve(n);
    for (const auto &name : workload_names)
        factories.emplace_back(name, options);

    auto wall_start = std::chrono::steady_clock::now();
    std::vector<WindowOutput> outputs =
        runWindows(schedule, factories, kind, options);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;

    MixResult result;
    result.workloads = workload_names;
    result.prefetcher = kind;
    result.predictor = options.predictor;
    result.cores.resize(n);
    result.mem.resize(n);
    std::vector<std::uint64_t> window_cycles;
    std::vector<std::uint64_t> window_insts;
    for (const WindowOutput &out : outputs) {
        std::uint64_t cyc = 0;
        std::uint64_t ins = 0;
        for (unsigned c = 0; c < n; ++c) {
            const sim::CoreStats &core = out.result.cores.at(c);
            sim::accumulateCoreStats(result.cores[c], core);
            mem::accumulateMemStats(result.mem[c],
                                    out.result.memStats.at(c));
            cyc += core.cycles;
            ins += core.instructions;
        }
        result.simInstructions += out.result.totalRetired;
        window_cycles.push_back(cyc);
        window_insts.push_back(ins);
    }
    result.sampled = summarizeWindows(schedule, window_cycles,
                                      window_insts,
                                      options.instructions);
    for (const WindowOutput &out : outputs) {
        result.sampled.ffSkippedOps += out.ffSkippedOps;
        result.sampled.ffInstructions += out.ffOps;
        result.sampled.checkpointHits += out.checkpointHits;
    }
    result.simSeconds = wall.count();
    if (result.simSeconds > 0.0) {
        result.mips = static_cast<double>(result.simInstructions) /
                      result.simSeconds / 1e6;
    }

    // Weighted speedup against single-application no-prefetch IPCs;
    // options carries the sample config, so the baselines are sampled
    // with the identical window schedule (consistent estimator on both
    // sides of the ratio).
    double ws = 0.0;
    for (unsigned c = 0; c < n; ++c) {
        const SingleResult &single =
            runSingleCached(workload_names[c], "None", options);
        ws += result.cores[c].ipc / single.core.ipc;
    }
    result.weightedSpeedup = ws;
    return result;
}

/** The memo key runSingleCached and adoptSingleResult agree on. */
std::string
singleMemoKey(const std::string &workload_name, const std::string &kind,
              const RunOptions &options)
{
    return workload_name + '|' + sim::prefetcherName(kind) + '|' +
           options.cacheKey();
}

/** The memo key runMixCached and adoptMixResult agree on. */
std::string
mixMemoKey(const std::vector<std::string> &workload_names,
           const std::string &kind, const RunOptions &options)
{
    std::string key = sim::prefetcherName(kind) + '|' +
                      options.cacheKey();
    for (const auto &name : workload_names)
        key += '|' + name;
    return key;
}

} // namespace

SingleResult
runSingle(const std::string &workload_name, const std::string &kind,
          const RunOptions &options)
{
    if (options.sample.enabled && options.instructions > 0)
        return runSampledSingle(workload_name, kind, options);

    std::vector<sim::CoreConfig> core_cfgs{makeCoreConfig(kind, options)};
    std::vector<std::unique_ptr<sim::DynOpSource>> sources;
    sources.push_back(makeSource(workload_name, options));
    sim::Cmp cmp(core_cfgs, std::move(sources),
                 makeHierarchyConfig(1, options));
    auto wall_start = std::chrono::steady_clock::now();
    sim::CmpResult run = cmp.run(options.instructions);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;

    SingleResult result;
    result.workload = workload_name;
    result.prefetcher = kind;
    result.predictor = options.predictor;
    result.core = run.cores.at(0);
    result.mem = run.memStats.at(0);
    result.simSeconds = wall.count();
    result.simInstructions = run.totalRetired;
    if (result.simSeconds > 0.0) {
        result.mips = static_cast<double>(run.totalRetired) /
                      result.simSeconds / 1e6;
    }
    if (const core::BFetchEngine *engine = cmp.core(0).bfetchEngine()) {
        result.bfetch = engine->stats();
        result.avgLookaheadDepth = engine->averageLookaheadDepth();
    }
    result.branchPredictorKB =
        static_cast<double>(cmp.core(0).predictor().storageBits()) /
        8.0 / 1024.0;
    return result;
}

const SingleResult &
runSingleCached(const std::string &workload_name, const std::string &kind,
                const RunOptions &options, bool *computed)
{
    return singleCache().getOrCompute(
        singleMemoKey(workload_name, kind, options),
        [&] { return runSingle(workload_name, kind, options); },
        computed);
}

const SingleResult &
adoptSingleResult(const std::string &workload_name,
                  const std::string &kind, const RunOptions &options,
                  SingleResult result)
{
    return singleCache().adopt(singleMemoKey(workload_name, kind, options),
                               std::move(result));
}

MixResult
runMix(const std::vector<std::string> &workload_names,
       const std::string &kind, const RunOptions &options)
{
    if (workload_names.empty())
        throw SimError("harness", "runMix requires at least one workload");

    if (options.sample.enabled && options.instructions > 0)
        return runSampledMix(workload_names, kind, options);

    const unsigned n = static_cast<unsigned>(workload_names.size());
    std::vector<sim::CoreConfig> core_cfgs(n,
                                           makeCoreConfig(kind, options));
    std::vector<std::unique_ptr<sim::DynOpSource>> sources;
    for (const auto &name : workload_names)
        sources.push_back(makeSource(name, options));

    sim::Cmp cmp(core_cfgs, std::move(sources),
                 makeHierarchyConfig(n, options));
    auto wall_start = std::chrono::steady_clock::now();
    sim::CmpResult run = cmp.run(options.instructions);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - wall_start;

    MixResult result;
    result.workloads = workload_names;
    result.prefetcher = kind;
    result.predictor = options.predictor;
    result.cores = run.cores;
    result.mem = run.memStats;
    result.simSeconds = wall.count();
    result.simInstructions = run.totalRetired;
    if (result.simSeconds > 0.0) {
        result.mips = static_cast<double>(run.totalRetired) /
                      result.simSeconds / 1e6;
    }

    // Weighted speedup against single-application no-prefetch IPCs
    // (paper V-A): sum_i IPC_multi(i) / IPC_single(i).
    double ws = 0.0;
    for (unsigned c = 0; c < n; ++c) {
        const SingleResult &single =
            runSingleCached(workload_names[c], "None", options);
        ws += run.cores[c].ipc / single.core.ipc;
    }
    result.weightedSpeedup = ws;
    return result;
}

const MixResult &
runMixCached(const std::vector<std::string> &workload_names,
             const std::string &kind, const RunOptions &options,
             bool *computed)
{
    return mixCache().getOrCompute(
        mixMemoKey(workload_names, kind, options),
        [&] { return runMix(workload_names, kind, options); },
        computed);
}

const MixResult &
adoptMixResult(const std::vector<std::string> &workload_names,
               const std::string &kind, const RunOptions &options,
               MixResult result)
{
    return mixCache().adopt(mixMemoKey(workload_names, kind, options),
                            std::move(result));
}

MemoStats
memoStats()
{
    MemoStats stats;
    stats.singleComputes = singleCache().computeCount();
    stats.singleHits = singleCache().hitCount();
    stats.mixComputes = mixCache().computeCount();
    stats.mixHits = mixCache().hitCount();
    stats.singleAdopts = singleCache().adoptCount();
    stats.mixAdopts = mixCache().adoptCount();
    return stats;
}

void
clearMemoCaches()
{
    singleCache().clear();
    mixCache().clear();
}

bool
traceCacheEnabled()
{
    return traceCacheFlag().load(std::memory_order_relaxed);
}

void
setTraceCacheEnabled(bool enabled)
{
    traceCacheFlag().store(enabled, std::memory_order_relaxed);
}

TraceCacheStats
traceCacheStats()
{
    TraceCacheStats stats;
    stats.buffers = traceCache().computeCount();
    stats.attaches = traceCache().hitCount();
    traceCache().forEachValue(
        [&stats](const std::shared_ptr<sim::TraceBuffer> &buffer) {
            stats.opsExecuted += buffer->size();
            stats.residentBytes += buffer->memoryBytes();
            stats.captureSeconds += buffer->captureSeconds();
        });
    return stats;
}

void
clearTraceCache()
{
    traceCache().clear();
    StoreRegistry &registry = storeRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.entries.clear();
}

std::size_t
persistTraceStore()
{
    if (!sim::trace_store::enabled())
        return 0;
    std::vector<std::pair<sim::trace_store::Key,
                          std::shared_ptr<sim::TraceBuffer>>>
        resident;
    {
        StoreRegistry &registry = storeRegistry();
        std::lock_guard<std::mutex> lock(registry.mutex);
        for (const auto &[cache_key, entry] : registry.entries) {
            if (auto buffer = entry.second.lock())
                resident.emplace_back(entry.first, std::move(buffer));
        }
    }
    std::size_t written = 0;
    for (const auto &[key, buffer] : resident) {
        if (sim::trace_store::saveArtifact(key, *buffer))
            ++written;
    }
    return written;
}

void
warmSharedTrace(const std::string &workload_name,
                const RunOptions &options)
{
    if (!traceCacheEnabled())
        return;
    try {
        const workloads::Workload &workload =
            workloads::workloadByName(workload_name);
        bool computed = false;
        std::shared_ptr<sim::TraceBuffer> buffer = acquireSharedBuffer(
            workload_name, workload, options, &computed);
        if (computed)
            ++threadCacheCounters.traceMisses;
        buffer->ensure(options.instructions);
    } catch (const SimError &) {
        // Warming is purely an optimization: the run that needs this
        // trace will retry acquisition itself and fall back to a live
        // source with bit-identical results.
    }
}

ThreadCacheCounters
takeThreadCacheCounters()
{
    ThreadCacheCounters counters = threadCacheCounters;
    threadCacheCounters = ThreadCacheCounters{};
    sim::trace_store::ThreadCounters disk =
        sim::trace_store::takeThreadCounters();
    counters.traceDiskHits += disk.hits;
    counters.traceDiskMisses += disk.misses;
    counters.traceFallbacks += disk.fallbacks;
    return counters;
}

double
speedupVsBaseline(const std::string &workload_name,
                  const std::string &kind, const RunOptions &options)
{
    const SingleResult &base =
        runSingleCached(workload_name, "None", options);
    const SingleResult &with = runSingleCached(workload_name, kind,
                                               options);
    return with.core.ipc / base.core.ipc;
}

std::uint64_t
benchInstructionBudget(std::uint64_t fallback)
{
    // BFSIM_INSTRUCTIONS is the documented knob; BFSIM_INSTS remains
    // honored as the historical alias.
    for (const char *name : {"BFSIM_INSTRUCTIONS", "BFSIM_INSTS"}) {
        const char *env = std::getenv(name);
        if (!env)
            continue;
        char *end = nullptr;
        unsigned long long value = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && value > 0)
            return value;
        warn(std::string("ignoring malformed ") + name + " value");
    }
    return fallback;
}

} // namespace bfsim::harness
