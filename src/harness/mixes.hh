/**
 * @file
 * Multiprogrammed mix selection via the Frequency-of-Access (FOA)
 * inter-thread contention model of Chandra et al. (HPCA'05), which the
 * paper uses to pick its 29 two-app and 29 four-app mixes with the
 * highest shared-cache contention (V-A).
 *
 * FOA estimates an application's pressure on the shared cache by its
 * access frequency: we profile each workload's LLC (L3) accesses per
 * kilo-instruction on a short single-core no-prefetch run, score each
 * candidate mix by the summed frequencies of its members, and keep the
 * top 29 mixes per mix size.
 */

#ifndef BFSIM_HARNESS_MIXES_HH_
#define BFSIM_HARNESS_MIXES_HH_

#include <string>
#include <vector>

namespace bfsim::harness {

/** One candidate mix with its contention score. */
struct Mix
{
    std::vector<std::string> workloads;
    double contentionScore = 0.0;
};

/**
 * Per-workload FOA profile: shared-LLC accesses per kilo-instruction
 * (memoized; profiling runs are short).
 */
double foaProfile(const std::string &workload_name);

/**
 * The `count` highest-contention mixes of `size` workloads drawn from
 * the full suite (paper: size 2 and 4, count 29). Deterministic.
 */
std::vector<Mix> selectMixes(unsigned size, unsigned count = 29);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_MIXES_HH_
