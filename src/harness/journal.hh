/**
 * @file
 * Crash-safe sweep journal: checkpoint/resume for runBatch.
 *
 * A sweep pointed at a journal directory (BatchOptions::journalDir /
 * --journal / BFSIM_JOURNAL_DIR) appends one record per completed job;
 * a rerun of the same jobs against the same directory restores those
 * results — adopted into the memo cache, marked BatchItem::journaled —
 * instead of recomputing them. Kill the process at ANY point (including
 * SIGKILL, which no handler can soften) and the journal holds exactly
 * the jobs that finished: resume recomputes only what was in flight.
 *
 * Durability model, chosen for the failure it must survive (a dying
 * *writer*):
 *  - one file per record, so records never share a write and a torn
 *    record can never take a committed neighbour with it;
 *  - each record is written to a pid-suffixed temp name, fsync'd,
 *    rename(2)'d into place, and the directory fsync'd — the record is
 *    either completely there under its final name or not there at all;
 *  - every record carries magic, version and a trailing CRC-32C, so a
 *    record from a stale layout or a corrupted disk is *skipped* (and
 *    counted) rather than trusted.
 *
 * Identity: records are keyed by FNV-1a-64 of the job's semantic
 * identity — kind, label, prefetcher spec, workloads and the full
 * RunOptions cache key — so a journal written for one sweep
 * configuration is inert for any other. Custom jobs are identified by
 * label alone (their body is opaque); reusing a label across different
 * custom computations in one journal directory is on the caller.
 * Failed jobs are never journaled: a resume retries them.
 */

#ifndef BFSIM_HARNESS_JOURNAL_HH_
#define BFSIM_HARNESS_JOURNAL_HH_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/batch.hh"

namespace bfsim::harness {

class SweepJournal
{
  public:
    /**
     * Open (creating if needed) the journal at `directory` and load
     * every valid record. An empty directory string disables the
     * journal: restore() never matches, append() is a no-op.
     * Directory-creation failure throws SimError("journal"); corrupt
     * or foreign record files are skipped and counted, never fatal.
     */
    explicit SweepJournal(std::string directory);

    bool enabled() const { return !dir.empty(); }
    const std::string &directory() const { return dir; }

    /** The human-readable identity a job is journaled under. */
    static std::string jobKeyString(const BatchJob &job);
    /** FNV-1a-64 of jobKeyString (the record filename stem). */
    static std::uint64_t jobKey(const BatchJob &job);

    /**
     * If the journal holds a record for `job`, rebuild its BatchItem —
     * adopting the embedded Single/Mix result into the memo cache so
     * `item.single`/`item.mix` get stable storage and later lookups hit
     * — set `item.journaled`, and return true. False: not recorded (or
     * the record was corrupt), caller computes.
     */
    bool restore(const BatchJob &job, BatchItem &item);

    /**
     * Persist a completed item (crash-safe; see file comment). Failed
     * items are refused. Returns false when disabled, refused, or the
     * write failed (a journal write failure degrades the journal, never
     * the sweep — the item simply gets recomputed on resume).
     */
    bool append(const BatchJob &job, const BatchItem &item);

    /** Valid records found by the constructor's load. */
    std::size_t loadedCount() const { return loaded; }
    /** Records append() durably wrote this run. */
    std::size_t writtenCount() const { return written; }
    /** Record files skipped as corrupt/foreign during load. */
    std::size_t corruptCount() const { return corrupt; }
    /** Jobs restore() satisfied this run. */
    std::size_t restoredCount() const { return restored; }

  private:
    std::string dir;
    std::mutex mutex;
    /** jobKey -> (key string, encodeBatchItem payload). */
    std::map<std::uint64_t,
             std::pair<std::string, std::vector<unsigned char>>>
        records;
    std::size_t loaded = 0;
    std::size_t written = 0;
    std::size_t corrupt = 0;
    std::size_t restored = 0;
};

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_JOURNAL_HH_
