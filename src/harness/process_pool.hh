/**
 * @file
 * Process-isolated batch backend (--isolate=process / BFSIM_ISOLATE):
 * runs batch jobs in a pool of forked worker processes so that a job
 * that segfaults, gets OOM-killed, trips a sanitizer or wedges costs
 * one worker — never the sweep.
 *
 * Topology: the supervisor (the calling process) forks N workers after
 * the workload suite is built, so the multi-megabyte suite and any
 * journal-adopted memo entries are shared copy-on-write. Each worker
 * gets two pipes: jobs travel down as length-prefixed frames carrying a
 * job index (fork shares the jobs vector itself — bodies of Custom jobs
 * included), results travel up as serialized BatchItems
 * (harness/wire). One job is in flight per worker at a time.
 *
 * Supervision (single-threaded in the parent, fork-safe by
 * construction):
 *  - worker death from ANY cause — signal, nonzero exit, sanitizer
 *    abort — is detected as pipe EOF, reaped with waitpid and converted
 *    into a structured outcome for the in-flight job
 *    (common/signal_util's describeWaitStatus names the cause);
 *  - a crashed job is redispatched to a respawned worker until it has
 *    killed `poisonThreshold` workers, at which point it is quarantined
 *    as poison: failed, with its crash history in BatchItem::crashes;
 *  - crashed workers respawn with exponential backoff (20ms..1s),
 *    reset on the next successful result;
 *  - a worker that sends no frame (results *or* ~4/s heartbeats) for
 *    heartbeatTimeoutSeconds while a job is in flight is declared
 *    wedged, killed, and handled as a crash;
 *  - a job past jobDeadlineSeconds (measured from its first dispatch,
 *    spanning crash retries) is failed like the in-process backend
 *    fails it, and its worker is killed and respawned — no zombie
 *    threads, the process variant simply reclaims the worker;
 *  - SIGINT/SIGTERM drain gracefully: in-flight jobs finish and
 *    publish (and journal), queued jobs fail as "interrupted"; a second
 *    signal aborts in-flight jobs too. Either way the caller still
 *    writes its report, and a journaled sweep resumes where it stopped.
 */

#ifndef BFSIM_HARNESS_PROCESS_POOL_HH_
#define BFSIM_HARNESS_PROCESS_POOL_HH_

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/batch.hh"

namespace bfsim::harness {

/** Supervision knobs, mirroring the BatchOptions fields of the same
 * names (runBatch translates; see batch.hh for semantics). */
struct ProcessPoolOptions
{
    unsigned workers = 1;
    unsigned retries = 0;
    bool failFast = false;
    double jobDeadlineSeconds = 0.0;
    unsigned poisonThreshold = 3;
    double heartbeatTimeoutSeconds = 30.0;
};

/** Invoked in the supervisor as each job resolves (any outcome). */
using ProcessPublish =
    std::function<void(std::size_t index, BatchItem item)>;

/**
 * Run the `pending` indices of `jobs` under process isolation. Every
 * pending job is published exactly once. Single/Mix results are adopted
 * into this process's memo caches before publication, so item pointers
 * have memo-cache lifetime and post-batch table assembly sees hits, as
 * if the jobs had run in-process. Returns true when a shutdown signal
 * interrupted the batch (some jobs failed as "interrupted").
 */
bool runProcessPool(const std::vector<BatchJob> &jobs,
                    const std::vector<std::size_t> &pending,
                    const ProcessPoolOptions &options,
                    const ProcessPublish &publish);

} // namespace bfsim::harness

#endif // BFSIM_HARNESS_PROCESS_POOL_HH_
