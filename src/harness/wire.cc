#include "harness/wire.hh"

#include <cstring>

#include "common/sim_error.hh"

namespace bfsim::harness::wire {

namespace {

/** Sanity bound on decoded counts/strings: no result embeds anything
 * close to this, so larger values mean a corrupt or truncated stream. */
constexpr std::uint32_t maxWireCount = 1u << 24;

[[noreturn]] void
corrupt(const char *what)
{
    throw SimError("wire", std::string("corrupt payload: ") + what);
}

} // namespace

void
Writer::u8(std::uint8_t value)
{
    buffer.push_back(value);
}

void
Writer::u32(std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        buffer.push_back(static_cast<unsigned char>(value >> (i * 8)));
}

void
Writer::u64(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer.push_back(static_cast<unsigned char>(value >> (i * 8)));
}

void
Writer::f64(double value)
{
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof value);
    std::memcpy(&bits, &value, sizeof bits);
    u64(bits);
}

void
Writer::str(const std::string &value)
{
    blob(value.data(), value.size());
}

void
Writer::blob(const void *data, std::size_t len)
{
    u32(static_cast<std::uint32_t>(len));
    const auto *bytes = static_cast<const unsigned char *>(data);
    buffer.insert(buffer.end(), bytes, bytes + len);
}

void
Reader::need(std::size_t n) const
{
    if (len - pos < n)
        corrupt("truncated");
}

std::uint8_t
Reader::u8()
{
    need(1);
    return data[pos++];
}

std::uint32_t
Reader::u32()
{
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(data[pos++]) << (i * 8);
    return value;
}

std::uint64_t
Reader::u64()
{
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(data[pos++]) << (i * 8);
    return value;
}

double
Reader::f64()
{
    std::uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof value);
    return value;
}

std::string
Reader::str()
{
    std::uint32_t size = u32();
    if (size > maxWireCount)
        corrupt("oversized string");
    need(size);
    std::string value(reinterpret_cast<const char *>(data + pos), size);
    pos += size;
    return value;
}

void
Reader::podInto(void *out, std::size_t size)
{
    std::uint32_t stored = u32();
    if (stored != size)
        corrupt("stats struct size mismatch (stale or foreign payload)");
    need(size);
    std::memcpy(out, data + pos, size);
    pos += size;
}

namespace {

// One shared guard for every struct the pod path moves: the format
// depends on these being plain bytes.
static_assert(std::is_trivially_copyable_v<sim::CoreStats>);
static_assert(std::is_trivially_copyable_v<mem::CoreMemStats>);
static_assert(std::is_trivially_copyable_v<core::BFetchStats>);
static_assert(std::is_trivially_copyable_v<SampledStats>);

} // namespace

void
encodeSingleResult(Writer &w, const SingleResult &result)
{
    w.str(result.workload);
    w.str(result.prefetcher);
    w.str(result.predictor);
    w.pod(result.core);
    w.pod(result.mem);
    w.pod(result.bfetch);
    w.f64(result.avgLookaheadDepth);
    w.f64(result.branchPredictorKB);
    w.f64(result.simSeconds);
    w.u64(result.simInstructions);
    w.f64(result.mips);
    w.pod(result.sampled);
}

SingleResult
decodeSingleResult(Reader &r)
{
    SingleResult result;
    result.workload = r.str();
    result.prefetcher = r.str();
    result.predictor = r.str();
    result.core = r.pod<sim::CoreStats>();
    result.mem = r.pod<mem::CoreMemStats>();
    result.bfetch = r.pod<core::BFetchStats>();
    result.avgLookaheadDepth = r.f64();
    result.branchPredictorKB = r.f64();
    result.simSeconds = r.f64();
    result.simInstructions = r.u64();
    result.mips = r.f64();
    result.sampled = r.pod<SampledStats>();
    return result;
}

void
encodeMixResult(Writer &w, const MixResult &result)
{
    w.u32(static_cast<std::uint32_t>(result.workloads.size()));
    for (const std::string &name : result.workloads)
        w.str(name);
    w.str(result.prefetcher);
    w.str(result.predictor);
    w.u32(static_cast<std::uint32_t>(result.cores.size()));
    for (const sim::CoreStats &core : result.cores)
        w.pod(core);
    w.u32(static_cast<std::uint32_t>(result.mem.size()));
    for (const mem::CoreMemStats &mem : result.mem)
        w.pod(mem);
    w.f64(result.weightedSpeedup);
    w.f64(result.simSeconds);
    w.u64(result.simInstructions);
    w.f64(result.mips);
    w.pod(result.sampled);
}

MixResult
decodeMixResult(Reader &r)
{
    MixResult result;
    std::uint32_t n = r.u32();
    if (n > maxWireCount)
        corrupt("oversized workload list");
    result.workloads.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        result.workloads.push_back(r.str());
    result.prefetcher = r.str();
    result.predictor = r.str();
    n = r.u32();
    if (n > maxWireCount)
        corrupt("oversized core-stats list");
    result.cores.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        result.cores.push_back(r.pod<sim::CoreStats>());
    n = r.u32();
    if (n > maxWireCount)
        corrupt("oversized mem-stats list");
    result.mem.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        result.mem.push_back(r.pod<mem::CoreMemStats>());
    result.weightedSpeedup = r.f64();
    result.simSeconds = r.f64();
    result.simInstructions = r.u64();
    result.mips = r.f64();
    result.sampled = r.pod<SampledStats>();
    return result;
}

namespace {

/** Payload discriminant for encodeBatchItem. */
enum : std::uint8_t { payloadNone = 0, payloadSingle = 1, payloadMix = 2 };

} // namespace

void
encodeBatchItem(Writer &w, const BatchItem &item)
{
    w.str(item.label);
    w.u8(static_cast<std::uint8_t>(item.kind));
    w.f64(item.value);
    w.f64(item.seconds);
    w.u8(item.cached ? 1 : 0);
    w.u64(item.traceHits);
    w.u64(item.traceMisses);
    w.u64(item.traceFallbacks);
    w.u64(item.traceDiskHits);
    w.u64(item.traceDiskMisses);
    w.u8(item.failed ? 1 : 0);
    w.str(item.error);
    w.u32(item.attempts);
    w.u8(item.journaled ? 1 : 0);
    w.u32(item.crashes);
    if (!item.failed && item.single) {
        w.u8(payloadSingle);
        encodeSingleResult(w, *item.single);
    } else if (!item.failed && item.mix) {
        w.u8(payloadMix);
        encodeMixResult(w, *item.mix);
    } else {
        w.u8(payloadNone);
    }
}

DecodedItem
decodeBatchItem(Reader &r)
{
    DecodedItem decoded;
    BatchItem &item = decoded.item;
    item.label = r.str();
    std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(BatchJob::Kind::Custom))
        corrupt("unknown job kind");
    item.kind = static_cast<BatchJob::Kind>(kind);
    item.value = r.f64();
    item.seconds = r.f64();
    item.cached = r.u8() != 0;
    item.traceHits = r.u64();
    item.traceMisses = r.u64();
    item.traceFallbacks = r.u64();
    item.traceDiskHits = r.u64();
    item.traceDiskMisses = r.u64();
    item.failed = r.u8() != 0;
    item.error = r.str();
    item.attempts = r.u32();
    item.journaled = r.u8() != 0;
    item.crashes = r.u32();
    switch (r.u8()) {
      case payloadNone:
        break;
      case payloadSingle:
        decoded.single = decodeSingleResult(r);
        break;
      case payloadMix:
        decoded.mix = decodeMixResult(r);
        break;
      default:
        corrupt("unknown payload discriminant");
    }
    return decoded;
}

namespace {

static_assert(std::is_trivially_copyable_v<core::BFetchConfig>);
static_assert(std::is_trivially_copyable_v<SampleConfig>);

} // namespace

void
encodeBatchJob(Writer &w, const BatchJob &job)
{
    if (job.kind == BatchJob::Kind::Custom)
        throw SimError("wire", "custom jobs cannot cross the wire "
                               "(their body is an opaque closure)");
    w.u8(static_cast<std::uint8_t>(job.kind));
    w.str(job.label);
    w.u32(static_cast<std::uint32_t>(job.workloads.size()));
    for (const std::string &name : job.workloads)
        w.str(name);
    w.str(job.prefetcher);
    w.u32(static_cast<std::uint32_t>(job.priority));
    const RunOptions &run = job.options;
    w.u64(run.instructions);
    w.u32(run.width);
    w.u32(run.robSize);
    w.f64(run.bpSizeScale);
    w.str(run.predictor);
    w.pod(run.bfetch);
    w.u64(run.l3PerCoreBytes);
    w.u64(run.deadlockCycles);
    w.pod(run.sample);
}

BatchJob
decodeBatchJob(Reader &r)
{
    BatchJob job;
    std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(BatchJob::Kind::Mix))
        corrupt("unknown or non-shippable job kind");
    job.kind = static_cast<BatchJob::Kind>(kind);
    job.label = r.str();
    std::uint32_t n = r.u32();
    if (n > maxWireCount)
        corrupt("oversized workload list");
    job.workloads.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        job.workloads.push_back(r.str());
    job.prefetcher = r.str();
    job.priority = static_cast<int>(r.u32());
    RunOptions &run = job.options;
    run.instructions = r.u64();
    run.width = r.u32();
    run.robSize = r.u32();
    run.bpSizeScale = r.f64();
    run.predictor = r.str();
    run.bfetch = r.pod<core::BFetchConfig>();
    run.l3PerCoreBytes = r.u64();
    run.deadlockCycles = r.u64();
    run.sample = r.pod<SampleConfig>();
    return job;
}

} // namespace bfsim::harness::wire
