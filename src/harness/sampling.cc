#include "harness/sampling.hh"

#include <cmath>
#include <cstdlib>
#include <exception>
#include <future>
#include <mutex>
#include <sstream>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"

namespace bfsim::harness {

std::string
SampleConfig::key() const
{
    if (!enabled)
        return "";
    std::ostringstream os;
    os << "/sample:" << periodOps << ':' << warmupOps << ':'
       << measureOps;
    if (ckptWarm)
        os << ":ckpt";
    return os.str();
}

SampleConfig
SampleConfig::parse(const std::string &spec)
{
    SampleConfig config;
    config.enabled = true;

    std::uint64_t fields[3] = {0, 0, 0};
    std::size_t pos = 0;
    for (int f = 0; f < 3; ++f) {
        if (pos >= spec.size())
            throw SimError("sampling", "sample spec '" + spec +
                                           "' is not "
                                           "period:warmup:measure");
        char *end = nullptr;
        fields[f] = std::strtoull(spec.c_str() + pos, &end, 10);
        std::size_t consumed = end - (spec.c_str() + pos);
        if (consumed == 0)
            throw SimError("sampling", "sample spec '" + spec +
                                           "' has a non-numeric field");
        pos += consumed;
        if (f < 2) {
            if (pos >= spec.size() || spec[pos] != ':')
                throw SimError("sampling",
                               "sample spec '" + spec +
                                   "' is not period:warmup:measure");
            ++pos;
        }
    }
    // Optional literal ":ckpt" suffix selects checkpoint-restored
    // mode; any other fourth field stays an error.
    if (pos < spec.size() && spec.compare(pos, std::string::npos,
                                          ":ckpt") == 0) {
        config.ckptWarm = true;
        pos = spec.size();
    }
    if (pos != spec.size())
        throw SimError("sampling", "sample spec '" + spec +
                                       "' has trailing characters");

    config.periodOps = fields[0];
    config.warmupOps = fields[1];
    config.measureOps = fields[2];
    if (config.measureOps == 0)
        throw SimError("sampling", "sample measure region must be > 0");
    if (config.periodOps < config.warmupOps + config.measureOps) {
        throw SimError("sampling",
                       "sample window (warmup + measure) must fit in "
                       "the period");
    }
    return config;
}

SampleConfig
SampleConfig::fromEnv()
{
    SampleConfig config;
    const char *env = std::getenv("BFSIM_SAMPLE");
    if (env && *env && std::string(env) != "0") {
        if (std::string(env) == "1") {
            config.enabled = true;
        } else {
            try {
                config = parse(env);
            } catch (const SimError &error) {
                warn(std::string("ignoring BFSIM_SAMPLE: ") +
                     error.message());
            }
        }
    }
    if (const char *ckpt_env = std::getenv("BFSIM_SAMPLE_CKPT")) {
        if (*ckpt_env && std::string(ckpt_env) != "0")
            config.ckptWarm = true;
    }
    if (const char *jobs_env = std::getenv("BFSIM_SAMPLE_JOBS")) {
        char *end = nullptr;
        unsigned long value = std::strtoul(jobs_env, &end, 10);
        if (end && *end == '\0' && value > 0)
            config.jobs = static_cast<unsigned>(value);
        else
            warn("ignoring malformed BFSIM_SAMPLE_JOBS value");
    }
    return config;
}

namespace {

std::mutex &
defaultConfigMutex()
{
    static std::mutex m;
    return m;
}

SampleConfig &
defaultConfigRef()
{
    static SampleConfig config = SampleConfig::fromEnv();
    return config;
}

} // namespace

SampleConfig
defaultSampleConfig()
{
    std::lock_guard<std::mutex> lock(defaultConfigMutex());
    return defaultConfigRef();
}

void
setDefaultSampleConfig(const SampleConfig &config)
{
    std::lock_guard<std::mutex> lock(defaultConfigMutex());
    defaultConfigRef() = config;
}

std::vector<SampleWindow>
sampleSchedule(std::uint64_t budget, const SampleConfig &config)
{
    std::vector<SampleWindow> windows;
    if (!config.enabled || budget == 0)
        return windows;

    std::uint64_t span = config.warmupOps + config.measureOps;
    std::uint64_t period = std::max<std::uint64_t>(config.periodOps, 1);
    for (std::uint64_t begin = 0; begin + span <= budget;
         begin += period) {
        windows.push_back(
            {begin, config.warmupOps, config.measureOps});
    }
    if (windows.empty()) {
        // Budget smaller than one full window: measure what fits so a
        // sampled run always yields a CPI (and, at such tiny budgets,
        // degenerates toward the full run it no longer undercuts).
        std::uint64_t measure = std::min(config.measureOps, budget);
        std::uint64_t warmup =
            std::min(config.warmupOps, budget - measure);
        windows.push_back({0, warmup, measure});
    }
    return windows;
}

SampledStats
summarizeWindows(const std::vector<SampleWindow> &schedule,
                 const std::vector<std::uint64_t> &cycles,
                 const std::vector<std::uint64_t> &instructions,
                 std::uint64_t budget)
{
    BFSIM_CHECK(cycles.size() == schedule.size() &&
                    instructions.size() == schedule.size(),
                "sampling",
                "window results must match the schedule");

    SampledStats stats;
    stats.enabled = true;
    stats.windows = schedule.size();
    stats.budgetInstructions = budget;

    std::uint64_t total_cycles = 0;
    std::vector<double> window_cpis;
    window_cpis.reserve(schedule.size());
    for (std::size_t w = 0; w < schedule.size(); ++w) {
        stats.warmupInstructions += schedule[w].warmup;
        stats.measuredInstructions += instructions[w];
        total_cycles += cycles[w];
        if (instructions[w] > 0) {
            window_cpis.push_back(static_cast<double>(cycles[w]) /
                                  static_cast<double>(instructions[w]));
        }
    }
    if (stats.measuredInstructions > 0) {
        stats.cpi = static_cast<double>(total_cycles) /
                    static_cast<double>(stats.measuredInstructions);
        stats.ipc = stats.cpi > 0.0 ? 1.0 / stats.cpi : 0.0;
    }

    // Normal-approximation 95% interval on the mean of per-window CPIs
    // (SMARTS-style error reporting); meaningless below two windows.
    std::size_t n = window_cpis.size();
    if (n >= 2) {
        double mean = 0.0;
        for (double cpi : window_cpis)
            mean += cpi;
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (double cpi : window_cpis)
            var += (cpi - mean) * (cpi - mean);
        var /= static_cast<double>(n - 1);
        stats.cpiCi95 =
            1.96 * std::sqrt(var / static_cast<double>(n));
    }
    return stats;
}

void
forEachWindow(std::size_t count, unsigned jobs,
              const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, count)));
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(pool.submit([&fn, i] { fn(i); }));

    // Drain every window before rethrowing, so no worker is still
    // touching result slots when the first failure propagates.
    std::exception_ptr first;
    for (auto &future : futures) {
        try {
            future.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

} // namespace bfsim::harness
