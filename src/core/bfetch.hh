/**
 * @file
 * The B-Fetch prefetch engine (paper section IV, Fig. 4).
 *
 * B-Fetch forms a small 3-stage pipeline beside the core:
 *
 *  1. Branch Lookahead — seeded from the Decoded Branch Register with
 *     each branch the core decodes, it walks the *predicted* future
 *     control-flow path: predict a direction (sharing the core's branch
 *     predictor, probed under a speculatively extended global history),
 *     hop to the next branch through the Branch Trace Cache, and
 *     accumulate path confidence, stopping below the threshold.
 *  2. Register Lookup — for each basic block on the path, read the
 *     Memory History Table sub-entries (base registers, learned offsets,
 *     loop deltas, neg/pos patterns) and the current Alternate Register
 *     File values.
 *  3. Prefetch Calculate — form addresses per Eq. 3
 *     (ARF[RegIdx] + Offset + LoopCnt x LoopDelta), apply the per-load
 *     filter, and push survivors into the prefetch queue.
 *
 * Learning happens exclusively at commit (BrTC linkage, MHT offsets,
 * confidence calibration), and the ARF samples execute-stage writebacks
 * with sequence-number guards — the same update discipline as Fig. 4.
 */

#ifndef BFSIM_CORE_BFETCH_HH_
#define BFSIM_CORE_BFETCH_HH_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "branch/confidence.hh"
#include "branch/predictor.hh"
#include "common/types.hh"
#include "core/arf.hh"
#include "core/brtc.hh"
#include "core/config.hh"
#include "core/mht.hh"
#include "core/per_load_filter.hh"
#include "prefetch/queue.hh"

namespace bfsim::core {

/** Aggregate counters exposed by the engine. */
struct BFetchStats
{
    std::uint64_t lookaheadWalks = 0;
    std::uint64_t blocksVisited = 0;
    std::uint64_t prefetchesGenerated = 0;
    std::uint64_t pattPrefetches = 0;
    std::uint64_t loopPrefetches = 0;
    std::uint64_t filteredByPerLoad = 0;
    std::uint64_t stopsConfidence = 0;
    std::uint64_t stopsBrtcMiss = 0;
    std::uint64_t stopsDepth = 0;
    std::uint64_t mhtLearnUpdates = 0;
    std::uint64_t brtcUpdates = 0;
};

/** One line of the Table I style storage report. */
struct StorageComponent
{
    std::string name;
    std::size_t entries;
    double kilobytes;
};

/** The B-Fetch engine. */
class BFetchEngine
{
  public:
    /**
     * Construct over the core's branch predictor and a prefetch queue.
     * Both are borrowed references owned by the simulated core.
     */
    BFetchEngine(const BFetchConfig &config,
                 const branch::DirectionPredictor &predictor,
                 prefetch::PrefetchQueue &queue);

    // ------------------------------------------------------ core hooks

    /**
     * Decode-stage hook: a control instruction entered the Decoded
     * Branch Register with the frontend's prediction for it. Starts a
     * lookahead walk.
     */
    void onDecodeBranch(Addr pc, bool predicted_taken,
                        Addr predicted_target, bool is_conditional,
                        Cycle now);

    /** Execute-stage register writeback (ARF sampling latch). */
    void
    onRegWrite(RegIndex rd, RegVal value, InstSeqNum seq,
               Cycle visible_at)
    {
        arf.update(rd, value, seq, visible_at);
    }

    /** Commit-stage architectural register write (learning state). */
    void
    onCommitRegWrite(RegIndex rd, RegVal value)
    {
        committedRegs[rd] = value;
    }

    /**
     * Commit-stage hook for control instructions: links the previous
     * block's BrTC entry to this branch, trains branch confidence, and
     * snapshots the committed register file for MHT offset learning.
     */
    void onCommitBranch(Addr pc, bool taken, Addr taken_target,
                        bool is_conditional, bool prediction_correct);

    /** Commit-stage hook for memory instructions: trains the MHT. */
    void onCommitMem(Addr pc, RegIndex base_reg, Addr eff_addr,
                     bool is_load);

    /** L1-D usefulness feedback (trains the per-load filter). */
    void
    onPrefetchFeedback(std::uint16_t load_pc_hash, bool useful)
    {
        if (cfg.enablePerLoadFilter)
            filter.train(load_pc_hash, useful);
    }

    // ------------------------------------------------------ inspection

    /** Engine counters. */
    const BFetchStats &stats() const { return stats_; }

    /** Average lookahead depth over all walks (paper reports ~8 BB). */
    double averageLookaheadDepth() const;

    /** Per-component storage breakdown (Table I). */
    std::vector<StorageComponent> storageReport() const;

    /** Total storage in bits. */
    std::size_t storageBits() const;

    /** The configuration in force. */
    const BFetchConfig &config() const { return cfg; }

    /** Read access for tests / examples. */
    const BranchTraceCache &brtc() const { return brtcTable; }
    const MemoryHistoryTable &mht() const { return mhtTable; }
    const AlternateRegisterFile &alternateRegs() const { return arf; }
    const PerLoadFilter &perLoadFilter() const { return filter; }
    const branch::CompositeConfidence &confidence() const
    {
        return confEstimator;
    }

  private:
    /** Issue prefetches for one basic block along the walked path. */
    void prefetchForBlock(const BlockKey &key, unsigned loop_count,
                          Cycle now);

    BFetchConfig cfg;
    const branch::DirectionPredictor &bp;
    prefetch::PrefetchQueue &queue;

    BranchTraceCache brtcTable;
    MemoryHistoryTable mhtTable;
    AlternateRegisterFile arf;
    PerLoadFilter filter;
    branch::CompositeConfidence confEstimator;

    /** Committed architectural register values (learning side). */
    std::array<RegVal, numArchRegs> committedRegs{};

    /** Committed registers snapshotted at the last committed branch. */
    std::array<RegVal, numArchRegs> regsAtLastBranch{};

    /** Identity of the block currently being committed into. */
    BlockKey currentBlock{};
    bool currentBlockValid = false;

    BFetchStats stats_;
};

} // namespace bfsim::core

#endif // BFSIM_CORE_BFETCH_HH_
