#include "core/bfetch.hh"

#include "prefetch/prefetcher.hh"

namespace bfsim::core {

BFetchEngine::BFetchEngine(const BFetchConfig &config,
                           const branch::DirectionPredictor &predictor,
                           prefetch::PrefetchQueue &prefetch_queue)
    : cfg(config),
      bp(predictor),
      queue(prefetch_queue),
      brtcTable(config.brtcEntries),
      mhtTable(config.mhtEntries, config.regHistoryPerEntry,
               config.pattBits),
      filter(config.filterEntriesPerTable, config.filterCounterBits)
{
}

void
BFetchEngine::prefetchForBlock(const BlockKey &key, unsigned loop_count,
                              Cycle now)
{
    MhtEntry *entry = mhtTable.lookupMutable(key);
    if (!entry)
        return;

    for (auto &reg : entry->regs) {
        if (!reg.valid)
            continue;
        // No completed value for the base register is observable yet
        // (e.g. it was produced by a still-outstanding load): skip
        // rather than fabricate an address.
        if (!arf.visible(reg.regIdx, now))
            continue;

        if (cfg.enablePerLoadFilter &&
            !filter.allows(reg.loadPcHash, cfg.perLoadThreshold)) {
            ++stats_.filteredByPerLoad;
            continue;
        }

        // Eq. 3: ARF value + learned offset (+ loop advance).
        std::int64_t addr =
            static_cast<std::int64_t>(arf.read(reg.regIdx, now))
                            + reg.offset;
        if (cfg.enableLoopPrefetch && loop_count > 0 &&
            reg.loopDelta != 0) {
            unsigned count = loop_count > cfg.maxLoopCount
                                 ? cfg.maxLoopCount
                                 : loop_count;
            addr += static_cast<std::int64_t>(count) * reg.loopDelta;
            reg.loopCnt = static_cast<std::uint8_t>(count);
            ++stats_.loopPrefetches;
        }
        if (addr < 0)
            continue;
        Addr target = static_cast<Addr>(addr);
        queue.push(target, reg.loadPcHash);
        ++stats_.prefetchesGenerated;

        if (!cfg.enablePattPrefetch)
            continue;
        // Secondary loads off the same register, at block granularity.
        for (unsigned bit = 0; bit < cfg.pattBits; ++bit) {
            if (reg.posPatt & (1u << bit)) {
                queue.push(target + (bit + 1) * blockSizeBytes,
                           reg.loadPcHash);
                ++stats_.pattPrefetches;
                ++stats_.prefetchesGenerated;
            }
            if (reg.negPatt & (1u << bit)) {
                Addr dist = static_cast<Addr>(bit + 1) * blockSizeBytes;
                if (target >= dist) {
                    queue.push(target - dist, reg.loadPcHash);
                    ++stats_.pattPrefetches;
                    ++stats_.prefetchesGenerated;
                }
            }
        }
    }
}

void
BFetchEngine::onDecodeBranch(Addr pc, bool predicted_taken,
                             Addr predicted_target, bool is_conditional,
                             Cycle now)
{
    ++stats_.lookaheadWalks;

    branch::PathConfidence path(cfg.pathConfidenceThreshold);
    std::uint64_t spec_history = bp.history();
    std::uint64_t history_mask =
        bp.historyBits() ? ((1ULL << bp.historyBits()) - 1) : 0;

    // The confidence of the seed branch's own prediction starts the path.
    if (is_conditional) {
        path.accumulate(confEstimator.estimate(pc, spec_history));
        if (history_mask) {
            spec_history = ((spec_history << 1) |
                            (predicted_taken ? 1 : 0)) & history_mask;
        }
    }

    BlockKey current{pc, predicted_taken, predicted_target};

    // Loop detection: keys already visited during this walk.
    std::vector<std::uint64_t> visited;
    visited.reserve(cfg.maxLookaheadDepth);

    for (unsigned depth = 0; depth < cfg.maxLookaheadDepth; ++depth) {
        if (!path.aboveThreshold()) {
            ++stats_.stopsConfidence;
            return;
        }

        std::uint64_t key_hash = current.hash();
        unsigned loop_count = 0;
        for (std::uint64_t h : visited)
            if (h == key_hash)
                ++loop_count;
        visited.push_back(key_hash);
        if (loop_count > 0) {
            // Speculative loop iterations carry trip-count risk on top
            // of per-branch direction confidence.
            path.accumulate(cfg.loopIterationConfidence);
            if (!path.aboveThreshold()) {
                ++stats_.stopsConfidence;
                return;
            }
        }

        ++stats_.blocksVisited;
        prefetchForBlock(current, loop_count, now);

        // Hop to the branch terminating this block.
        const BrtcEntry *next = brtcTable.lookup(current);
        if (!next) {
            ++stats_.stopsBrtcMiss;
            return;
        }

        bool next_taken = true;
        if (next->nextIsConditional) {
            next_taken = bp.probe(next->nextBranchPc, spec_history);
            path.accumulate(
                confEstimator.estimate(next->nextBranchPc, spec_history));
            if (history_mask) {
                spec_history = ((spec_history << 1) |
                                (next_taken ? 1 : 0)) & history_mask;
            }
        }
        Addr next_target = next_taken ? next->nextTakenTarget
                                      : next->nextBranchPc + 4;
        current = BlockKey{next->nextBranchPc, next_taken, next_target};
    }
    ++stats_.stopsDepth;
}

void
BFetchEngine::onCommitBranch(Addr pc, bool taken, Addr taken_target,
                             bool is_conditional, bool prediction_correct)
{
    // Train the composite confidence estimator on the committed outcome.
    if (is_conditional) {
        confEstimator.train(pc, bp.history(), prediction_correct);
    }

    // Link the block we were committing into to the branch that ended it.
    if (currentBlockValid) {
        brtcTable.update(currentBlock, pc, taken_target, is_conditional);
        ++stats_.brtcUpdates;
    }

    // This branch's execution opens a new block.
    Addr actual_target = taken ? taken_target : pc + 4;
    currentBlock = BlockKey{pc, taken, actual_target};
    currentBlockValid = true;
    regsAtLastBranch = committedRegs;
}

void
BFetchEngine::onCommitMem(Addr pc, RegIndex base_reg, Addr eff_addr,
                          bool is_load)
{
    if (!currentBlockValid || !is_load)
        return;
    std::uint16_t hash = prefetch::pcHash10(pc);
    MemoryHistoryTable::LearnOutcome outcome = mhtTable.learn(
        currentBlock, base_reg, regsAtLastBranch[base_reg], eff_addr,
        hash);
    ++stats_.mhtLearnUpdates;
    // Per-load filter shadow training (see mht.hh) applies only while
    // the load is suppressed: it is the recovery path back above
    // threshold. While prefetches actually issue, the L1-D usefulness
    // feedback is the authoritative signal.
    // Sampled so that a load whose prefetches keep getting evicted
    // unused cannot re-enable itself faster than the usefulness
    // feedback can veto it.
    if (cfg.enablePerLoadFilter && outcome.hadPrior &&
        !filter.allows(hash, cfg.perLoadThreshold) &&
        (stats_.mhtLearnUpdates & 7) == 0) {
        filter.train(hash, outcome.predictionAccurate);
    }
}

double
BFetchEngine::averageLookaheadDepth() const
{
    if (stats_.lookaheadWalks == 0)
        return 0.0;
    return static_cast<double>(stats_.blocksVisited) /
           static_cast<double>(stats_.lookaheadWalks);
}

std::size_t
BFetchEngine::storageBits() const
{
    std::size_t bits = brtcTable.storageBits() + mhtTable.storageBits() +
                       AlternateRegisterFile::storageBits() +
                       filter.storageBits() +
                       confEstimator.storageBits();
    // Additional L1-D cache bits: 10-bit PC hash + 1 useful bit per
    // 64B block of a 64KB cache (Table I: 1.37KB).
    bits += (64 * 1024 / blockSizeBytes) * 11;
    // Prefetch queue (Table I: 0.51KB).
    bits += queue.storageBits();
    return bits;
}

std::vector<StorageComponent>
BFetchEngine::storageReport() const
{
    auto kb = [](std::size_t bits) {
        return static_cast<double>(bits) / 8.0 / 1024.0;
    };
    std::vector<StorageComponent> report;
    report.push_back({"Branch Trace Cache", brtcTable.size(),
                      kb(brtcTable.storageBits())});
    report.push_back({"Memory History Table", mhtTable.size(),
                      kb(mhtTable.storageBits())});
    report.push_back({"Alternate Register File",
                      static_cast<std::size_t>(numArchRegs),
                      kb(AlternateRegisterFile::storageBits())});
    report.push_back({"Per-Load Prefetch Filter",
                      cfg.filterEntriesPerTable,
                      kb(filter.storageBits())});
    report.push_back({"Additional Cache bits", 0,
                      kb((64 * 1024 / blockSizeBytes) * 11)});
    report.push_back({"Prefetch Queue", 100, kb(queue.storageBits())});
    report.push_back({"Path Confidence Estimator", 2048,
                      kb(confEstimator.storageBits())});
    return report;
}

} // namespace bfsim::core
