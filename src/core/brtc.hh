/**
 * @file
 * Branch Trace Cache (paper IV-B.1, Fig. 5).
 *
 * The BrTC captures the dynamic control-flow sequence: indexed by a hash
 * of (branch PC, direction, target) — the identity of the basic block
 * entered — an entry names the branch found at the end of that block, so
 * the lookahead can hop from branch to branch skipping the straight-line
 * instructions in between. Entries are filled at commit time only.
 */

#ifndef BFSIM_CORE_BRTC_HH_
#define BFSIM_CORE_BRTC_HH_

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace bfsim::core {

/**
 * Identity of a basic block: the branch whose (direction, target)
 * execution leads into the block. Mirrors the hashed index of the paper.
 */
struct BlockKey
{
    Addr branchPc = 0;
    bool taken = false;
    Addr target = 0; ///< address the branch actually directs fetch to

    /** Mixed 64-bit hash of the key. */
    std::uint64_t
    hash() const
    {
        std::uint64_t x = (branchPc >> 2) * 0x9e3779b97f4a7c15ULL;
        x ^= (target >> 2) + 0x7f4a7c159e3779b9ULL + (x << 6) + (x >> 2);
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        return (x << 1) | (taken ? 1 : 0);
    }

    bool
    operator==(const BlockKey &other) const
    {
        return branchPc == other.branchPc && taken == other.taken &&
               target == other.target;
    }
};

/** One BrTC entry: the branch terminating the identified basic block. */
struct BrtcEntry
{
    std::uint32_t tag = 0;
    Addr nextBranchPc = 0;     ///< branch at the end of this block
    Addr nextTakenTarget = 0;  ///< its taken-path target
    bool nextIsConditional = false;
    bool valid = false;
};

/** Direct-mapped Branch Trace Cache. */
class BranchTraceCache
{
  public:
    /** Construct with a power-of-two entry count (paper: 256). */
    explicit BranchTraceCache(std::size_t entries);

    /** Look up the block's terminating branch; nullptr on miss. */
    const BrtcEntry *lookup(const BlockKey &key) const;

    /** Commit-time update: record the branch ending block `key`. */
    void update(const BlockKey &key, Addr next_branch_pc,
                Addr next_taken_target, bool next_is_conditional);

    /** Entry count. */
    std::size_t size() const { return table.size(); }

    /**
     * Storage bits: Table I budgets 2.06KB for 256 entries, i.e. 66 bits
     * per entry (32-bit block-identifying address + direction + 32-bit
     * next-branch address + valid); our tag field plays the role of the
     * stored lower address bits.
     */
    std::size_t storageBits() const { return table.size() * 66; }

  private:
    std::size_t indexOf(std::uint64_t hash) const;
    static std::uint32_t tagOf(std::uint64_t hash);

    std::vector<BrtcEntry> table;
};

} // namespace bfsim::core

#endif // BFSIM_CORE_BRTC_HH_
