/**
 * @file
 * Alternate Register File (paper IV-B.2).
 *
 * A pseudo-architectural copy of the register file, updated by
 * sampling-latch delayed execute-stage writebacks. Because the main
 * pipeline is out of order, each register carries the sequence number of
 * the youngest instruction that wrote it; an update is accepted only if
 * it comes from an instruction at least as young as the previous writer,
 * keeping the copy consistent without being on the execution critical
 * path.
 *
 * Updates additionally carry the cycle at which the producing
 * instruction's result actually exists ("visibleAt"). A lookahead walk
 * reading the ARF at cycle `now` sees the youngest value whose producer
 * has completed by `now`, falling back to the previously visible value
 * otherwise — the single-rate sampling latch of Fig. 4 cannot deliver a
 * result before the execution units produce it. (The simulator needs
 * this guard because it computes results before their modeled completion
 * time; hardware gets it for free.)
 */

#ifndef BFSIM_CORE_ARF_HH_
#define BFSIM_CORE_ARF_HH_

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace bfsim::core {

/** The Alternate Register File. */
class AlternateRegisterFile
{
  public:
    AlternateRegisterFile() { reset(); }

    /**
     * Offer an execute-stage register write completing at `visible_at`.
     * Accepted only when `seq` is at least as young as the last accepted
     * writer of that register.
     */
    void
    update(RegIndex reg, RegVal value, InstSeqNum seq, Cycle visible_at)
    {
        Entry &entry = entries[reg];
        if (seq < entry.seq)
            return;
        // The pending value becomes the stable one once its producer
        // completes before the newly offered write does.
        if (entry.pendingVisibleAt <= visible_at) {
            entry.stableValue = entry.pendingValue;
            entry.stableVisibleAt = entry.pendingVisibleAt;
        }
        entry.pendingValue = value;
        entry.pendingVisibleAt = visible_at;
        entry.seq = seq;
    }

    /** Value of a register as observable at cycle `now`. */
    RegVal
    read(RegIndex reg, Cycle now) const
    {
        const Entry &entry = entries[reg];
        if (entry.pendingVisibleAt <= now)
            return entry.pendingValue;
        if (entry.stableVisibleAt <= now)
            return entry.stableValue;
        return 0;
    }

    /** True when some completed write is observable at cycle `now`. */
    bool
    visible(RegIndex reg, Cycle now) const
    {
        const Entry &entry = entries[reg];
        return entry.pendingVisibleAt <= now ||
               entry.stableVisibleAt <= now;
    }

    /** Sequence number of the youngest accepted writer. */
    InstSeqNum sequence(RegIndex reg) const { return entries[reg].seq; }

    /** Clear all registers to zero / no writer. */
    void
    reset()
    {
        entries.fill(Entry{});
    }

    /**
     * Storage bits: 32 registers x (32-bit sampled value + 8-bit
     * sequence tag), the 0.156KB line of Table I.
     */
    static constexpr std::size_t
    storageBits()
    {
        return static_cast<std::size_t>(numArchRegs) * (32 + 8);
    }

  private:
    struct Entry
    {
        RegVal pendingValue = 0;
        Cycle pendingVisibleAt = 0;
        RegVal stableValue = 0;
        Cycle stableVisibleAt = 0;
        InstSeqNum seq = 0;
    };

    std::array<Entry, numArchRegs> entries;
};

} // namespace bfsim::core

#endif // BFSIM_CORE_ARF_HH_
