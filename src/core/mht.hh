/**
 * @file
 * Memory History Table (paper IV-B.2, Fig. 6).
 *
 * The MHT is the largest B-Fetch structure. Each entry corresponds to a
 * basic block (indexed by the same hash as the BrTC: branch PC,
 * direction, target) and holds up to three Register History sub-entries,
 * one per unique source register used for effective-address generation in
 * that block. A sub-entry records:
 *
 *   - RegIdx:    the source register index,
 *   - RegVal:    that register's value when the entry-point branch
 *                committed (refreshed every learning update),
 *   - Offset:    learned (effective address - RegVal), folding together
 *                the register's in-block variation and the static
 *                displacement (Eq. 1),
 *   - neg/posPatt: bit vectors marking additional loads off the same
 *                register within the block, at cache-block granularity,
 *   - LoopCnt / LoopDelta: run-time loop prefetch state — LoopDelta is
 *                the EA stride between consecutive executions of the same
 *                load, LoopCnt the lookahead-observed iteration count.
 *
 * Prefetch addresses follow Eq. 3:
 *   addr = ARF[RegIdx] + Offset + LoopCnt * LoopDelta.
 *
 * In addition to the paper's fields each sub-entry carries the 10-bit
 * hash of the learning load's PC; the per-load filter and the L1-D
 * usefulness tagging (paper IV-B.3) are keyed on it. The paper accounts
 * that hash under its per-block cache-bit budget; we account it here,
 * which is why our reported MHT size is slightly above Table I's 4.5KB.
 */

#ifndef BFSIM_CORE_MHT_HH_
#define BFSIM_CORE_MHT_HH_

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/brtc.hh"

namespace bfsim::core {

/** One Register History sub-entry of an MHT entry. */
struct RegHistoryEntry
{
    RegIndex regIdx = 0;
    RegVal regVal = 0;
    std::int64_t offset = 0;
    std::uint8_t negPatt = 0;
    std::uint8_t posPatt = 0;
    bool valid = false;
    std::uint8_t loopCnt = 0;
    std::int64_t loopDelta = 0;
    /** 10-bit hash of the load PC whose EA trained this sub-entry. */
    std::uint16_t loadPcHash = 0;
    /** EA of that load's most recent execution (for LoopDelta training). */
    Addr lastEa = 0;
    bool lastEaValid = false;
};

/** One MHT entry: a basic block's register histories. */
struct MhtEntry
{
    std::uint32_t tag = 0;
    bool valid = false;
    std::vector<RegHistoryEntry> regs;
};

/** Direct-mapped Memory History Table. */
class MemoryHistoryTable
{
  public:
    /**
     * Construct with a power-of-two entry count and sub-entries per
     * entry (paper: 128 x 3).
     */
    MemoryHistoryTable(std::size_t entries, unsigned regs_per_entry,
                       unsigned patt_bits);

    /** Look up the entry for a block; nullptr on miss. */
    const MhtEntry *lookup(const BlockKey &key) const;

    /** Mutable lookup for lookahead-time LoopCnt bookkeeping. */
    MhtEntry *lookupMutable(const BlockKey &key);

    /** Outcome of a learning update (drives per-load filter training). */
    struct LearnOutcome
    {
        /** A prior prediction existed for this (block, register, load). */
        bool hadPrior = false;
        /** The prior prediction matched the executed address's block
         *  (Eq. 2 evaluated with the committed entry-point register). */
        bool predictionAccurate = false;
    };

    /**
     * Learning update at commit of a memory instruction in block `key`:
     * `reg_at_branch` is the base register's committed value when the
     * entry-point branch committed, `eff_addr` the executed effective
     * address, `load_pc_hash` the 10-bit attribution hash.
     *
     * Allocates (or refreshes) the sub-entry for base_reg; trains Offset,
     * LoopDelta, and the neg/posPatt vectors for secondary loads. The
     * returned outcome reports whether the entry's previous prediction
     * would have been accurate for this execution, which is the signal
     * the per-load filter trains on ("the counter is incremented when
     * the prefetch address turns out to be accurate", IV-B.3) — it can
     * be evaluated even while prefetching for the load is suppressed,
     * giving filtered loads a path back above threshold.
     */
    LearnOutcome learn(const BlockKey &key, RegIndex base_reg,
                       RegVal reg_at_branch, Addr eff_addr,
                       std::uint16_t load_pc_hash);

    /** Entry count. */
    std::size_t size() const { return table.size(); }

    /** Sub-entries per entry. */
    unsigned regsPerEntry() const { return regsPer; }

    /**
     * Storage bits. Paper sub-entry: regIdx(5) + RegVal(32) + Offset(16)
     * + negPatt(5) + posPatt(5) + valid(1) + LoopCnt(5) + LoopDelta(16)
     * = 85 bits; entry adds a 32-bit branch tag. We additionally carry
     * the 10-bit per-load hash per sub-entry (see file comment).
     */
    std::size_t storageBits() const;

  private:
    std::size_t indexOf(std::uint64_t hash) const;
    static std::uint32_t tagOf(std::uint64_t hash);

    std::vector<MhtEntry> table;
    unsigned regsPer;
    unsigned pattBits;
};

} // namespace bfsim::core

#endif // BFSIM_CORE_MHT_HH_
