#include "core/per_load_filter.hh"

#include <bit>

#include "common/sim_error.hh"

namespace bfsim::core {

PerLoadFilter::PerLoadFilter(std::size_t entries_per_table,
                             unsigned counter_bits)
    : counterBits(counter_bits)
{
    BFSIM_CHECK(std::has_single_bit(entries_per_table),
                "per_load_filter",
                "per-load filter table size must be a power of two");
    for (auto &table : tables) {
        // Initialize counters to 1 so an unseen load starts exactly at
        // the default threshold (3): new loads are allowed to prefetch
        // until they prove inaccurate.
        table.assign(entries_per_table,
                     branch::SatCounter(counter_bits, 1));
    }
}

std::size_t
PerLoadFilter::index(unsigned table, std::uint16_t load_pc_hash) const
{
    // Three distinct multiplicative hashes skew the indices so a hot
    // aliasing load cannot poison all three votes of another load.
    static constexpr std::uint64_t mixers[numTables] = {
        0x9e3779b97f4a7c15ULL, 0xbf58476d1ce4e5b9ULL,
        0x94d049bb133111ebULL};
    std::uint64_t x = (static_cast<std::uint64_t>(load_pc_hash) + 1) *
                      mixers[table];
    return (x >> 24) & (tables[table].size() - 1);
}

unsigned
PerLoadFilter::confidence(std::uint16_t load_pc_hash) const
{
    unsigned sum = 0;
    for (unsigned t = 0; t < numTables; ++t)
        sum += tables[t][index(t, load_pc_hash)].value();
    return sum;
}

void
PerLoadFilter::train(std::uint16_t load_pc_hash, bool useful)
{
    for (unsigned t = 0; t < numTables; ++t) {
        auto &counter = tables[t][index(t, load_pc_hash)];
        if (useful)
            counter.increment();
        else
            counter.decrement();
    }
}

std::size_t
PerLoadFilter::storageBits() const
{
    std::size_t bits = 0;
    for (const auto &table : tables)
        bits += table.size() * counterBits;
    return bits;
}

} // namespace bfsim::core
