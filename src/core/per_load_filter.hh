/**
 * @file
 * Per-load prefetch filter (paper IV-B.3).
 *
 * Even on high-confidence paths some loads have hard-to-predict effective
 * addresses. The filter tracks, per load PC, how often B-Fetch's
 * prefetches for that load proved accurate, using a skewed organization
 * inspired by the sampling dead-block predictor the paper cites [13]:
 * three tables of 3-bit up/down saturating counters, each indexed by a
 * different hash of the load PC. A query sums the three counters; when
 * the sum falls below the threshold (Table II: 3) prefetching for that
 * load PC is suppressed, regardless of branch-path confidence.
 */

#ifndef BFSIM_CORE_PER_LOAD_FILTER_HH_
#define BFSIM_CORE_PER_LOAD_FILTER_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "common/types.hh"

namespace bfsim::core {

/** The skewed per-load confidence filter. */
class PerLoadFilter
{
  public:
    /**
     * Construct with the per-table entry count and counter width
     * (paper: 3 x 2048 x 3 bits).
     */
    PerLoadFilter(std::size_t entries_per_table, unsigned counter_bits);

    /** Summed confidence for a (10-bit hashed) load PC. */
    unsigned confidence(std::uint16_t load_pc_hash) const;

    /** Train with the observed usefulness of a prefetch for this load. */
    void train(std::uint16_t load_pc_hash, bool useful);

    /** True when prefetching for this load is currently allowed. */
    bool
    allows(std::uint16_t load_pc_hash, unsigned threshold) const
    {
        return confidence(load_pc_hash) >= threshold;
    }

    /** Storage bits (Table I: 2.25KB). */
    std::size_t storageBits() const;

  private:
    std::size_t index(unsigned table, std::uint16_t load_pc_hash) const;

    static constexpr unsigned numTables = 3;
    std::array<std::vector<branch::SatCounter>, numTables> tables;
    unsigned counterBits;
};

} // namespace bfsim::core

#endif // BFSIM_CORE_PER_LOAD_FILTER_HH_
