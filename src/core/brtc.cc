#include "core/brtc.hh"

#include <bit>

#include "common/sim_error.hh"

namespace bfsim::core {

BranchTraceCache::BranchTraceCache(std::size_t entries) : table(entries)
{
    BFSIM_CHECK(std::has_single_bit(entries), "brtc",
                "BrTC entry count must be a power of two");
}

std::size_t
BranchTraceCache::indexOf(std::uint64_t hash) const
{
    return hash & (table.size() - 1);
}

std::uint32_t
BranchTraceCache::tagOf(std::uint64_t hash)
{
    return static_cast<std::uint32_t>(hash >> 32);
}

const BrtcEntry *
BranchTraceCache::lookup(const BlockKey &key) const
{
    std::uint64_t hash = key.hash();
    const BrtcEntry &entry = table[indexOf(hash)];
    if (entry.valid && entry.tag == tagOf(hash))
        return &entry;
    return nullptr;
}

void
BranchTraceCache::update(const BlockKey &key, Addr next_branch_pc,
                         Addr next_taken_target, bool next_is_conditional)
{
    std::uint64_t hash = key.hash();
    BrtcEntry &entry = table[indexOf(hash)];
    entry.tag = tagOf(hash);
    entry.nextBranchPc = next_branch_pc;
    entry.nextTakenTarget = next_taken_target;
    entry.nextIsConditional = next_is_conditional;
    entry.valid = true;
}

} // namespace bfsim::core
