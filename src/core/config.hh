/**
 * @file
 * B-Fetch configuration. Defaults reproduce the paper's evaluated design
 * point: 256-entry BrTC + 128-entry MHT (the 12.84KB Table I budget),
 * 0.75 path-confidence threshold and per-load filter threshold 3
 * (Table II). Fig. 12 sweeps the confidence threshold and Fig. 15 sweeps
 * the BrTC/MHT sizes through these knobs.
 */

#ifndef BFSIM_CORE_CONFIG_HH_
#define BFSIM_CORE_CONFIG_HH_

#include <cstddef>

namespace bfsim::core {

/** Tunable parameters of the B-Fetch prefetch engine. */
struct BFetchConfig
{
    /** Branch Trace Cache entries (power of two). */
    std::size_t brtcEntries = 256;

    /** Memory History Table entries (power of two). */
    std::size_t mhtEntries = 128;

    /** Register-history sub-entries per MHT entry (paper: 3). */
    unsigned regHistoryPerEntry = 3;

    /** Cumulative path-confidence termination threshold (paper: 0.75). */
    double pathConfidenceThreshold = 0.75;

    /** Maximum lookahead depth in basic blocks. */
    unsigned maxLookaheadDepth = 16;

    /**
     * Extra path-confidence factor applied per revisited block in a
     * walk: loop-back predictions carry trip-count uncertainty beyond
     * the direction predictor's own estimate, so each speculative
     * iteration decays the path a little faster.
     */
    double loopIterationConfidence = 0.98;

    /** Per-load filter: entries in each of the three skewed tables. */
    std::size_t filterEntriesPerTable = 2048;

    /** Per-load filter counter width in bits (paper: 3). */
    unsigned filterCounterBits = 3;

    /** Minimum summed filter confidence to allow a prefetch (paper: 3). */
    unsigned perLoadThreshold = 3;

    /** Width of the neg/posPatt bit vectors (paper: 5 bits each). */
    unsigned pattBits = 5;

    /** Maximum loop iterations prefetched ahead (LoopCnt is 5 bits). */
    unsigned maxLoopCount = 31;

    /** Enable the runtime loop detection / LoopDelta mechanism. */
    bool enableLoopPrefetch = true;

    /** Enable the neg/posPatt multi-load-per-register mechanism. */
    bool enablePattPrefetch = true;

    /** Enable the per-load confidence filter. */
    bool enablePerLoadFilter = true;

    /**
     * Ablation: update the ARF only from retire-stage architectural
     * state instead of sampling execute-stage writebacks. The paper
     * (IV-B.2) reports that execute sampling gives "significant
     * improvement in performance versus a retire-stage ... copy";
     * bench/ablation_arf reproduces that comparison.
     */
    bool arfFromCommitOnly = false;
};

} // namespace bfsim::core

#endif // BFSIM_CORE_CONFIG_HH_
