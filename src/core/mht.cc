#include "core/mht.hh"

#include <bit>

#include "common/sim_error.hh"

namespace bfsim::core {

MemoryHistoryTable::MemoryHistoryTable(std::size_t entries,
                                       unsigned regs_per_entry,
                                       unsigned patt_bits)
    : table(entries), regsPer(regs_per_entry), pattBits(patt_bits)
{
    BFSIM_CHECK(std::has_single_bit(entries), "mht",
                "MHT entry count must be a power of two");
    BFSIM_CHECK(patt_bits <= 8, "mht",
                "neg/posPatt vectors wider than 8 bits are not "
                "supported");
    for (auto &entry : table)
        entry.regs.resize(regsPer);
}

std::size_t
MemoryHistoryTable::indexOf(std::uint64_t hash) const
{
    return hash & (table.size() - 1);
}

std::uint32_t
MemoryHistoryTable::tagOf(std::uint64_t hash)
{
    return static_cast<std::uint32_t>(hash >> 32);
}

const MhtEntry *
MemoryHistoryTable::lookup(const BlockKey &key) const
{
    std::uint64_t hash = key.hash();
    const MhtEntry &entry = table[indexOf(hash)];
    if (entry.valid && entry.tag == tagOf(hash))
        return &entry;
    return nullptr;
}

MhtEntry *
MemoryHistoryTable::lookupMutable(const BlockKey &key)
{
    std::uint64_t hash = key.hash();
    MhtEntry &entry = table[indexOf(hash)];
    if (entry.valid && entry.tag == tagOf(hash))
        return &entry;
    return nullptr;
}

MemoryHistoryTable::LearnOutcome
MemoryHistoryTable::learn(const BlockKey &key, RegIndex base_reg,
                          RegVal reg_at_branch, Addr eff_addr,
                          std::uint16_t load_pc_hash)
{
    LearnOutcome outcome;
    std::uint64_t hash = key.hash();
    MhtEntry &entry = table[indexOf(hash)];
    std::uint32_t tag = tagOf(hash);

    if (!entry.valid || entry.tag != tag) {
        // (Re)allocate the whole entry for this block.
        entry.valid = true;
        entry.tag = tag;
        for (auto &reg : entry.regs)
            reg = RegHistoryEntry{};
    }

    // Find the sub-entry for this base register, or a free one.
    RegHistoryEntry *slot = nullptr;
    for (auto &reg : entry.regs) {
        if (reg.valid && reg.regIdx == base_reg) {
            slot = &reg;
            break;
        }
        if (!reg.valid && !slot)
            slot = &reg;
    }
    if (!slot) {
        // All sub-entries taken by other registers: the paper found
        // three sufficient; additional registers are simply not tracked.
        return outcome;
    }

    if (!slot->valid) {
        slot->valid = true;
        slot->regIdx = base_reg;
        slot->regVal = reg_at_branch;
        slot->offset = static_cast<std::int64_t>(eff_addr) -
                       static_cast<std::int64_t>(reg_at_branch);
        slot->loadPcHash = load_pc_hash;
        slot->lastEa = eff_addr;
        slot->lastEaValid = true;
        slot->negPatt = 0;
        slot->posPatt = 0;
        slot->loopCnt = 0;
        slot->loopDelta = 0;
        return outcome;
    }

    if (slot->loadPcHash == load_pc_hash) {
        // Shadow accuracy: would Eq. 2 with the current entry-point
        // register value and the previously learned offset have named
        // this execution's cache block?
        outcome.hadPrior = true;
        std::int64_t predicted =
            static_cast<std::int64_t>(reg_at_branch) + slot->offset;
        outcome.predictionAccurate =
            predicted >= 0 &&
            blockAlign(static_cast<Addr>(predicted)) ==
                blockAlign(eff_addr);
        // The primary load executing again: refresh Offset against the
        // current entry-point register value and train LoopDelta from
        // consecutive effective addresses (paper IV-B.2, Loops).
        if (slot->lastEaValid) {
            slot->loopDelta = static_cast<std::int64_t>(eff_addr) -
                              static_cast<std::int64_t>(slot->lastEa);
        }
        slot->lastEa = eff_addr;
        slot->lastEaValid = true;
        slot->regVal = reg_at_branch;
        slot->offset = static_cast<std::int64_t>(eff_addr) -
                       static_cast<std::int64_t>(reg_at_branch);
        return outcome;
    }

    // A different load off the same base register within the block:
    // record its distance from the primary load in the neg/posPatt
    // vectors, at cache-block granularity (paper IV-B.2, Multiple
    // Loads with the same index).
    if (!slot->lastEaValid)
        return outcome;
    std::int64_t delta_blocks = blockDelta(eff_addr, slot->lastEa);
    if (delta_blocks > 0 &&
        delta_blocks <= static_cast<std::int64_t>(pattBits)) {
        slot->posPatt |= static_cast<std::uint8_t>(
            1u << (delta_blocks - 1));
    } else if (delta_blocks < 0 &&
               -delta_blocks <= static_cast<std::int64_t>(pattBits)) {
        slot->negPatt |= static_cast<std::uint8_t>(
            1u << (-delta_blocks - 1));
    }
    return outcome;
}

std::size_t
MemoryHistoryTable::storageBits() const
{
    std::size_t sub_entry_bits = 5 + 32 + 16 + pattBits + pattBits + 1 +
                                 5 + 16 + 10 /* loadPcHash, see header */;
    return table.size() * (32 + regsPer * sub_entry_bits);
}

} // namespace bfsim::core
