/**
 * @file
 * Internal declarations of the per-benchmark kernel builders plus the
 * small shared helpers they use. Not part of the public API; consumers
 * use workloads/workload.hh.
 */

#ifndef BFSIM_WORKLOADS_KERNELS_HH_
#define BFSIM_WORKLOADS_KERNELS_HH_

#include "isa/assembler.hh"
#include "workloads/workload.hh"

namespace bfsim::workloads::kernels {

/** Data-segment base addresses shared by all kernels. */
constexpr Addr segA = 0x10000000;
constexpr Addr segB = 0x20000000;
constexpr Addr segC = 0x30000000;
constexpr Addr segD = 0x40000000;

/**
 * Emit one 64-bit LCG step: state = state * mul_const + add_const.
 * `mul_const` / `add_const` must already hold the MMIX constants.
 */
inline void
emitLcg(isa::Assembler &as, RegIndex state, RegIndex mul_const,
        RegIndex add_const)
{
    as.mul(state, state, mul_const);
    as.add(state, state, add_const);
}

/** Load the MMIX LCG constants into two registers. */
inline void
emitLcgConstants(isa::Assembler &as, RegIndex mul_const,
                 RegIndex add_const)
{
    as.movi(mul_const,
            static_cast<std::int64_t>(6364136223846793005ULL));
    as.movi(add_const,
            static_cast<std::int64_t>(1442695040888963407ULL));
}

// One builder per paper benchmark (alphabetical, as in Fig. 8).
Workload makeAstar();
Workload makeBwaves();
Workload makeBzip2();
Workload makeCactusADM();
Workload makeCalculix();
Workload makeGamess();
Workload makeGromacs();
Workload makeH264ref();
Workload makeHmmer();
Workload makeLbm();
Workload makeLeslie3d();
Workload makeLibquantum();
Workload makeMcf();
Workload makeMilc();
Workload makeSjeng();
Workload makeSoplex();
Workload makeSphinx();
Workload makeZeusmp();

} // namespace bfsim::workloads::kernels

#endif // BFSIM_WORKLOADS_KERNELS_HH_
