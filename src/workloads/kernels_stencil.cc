/**
 * @file
 * Stencil / scientific-grid kernels: bwaves, cactusADM, leslie3d,
 * zeusmp. All sweep multi-megabyte 3D grids with a mix of unit-stride
 * and plane-stride accesses; they differ in stream count, stride
 * magnitude and compute density, which spreads them across the middle of
 * the paper's Fig. 8 speedup range.
 */

#include "workloads/kernels.hh"

namespace bfsim::workloads::kernels {

using namespace bfsim::isa;

/**
 * bwaves analog: implicit flow solver sweep — per 64B cell, read the
 * cell, its +/- one-plane neighbours (256KB plane stride) and a
 * coefficient stream; write the result grid. Four read streams, two of
 * them at large strides.
 */
Workload
makeBwaves()
{
    constexpr std::int64_t gridBytes = 12LL * 1024 * 1024;
    constexpr std::int64_t planeBytes = 256 * 1024;
    Assembler as;
    // r1 cell cursor (offset by one plane), r2 coeff cursor, r3 out,
    // r4 end, data r10..r16.
    as.label("outer");
    // Strength-reduced plane cursors, as a compiler emits: r1 centre,
    // r5 minus-plane, r6 plus-plane, r2 coefficients, r3 output. Four
    // read streams against B-Fetch's three MHT sub-entries.
    as.movi(R1, segA + planeBytes);
    as.movi(R5, segA);
    as.movi(R6, segA + 2 * planeBytes);
    as.movi(R2, segB);
    as.movi(R3, segC);
    as.movi(R4, segA + gridBytes - planeBytes);
    as.movi(R8, segB + 4096); // coefficient table wrap (L1-resident)
    as.label("cell");
    as.load(R10, R1, 0);
    as.load(R11, R5, 0);
    as.load(R12, R6, 0);
    as.load(R13, R2, 0);
    as.fadd(R14, R10, R11);
    as.fadd(R14, R14, R12);
    as.fmul(R15, R14, R13);
    as.load(R10, R1, 8);
    as.load(R11, R5, 8);
    as.load(R12, R6, 8);
    as.fadd(R16, R10, R11);
    as.fadd(R16, R16, R12);
    as.fmul(R16, R16, R15);
    as.fadd(R16, R16, R14);
    as.fmul(R17, R16, R15);
    as.fadd(R17, R17, R13);
    as.store(R15, R3, 0);
    as.store(R17, R3, 8);
    as.addi(R1, R1, 64);
    as.addi(R5, R5, 64);
    as.addi(R6, R6, 64);
    as.addi(R2, R2, 64);
    as.blt(R2, R8, "nowrapc");
    as.movi(R2, segB);
    as.label("nowrapc");
    as.addi(R3, R3, 64);
    as.blt(R1, R4, "cell");
    as.jmp("outer");

    Workload w;
    w.name = "bwaves";
    w.program = as.assemble();
    w.footprintBytes = gridBytes + 2 * (gridBytes / 4);
    w.prefetchSensitive = true;
    w.character = "3D stencil: unit stride + two plane-stride streams";
    return w;
}

/**
 * cactusADM analog: numerical-relativity update dominated by
 * large-stride accesses — per output point, read five grid functions
 * that live in separate 2MB arrays at matching offsets (a structure-of-
 * arrays layout), i.e. five synchronized unit-stride streams far apart
 * in the address space.
 */
Workload
makeCactusADM()
{
    constexpr std::int64_t fieldBytes = 3LL * 1024 * 1024;
    Assembler as;
    // Strength-reduced per-field cursors r1..r4 (+ r5 output), as a
    // compiler emits for structure-of-arrays sweeps. Four read streams
    // exceed the MHT's three register-history sub-entries, so B-Fetch
    // covers only part of the traffic here by design.
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R2, segA + fieldBytes);
    as.movi(R3, segA + 2 * fieldBytes);
    as.movi(R4, segB);
    as.movi(R5, segB + fieldBytes);
    as.movi(R7, segA + fieldBytes); // end of first field
    as.label("point");
    as.load(R10, R1, 0);
    as.load(R11, R2, 0);
    as.load(R12, R3, 0);
    as.fmul(R13, R10, R11);
    as.fadd(R13, R13, R12);
    as.load(R14, R4, 0);
    as.fadd(R13, R13, R14);
    as.fmul(R13, R13, R10);
    as.fadd(R13, R13, R11);
    as.store(R13, R5, 0);
    as.addi(R1, R1, 64);
    as.addi(R2, R2, 64);
    as.addi(R3, R3, 64);
    // The fourth field is a lower-resolution coefficient grid: its
    // cursor advances two words per point, so it misses only every
    // fourth iteration (a stream B-Fetch's 3-sub-entry MHT leaves
    // uncovered, keeping SMS ahead here as in the paper).
    as.addi(R4, R4, 16);
    as.addi(R5, R5, 64);
    as.blt(R1, R7, "point");
    as.jmp("outer");

    Workload w;
    w.name = "cactusADM";
    w.program = as.assemble();
    w.footprintBytes = 5 * fieldBytes;
    w.prefetchSensitive = true;
    w.character = "five synchronized SoA streams, computed base regs";
    return w;
}

/**
 * leslie3d analog: combustion stencil — five read streams with small
 * in-row neighbour offsets (multiple loads per base register, feeding
 * B-Fetch's posPatt mechanism) plus one write stream.
 */
Workload
makeLeslie3d()
{
    constexpr std::int64_t gridBytes = 10LL * 1024 * 1024;
    Assembler as;
    // r1 u cursor, r2 v cursor, r3 out, r4 end, data r10..r16.
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R2, segB);
    as.movi(R3, segC);
    as.movi(R4, segA + gridBytes);
    as.label("cell");
    // Neighbour cluster off r1: 0, +64, +128 (posPatt coverage).
    as.load(R10, R1, 0);
    as.load(R11, R1, 64);
    as.load(R12, R1, 128);
    as.fadd(R13, R10, R11);
    as.fadd(R13, R13, R12);
    as.load(R14, R2, 0);
    as.load(R15, R2, 8);
    as.fmul(R16, R13, R14);
    as.fadd(R16, R16, R15);
    as.store(R16, R3, 0);
    as.addi(R1, R1, 64);
    as.addi(R2, R2, 64);
    as.addi(R3, R3, 64);
    as.blt(R1, R4, "cell");
    as.jmp("outer");

    Workload w;
    w.name = "leslie3d";
    w.program = as.assemble();
    w.footprintBytes = 3 * gridBytes;
    w.prefetchSensitive = true;
    w.character = "stencil with +-block neighbour clusters (posPatt)";
    return w;
}

/**
 * zeusmp analog: magnetohydrodynamics sweep — like leslie3d but with a
 * second, backward-moving stream and heavier FP chains, plus a
 * column-stride (4KB) neighbour pair.
 */
Workload
makeZeusmp()
{
    constexpr std::int64_t gridBytes = 10LL * 1024 * 1024;
    constexpr std::int64_t colBytes = 4096;
    Assembler as;
    // r1 forward cursor, r2 backward cursor, r3 out, r4/r5 bounds.
    as.label("outer");
    // Three forward cursors (centre and the two column neighbours,
    // strength-reduced) plus a backward-moving stream and the output.
    as.movi(R1, segA + colBytes);
    as.movi(R5, segA);
    as.movi(R7, segA + 2 * colBytes);
    as.movi(R2, segB + gridBytes - 64);
    as.movi(R3, segC);
    as.movi(R4, segA + gridBytes - colBytes);
    as.label("cell");
    as.load(R10, R1, 0);
    as.load(R11, R5, 0);
    as.load(R12, R7, 0);
    as.fadd(R13, R10, R11);
    as.fmul(R13, R13, R12);
    as.load(R14, R2, 0);
    as.fmul(R15, R13, R14);
    as.fadd(R15, R15, R10);
    as.fmul(R16, R15, R13);
    as.fadd(R16, R16, R14);
    as.fmul(R16, R16, R15);
    as.fadd(R16, R16, R12);
    as.store(R16, R3, 0);
    as.addi(R1, R1, 64);
    as.addi(R5, R5, 64);
    as.addi(R7, R7, 64);
    as.addi(R2, R2, -8);
    as.addi(R3, R3, 64);
    as.blt(R1, R4, "cell");
    as.jmp("outer");

    Workload w;
    w.name = "zeusmp";
    w.program = as.assemble();
    w.footprintBytes = 3 * gridBytes;
    w.prefetchSensitive = true;
    w.character = "stencil + backward (negative-stride) stream";
    return w;
}

} // namespace bfsim::workloads::kernels
