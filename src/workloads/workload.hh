/**
 * @file
 * The synthetic SPEC CPU2006 analog suite.
 *
 * The paper evaluates 18 SPEC CPU2006 benchmarks compiled for ALPHA.
 * Lacking SPEC binaries and traces, the suite here provides one
 * micro-ISA kernel per paper benchmark, each engineered to reproduce the
 * memory/branch *character* that determines prefetcher behaviour for
 * that benchmark class (streaming, strided stencils, spatial-region
 * clustering, pointer chasing, DP-table walks, hash probing, L1-resident
 * compute, ...). The kernels produce genuine basic blocks, register
 * dataflow and effective addresses, so every B-Fetch mechanism (BrTC
 * linking, MHT offset learning, loop deltas, neg/posPatt, per-load
 * filtering) is exercised on real control flow rather than statistics.
 * DESIGN.md section 2 documents this substitution.
 *
 * Every kernel runs in an infinite outer loop so the harness can apply
 * any instruction budget; footprints are sized relative to the paper's
 * 2MB/core LLC (Table II) to land each benchmark in its intended slice
 * of the hierarchy.
 */

#ifndef BFSIM_WORKLOADS_WORKLOAD_HH_
#define BFSIM_WORKLOADS_WORKLOAD_HH_

#include <string>
#include <vector>

#include "isa/program.hh"

namespace bfsim::workloads {

/** One benchmark of the suite. */
struct Workload
{
    std::string name;           ///< paper benchmark it stands in for
    isa::Program program;
    std::size_t footprintBytes; ///< approximate data working set
    /**
     * True when the paper's Fig. 1 "Perfect" prefetcher materially
     * speeds the benchmark up (the "geomean pf. sens." subset).
     * Verified against our own Perfect runs in bench/fig01.
     */
    bool prefetchSensitive;
    std::string character;      ///< one-line behavioural description
};

/** All 18 workloads, built once and cached (alphabetical, as in Fig. 8). */
const std::vector<Workload> &allWorkloads();

/** Look up a workload by name; fatal if unknown. */
const Workload &workloadByName(const std::string &name);

/** Names of all workloads in suite order. */
std::vector<std::string> workloadNames();

/** Names of the prefetch-sensitive subset. */
std::vector<std::string> prefetchSensitiveNames();

} // namespace bfsim::workloads

#endif // BFSIM_WORKLOADS_WORKLOAD_HH_
