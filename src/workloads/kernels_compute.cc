/**
 * @file
 * Compute-bound / cache-resident kernels: bzip2, calculix, gamess.
 * These anchor the low end of the paper's Fig. 1 sensitivity spectrum —
 * gamess and calculix barely benefit even from the Perfect prefetcher,
 * and bzip2 is limited by branch behaviour rather than memory latency.
 */

#include "workloads/kernels.hh"

#include "common/rng.hh"

namespace bfsim::workloads::kernels {

using namespace bfsim::isa;

/**
 * bzip2 analog: block-sorting compression pass — sequential sweep over
 * a random 2MB buffer with a data-dependent three-way branch per word
 * deciding which transform applies. Memory is easy (unit stride); the
 * unpredictable branches are the bottleneck, so prefetchers gain only
 * modestly and B-Fetch's path confidence collapses early (by design).
 */
Workload
makeBzip2()
{
    constexpr std::int64_t bufBytes = 64LL * 1024;
    Assembler as;
    // r1 in cursor, r3 out cursor, r4 end, data r10..r13.
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R3, segB);
    as.movi(R4, segA + bufBytes);
    as.label("word");
    as.load(R10, R1, 0);
    as.andi(R11, R10, 3);
    as.beq(R11, R0, "literal");
    as.cmpeqi(R12, R11, 1);
    as.bne(R12, R0, "runlen");
    // Transform path: rotate-and-mix.
    as.slli(R13, R10, 7);
    as.srli(R10, R10, 3);
    as.xor_(R10, R10, R13);
    as.jmp("emit");
    as.label("runlen");
    as.addi(R10, R10, 0x101);
    as.jmp("emit");
    as.label("literal");
    as.xori(R10, R10, 0xff);
    as.label("emit");
    as.store(R10, R3, 0);
    as.addi(R1, R1, 8);
    as.addi(R3, R3, 8);
    as.blt(R1, R4, "word");
    as.jmp("outer");

    // Literal-dominated input (~85% path A), as in real compression
    // streams: branches are data-dependent but biased.
    Rng rng(0x627a697032ULL); // "bzip2"
    for (std::int64_t off = 0; off < bufBytes; off += 8) {
        std::uint64_t word = rng.next() & ~0x3ULL;
        if (!rng.chance(0.85))
            word |= 1 + rng.below(3);
        as.data(segA + off, word);
    }

    Workload w;
    w.name = "bzip2";
    w.program = as.assemble();
    w.footprintBytes = 2 * bufBytes;
    w.prefetchSensitive = false;
    w.character = "sequential buffer, unpredictable 3-way branches";
    return w;
}

/**
 * calculix analog: finite-element solve — repeated blocked
 * matrix-vector products over a ~384KB structure (L2-resident after
 * the first pass), dense FP chains. Little main-memory traffic in
 * steady state, so prefetching moves little.
 */
Workload
makeCalculix()
{
    constexpr std::int64_t matBytes = 256LL * 1024;
    constexpr std::int64_t vecBytes = 64LL * 1024;
    Assembler as;
    // r1 matrix cursor, r2 vector cursor, r4/r5 ends, r6 acc.
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R4, segA + matBytes);
    as.label("rowblock");
    as.movi(R2, segB);
    as.movi(R5, segB + vecBytes);
    as.label("col");
    as.load(R10, R1, 0);
    as.load(R11, R2, 0);
    as.fmul(R12, R10, R11);
    as.fadd(R6, R6, R12);
    as.load(R10, R1, 8);
    as.load(R11, R2, 8);
    as.fmul(R12, R10, R11);
    as.fadd(R6, R6, R12);
    as.addi(R1, R1, 16);
    as.addi(R2, R2, 16);
    as.blt(R2, R5, "col");
    as.blt(R1, R4, "rowblock");
    as.jmp("outer");

    Workload w;
    w.name = "calculix";
    w.program = as.assemble();
    w.footprintBytes = matBytes + vecBytes;
    w.prefetchSensitive = false;
    w.character = "L2-resident blocked matvec, FP-chain bound";
    return w;
}

/**
 * gamess analog: quantum-chemistry integral evaluation — polynomial
 * recurrences over a 16KB coefficient table, entirely L1-resident.
 * The Fig. 1 baseline case where even a perfect prefetcher buys ~0%.
 */
Workload
makeGamess()
{
    constexpr std::int64_t coefBytes = 16LL * 1024;
    Assembler as;
    // r1 coefficient cursor, r4 end, r6/r7/r8 accumulators.
    as.movi(R8, 3);
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R4, segA + coefBytes);
    as.label("term");
    as.load(R10, R1, 0);
    as.fmul(R6, R6, R10);
    as.fadd(R6, R6, R8);
    as.fmul(R7, R7, R6);
    as.fadd(R7, R7, R10);
    as.fmul(R6, R6, R7);
    as.fadd(R6, R6, R8);
    as.fmul(R7, R7, R6);
    as.fadd(R7, R7, R10);
    as.addi(R1, R1, 8);
    as.blt(R1, R4, "term");
    as.jmp("outer");

    Workload w;
    w.name = "gamess";
    w.program = as.assemble();
    w.footprintBytes = coefBytes;
    w.prefetchSensitive = false;
    w.character = "L1-resident FP recurrence, zero memory pressure";
    return w;
}

} // namespace bfsim::workloads::kernels
