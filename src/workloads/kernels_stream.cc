/**
 * @file
 * Streaming-dominated kernels: libquantum, lbm, sphinx3, hmmer.
 * These are the strongly prefetch-sensitive benchmarks of Fig. 1 — long
 * unit-stride sweeps over multi-megabyte arrays with highly predictable
 * loop branches, where every prefetcher gains and timeliness decides the
 * ranking.
 */

#include "workloads/kernels.hh"

#include <algorithm>

#include "common/rng.hh"

namespace bfsim::workloads::kernels {

using namespace bfsim::isa;

/**
 * libquantum analog: quantum gate application — sweep a 32MB amplitude
 * array, conditionally toggling each amplitude against a gate mask.
 * One 64B block per iteration, a single-BB loop body: the ideal case for
 * B-Fetch's LoopDelta mechanism and for stride prefetching alike.
 */
Workload
makeLibquantum()
{
    constexpr std::int64_t arrayBytes = 32LL * 1024 * 1024;
    Assembler as;
    // r1 cursor, r2 end, r3 mask, r4..r11 data temps.
    as.movi(R3, 0x5a5a5a5aLL);
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R2, segA + arrayBytes);
    as.label("sweep");
    // Process one cache block (8 words) per iteration.
    as.load(R4, R1, 0);
    as.load(R5, R1, 8);
    as.load(R6, R1, 16);
    as.load(R7, R1, 24);
    as.xor_(R4, R4, R3);
    as.xor_(R5, R5, R3);
    as.store(R4, R1, 0);
    as.store(R5, R1, 8);
    as.load(R8, R1, 32);
    as.load(R9, R1, 40);
    as.load(R10, R1, 48);
    as.load(R11, R1, 56);
    as.xor_(R8, R8, R3);
    as.store(R8, R1, 32);
    as.addi(R1, R1, 64);
    as.blt(R1, R2, "sweep");
    as.jmp("outer");

    Workload w;
    w.name = "libquantum";
    w.program = as.assemble();
    w.footprintBytes = arrayBytes;
    w.prefetchSensitive = true;
    w.character = "pure 64B/iter streaming sweep, single-BB loop";
    return w;
}

/**
 * lbm analog: lattice-Boltzmann stream step — read two source
 * distributions, combine, write a destination grid. Three concurrent
 * unit-stride streams over 8MB arrays (24MB total).
 */
Workload
makeLbm()
{
    constexpr std::int64_t gridBytes = 8LL * 1024 * 1024;
    Assembler as;
    // r1/r2 source cursors, r3 dest cursor, r4 end, data r10..r17.
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R2, segB);
    as.movi(R3, segC);
    as.movi(R4, segA + gridBytes);
    as.label("stream");
    as.load(R10, R1, 0);
    as.load(R11, R2, 0);
    as.fadd(R12, R10, R11);
    as.load(R13, R1, 8);
    as.load(R14, R2, 8);
    as.fadd(R15, R13, R14);
    as.store(R12, R3, 0);
    as.store(R15, R3, 8);
    as.load(R10, R1, 24);
    as.load(R11, R2, 40);
    as.fmul(R16, R10, R11);
    as.store(R16, R3, 24);
    as.load(R13, R1, 56);
    as.load(R14, R2, 56);
    as.fadd(R17, R13, R14);
    as.store(R17, R3, 56);
    as.addi(R1, R1, 64);
    as.addi(R2, R2, 64);
    as.addi(R3, R3, 64);
    as.blt(R1, R4, "stream");
    as.jmp("outer");

    Workload w;
    w.name = "lbm";
    w.program = as.assemble();
    w.footprintBytes = 3 * gridBytes;
    w.prefetchSensitive = true;
    w.character = "three concurrent unit-stride streams + stores";
    return w;
}

/**
 * sphinx3 analog: acoustic scoring — for each 64B feature frame
 * (sequential over 2MB), score it against a block of a 4MB Gaussian
 * table, which is re-streamed in 8KB senone chunks. Two-level loop
 * nest with different reuse distances.
 */
Workload
makeSphinx()
{
    constexpr std::int64_t featBytes = 2LL * 1024 * 1024;
    constexpr std::int64_t gaussBytes = 4LL * 1024 * 1024;
    constexpr std::int64_t chunkBytes = 8 * 1024;
    Assembler as;
    // r1 feature cursor, r2 gauss cursor, r3 chunk end, r4 gauss end,
    // r5 feature end, r6 accumulator, data r10..r13.
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R5, segA + featBytes);
    as.movi(R2, segB);
    as.movi(R4, segB + gaussBytes);
    as.label("frame");
    as.load(R10, R1, 0);
    as.load(R11, R1, 32);
    // Score against one chunk of the Gaussian table.
    as.addi(R3, R2, chunkBytes);
    as.label("chunk");
    as.load(R12, R2, 0);
    as.fmul(R13, R12, R10);
    as.fadd(R6, R6, R13);
    as.load(R14, R2, 32);
    as.fmul(R15, R14, R11);
    as.fadd(R6, R6, R15);
    // Gaussian log-likelihood arithmetic per senone component.
    as.fmul(R16, R13, R15);
    as.fadd(R16, R16, R12);
    as.fmul(R17, R16, R10);
    as.fadd(R17, R17, R14);
    as.fmul(R18, R17, R16);
    as.fadd(R18, R18, R13);
    as.fmul(R19, R18, R11);
    as.fadd(R6, R6, R19);
    as.addi(R2, R2, 64);
    as.blt(R2, R3, "chunk");
    // Wrap the Gaussian cursor when the table is exhausted.
    as.blt(R2, R4, "nowrap");
    as.movi(R2, segB);
    as.label("nowrap");
    as.addi(R1, R1, 64);
    as.blt(R1, R5, "frame");
    as.jmp("outer");

    Workload w;
    w.name = "sphinx";
    w.program = as.assemble();
    w.footprintBytes = featBytes + gaussBytes;
    w.prefetchSensitive = true;
    w.character = "blocked re-streaming of a large table per frame";
    return w;
}

/**
 * hmmer analog: Viterbi dynamic-programming row sweep — three read
 * streams (previous row, transition scores, match scores) and one write
 * stream, with a max-selection branch in the inner loop whose direction
 * depends on data (moderately predictable).
 */
Workload
makeHmmer()
{
    constexpr std::int64_t rowBytes = 4LL * 1024 * 1024;
    Assembler as;
    // r1 prev-row, r2 score, r3 out, r4 end cursor, data r10..r14.
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R2, segB);
    as.movi(R3, segC);
    as.movi(R4, segA + rowBytes);
    as.label("row");
    as.load(R10, R1, 0);
    as.load(R11, R1, 8);
    as.load(R12, R2, 0);
    // dp = max(prev[j], prev[j-1]) + score[j]
    as.cmplt(R13, R10, R11);
    as.beq(R13, R0, "takeleft");
    as.add(R14, R11, R12);
    as.jmp("emit");
    as.label("takeleft");
    as.add(R14, R10, R12);
    as.label("emit");
    as.store(R14, R3, 0);
    as.load(R10, R1, 32);
    as.load(R12, R2, 32);
    as.add(R14, R10, R12);
    as.store(R14, R3, 32);
    as.addi(R1, R1, 64);
    as.addi(R2, R2, 64);
    as.addi(R3, R3, 64);
    as.blt(R1, R4, "row");
    as.jmp("outer");

    // Seed the previous-row array with pseudo-random scores so the
    // max-selection branch is data-dependent but biased (~88% one way),
    // like real profile-HMM score comparisons.
    Rng rng(0x686d6d6572ULL); // "hmmer"
    for (std::int64_t off = 0; off < rowBytes; off += 64) {
        std::uint64_t left = rng.next() & 0xffff;
        std::uint64_t right = rng.chance(0.88)
                                  ? left + 1 + rng.below(256)
                                  : left - std::min<std::uint64_t>(
                                               left, 1 + rng.below(256));
        as.data(segA + off, left);
        as.data(segA + off + 8, right);
    }

    Workload w;
    w.name = "hmmer";
    w.program = as.assemble();
    w.footprintBytes = 3 * rowBytes;
    w.prefetchSensitive = true;
    w.character = "DP row sweep, 3 streams + data-dependent max branch";
    return w;
}

} // namespace bfsim::workloads::kernels
