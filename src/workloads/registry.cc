#include "workloads/workload.hh"

#include "common/sim_error.hh"
#include "workloads/kernels.hh"

namespace bfsim::workloads {

const std::vector<Workload> &
allWorkloads()
{
    // Built once; kernel construction includes multi-megabyte data
    // images (mcf's permutation cycle, soplex's index array, ...).
    static const std::vector<Workload> suite = [] {
        using namespace kernels;
        std::vector<Workload> w;
        w.push_back(makeAstar());
        w.push_back(makeBwaves());
        w.push_back(makeBzip2());
        w.push_back(makeCactusADM());
        w.push_back(makeCalculix());
        w.push_back(makeGamess());
        w.push_back(makeGromacs());
        w.push_back(makeH264ref());
        w.push_back(makeHmmer());
        w.push_back(makeLbm());
        w.push_back(makeLeslie3d());
        w.push_back(makeLibquantum());
        w.push_back(makeMcf());
        w.push_back(makeMilc());
        w.push_back(makeSjeng());
        w.push_back(makeSoplex());
        w.push_back(makeSphinx());
        w.push_back(makeZeusmp());
        return w;
    }();
    return suite;
}

const Workload &
workloadByName(const std::string &name)
{
    for (const auto &w : allWorkloads())
        if (w.name == name)
            return w;
    throw SimError("workloads", "unknown workload '" + name + "'");
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : allWorkloads())
        names.push_back(w.name);
    return names;
}

std::vector<std::string>
prefetchSensitiveNames()
{
    std::vector<std::string> names;
    for (const auto &w : allWorkloads())
        if (w.prefetchSensitive)
            names.push_back(w.name);
    return names;
}

} // namespace bfsim::workloads
