/**
 * @file
 * Irregular-access kernels: astar, gromacs, h264ref, mcf, milc, sjeng,
 * soplex. These stress the accuracy side of prefetching — pointer
 * chasing, gathers, hash probes and spatial-region clustering — and
 * reproduce the paper's hard cases (mcf/sjeng: little gain for anyone;
 * milc: the SMS-favourable corner case; h264ref: spatial locality).
 */

#include "workloads/kernels.hh"

#include <vector>

#include "common/rng.hh"

namespace bfsim::workloads::kernels {

using namespace bfsim::isa;

/**
 * mcf analog: network-simplex arc scan — pointer chase through a
 * permutation cycle of 64B nodes spread over 16MB, with a
 * data-dependent branch on each node's key. Loads depend on loads;
 * only one-step-ahead address speculation is possible, and the EA
 * stride between iterations is noise (defeating Stride and B-Fetch's
 * LoopDelta alike, as in the paper).
 */
Workload
makeMcf()
{
    constexpr std::int64_t nodeCount = 256 * 1024; // 16MB at 64B/node
    constexpr std::int64_t arcBytes = 8LL * 1024 * 1024;
    Assembler as;
    // r1 current node pointer, r3 arc-cost cursor (sequential pricing
    // scan, the regular half of real mcf), r6 accumulator.
    as.movi(R1, segA);
    as.movi(R3, segB);
    as.movi(R4, segB + arcBytes);
    as.label("chase");
    as.load(R2, R1, 0);   // next pointer
    as.load(R10, R1, 8);  // node key
    as.load(R11, R1, 16); // node cost
    as.load(R12, R3, 0);  // arc cost (sequential stream)
    as.load(R13, R3, 8);  // arc capacity
    as.add(R14, R12, R13);
    as.andi(R15, R10, 1);
    as.beq(R15, R0, "skip");
    as.add(R6, R6, R11);
    as.add(R6, R6, R14);
    as.label("skip");
    as.addi(R3, R3, 64);
    as.blt(R3, R4, "nowrap");
    as.movi(R3, segB);
    as.label("nowrap");
    as.add(R1, R2, R0);   // advance to next node
    as.jmp("chase");

    // Build a random permutation cycle over the nodes.
    Rng rng(0x6d6366ULL); // "mcf"
    std::vector<std::uint32_t> order(nodeCount);
    for (std::int64_t i = 0; i < nodeCount; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    for (std::int64_t i = nodeCount - 1; i > 0; --i) {
        std::uint64_t j = rng.below(static_cast<std::uint64_t>(i + 1));
        std::swap(order[i], order[j]);
    }
    for (std::int64_t i = 0; i < nodeCount; ++i) {
        Addr node = segA + static_cast<Addr>(order[i]) * 64;
        Addr next =
            segA + static_cast<Addr>(order[(i + 1) % nodeCount]) * 64;
        as.data(node, next);
        as.data(node + 8, rng.next() & 0xffff);
        as.data(node + 16, rng.next() & 0xff);
    }

    Workload w;
    w.name = "mcf";
    w.program = as.assemble();
    w.footprintBytes = nodeCount * 64 + arcBytes;
    w.prefetchSensitive = true;
    w.character = "pointer chase over 16MB, data-dependent branch";
    return w;
}

/**
 * astar analog: grid pathfinding — a regular sweep over an open-list
 * array interleaved with data-dependent jumps into an 8MB grid (the
 * neighbour whose index is loaded from the current cell), plus branchy
 * cost comparisons.
 */
Workload
makeAstar()
{
    constexpr std::int64_t listBytes = 2LL * 1024 * 1024;
    constexpr std::int64_t gridBytes = 8LL * 1024 * 1024;
    Assembler as;
    // r1 open-list cursor, r4 end, r20 grid base, r21 index mask.
    as.movi(R20, segB);
    as.movi(R21, (gridBytes / 64) - 1);
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R4, segA + listBytes);
    as.label("expand");
    as.load(R10, R1, 0);  // node id / cost word
    as.load(R11, R1, 8);  // heuristic word
    // Grid cell for this node: data-dependent block index.
    as.and_(R12, R10, R21);
    as.slli(R12, R12, 6);
    as.add(R13, R20, R12);
    as.load(R14, R13, 0); // neighbour indices
    as.load(R15, R13, 8); // terrain cost
    as.add(R16, R14, R15);
    as.cmplt(R17, R16, R11);
    as.beq(R17, R0, "worse");
    as.store(R16, R13, 16);
    as.label("worse");
    as.addi(R1, R1, 16);
    as.blt(R1, R4, "expand");
    as.jmp("outer");

    // Random node ids / heuristics drive the grid jumps and branches.
    Rng rng(0x6173746172ULL); // "astar"
    for (std::int64_t off = 0; off < listBytes; off += 16) {
        as.data(segA + off, rng.next());
        as.data(segA + off + 8, rng.next() & 0x3ff);
    }

    Workload w;
    w.name = "astar";
    w.program = as.assemble();
    w.footprintBytes = listBytes + gridBytes;
    w.prefetchSensitive = true;
    w.character = "sequential open list + data-dependent grid gather";
    return w;
}

/**
 * sjeng analog: game-tree search — LCG-driven probes into a 2MB
 * transposition table with several poorly-predictable branches per
 * probe and a small L1-resident board array. Nobody prefetches the
 * probe stream well; the per-load filter must learn to stand down.
 */
Workload
makeSjeng()
{
    constexpr std::int64_t tableBytes = 2LL * 1024 * 1024;
    Assembler as;
    // r7 LCG state, r20/r21 LCG constants, r22 table base, r23 mask,
    // r24 board base (L1-resident).
    emitLcgConstants(as, R20, R21);
    as.movi(R7, 0x2a2a2a2aLL);
    as.movi(R22, segA);
    as.movi(R23, (tableBytes / 64) - 1);
    as.movi(R24, segC);
    as.label("probe");
    emitLcg(as, R7, R20, R21);
    as.srli(R10, R7, 17);
    as.and_(R10, R10, R23);
    as.slli(R10, R10, 6);
    as.add(R11, R22, R10);
    as.load(R12, R11, 0);  // table entry
    as.load(R13, R11, 8);
    as.andi(R14, R7, 7);
    as.cmplti(R15, R14, 5);
    as.beq(R15, R0, "cutoff");
    // "Evaluate": touch the small board array.
    as.andi(R16, R7, 0x3f8);
    as.add(R17, R24, R16);
    as.load(R18, R17, 0);
    as.add(R12, R12, R18);
    as.store(R12, R11, 0);
    as.label("cutoff");
    as.andi(R14, R13, 1);
    as.beq(R14, R0, "probe");
    as.xori(R7, R7, 0x55);
    as.jmp("probe");

    Workload w;
    w.name = "sjeng";
    w.program = as.assemble();
    w.footprintBytes = tableBytes + 1024;
    w.prefetchSensitive = true;
    w.character = "random transposition-table probes, branchy";
    return w;
}

/**
 * soplex analog: sparse matrix-vector product — sequential index and
 * value streams plus an indirect gather into a 4MB dense vector. The
 * streams prefetch well; the gather does not (its base register is
 * computed from a loaded index inside the same block).
 */
Workload
makeSoplex()
{
    constexpr std::int64_t nnzBytes = 4LL * 1024 * 1024;
    constexpr std::int64_t vecBytes = 4LL * 1024 * 1024;
    Assembler as;
    // r1 index cursor, r2 value cursor, r4 end, r20 vec base, r6 acc.
    as.movi(R20, segC);
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R2, segB);
    as.movi(R4, segA + nnzBytes);
    as.label("nnz");
    as.load(R10, R1, 0);  // column index
    as.load(R11, R2, 0);  // matrix value
    as.slli(R12, R10, 3);
    as.add(R13, R20, R12);
    as.load(R14, R13, 0); // x[col] gather
    as.fmul(R15, R11, R14);
    as.fadd(R6, R6, R15);
    as.load(R10, R1, 8);
    as.load(R11, R2, 8);
    as.slli(R12, R10, 3);
    as.add(R13, R20, R12);
    as.load(R14, R13, 0);
    as.fmul(R15, R11, R14);
    as.fadd(R6, R6, R15);
    as.addi(R1, R1, 16);
    as.addi(R2, R2, 16);
    as.blt(R1, R4, "nnz");
    as.jmp("outer");

    // Column indices: random within the dense vector.
    Rng rng(0x736f706c6578ULL); // "soplex"
    constexpr std::int64_t vecWords = vecBytes / 8;
    for (std::int64_t off = 0; off < nnzBytes; off += 8)
        as.data(segA + off, rng.below(vecWords));

    Workload w;
    w.name = "soplex";
    w.program = as.assemble();
    w.footprintBytes = nnzBytes * 2 + vecBytes;
    w.prefetchSensitive = true;
    w.character = "two streams + random gather through loaded index";
    return w;
}

/**
 * gromacs analog: molecular-dynamics force loop — a sequential pair
 * list yields neighbour indices confined to a sliding window (spatial
 * locality), each gathering a 64B particle record, followed by a dense
 * FP force computation.
 */
Workload
makeGromacs()
{
    constexpr std::int64_t pairBytes = 4LL * 1024 * 1024;
    constexpr std::int64_t particleBytes = 4LL * 1024 * 1024;
    Assembler as;
    // r1 pair cursor, r4 end, r20 particle base, r6/r7 force acc.
    as.movi(R20, segB);
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R4, segA + pairBytes);
    as.label("pair");
    as.load(R10, R1, 0);  // neighbour block index (pre-scaled)
    as.slli(R11, R10, 6);
    as.add(R12, R20, R11);
    as.load(R13, R12, 0); // position x
    as.load(R14, R12, 8); // position y
    as.fmul(R15, R13, R13);
    as.fmul(R16, R14, R14);
    as.fadd(R15, R15, R16);
    as.fmul(R17, R15, R13);
    as.fadd(R6, R6, R17);
    as.fadd(R7, R7, R15);
    as.addi(R1, R1, 8);
    as.blt(R1, R4, "pair");
    as.jmp("outer");

    // Pair list: indices walk forward with small random jitter, the
    // cell-list locality real MD neighbour lists exhibit.
    Rng rng(0x67726f6dULL); // "grom"
    constexpr std::int64_t particleBlocks = particleBytes / 64;
    std::int64_t center = 0;
    for (std::int64_t off = 0; off < pairBytes; off += 8) {
        std::int64_t jitter =
            static_cast<std::int64_t>(rng.below(32)) - 16;
        std::int64_t idx =
            (center + jitter + particleBlocks) % particleBlocks;
        as.data(segA + off, static_cast<std::uint64_t>(idx));
        if ((off & 0x1f8) == 0x1f8)
            center = (center + 1) % particleBlocks;
    }

    Workload w;
    w.name = "gromacs";
    w.program = as.assemble();
    w.footprintBytes = pairBytes + particleBytes;
    w.prefetchSensitive = true;
    w.character = "pair-list gather with sliding-window locality";
    return w;
}

/**
 * h264ref analog: motion estimation — for each macroblock, a reference
 * window confined to one 2KB-aligned region is sampled at several
 * offsets and compared against the current block; windows advance
 * sequentially. Strong spatial-region behaviour.
 */
Workload
makeH264ref()
{
    constexpr std::int64_t refBytes = 6LL * 1024 * 1024;
    constexpr std::int64_t windowBytes = 2048;
    Assembler as;
    // r1 window base, r4 end, r24 current-block base (L1-resident),
    // r6 SAD accumulator.
    as.movi(R24, segC);
    as.label("outer");
    as.movi(R1, segA);
    as.movi(R4, segA + refBytes);
    as.label("window");
    as.load(R16, R24, 0); // current-block reference sample
    // Candidate loop: sweep the window in 256B steps, comparing a
    // 2-block neighbourhood per candidate (B-Fetch: LoopDelta 256 +
    // posPatt; SMS: one dense region pattern).
    as.addi(R2, R1, 0);
    as.add(R3, R1, R0);
    as.addi(R3, R3, windowBytes);
    as.label("cand");
    as.load(R10, R2, 0);
    as.load(R11, R2, 64);
    // SAD-style absolute-difference accumulation over the candidate
    // pair (pixel arithmetic dominates real motion estimation).
    as.sub(R10, R10, R16);
    as.sub(R11, R11, R16);
    as.srli(R12, R10, 8);
    as.xor_(R10, R10, R12);
    as.srli(R13, R11, 8);
    as.xor_(R11, R11, R13);
    as.and_(R12, R10, R11);
    as.or_(R13, R10, R11);
    as.add(R14, R12, R13);
    as.slli(R15, R14, 2);
    as.xor_(R14, R14, R15);
    as.srli(R15, R14, 4);
    as.add(R14, R14, R15);
    as.slli(R15, R14, 1);
    as.xor_(R14, R14, R15);
    as.srli(R15, R14, 3);
    as.add(R14, R14, R15);
    as.xor_(R14, R14, R12);
    as.add(R14, R14, R13);
    as.add(R6, R6, R10);
    as.add(R6, R6, R11);
    as.add(R6, R6, R14);
    as.addi(R2, R2, 256);
    as.blt(R2, R3, "cand");
    as.addi(R1, R1, windowBytes);
    as.blt(R1, R4, "window");
    as.jmp("outer");

    Workload w;
    w.name = "h264ref";
    w.program = as.assemble();
    w.footprintBytes = refBytes;
    w.prefetchSensitive = true;
    w.character = "sparse sampling of sequential 2KB windows";
    return w;
}

/**
 * milc analog: lattice QCD su3 computation. Sites are 2KB-aligned
 * records visited in a *shuffled* order through a sequential
 * site-pointer table (real milc gathers neighbours through index
 * tables). Each visit sweeps the site record in 256B steps with su3
 * arithmetic between touches, so one region's consumption spans several
 * hundred cycles.
 *
 * This is the paper's SMS-favourable corner case (V-B.1): a single SMS
 * pattern covers the whole 2KB region from the trigger touch, while the
 * shuffled site order defeats per-PC strides across sites and B-Fetch
 * only reaches the tail of the sweep once the site pointer resolves.
 */
Workload
makeMilc()
{
    constexpr std::int64_t latticeBytes = 12LL * 1024 * 1024;
    constexpr std::int64_t siteBytes = 2048;
    constexpr std::int64_t siteCount = latticeBytes / siteBytes;
    Assembler as;
    // r3 site-pointer-table cursor, r4 table end, r2 in-site cursor,
    // r5 site end, r6 accumulator.
    as.label("outer");
    as.movi(R3, segD);
    as.movi(R4, segD + siteCount * 8);
    as.label("site");
    as.load(R2, R3, 0);         // site base pointer (gather table)
    as.addi(R5, R2, siteBytes);
    as.label("sweep");
    as.load(R10, R2, 0);
    as.load(R11, R2, 8);
    as.fmul(R12, R10, R11);
    as.fadd(R12, R12, R10);
    as.fmul(R13, R12, R11);
    as.fadd(R13, R13, R12);
    as.fmul(R14, R13, R12);
    as.fadd(R6, R6, R14);
    as.addi(R2, R2, 64);
    as.blt(R2, R5, "sweep");
    as.addi(R3, R3, 8);
    as.blt(R3, R4, "site");
    as.jmp("outer");

    // Shuffled site-pointer table: sequential reads, scattered targets.
    Rng rng(0x6d696c63ULL); // "milc"
    std::vector<std::uint32_t> order(siteCount);
    for (std::int64_t i = 0; i < siteCount; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    for (std::int64_t i = siteCount - 1; i > 0; --i) {
        std::uint64_t j = rng.below(static_cast<std::uint64_t>(i + 1));
        std::swap(order[i], order[j]);
    }
    for (std::int64_t i = 0; i < siteCount; ++i) {
        as.data(segD + i * 8,
                segA + static_cast<Addr>(order[i]) * siteBytes);
    }

    Workload w;
    w.name = "milc";
    w.program = as.assemble();
    w.footprintBytes = latticeBytes + siteCount * 8;
    w.prefetchSensitive = true;
    w.character = "shuffled 2KB-site sweeps via gather table (SMS corner)";
    return w;
}

} // namespace bfsim::workloads::kernels
