/**
 * @file
 * Program container: the static instruction stream plus metadata about
 * the memory image the program expects at startup.
 */

#ifndef BFSIM_ISA_PROGRAM_HH_
#define BFSIM_ISA_PROGRAM_HH_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace bfsim::isa {

/**
 * A static program: a vector of instructions with entry point 0 and
 * an initial data image (sparse list of 64-bit words).
 */
class Program
{
  public:
    Program() = default;

    /** Construct from an assembled instruction vector. */
    explicit Program(std::vector<Instruction> insts)
        : instructions(std::move(insts))
    {
        buildDecodeTable();
    }

    /** Number of static instructions. */
    std::size_t size() const { return instructions.size(); }

    /** Whether the program contains no instructions. */
    bool empty() const { return instructions.empty(); }

    /** Instruction at index pc; out-of-range access is a program bug. */
    const Instruction &at(std::uint32_t pc) const;

    /** All instructions. */
    const std::vector<Instruction> &insts() const { return instructions; }

    /**
     * Per-static-instruction decode cache, parallel to insts(): the
     * timing hot loop indexes this by DynOp::pcIndex instead of
     * re-classifying the instruction per dynamic op. Built eagerly at
     * construction, so concurrent readers (trace replay cursors, batch
     * workers) share it without synchronization.
     */
    const std::vector<StaticDecode> &decodeTable() const
    {
        return decoded;
    }

    /** Decode-cache entry for the instruction at index pc. */
    const StaticDecode &decodeAt(std::uint32_t pc) const
    {
        return decoded[pc];
    }

    /** Record a 64-bit data word to be present at startup. */
    void poke(Addr addr, std::uint64_t value)
    {
        image.emplace_back(addr, value);
    }

    /**
     * The initial data image as (address, word) pairs in poke order;
     * later pokes to the same address win.
     */
    const std::vector<std::pair<Addr, std::uint64_t>> &initialImage() const
    {
        return image;
    }

    /** Full disassembly listing, one instruction per line. */
    std::string listing() const;

  private:
    void buildDecodeTable()
    {
        decoded.clear();
        decoded.reserve(instructions.size());
        for (const Instruction &inst : instructions)
            decoded.push_back(decodeOne(inst));
    }

    std::vector<Instruction> instructions;
    std::vector<StaticDecode> decoded;
    std::vector<std::pair<Addr, std::uint64_t>> image;
};

} // namespace bfsim::isa

#endif // BFSIM_ISA_PROGRAM_HH_
