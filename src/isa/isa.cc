#include "isa/isa.hh"

#include <sstream>

namespace bfsim::isa {

bool
Instruction::isControl() const
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isCondBranch() const
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

bool
Instruction::writesDest() const
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Store:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jmp:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

unsigned
Instruction::executeLatency() const
{
    switch (op) {
      case Opcode::Mul:
        return 4;
      case Opcode::FAdd:
        return 4;
      case Opcode::FMul:
        return 6;
      default:
        return 1;
    }
}

StaticDecode
decodeOne(const Instruction &inst)
{
    StaticDecode d;
    d.rd = inst.rd;
    d.rs1 = inst.rs1;
    d.rs2 = inst.rs2;
    d.targetAddr = instAddr(inst.target);
    d.latency = static_cast<std::uint8_t>(inst.executeLatency());

    std::uint8_t flags = 0;
    if (inst.isControl())
        flags |= StaticDecode::flagControl;
    if (inst.isCondBranch())
        flags |= StaticDecode::flagCondBranch;
    if (inst.isLoad())
        flags |= StaticDecode::flagLoad;
    if (inst.isStore())
        flags |= StaticDecode::flagStore;
    if (inst.writesDest())
        flags |= StaticDecode::flagWritesDest;

    // Which sources gate issue readiness (renaming assumed, so only
    // true dependences count). Mirrors the execute semantics: Nop,
    // Halt, MovI and Jmp read nothing; loads and immediate-operand ALU
    // ops read rs1 only; reg-reg ALU ops, conditional branches and
    // stores read both sources.
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::MovI:
      case Opcode::Jmp:
        break;
      case Opcode::Load:
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::SllI:
      case Opcode::SrlI:
      case Opcode::CmpLtI:
      case Opcode::CmpEqI:
        flags |= StaticDecode::flagReadsRs1;
        break;
      default:
        flags |= StaticDecode::flagReadsRs1 | StaticDecode::flagReadsRs2;
        break;
    }
    d.flags = flags;
    return d;
}

std::string
regName(RegIndex index)
{
    return "r" + std::to_string(static_cast<int>(index));
}

std::string
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::AddI: return "addi";
      case Opcode::AndI: return "andi";
      case Opcode::OrI: return "ori";
      case Opcode::XorI: return "xori";
      case Opcode::SllI: return "slli";
      case Opcode::SrlI: return "srli";
      case Opcode::CmpLtI: return "cmplti";
      case Opcode::CmpEqI: return "cmpeqi";
      case Opcode::MovI: return "movi";
      case Opcode::FAdd: return "fadd";
      case Opcode::FMul: return "fmul";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jmp: return "jmp";
      case Opcode::Halt: return "halt";
    }
    return "?";
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << opcodeName(inst.op);
    switch (inst.op) {
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      case Opcode::Load:
        os << ' ' << regName(inst.rd) << ", " << inst.imm << '('
           << regName(inst.rs1) << ')';
        break;
      case Opcode::Store:
        os << ' ' << regName(inst.rs2) << ", " << inst.imm << '('
           << regName(inst.rs1) << ')';
        break;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::CmpLt:
      case Opcode::CmpEq:
      case Opcode::FAdd:
      case Opcode::FMul:
        os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1) << ", "
           << regName(inst.rs2);
        break;
      case Opcode::AddI:
      case Opcode::AndI:
      case Opcode::OrI:
      case Opcode::XorI:
      case Opcode::SllI:
      case Opcode::SrlI:
      case Opcode::CmpLtI:
      case Opcode::CmpEqI:
        os << ' ' << regName(inst.rd) << ", " << regName(inst.rs1) << ", "
           << inst.imm;
        break;
      case Opcode::MovI:
        os << ' ' << regName(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        os << ' ' << regName(inst.rs1) << ", " << regName(inst.rs2) << ", @"
           << inst.target;
        break;
      case Opcode::Jmp:
        os << " @" << inst.target;
        break;
    }
    return os.str();
}

} // namespace bfsim::isa
