/**
 * @file
 * The micro-ISA executed by the simulated cores.
 *
 * A small load/store RISC instruction set, modeled after the ALPHA subset
 * the paper's examples use (Figure 2 / Listing 1): register-indirect loads
 * and stores with static displacements, three-operand ALU ops, immediates,
 * and compare-and-branch control flow. Program counters are instruction
 * indices; branch targets are absolute indices resolved by the assembler.
 *
 * All data accesses are 8 bytes wide. The prefetching machinery only ever
 * observes cache-block granularity (64 B), so narrower accesses would add
 * modeling surface without changing any studied behaviour.
 */

#ifndef BFSIM_ISA_ISA_HH_
#define BFSIM_ISA_ISA_HH_

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace bfsim::isa {

/** Operation codes of the micro-ISA. */
enum class Opcode : std::uint8_t
{
    Nop,
    // Memory.
    Load,    ///< rd = mem64[rs1 + imm]
    Store,   ///< mem64[rs1 + imm] = rs2
    // ALU, register-register.
    Add,     ///< rd = rs1 + rs2
    Sub,     ///< rd = rs1 - rs2
    Mul,     ///< rd = rs1 * rs2 (longer latency)
    And,     ///< rd = rs1 & rs2
    Or,      ///< rd = rs1 | rs2
    Xor,     ///< rd = rs1 ^ rs2
    Sll,     ///< rd = rs1 << (rs2 & 63)
    Srl,     ///< rd = rs1 >> (rs2 & 63)
    CmpLt,   ///< rd = (rs1 < rs2) ? 1 : 0 (signed)
    CmpEq,   ///< rd = (rs1 == rs2) ? 1 : 0
    // ALU, register-immediate.
    AddI,    ///< rd = rs1 + imm
    AndI,    ///< rd = rs1 & imm
    OrI,     ///< rd = rs1 | imm
    XorI,    ///< rd = rs1 ^ imm
    SllI,    ///< rd = rs1 << (imm & 63)
    SrlI,    ///< rd = rs1 >> (imm & 63)
    CmpLtI,  ///< rd = (rs1 < imm) ? 1 : 0 (signed)
    CmpEqI,  ///< rd = (rs1 == imm) ? 1 : 0
    MovI,    ///< rd = imm
    // Floating-point-class compute (modeled as long-latency integer work).
    FAdd,    ///< rd = rs1 + rs2, FP-pipe latency
    FMul,    ///< rd = rs1 * rs2, FP-pipe latency
    // Control flow. `target` holds the absolute instruction index.
    Beq,     ///< if (rs1 == rs2) pc = target
    Bne,     ///< if (rs1 != rs2) pc = target
    Blt,     ///< if (rs1 < rs2) pc = target (signed)
    Bge,     ///< if (rs1 >= rs2) pc = target (signed)
    Jmp,     ///< pc = target (unconditional)
    Halt,    ///< stop the program
};

/** A decoded (fixed-width) micro-ISA instruction. */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;          ///< destination register
    RegIndex rs1 = 0;         ///< first source (base register for memory)
    RegIndex rs2 = 0;         ///< second source (data register for stores)
    std::int64_t imm = 0;     ///< immediate / displacement
    std::uint32_t target = 0; ///< absolute branch target (instruction index)

    /** True for conditional branches and unconditional jumps. */
    bool isControl() const;

    /** True for conditional branches only. */
    bool isCondBranch() const;

    /** True for loads. */
    bool isLoad() const { return op == Opcode::Load; }

    /** True for stores. */
    bool isStore() const { return op == Opcode::Store; }

    /** True for loads and stores. */
    bool isMemory() const { return isLoad() || isStore(); }

    /** True when the instruction writes register rd. */
    bool writesDest() const;

    /** Execution latency class in cycles (cache latency excluded). */
    unsigned executeLatency() const;
};

/**
 * Precomputed per-static-instruction descriptor: everything the timing
 * hot loop needs to know about an instruction, flattened into flag bits
 * and plain fields so `OooCore::stepInstruction` replaces its per-op
 * opcode switch and repeated predicate calls (isControl, isCondBranch,
 * isLoad, ... — each an out-of-line call into isa.o) with a single
 * table load. Built once per Program; see Program::decodeTable().
 */
struct StaticDecode
{
    /** Flag bits (see the accessors below). */
    enum : std::uint8_t
    {
        flagControl = 1 << 0,
        flagCondBranch = 1 << 1,
        flagLoad = 1 << 2,
        flagStore = 1 << 3,
        flagReadsRs1 = 1 << 4,
        flagReadsRs2 = 1 << 5,
        flagWritesDest = 1 << 6,
    };

    Addr targetAddr = 0;      ///< byte address of the taken-path target
    std::uint8_t flags = 0;
    std::uint8_t latency = 1; ///< executeLatency() in cycles
    RegIndex rd = 0;
    RegIndex rs1 = 0;
    RegIndex rs2 = 0;

    bool isControl() const { return flags & flagControl; }
    bool isCondBranch() const { return flags & flagCondBranch; }
    bool isLoad() const { return flags & flagLoad; }
    bool isStore() const { return flags & flagStore; }
    bool isMemory() const { return flags & (flagLoad | flagStore); }
    /** True when rs1 gates issue readiness (true source dependence). */
    bool readsRs1() const { return flags & flagReadsRs1; }
    /** True when rs2 gates issue readiness. */
    bool readsRs2() const { return flags & flagReadsRs2; }
    bool writesDest() const { return flags & flagWritesDest; }
};

/**
 * Classify one instruction into a StaticDecode. This is the same
 * computation Program performs per static instruction to build its
 * decode table; the one-op reference timing path (BFSIM_BATCH_OPS=0)
 * calls it per dynamic op, faithfully reproducing the pre-cache cost.
 */
StaticDecode decodeOne(const Instruction &inst);

/** Human-readable register name (r0..r31). */
std::string regName(RegIndex index);

/** Human-readable opcode mnemonic. */
std::string opcodeName(Opcode op);

/** Disassemble one instruction (pc only affects branch-target rendering). */
std::string disassemble(const Instruction &inst);

/**
 * Byte address of an instruction in the simulated instruction address
 * space. Instructions are 4 bytes apart, matching the fixed-width RISC
 * encodings the paper assumes, so branch-PC hashing behaves realistically.
 */
constexpr Addr
instAddr(std::uint32_t inst_index)
{
    return 0x400000 + static_cast<Addr>(inst_index) * 4;
}

} // namespace bfsim::isa

#endif // BFSIM_ISA_ISA_HH_
