/**
 * @file
 * A fluent in-memory assembler for the micro-ISA.
 *
 * Workload kernels are written against this builder API:
 *
 * @code
 *   Assembler as;
 *   as.movi(R1, 0);
 *   as.label("loop");
 *   as.load(R2, R3, 8);
 *   as.addi(R3, R3, 64);
 *   as.addi(R1, R1, 1);
 *   as.blt(R1, R4, "loop");
 *   as.halt();
 *   Program p = as.assemble();
 * @endcode
 *
 * Forward references to labels are collected as fixups and resolved in
 * assemble(); referencing an undefined label is a fatal error.
 */

#ifndef BFSIM_ISA_ASSEMBLER_HH_
#define BFSIM_ISA_ASSEMBLER_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/isa.hh"
#include "isa/program.hh"

namespace bfsim::isa {

/** Convenience register aliases for kernel code readability. */
enum : RegIndex
{
    R0 = 0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12, R13, R14,
    R15, R16, R17, R18, R19, R20, R21, R22, R23, R24, R25, R26, R27, R28,
    R29, R30, R31
};

/** Builder producing Program objects from readable kernel descriptions. */
class Assembler
{
  public:
    Assembler() = default;

    /** Define a label at the current position. */
    Assembler &label(const std::string &name);

    /** Current instruction index (useful for size assertions). */
    std::uint32_t here() const
    {
        return static_cast<std::uint32_t>(instructions.size());
    }

    // Memory.
    Assembler &load(RegIndex rd, RegIndex base, std::int64_t offset);
    Assembler &store(RegIndex src, RegIndex base, std::int64_t offset);

    // Register-register ALU.
    Assembler &add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &sll(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &srl(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &cmplt(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &cmpeq(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &fadd(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &fmul(RegIndex rd, RegIndex rs1, RegIndex rs2);

    // Register-immediate ALU.
    Assembler &addi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &andi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &ori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &xori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &slli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &srli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &cmplti(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &cmpeqi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &movi(RegIndex rd, std::int64_t imm);
    Assembler &nop();

    // Control flow to labels.
    Assembler &beq(RegIndex rs1, RegIndex rs2, const std::string &label);
    Assembler &bne(RegIndex rs1, RegIndex rs2, const std::string &label);
    Assembler &blt(RegIndex rs1, RegIndex rs2, const std::string &label);
    Assembler &bge(RegIndex rs1, RegIndex rs2, const std::string &label);
    Assembler &jmp(const std::string &label);
    Assembler &halt();

    /** Record an initial 64-bit data word at a data address. */
    Assembler &data(Addr addr, std::uint64_t value);

    /**
     * Resolve all label fixups and return the finished program.
     * Fatal if any referenced label is undefined.
     */
    Program assemble();

  private:
    Assembler &emit(Instruction inst);
    Assembler &emitBranch(Opcode op, RegIndex rs1, RegIndex rs2,
                          const std::string &label);

    struct Fixup
    {
        std::size_t instIndex;
        std::string label;
    };

    std::vector<Instruction> instructions;
    std::map<std::string, std::uint32_t> labels;
    std::vector<Fixup> fixups;
    std::vector<std::pair<Addr, std::uint64_t>> dataWords;
};

} // namespace bfsim::isa

#endif // BFSIM_ISA_ASSEMBLER_HH_
