#include "isa/program.hh"

#include <sstream>

#include "common/log.hh"

namespace bfsim::isa {

const Instruction &
Program::at(std::uint32_t pc) const
{
    if (pc >= instructions.size())
        panic("program counter " + std::to_string(pc) + " out of range");
    return instructions[pc];
}

std::string
Program::listing() const
{
    std::ostringstream os;
    for (std::size_t pc = 0; pc < instructions.size(); ++pc)
        os << pc << ":\t" << disassemble(instructions[pc]) << '\n';
    return os.str();
}

} // namespace bfsim::isa
