#include "isa/assembler.hh"

#include "common/log.hh"

namespace bfsim::isa {

Assembler &
Assembler::label(const std::string &name)
{
    auto [it, inserted] = labels.emplace(name, here());
    if (!inserted)
        fatal("duplicate label '" + name + "'");
    (void)it;
    return *this;
}

Assembler &
Assembler::emit(Instruction inst)
{
    instructions.push_back(inst);
    return *this;
}

Assembler &
Assembler::emitBranch(Opcode op, RegIndex rs1, RegIndex rs2,
                      const std::string &label_name)
{
    Instruction inst;
    inst.op = op;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    fixups.push_back({instructions.size(), label_name});
    instructions.push_back(inst);
    return *this;
}

Assembler &
Assembler::load(RegIndex rd, RegIndex base, std::int64_t offset)
{
    Instruction i;
    i.op = Opcode::Load;
    i.rd = rd;
    i.rs1 = base;
    i.imm = offset;
    return emit(i);
}

Assembler &
Assembler::store(RegIndex src, RegIndex base, std::int64_t offset)
{
    Instruction i;
    i.op = Opcode::Store;
    i.rs1 = base;
    i.rs2 = src;
    i.imm = offset;
    return emit(i);
}

namespace {

Instruction
makeRRR(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.rs2 = rs2;
    return i;
}

Instruction
makeRRI(Opcode op, RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs1 = rs1;
    i.imm = imm;
    return i;
}

} // namespace

Assembler &
Assembler::add(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::Add, rd, rs1, rs2));
}

Assembler &
Assembler::sub(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::Sub, rd, rs1, rs2));
}

Assembler &
Assembler::mul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::Mul, rd, rs1, rs2));
}

Assembler &
Assembler::and_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::And, rd, rs1, rs2));
}

Assembler &
Assembler::or_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::Or, rd, rs1, rs2));
}

Assembler &
Assembler::xor_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::Xor, rd, rs1, rs2));
}

Assembler &
Assembler::sll(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::Sll, rd, rs1, rs2));
}

Assembler &
Assembler::srl(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::Srl, rd, rs1, rs2));
}

Assembler &
Assembler::cmplt(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::CmpLt, rd, rs1, rs2));
}

Assembler &
Assembler::cmpeq(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::CmpEq, rd, rs1, rs2));
}

Assembler &
Assembler::fadd(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::FAdd, rd, rs1, rs2));
}

Assembler &
Assembler::fmul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{
    return emit(makeRRR(Opcode::FMul, rd, rs1, rs2));
}

Assembler &
Assembler::addi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::AddI, rd, rs1, imm));
}

Assembler &
Assembler::andi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::AndI, rd, rs1, imm));
}

Assembler &
Assembler::ori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::OrI, rd, rs1, imm));
}

Assembler &
Assembler::xori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::XorI, rd, rs1, imm));
}

Assembler &
Assembler::slli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::SllI, rd, rs1, imm));
}

Assembler &
Assembler::srli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::SrlI, rd, rs1, imm));
}

Assembler &
Assembler::cmplti(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::CmpLtI, rd, rs1, imm));
}

Assembler &
Assembler::cmpeqi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(makeRRI(Opcode::CmpEqI, rd, rs1, imm));
}

Assembler &
Assembler::movi(RegIndex rd, std::int64_t imm)
{
    Instruction i;
    i.op = Opcode::MovI;
    i.rd = rd;
    i.imm = imm;
    return emit(i);
}

Assembler &
Assembler::nop()
{
    return emit(Instruction{});
}

Assembler &
Assembler::beq(RegIndex rs1, RegIndex rs2, const std::string &label_name)
{
    return emitBranch(Opcode::Beq, rs1, rs2, label_name);
}

Assembler &
Assembler::bne(RegIndex rs1, RegIndex rs2, const std::string &label_name)
{
    return emitBranch(Opcode::Bne, rs1, rs2, label_name);
}

Assembler &
Assembler::blt(RegIndex rs1, RegIndex rs2, const std::string &label_name)
{
    return emitBranch(Opcode::Blt, rs1, rs2, label_name);
}

Assembler &
Assembler::bge(RegIndex rs1, RegIndex rs2, const std::string &label_name)
{
    return emitBranch(Opcode::Bge, rs1, rs2, label_name);
}

Assembler &
Assembler::jmp(const std::string &label_name)
{
    return emitBranch(Opcode::Jmp, 0, 0, label_name);
}

Assembler &
Assembler::halt()
{
    Instruction i;
    i.op = Opcode::Halt;
    return emit(i);
}

Assembler &
Assembler::data(Addr addr, std::uint64_t value)
{
    dataWords.emplace_back(addr, value);
    return *this;
}

Program
Assembler::assemble()
{
    for (const auto &fixup : fixups) {
        auto it = labels.find(fixup.label);
        if (it == labels.end())
            fatal("undefined label '" + fixup.label + "'");
        instructions[fixup.instIndex].target = it->second;
    }
    Program program(std::move(instructions));
    for (const auto &[addr, value] : dataWords)
        program.poke(addr, value);
    // Leave the assembler reusable-but-empty rather than half-moved.
    instructions.clear();
    labels.clear();
    fixups.clear();
    dataWords.clear();
    return program;
}

} // namespace bfsim::isa
