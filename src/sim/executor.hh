/**
 * @file
 * Functional executor for the micro-ISA.
 *
 * The timing model is execute-at-fetch: the executor produces the
 * dynamic instruction stream (with resolved branch outcomes, effective
 * addresses and result values) which the out-of-order timing model then
 * walks to account cycles. This is the standard fast-simulation split;
 * B-Fetch sees only the interfaces real hardware would (decoded branch
 * PCs, execute-stage values, commit-order updates).
 */

#ifndef BFSIM_SIM_EXECUTOR_HH_
#define BFSIM_SIM_EXECUTOR_HH_

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/isa.hh"
#include "isa/program.hh"
#include "sim/memory.hh"

namespace bfsim::sim {

/** One executed dynamic instruction. */
struct DynOp
{
    std::uint32_t pcIndex = 0;   ///< static instruction index
    Addr pc = 0;                 ///< instruction byte address
    const isa::Instruction *inst = nullptr;
    InstSeqNum seq = 0;          ///< dynamic sequence number

    // Control flow.
    bool taken = false;          ///< conditional taken / jump always
    Addr targetPc = 0;           ///< byte address control transfers to

    // Memory.
    Addr effAddr = 0;            ///< effective address of load/store

    // Register writeback.
    bool writesReg = false;
    RegVal result = 0;
};

/** Architectural state + stepper. */
class Executor
{
  public:
    /** Construct over a program; loads its initial data image. */
    explicit Executor(const isa::Program &program);

    /**
     * Execute one instruction.
     * @return false when the program has halted (op remains valid for
     *         the Halt instruction itself).
     */
    bool step(DynOp &op);

    /** True once a Halt has been executed. */
    bool halted() const { return isHalted; }

    /** Current architectural register value (r0 reads as zero). */
    RegVal reg(RegIndex index) const { return registers[index]; }

    /** Functional memory. */
    Memory &memory() { return dataMemory; }
    const Memory &memory() const { return dataMemory; }

    /** Dynamic instructions executed so far. */
    InstSeqNum executed() const { return seqCounter; }

    /** Current program counter (instruction index). */
    std::uint32_t pc() const { return pcIndex; }

    /** The executed program. */
    const isa::Program &program() const { return prog; }

    /**
     * Adopt externally reconstructed architectural state: pc, the full
     * register file and the dynamic-instruction count. Used by the
     * trace layer's checkpoint fast-forward, which replays recorded
     * stores and writebacks into memory()/restoreState instead of
     * re-interpreting the committed prefix (trace.cc). The caller is
     * responsible for memory() already reflecting `executed` ops; r0 is
     * forced back to zero here so a corrupt source cannot break the
     * hardwired-zero invariant.
     */
    void
    restoreState(std::uint32_t pc,
                 const std::array<RegVal, numArchRegs> &regs,
                 InstSeqNum executed)
    {
        pcIndex = pc;
        registers = regs;
        registers[0] = 0;
        seqCounter = executed;
        isHalted = false;
    }

  private:
    void writeReg(RegIndex index, RegVal value);

    const isa::Program &prog;
    Memory dataMemory;
    std::array<RegVal, numArchRegs> registers{};
    std::uint32_t pcIndex = 0;
    InstSeqNum seqCounter = 0;
    bool isHalted = false;
};

} // namespace bfsim::sim

#endif // BFSIM_SIM_EXECUTOR_HH_
