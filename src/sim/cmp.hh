/**
 * @file
 * Chip-multiprocessor container: N cores over a shared L3 and DRAM
 * channel, advanced in bounded cycle windows so cross-core contention on
 * the shared resources stays time-coherent.
 *
 * Following the paper's multiprogrammed methodology (V-A), each core's
 * statistics are frozen when it retires its instruction target, but the
 * core keeps executing (kernels loop indefinitely) so contention persists
 * until every core has reached its target. To bound simulation work when
 * per-core throughputs differ wildly (an 8-way mix can leave one core two
 * orders of magnitude slower than the rest), a frozen core stops stepping
 * once it has executed several times its target — by then the remaining
 * cores' contention environment is fully established.
 */

#ifndef BFSIM_SIM_CMP_HH_
#define BFSIM_SIM_CMP_HH_

#include <memory>
#include <vector>

#include "mem/hierarchy.hh"
#include "sim/ooo_core.hh"

namespace bfsim::sim {

/** Results of a CMP run. */
struct CmpResult
{
    /** Per-core stats, frozen at each core's instruction target. */
    std::vector<CoreStats> cores;
    /** Per-core memory-system stats at end of run (incl. contention). */
    std::vector<mem::CoreMemStats> memStats;
    /**
     * Dynamic instructions retired across all cores over the whole run,
     * including contention-tail work past each core's freeze point —
     * the honest numerator for simulated-MIPS throughput reporting.
     */
    std::uint64_t totalRetired = 0;
};

/**
 * Checkpoint-derived functional warm state for one sampling window:
 * per-core L1-D block tags (the trace_store checkpoint snapshot layout,
 * MRU-to-LRU per snapshot set, invalidAddr = empty way). A core whose
 * vector is empty starts cold. Installed before the window's first
 * cycle, so a shrunken detailed warmup only has to heal the branch
 * predictors and the lower cache levels.
 */
struct WindowWarmup
{
    std::vector<std::vector<Addr>> l1Tags; ///< [core][set*ways + way]
    unsigned snapshotWays = 0;             ///< ways per snapshot set
};

/** A CMP of homogeneous cores running one program each. */
class Cmp
{
  public:
    /**
     * Frozen cores stop stepping past this multiple of the target —
     * public so callers sizing bounded op sources (sampling windows)
     * can provision for the contention tail a multi-core run demands.
     */
    static constexpr std::uint64_t contentionTailFactor = 8;

    /**
     * Construct with per-core configs and dynamic-op sources (sizes
     * must match). The shared hierarchy is sized by `hierarchy_config`,
     * whose numCores must equal sources.size(). Sources may be live
     * executors or trace cursors — several cores may share one trace
     * buffer through independent TraceReplay cursors.
     */
    Cmp(const std::vector<CoreConfig> &core_configs,
        std::vector<std::unique_ptr<DynOpSource>> sources,
        const mem::HierarchyConfig &hierarchy_config);

    /** Convenience: live functional execution of one program per core. */
    Cmp(const std::vector<CoreConfig> &core_configs,
        const std::vector<const isa::Program *> &programs,
        const mem::HierarchyConfig &hierarchy_config);

    /**
     * Run until every core has retired `insts_per_core` instructions
     * (or halted), freezing each core's stats at its crossing.
     */
    CmpResult run(std::uint64_t insts_per_core);

    /**
     * Run one sampling measurement window: advance every core through
     * `warmup` retired instructions (healing the cold caches and
     * predictors of a freshly constructed Cmp), then measure the next
     * `measure` instructions — the returned per-core stats and memory
     * stats are the *deltas* across the measurement region only. The
     * run() contention-tail discipline applies unchanged, so multi-core
     * windows keep shared-resource pressure alive until every core has
     * crossed. A separate method (rather than a mode of run()) so the
     * full-run path stays bit-identical to previous releases.
     *
     * When `warm` is given, each core's checkpoint L1-D tag snapshot is
     * installed (stat-free) before the first cycle — functional cache
     * warmup that lets `warmup` shrink while the sampling CI gate keeps
     * the IPC estimate honest.
     */
    CmpResult runWindow(std::uint64_t warmup, std::uint64_t measure,
                        const WindowWarmup *warm = nullptr);

    /** Access a core (e.g. for its B-Fetch engine). */
    const OooCore &core(unsigned index) const { return *cores.at(index); }

    /** The shared hierarchy. */
    const mem::Hierarchy &hierarchy() const { return mem; }

  private:
    mem::Hierarchy mem;
    std::vector<std::unique_ptr<OooCore>> cores;
};

} // namespace bfsim::sim

#endif // BFSIM_SIM_CMP_HH_
