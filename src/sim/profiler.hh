/**
 * @file
 * Register / effective-address variation profiler for Fig. 3.
 *
 * Fig. 3a samples how much the contents of load base registers drift
 * over windows of 1, 3 and 12 executed basic blocks; Fig. 3b samples how
 * much the effective addresses produced by the *same static load* drift
 * across executions that many basic blocks apart. Both are expressed at
 * cache-block (64B) granularity and plotted as CDFs; the paper's point
 * is that register contents are far more stable than per-load effective
 * addresses, which is what makes register-anchored address speculation
 * (B-Fetch) more accurate than EA-history schemes (stride/Tango).
 */

#ifndef BFSIM_SIM_PROFILER_HH_
#define BFSIM_SIM_PROFILER_HH_

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/program.hh"
#include "sim/dyn_op_source.hh"

namespace bfsim::sim {

/** CDF data for one variation source at the three BB depths. */
struct VariationProfile
{
    /** Depths profiled, matching the paper's curves. */
    static constexpr std::array<unsigned, 3> depths{1, 3, 12};

    /**
     * Histograms of |delta| in cache blocks; bucket 32 aggregates the
     * figure's "all >= 33" tail via Histogram::overflow().
     */
    std::array<Histogram, 3> byDepth{Histogram(33), Histogram(33),
                                     Histogram(33)};
};

/** Result of profiling one program. */
struct ProfileResult
{
    VariationProfile registerDelta; ///< Fig. 3a
    VariationProfile eaDelta;       ///< Fig. 3b
    std::uint64_t basicBlocks = 0;
    std::uint64_t instructions = 0;
};

/**
 * Walk up to `max_insts` dynamic instructions from `source` and collect
 * the Fig. 3 variation distributions. Architectural register values are
 * reconstructed from the stream's writebacks, so a replayed trace
 * profiles bit-identically to live execution.
 */
ProfileResult profileRegisterVariation(DynOpSource &source,
                                       std::uint64_t max_insts);

/** Convenience: profile a program through live functional execution. */
ProfileResult profileRegisterVariation(const isa::Program &program,
                                       std::uint64_t max_insts);

} // namespace bfsim::sim

#endif // BFSIM_SIM_PROFILER_HH_
