/**
 * @file
 * Captured dynamic-instruction traces.
 *
 * A TraceBuffer stores one program's DynOp stream in chunked
 * structure-of-arrays form (21 payload bytes per op: static index,
 * effective address, result value, outcome flags; everything else in a
 * DynOp is recomputed from the program text on fetch). Chunks are
 * allocated on demand as the stream grows, so multi-million-instruction
 * runs never reallocate or copy recorded ops and pay only for the
 * length the timing models actually demand.
 *
 * The buffer is *self-extending*: it owns the functional Executor and
 * materialises ops lazily, because how far a timing run walks the
 * stream is configuration-dependent (a CMP keeps frozen cores running
 * for contention, so a slow prefetcher config can demand more ops than
 * the first capture produced). Extension is serialized by a mutex while
 * committed ops are readable lock-free through an acquire/release
 * counter, so any number of TraceReplay cursors — including cursors on
 * different threads under harness::runBatch — can walk one buffer
 * while it grows.
 */

#ifndef BFSIM_SIM_TRACE_HH_
#define BFSIM_SIM_TRACE_HH_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/dyn_op_source.hh"

namespace bfsim::sim {

namespace trace_store {
class ArtifactReader;
struct Checkpoint;
struct CheckpointWarmCache;
}

/** Growable shared store of one program's executed DynOp stream. */
class TraceBuffer
{
  public:
    /** Ops per chunk (fetch uses shift/mask; must stay a power of 2). */
    static constexpr std::uint64_t chunkOps = 1ull << 14;

    /**
     * Construct over a program (which must outlive the buffer).
     * Executes nothing yet; the functional executor (and its copy of
     * the program's data image) is materialised on first extension.
     */
    explicit TraceBuffer(const isa::Program &program);

    /**
     * Construct over a program with a disk-store artifact as the op
     * source: ensure() decodes stored chunks instead of executing, and
     * the functional executor is never built unless the consumer walks
     * past the artifact's end (live extension resumes seamlessly: the
     * executor fast-forwards over the decoded prefix, which is
     * bit-identical to what it would have produced). A decode failure
     * mid-stream — corruption, truncation, injected trace_store fault —
     * degrades to live execution the same way instead of failing the
     * run.
     */
    TraceBuffer(const isa::Program &program,
                std::unique_ptr<trace_store::ArtifactReader> reader);
    ~TraceBuffer();

    TraceBuffer(const TraceBuffer &) = delete;
    TraceBuffer &operator=(const TraceBuffer &) = delete;

    /**
     * Materialise ops [0, n), executing functionally past the recorded
     * end; stops early if the program halts. Thread-safe.
     * @return the number of ops now available (< n only on halt).
     */
    std::uint64_t ensure(std::uint64_t n);

    /** Ops committed and readable so far (acquire). */
    std::uint64_t size() const
    {
        return committed.load(std::memory_order_acquire);
    }

    /** True once the program executed Halt within the recorded stream. */
    bool halted() const
    {
        return isHalted.load(std::memory_order_acquire);
    }

    /** Reconstruct op `i` (requires i < size()). */
    void fetch(std::uint64_t i, DynOp &op) const;

    /**
     * Reconstruct ops [start, start + count) into `out` (requires
     * start + count <= size()). Equivalent to `count` fetch() calls but
     * resolves the chunk pointer once per chunk-contiguous span, so the
     * batched replay path pays no per-op chunk arithmetic.
     */
    void fetchSpan(std::uint64_t start, std::size_t count,
                   DynOp *out) const;

    /**
     * Expose ops [start, start + count) as a zero-copy view of the
     * chunk's structure-of-arrays storage (requires start + count <=
     * size()); the returned length is clamped to the containing chunk,
     * so it may be shorter than `count`. The arrays stay valid for the
     * buffer's lifetime (chunks are allocated once and never moved).
     */
    std::size_t spanAt(std::uint64_t start, std::size_t count,
                       OpSpanView &span) const;

    /** The traced program. */
    const isa::Program &program() const { return prog; }

    /**
     * The newest architectural checkpoint at-or-before op `op`
     * (opIndex <= op), or false when none exists. Store-backed buffers
     * adopt the artifact's checkpoint records at construction; live
     * capture records its own at every
     * trace_store::checkpointIntervalChunks() chunk boundary — so the
     * memory and disk tiers answer identically for the same stream.
     * Thread-safe against concurrent extension.
     */
    bool checkpointAtOrBefore(std::uint64_t op,
                              trace_store::Checkpoint &out) const;

    /** Snapshot of every retained checkpoint, sorted by opIndex. */
    std::vector<trace_store::Checkpoint> checkpoints() const;

    /** Bytes of trace storage currently allocated. */
    std::uint64_t memoryBytes() const;

    /**
     * Wall seconds spent acquiring ops by live functional execution
     * (including any fast-forward over a store-decoded prefix). Store
     * decode time is accounted separately in trace_store::stats(); the
     * two together are what the disk tier saves on a warm run.
     */
    double captureSeconds() const
    {
        return captureSecs.load(std::memory_order_relaxed);
    }

  private:
    /** Chunk-pointer table capacity: 16K chunks x 16K ops = 268M ops. */
    static constexpr std::size_t maxChunks = 1ull << 14;

    /**
     * One chunk of structure-of-arrays op storage. Deliberately
     * default-initialized (not zeroed): the recorder overwrites every
     * slot below `committed` before readers can see it, and zero-fill
     * would add a full cold-memory pass per chunk on the capture path.
     */
    struct Chunk
    {
        Chunk()
            : pcIndex(new std::uint32_t[chunkOps]),
              effAddr(new Addr[chunkOps]), result(new RegVal[chunkOps]),
              flags(new std::uint8_t[chunkOps])
        {
        }
        std::unique_ptr<std::uint32_t[]> pcIndex;
        std::unique_ptr<Addr[]> effAddr;
        std::unique_ptr<RegVal[]> result;
        /** bit0 taken, bit1 writesReg */
        std::unique_ptr<std::uint8_t[]> flags;
    };

    // Flag-byte layout is shared with the zero-copy span consumers.
    static constexpr std::uint8_t takenFlag = OpSpanView::takenFlag;
    static constexpr std::uint8_t writesRegFlag =
        OpSpanView::writesRegFlag;

    /**
     * The live executor, built lazily (store-backed buffers may never
     * need one) and fast-forwarded over whatever is already committed
     * by *trace-directed replay*: recorded stores and register
     * writebacks are applied straight from the SoA columns instead of
     * re-interpreting every instruction, which also rebuilds the
     * checkpoint warming-cache state the committed prefix implies.
     * Only touched under extendMutex.
     */
    Executor &executor();

    /** Record a capture-time checkpoint of the live state at `avail`. */
    void recordCheckpoint(std::uint64_t avail, Executor &engine);

    const isa::Program &prog;
    std::unique_ptr<Executor> exec;          ///< see executor()
    /**
     * Warming-cache state over ops [0, committed) while live capture is
     * active (built by executor()'s replay, fed per recorded op); what
     * recordCheckpoint snapshots. Only touched under extendMutex.
     */
    std::unique_ptr<trace_store::CheckpointWarmCache> warmTracker;
    std::unique_ptr<trace_store::ArtifactReader> reader; ///< disk tier
    std::mutex extendMutex;
    /**
     * Preallocated slot table so readers index it without locking;
     * slots are written (once) under extendMutex strictly before the
     * `committed` release-store that makes their ops visible.
     */
    std::vector<std::unique_ptr<Chunk>> chunks;
    /**
     * Retained architectural checkpoints, sorted by opIndex: the
     * artifact's records (adopted at construction for store-backed
     * buffers) plus capture-time records from live extension. Guarded
     * by ckptMutex so sampling threads can query while capture runs.
     */
    std::vector<trace_store::Checkpoint> ckpts;
    mutable std::mutex ckptMutex;
    std::atomic<std::uint64_t> committed{0};
    std::atomic<std::uint64_t> allocatedChunks{0};
    std::atomic<bool> isHalted{false};
    std::atomic<double> captureSecs{0.0}; ///< written under extendMutex
};

/**
 * Re-walks a captured TraceBuffer: zero functional work for every op
 * the buffer already holds; transparently extends the buffer (one
 * thread executes, others wait) only past its recorded end.
 */
class TraceReplay : public DynOpSource
{
  public:
    explicit TraceReplay(std::shared_ptr<TraceBuffer> buffer);

    bool next(DynOp &op) override;
    std::size_t nextBatch(DynOp *out, std::size_t max) override;
    std::size_t nextSpan(OpSpanView &span, std::size_t max) override;
    bool halted() const override;
    InstSeqNum produced() const override { return cursor; }
    const isa::Program &program() const override
    {
        return buf->program();
    }

    /** The shared buffer this cursor walks. */
    const std::shared_ptr<TraceBuffer> &buffer() const { return buf; }

  private:
    /** Ops materialised per extension request (bounds overshoot). */
    static constexpr std::uint64_t extendBatch = 4096;

    std::shared_ptr<TraceBuffer> buf;
    std::uint64_t cursor = 0; ///< next op index to produce
    std::uint64_t avail = 0;  ///< committed ops known to this cursor
};

/**
 * A bounded replay cursor over ops [begin, end) of a shared
 * TraceBuffer — the memory-tier op source for one sampling measurement
 * window. Sequence numbers stay *absolute* (op i of the buffer is seq
 * i + 1, exactly as TraceReplay would number it), so a window's timing
 * models observe the identical DynOp values a full run would at those
 * positions. The source reports halted() once the window is exhausted,
 * which freezes the consuming core the same way end-of-program does.
 */
class TraceWindowReplay : public DynOpSource
{
  public:
    /**
     * Walk ops [begin, end) of `buffer`. The buffer is extended lazily
     * (and clamped to `end`), so a window near the frontier only
     * materialises what it will actually consume.
     */
    TraceWindowReplay(std::shared_ptr<TraceBuffer> buffer,
                      std::uint64_t begin, std::uint64_t end);

    bool next(DynOp &op) override;
    std::size_t nextBatch(DynOp *out, std::size_t max) override;
    std::size_t nextSpan(OpSpanView &span, std::size_t max) override;
    bool halted() const override;
    /** Ops this window has produced (not the absolute position). */
    InstSeqNum produced() const override { return cursor - beginOp; }
    const isa::Program &program() const override
    {
        return buf->program();
    }

  private:
    /** Ops materialised per extension request (bounds overshoot). */
    static constexpr std::uint64_t extendBatch = 4096;

    /** Make ops at `cursor` available; false once the window is done. */
    bool refill();

    std::shared_ptr<TraceBuffer> buf;
    std::uint64_t beginOp;
    std::uint64_t endOp;
    std::uint64_t cursor; ///< absolute next op index
    std::uint64_t avail;  ///< committed ops known, clamped to endOp
};

/**
 * The disk-tier op source for one sampling measurement window: a
 * *private* seekable (format v2) artifact reader positioned directly at
 * the window's first chunk, decoding only the chunks the window spans
 * into private column arrays. Skipped ops cost nothing — no functional
 * execution, no decode — which is what makes parallel sampled runs an
 * order of magnitude cheaper than a full walk. Produces the identical
 * absolute-seq DynOp stream TraceWindowReplay would (both decode the
 * same CRC-verified chunk bytes), so {memory, disk} window tiers are
 * interchangeable bit-for-bit.
 */
class ArtifactWindowSource : public DynOpSource
{
  public:
    /**
     * Walk ops [begin, end) of `reader`'s artifact. Throws SimError
     * when the reader is absent, not seekable (v1), or does not cover
     * `end` — callers catch and fall back to the TraceBuffer tier.
     * Decode errors inside the window (corrupt chunk, injected
     * trace_store fault) also surface as SimError from next*(); the
     * harness re-runs the window through the buffer tier, which
     * degrades to live capture bit-identically.
     */
    ArtifactWindowSource(
        const isa::Program &program,
        std::unique_ptr<trace_store::ArtifactReader> reader,
        std::uint64_t begin, std::uint64_t end);
    ~ArtifactWindowSource();

    bool next(DynOp &op) override;
    std::size_t nextBatch(DynOp *out, std::size_t max) override;
    std::size_t nextSpan(OpSpanView &span, std::size_t max) override;
    bool halted() const override;
    /** Ops this window has produced (not the absolute position). */
    InstSeqNum produced() const override { return cursor - beginOp; }
    const isa::Program &program() const override { return prog; }

  private:
    /** Decode the chunk holding `cursor`; false once the window ends. */
    bool refill();

    const isa::Program &prog;
    std::unique_ptr<trace_store::ArtifactReader> reader;
    std::uint64_t beginOp;
    std::uint64_t endOp;
    std::uint64_t cursor;       ///< absolute next op index
    std::uint64_t chunkBase = 0; ///< absolute index of columns[0]
    std::uint64_t decodedEnd = 0; ///< absolute end of decoded ops
    /** One chunk of decoded column storage (TraceBuffer::chunkOps). */
    std::vector<std::uint32_t> pcCol;
    std::vector<Addr> addrCol;
    std::vector<RegVal> resultCol;
    std::vector<std::uint8_t> flagCol;
};

/**
 * Records the stream while producing it: walking a fresh TraceCapture
 * is live execution plus recording, and the filled buffer() can then be
 * shared with any number of TraceReplay cursors. Attaching to an
 * existing buffer makes this cursor the one that materialises whatever
 * tail its consumer demands beyond the recorded end.
 */
class TraceCapture : public TraceReplay
{
  public:
    /** Capture a program into a fresh buffer owned via buffer(). */
    explicit TraceCapture(const isa::Program &program)
        : TraceReplay(std::make_shared<TraceBuffer>(program))
    {
    }

    /** Record into (extend) an existing shared buffer. */
    explicit TraceCapture(std::shared_ptr<TraceBuffer> buffer)
        : TraceReplay(std::move(buffer))
    {
    }
};

} // namespace bfsim::sim

#endif // BFSIM_SIM_TRACE_HH_
