#include "sim/cmp.hh"

#include "common/sim_error.hh"

namespace bfsim::sim {

Cmp::Cmp(const std::vector<CoreConfig> &core_configs,
         std::vector<std::unique_ptr<DynOpSource>> sources,
         const mem::HierarchyConfig &hierarchy_config)
    : mem(hierarchy_config)
{
    BFSIM_CHECK(core_configs.size() == sources.size(), "cmp",
                "core config count must match source count");
    BFSIM_CHECK(hierarchy_config.numCores == sources.size(), "cmp",
                "hierarchy core count must match source count");
    for (std::size_t c = 0; c < sources.size(); ++c) {
        cores.push_back(std::make_unique<OooCore>(
            static_cast<unsigned>(c), core_configs[c],
            std::move(sources[c]), mem));
    }
}

namespace {

std::vector<std::unique_ptr<DynOpSource>>
liveSources(const std::vector<const isa::Program *> &programs)
{
    std::vector<std::unique_ptr<DynOpSource>> sources;
    sources.reserve(programs.size());
    for (const isa::Program *program : programs)
        sources.push_back(std::make_unique<LiveSource>(*program));
    return sources;
}

} // namespace

Cmp::Cmp(const std::vector<CoreConfig> &core_configs,
         const std::vector<const isa::Program *> &programs,
         const mem::HierarchyConfig &hierarchy_config)
    : Cmp(core_configs, liveSources(programs), hierarchy_config)
{
}

CmpResult
Cmp::run(std::uint64_t insts_per_core)
{
    const std::size_t n = cores.size();
    CmpResult result;
    result.cores.resize(n);
    std::vector<bool> frozen(n, false);
    std::size_t frozen_count = 0;

    // Advance cores in 512-cycle windows so shared-resource timestamps
    // (L3 occupancy, DRAM bus) interleave realistically.
    constexpr Cycle window = 512;
    Cycle horizon = window;

    while (frozen_count < n) {
        for (std::size_t c = 0; c < n; ++c) {
            OooCore &core = *cores[c];
            if (frozen[c] &&
                core.retired() >= insts_per_core * contentionTailFactor)
                continue;
            while (core.fetchCycle() < horizon) {
                if (!core.stepInstruction()) {
                    // Program halted: freeze immediately.
                    if (!frozen[c]) {
                        result.cores[c] = core.stats();
                        frozen[c] = true;
                        ++frozen_count;
                    }
                    break;
                }
                if (!frozen[c] && core.retired() >= insts_per_core) {
                    result.cores[c] = core.stats();
                    frozen[c] = true;
                    ++frozen_count;
                }
            }
            if (core.halted() && !frozen[c]) {
                result.cores[c] = core.stats();
                frozen[c] = true;
                ++frozen_count;
            }
        }
        horizon += window;
    }

    for (std::size_t c = 0; c < n; ++c) {
        result.memStats.push_back(mem.stats(static_cast<unsigned>(c)));
        result.totalRetired += cores[c]->retired();
    }
    return result;
}

CmpResult
Cmp::runWindow(std::uint64_t warmup, std::uint64_t measure,
               const WindowWarmup *warm)
{
    const std::size_t n = cores.size();
    if (warm) {
        for (std::size_t c = 0; c < n && c < warm->l1Tags.size(); ++c) {
            if (!warm->l1Tags[c].empty()) {
                mem.installL1Warmup(static_cast<unsigned>(c),
                                    warm->l1Tags[c],
                                    warm->snapshotWays);
            }
        }
    }
    const std::uint64_t target = warmup + measure;
    CmpResult result;
    result.cores.resize(n);
    std::vector<CoreStats> warm_stats(n);
    std::vector<mem::CoreMemStats> warm_mem(n);
    std::vector<bool> warmed(n, warmup == 0);
    std::vector<bool> frozen(n, false);
    std::size_t frozen_count = 0;

    // Same bounded-window interleaving as run(): shared-resource
    // timestamps stay time-coherent across cores.
    constexpr Cycle window = 512;
    Cycle horizon = window;

    while (frozen_count < n) {
        for (std::size_t c = 0; c < n; ++c) {
            OooCore &core = *cores[c];
            if (frozen[c] &&
                core.retired() >= target * contentionTailFactor)
                continue;
            while (core.fetchCycle() < horizon) {
                if (!core.stepInstruction()) {
                    // Halt inside the window: freeze what was measured.
                    if (!frozen[c]) {
                        if (!warmed[c]) {
                            warm_stats[c] = core.stats();
                            warm_mem[c] = mem.stats(
                                static_cast<unsigned>(c));
                            warmed[c] = true;
                        }
                        result.cores[c] =
                            coreStatsDelta(core.stats(), warm_stats[c]);
                        frozen[c] = true;
                        ++frozen_count;
                    }
                    break;
                }
                if (!warmed[c] && core.retired() >= warmup) {
                    warm_stats[c] = core.stats();
                    warm_mem[c] =
                        mem.stats(static_cast<unsigned>(c));
                    warmed[c] = true;
                }
                if (!frozen[c] && core.retired() >= target) {
                    result.cores[c] =
                        coreStatsDelta(core.stats(), warm_stats[c]);
                    frozen[c] = true;
                    ++frozen_count;
                }
            }
            if (core.halted() && !frozen[c]) {
                if (!warmed[c]) {
                    warm_stats[c] = core.stats();
                    warm_mem[c] = mem.stats(static_cast<unsigned>(c));
                    warmed[c] = true;
                }
                result.cores[c] =
                    coreStatsDelta(core.stats(), warm_stats[c]);
                frozen[c] = true;
                ++frozen_count;
            }
        }
        horizon += window;
    }

    for (std::size_t c = 0; c < n; ++c) {
        result.memStats.push_back(mem::memStatsDelta(
            mem.stats(static_cast<unsigned>(c)), warm_mem[c]));
        result.totalRetired += cores[c]->retired();
    }
    return result;
}

} // namespace bfsim::sim
