#include "sim/cmp.hh"

#include "common/sim_error.hh"

namespace bfsim::sim {

Cmp::Cmp(const std::vector<CoreConfig> &core_configs,
         std::vector<std::unique_ptr<DynOpSource>> sources,
         const mem::HierarchyConfig &hierarchy_config)
    : mem(hierarchy_config)
{
    BFSIM_CHECK(core_configs.size() == sources.size(), "cmp",
                "core config count must match source count");
    BFSIM_CHECK(hierarchy_config.numCores == sources.size(), "cmp",
                "hierarchy core count must match source count");
    for (std::size_t c = 0; c < sources.size(); ++c) {
        cores.push_back(std::make_unique<OooCore>(
            static_cast<unsigned>(c), core_configs[c],
            std::move(sources[c]), mem));
    }
}

namespace {

std::vector<std::unique_ptr<DynOpSource>>
liveSources(const std::vector<const isa::Program *> &programs)
{
    std::vector<std::unique_ptr<DynOpSource>> sources;
    sources.reserve(programs.size());
    for (const isa::Program *program : programs)
        sources.push_back(std::make_unique<LiveSource>(*program));
    return sources;
}

} // namespace

Cmp::Cmp(const std::vector<CoreConfig> &core_configs,
         const std::vector<const isa::Program *> &programs,
         const mem::HierarchyConfig &hierarchy_config)
    : Cmp(core_configs, liveSources(programs), hierarchy_config)
{
}

CmpResult
Cmp::run(std::uint64_t insts_per_core)
{
    const std::size_t n = cores.size();
    CmpResult result;
    result.cores.resize(n);
    std::vector<bool> frozen(n, false);
    std::size_t frozen_count = 0;

    // Advance cores in 512-cycle windows so shared-resource timestamps
    // (L3 occupancy, DRAM bus) interleave realistically.
    constexpr Cycle window = 512;
    Cycle horizon = window;

    while (frozen_count < n) {
        for (std::size_t c = 0; c < n; ++c) {
            OooCore &core = *cores[c];
            if (frozen[c] &&
                core.retired() >= insts_per_core * contentionTailFactor)
                continue;
            while (core.fetchCycle() < horizon) {
                if (!core.stepInstruction()) {
                    // Program halted: freeze immediately.
                    if (!frozen[c]) {
                        result.cores[c] = core.stats();
                        frozen[c] = true;
                        ++frozen_count;
                    }
                    break;
                }
                if (!frozen[c] && core.retired() >= insts_per_core) {
                    result.cores[c] = core.stats();
                    frozen[c] = true;
                    ++frozen_count;
                }
            }
            if (core.halted() && !frozen[c]) {
                result.cores[c] = core.stats();
                frozen[c] = true;
                ++frozen_count;
            }
        }
        horizon += window;
    }

    for (std::size_t c = 0; c < n; ++c) {
        result.memStats.push_back(mem.stats(static_cast<unsigned>(c)));
        result.totalRetired += cores[c]->retired();
    }
    return result;
}

} // namespace bfsim::sim
