/**
 * @file
 * Persistent, delta-compressed store of captured DynOp traces.
 *
 * PR 2's trace layer made the functional DynOp stream a shareable
 * in-process artifact; this store makes it a *durable* one. A capture
 * is serialized to `$BFSIM_TRACE_DIR/<workload>-<budget>-<hash>.bft`
 * and any later process — another bench binary, a CI job, a re-run —
 * obtains the identical stream with one mmap and a streaming decode
 * instead of functional execution and a multi-megabyte workload image
 * load. Timing results are bit-identical across {live, memory-trace,
 * disk-trace} sources because the disk tier plugs in *below*
 * sim::TraceBuffer: chunks are decoded straight into the buffer's
 * structure-of-arrays storage, and every replay cursor / zero-copy span
 * path above it is untouched.
 *
 * On-disk format (version 2, little-endian, DESIGN.md §12-§13):
 *
 *   header   magic 'BFTR', version, program content hash, instruction
 *            budget, op count, chunk geometry, halted flag, header CRC
 *   chunks   [payload bytes | op count | payload CRC-32C | payload]...
 *   index    (v2) 'BFIX', per-chunk file offsets, CRC — random access
 *            to any chunk without decoding its predecessors
 *   ckpts    (v2) 'BFCK', periodic architectural checkpoint records
 *            (register file, pc, canonical L1-D tag/LRU snapshot), CRC
 *   footer   (v2) 'BFX2' trailer locating the index section
 *
 * Version 1 artifacts (header + chunks only) still open and decode
 * sequentially — only the seek/checkpoint surface is absent. Writers
 * emit version 2 by default; BFSIM_TRACE_FORMAT=1 (or
 * setSaveFormatVersion) keeps producing v1 for compatibility testing.
 *
 * Each chunk encodes exactly TraceBuffer::chunkOps ops (fewer in the
 * tail) with per-op delta/varint compression, independently decodable
 * (contexts reset per chunk):
 *
 *   control byte   taken / writesReg flags, "pc advanced by one",
 *                  "has effective address", "result repeats"
 *   pc delta       zigzag varint vs the previous op (omitted for the
 *                  ubiquitous fall-through case)
 *   addr delta     zigzag varint vs the *same static instruction's*
 *                  previous effective address — strided loads cost one
 *                  byte regardless of stride (omitted for non-memory)
 *   result delta   zigzag varint vs the same static instruction's
 *                  previous result (omitted when repeating or not
 *                  writing a register)
 *
 * This lands well under the 6 B/op budget (the 21 B/op in-memory layout
 * compresses to ~2-4 B/op across the fig08 suite).
 *
 * Robustness: artifacts are written to a `.tmp` sibling and renamed
 * into place (PR 3 pattern) under an exclusive `flock`, so concurrent
 * processes never interleave writes and readers never observe partial
 * files. A corrupt, truncated or version-stale artifact is *never* an
 * error: open-time validation failures count a fallback and report a
 * miss (the capture re-runs live and rewrites the artifact), and
 * decode-time failures make the owning TraceBuffer degrade to live
 * execution mid-stream — bit-identically, because the functional
 * executor is deterministic and fast-forwards over the already-decoded
 * prefix.
 */

#ifndef BFSIM_SIM_TRACE_STORE_HH_
#define BFSIM_SIM_TRACE_STORE_HH_

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bfsim::isa {
class Program;
}

namespace bfsim::sim {

class TraceBuffer;

namespace trace_store {

/** Bumped whenever the header or chunk encoding changes shape. */
constexpr std::uint32_t formatVersion = 2;

/** Oldest format version openArtifact still decodes. */
constexpr std::uint32_t minReadVersion = 1;

/**
 * Format version saveArtifact emits: formatVersion unless overridden by
 * BFSIM_TRACE_FORMAT=1 (compatibility testing) or setSaveFormatVersion.
 */
std::uint32_t saveFormatVersion();

/** Programmatic override of BFSIM_TRACE_FORMAT (tests, tools). */
void setSaveFormatVersion(std::uint32_t version);

/** Default chunks between consecutive v2 checkpoint records. */
constexpr std::uint32_t checkpointEveryChunks = 4;

/**
 * Capture-time checkpoint density: chunks between consecutive
 * checkpoint records, for both saveArtifact emission and live
 * TraceBuffer capture. Defaults to checkpointEveryChunks, overridable
 * by BFSIM_CHECKPOINT_CHUNKS at process start or by the setter (tests,
 * tools). Readers are agnostic — records are self-describing by
 * opIndex — so artifacts written at any density interoperate.
 */
std::uint32_t checkpointIntervalChunks();

/** Programmatic override of BFSIM_CHECKPOINT_CHUNKS (>= 1; 0 warns). */
void setCheckpointIntervalChunks(std::uint32_t chunks);

/**
 * Canonical functionally-warmed cache geometry snapshotted by v2
 * checkpoints: a 32 KB, 8-way, 64 B-line L1-D-shaped tag array. The
 * snapshot captures the *functional* reference stream's recency state
 * (tags in most- to least-recently-used order per set), independent of
 * any timing configuration.
 */
constexpr std::uint32_t checkpointCacheSets = 64;
constexpr std::uint32_t checkpointCacheWays = 8;

/**
 * One periodic architectural checkpoint: the register file and pc after
 * exactly `opIndex` ops, plus the canonical warmed-cache tag/LRU state
 * at that boundary. Reconstructed from the op stream at save time (the
 * stream records every register writeback), CRC-sealed with the
 * checkpoint section, and cross-checkable against a live Executor.
 */
struct Checkpoint
{
    std::uint64_t opIndex = 0; ///< ops executed before this state
    std::uint32_t pcIndex = 0; ///< static index of the next instruction
    std::array<RegVal, numArchRegs> regs{};
    /**
     * Block addresses (byte address >> 6) per set in MRU-to-LRU order;
     * invalidAddr marks an empty way. Indexed [set * ways + way].
     */
    std::vector<Addr> cacheTags;
};

/**
 * Canonical warming cache behind every checkpoint tag snapshot: the
 * fixed checkpointCacheSets x checkpointCacheWays tag array fed by
 * every op that carries an effective address, tags kept MRU-first per
 * set. Save-time reconstruction (saveArtifact), capture-time recording
 * (TraceBuffer live extension) and replay fast-forward all run this
 * exact structure over the same op stream, which is what makes
 * checkpoints interchangeable across the memory and disk tiers.
 */
struct CheckpointWarmCache
{
    CheckpointWarmCache() : sets(checkpointCacheSets) {}

    void
    access(Addr addr)
    {
        Addr block = blockNumber(addr);
        auto &ways = sets[block & (checkpointCacheSets - 1)];
        auto it = std::find(ways.begin(), ways.end(), block);
        if (it != ways.end())
            ways.erase(it);
        else if (ways.size() == checkpointCacheWays)
            ways.pop_back();
        ways.insert(ways.begin(), block);
    }

    /** Tags indexed [set * ways + way], MRU first, invalidAddr empty. */
    std::vector<Addr>
    snapshot() const
    {
        std::vector<Addr> tags(
            std::size_t{checkpointCacheSets} * checkpointCacheWays,
            invalidAddr);
        for (std::size_t s = 0; s < sets.size(); ++s)
            for (std::size_t w = 0; w < sets[s].size(); ++w)
                tags[s * checkpointCacheWays + w] = sets[s][w];
        return tags;
    }

    std::vector<std::vector<Addr>> sets;
};

/** Identity of one trace artifact. */
struct Key
{
    std::string workload;   ///< suite workload name
    std::uint64_t budget;   ///< per-core instruction budget
    std::uint64_t progHash; ///< content hash of the traced program
};

/**
 * Content hash of a program: instruction fields plus the initial data
 * image, so any change to workload generation invalidates its stored
 * traces.
 */
std::uint64_t programHash(const isa::Program &program);

/** Build the Key for (workload, budget) over `program`. */
Key makeKey(const std::string &workload, std::uint64_t budget,
            const isa::Program &program);

/**
 * True when a store directory is configured (BFSIM_TRACE_DIR at process
 * start, or setDirectory). The harness additionally requires the trace
 * cache itself to be on: BFSIM_TRACE_CACHE=0 bypasses both tiers.
 */
bool enabled();

/** The configured store directory ("" = disabled). */
std::string directory();

/**
 * Override the store directory ("" disables). Benches route
 * --trace-dir here; tests point it at a temp dir. Creates the
 * directory if missing (best-effort; open/save report failures).
 */
void setDirectory(const std::string &dir);

/** Absolute path of the artifact for `key` (valid while enabled()). */
std::string artifactPath(const Key &key);

/** Artifact file name for `key` (the content address, no directory). */
std::string artifactName(const Key &key);

/**
 * True when a remote store endpoint is configured (BFSIM_REMOTE_STORE
 * at process start, or setRemoteEndpoint). The remote tier layers
 * *under* the local directory: a local miss fetches the artifact over
 * TCP from a daemon-hosted store into the local directory (then opens
 * it normally), and a local save pushes the published bytes to the
 * daemon, so a fleet of hosts captures each trace exactly once
 * globally. Requires enabled() — the local directory is the cache the
 * remote tier fills.
 */
bool remoteEnabled();

/** The configured "host:port" endpoint ("" = disabled). */
std::string remoteEndpoint();

/**
 * Override the remote endpoint ("host:port"; "" disables). Malformed
 * specs warn and disable. Benches route --remote-store here.
 */
void setRemoteEndpoint(const std::string &hostPort);

// ---- server half of the remote tier (hosted by bfsimd) ---------------

/**
 * True when `name` is a plausible artifact file name a remote peer may
 * GET or PUT: non-empty, `.bft` suffix, and only the characters the
 * sanitizer emits — never a path separator, so a malicious peer cannot
 * escape the store directory.
 */
bool validRemoteName(const std::string &name);

/**
 * Read the named artifact out of the local store directory. @return
 * false when the store is disabled or the file is absent/unreadable.
 */
bool readArtifactBytes(const std::string &name,
                       std::vector<unsigned char> &bytes);

/**
 * Install artifact bytes received from a remote peer under `name`,
 * with the same discipline saveArtifact uses: exclusive .lock flock,
 * an under-lock coverage re-check (an existing artifact that already
 * covers at least as many ops is kept — this is what makes fleet-wide
 * publication exactly-once), then tmp + fsync + rename. The byte
 * stream's header must validate (magic, CRC, version); foreign bytes
 * are refused. @return 1 stored, 0 skipped (covered or lock busy),
 * -1 refused/failed.
 */
int acceptArtifactBytes(const std::string &name,
                        const unsigned char *data, std::size_t len);

/**
 * Sequential decoder over one mmapped artifact. Produced by
 * openArtifact after header validation; consumed by TraceBuffer, which
 * asks for one chunk at a time decoded directly into its SoA arrays.
 * Chunk payload CRCs are verified lazily, per decode, so corruption
 * discovered mid-stream surfaces as SimError and the buffer degrades
 * to live execution.
 */
class ArtifactReader
{
  public:
    ~ArtifactReader();

    ArtifactReader(const ArtifactReader &) = delete;
    ArtifactReader &operator=(const ArtifactReader &) = delete;

    /** Total ops the artifact holds. */
    std::uint64_t opCount() const { return totalOps; }

    /** True when the traced program halted within opCount ops. */
    bool halted() const { return sawHalt; }

    /** Ops decoded (consumed) so far. */
    std::uint64_t decoded() const { return cursor; }

    /** Artifact format version (1 or 2). */
    std::uint32_t version() const { return fileVersion; }

    /**
     * True when the artifact carries a validated chunk index, i.e.
     * seekToChunk is available (format v2). Version 1 artifacts decode
     * sequentially only.
     */
    bool seekable() const { return chunkOffsets && !chunkOffsets->empty(); }

    /**
     * An independent decode cursor over the same mapped artifact: the
     * mmap, chunk index and checkpoint records are shared (the file is
     * unmapped when the last reader dies); the position and per-static-
     * instruction delta contexts are fresh. Lets one validated open
     * serve many concurrent window decoders without re-stat/re-mmap
     * per window. Clones do not recount store hits.
     */
    std::unique_ptr<ArtifactReader> clone() const;

    /**
     * Reposition the decoder at the start of chunk `chunk` (its first
     * op is chunk * TraceBuffer::chunkOps). Chunks decode independently
     * (delta contexts reset per chunk), so decodeChunk after a seek
     * yields exactly the bytes a sequential walk would have. Returns
     * false when the artifact is not seekable or the chunk is out of
     * range; the decoder position is then unchanged.
     */
    bool seekToChunk(std::uint64_t chunk);

    /**
     * The artifact's periodic architectural checkpoints (empty for v1
     * artifacts), sorted by opIndex. Validated against the checkpoint
     * section CRC at open time.
     */
    const std::vector<Checkpoint> &checkpoints() const;

    /**
     * Decode the next chunk into the given column arrays (each sized
     * for at least TraceBuffer::chunkOps entries). Returns the number
     * of ops decoded — a full chunk, the shorter tail, or 0 once the
     * artifact is exhausted. Throws SimError on any framing/CRC/
     * encoding violation; the output arrays are then unspecified but
     * the caller has not advanced, so degrading to live execution
     * stays consistent.
     */
    std::size_t decodeChunk(std::uint32_t *pc_index, Addr *eff_addr,
                            RegVal *result, std::uint8_t *flags);

  private:
    friend std::unique_ptr<ArtifactReader>
    openArtifact(const Key &key, const isa::Program &program);

    ArtifactReader() = default;

    /** The mmapped file, shared across clones (unmapped on last ref). */
    struct Mapping;
    std::shared_ptr<Mapping> mapping;

    const unsigned char *fileBase = nullptr; ///< mapping->base
    std::size_t fileBytes = 0;
    std::size_t offset = 0;      ///< next chunk frame offset
    std::uint64_t totalOps = 0;
    std::uint64_t cursor = 0;    ///< ops decoded so far
    std::uint32_t programSize = 0;
    std::uint32_t fileVersion = 0;
    bool sawHalt = false;
    /** Per-static-instruction delta contexts, reset per chunk. */
    std::vector<Addr> lastAddr;
    std::vector<RegVal> lastResult;
    /** v2: file offset of each chunk frame (null/empty for v1). */
    std::shared_ptr<const std::vector<std::uint64_t>> chunkOffsets;
    /** v2: parsed checkpoint records (null/empty for v1). */
    std::shared_ptr<const std::vector<Checkpoint>> checkpointRecords;
};

/**
 * Open the artifact for `key`, validating the header against the key,
 * the format version and the program size; for v2 artifacts the chunk
 * index and checkpoint sections are additionally CRC-validated, so a
 * truncated or bit-flipped index/checkpoint rejects the whole artifact
 * (live capture takes over bit-identically). Returns nullptr on a
 * miss. A *present but invalid* artifact (corrupt header, stale
 * version, wrong hash recorded under the right name) additionally
 * counts a fallback — the caller recaptures live and the next save
 * overwrites it. Counts one disk hit or miss in the thread/process
 * stats.
 */
std::unique_ptr<ArtifactReader> openArtifact(const Key &key,
                                             const isa::Program &program);

/**
 * Serialize `buffer`'s committed ops as the artifact for `key`,
 * crash-safely (tmp + rename) and under an exclusive file lock.
 * Skips (returning false) when another process holds the lock or when
 * the existing artifact already covers at least as many ops; rewrites
 * when the buffer has grown past the stored stream. Never throws for
 * I/O reasons — failures warn and return false, because persisting is
 * an optimization, not a correctness requirement.
 */
bool saveArtifact(const Key &key, const TraceBuffer &buffer);

/** Process-wide store counters since start (or resetStats). */
struct Stats
{
    std::uint64_t hits = 0;         ///< artifacts opened successfully
    std::uint64_t misses = 0;       ///< lookups with no usable artifact
    std::uint64_t fallbacks = 0;    ///< invalid artifacts / decode faults
    std::uint64_t bytesWritten = 0; ///< artifact bytes written (saves)
    std::uint64_t bytesRead = 0;    ///< payload bytes decoded (reads)
    std::uint64_t opsWritten = 0;   ///< ops encoded across saves
    std::uint64_t opsRead = 0;      ///< ops decoded across reads
    double decodeSeconds = 0.0;     ///< wall time inside decodeChunk
    /** v2 checkpoint records emitted across saves. */
    std::uint64_t checkpointsWritten = 0;
    /** Serialized bytes of those checkpoint records. */
    std::uint64_t checkpointBytesWritten = 0;
    /**
     * Artifact publications abandoned because another writer held the
     * .lock file through the whole bounded retry window (saveArtifact).
     * Persistent growth here under multi-process sweeps means capture
     * work is being recomputed instead of shared — worth surfacing.
     */
    std::uint64_t publishAbandoned = 0;
    /** Local misses satisfied by a remote-store fetch. */
    std::uint64_t remoteHits = 0;
    /** Remote lookups that also missed (captured live after all). */
    std::uint64_t remoteMisses = 0;
    /** Artifact bytes fetched from the remote store. */
    std::uint64_t remoteBytesFetched = 0;
    /** Local publications pushed to the remote store. */
    std::uint64_t remotePushes = 0;
    /** Remote-tier transport failures (connect/frame errors). */
    std::uint64_t remoteErrors = 0;

    /** Encoded bytes per op across every save (0 when nothing saved). */
    double
    bytesPerOp() const
    {
        return opsWritten
                   ? static_cast<double>(bytesWritten) /
                         static_cast<double>(opsWritten)
                   : 0.0;
    }
};

/** Snapshot of the process-wide counters. */
Stats stats();

/** Reset the process-wide and this thread's counters (tests). */
void resetStats();

/**
 * Per-thread tier activity, drained by the batch runner to attribute
 * disk-tier behaviour to individual jobs (like the memory-tier
 * counters in harness::ThreadCacheCounters).
 */
struct ThreadCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fallbacks = 0;
};

/** Return this thread's counters accumulated since the last take. */
ThreadCounters takeThreadCounters();

} // namespace trace_store
} // namespace bfsim::sim

#endif // BFSIM_SIM_TRACE_STORE_HH_
