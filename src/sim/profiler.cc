#include "sim/profiler.hh"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace bfsim::sim {

namespace {

/** Absolute delta between two values, in cache blocks. */
std::uint64_t
absBlockDelta(std::uint64_t a, std::uint64_t b)
{
    std::int64_t delta = blockDelta(a, b);
    return static_cast<std::uint64_t>(delta < 0 ? -delta : delta);
}

} // namespace

constexpr std::array<unsigned, 3> VariationProfile::depths;

ProfileResult
profileRegisterVariation(DynOpSource &source, std::uint64_t max_insts)
{
    ProfileResult result;

    // Architectural register file reconstructed from the op stream:
    // applying each r0-guarded writeback reproduces Executor::reg state
    // after every instruction, for live and replayed sources alike.
    std::array<RegVal, numArchRegs> registers{};

    // Ring of register snapshots taken at basic-block entries.
    constexpr unsigned maxDepth = 12;
    constexpr unsigned ringSize = 16;
    std::array<std::array<RegVal, numArchRegs>, ringSize> snapshots{};
    std::uint64_t bbIndex = 0;

    // Base registers of the loads executed in the current basic block.
    std::vector<RegIndex> baseRegsThisBlock;

    // Per static load: recent (bbIndex, effective address) executions.
    struct LoadHistory
    {
        std::deque<std::pair<std::uint64_t, Addr>> recent;
    };
    std::unordered_map<std::uint32_t, LoadHistory> loadHistories;

    // Per-op body, shared by batched and one-op-at-a-time delivery.
    auto profileOne = [&](const DynOp &op, const isa::StaticDecode &sd) {
        ++result.instructions;
        if (op.writesReg && sd.rd != 0)
            registers[sd.rd] = op.result;

        if (sd.isLoad()) {
            baseRegsThisBlock.push_back(sd.rs1);

            // Fig. 3b: EA deltas across executions of this static load.
            LoadHistory &history = loadHistories[op.pcIndex];
            for (std::size_t d = 0; d < VariationProfile::depths.size();
                 ++d) {
                unsigned depth = VariationProfile::depths[d];
                if (bbIndex < depth)
                    continue;
                std::uint64_t target_bb = bbIndex - depth;
                // Most recent execution at least `depth` blocks back.
                const std::pair<std::uint64_t, Addr> *best = nullptr;
                for (const auto &entry : history.recent) {
                    if (entry.first <= target_bb &&
                        (!best || entry.first > best->first)) {
                        best = &entry;
                    }
                }
                if (best) {
                    result.eaDelta.byDepth[d].sample(
                        absBlockDelta(op.effAddr, best->second));
                }
            }
            history.recent.emplace_back(bbIndex, op.effAddr);
            if (history.recent.size() > 64)
                history.recent.pop_front();
        }

        if (sd.isControl()) {
            // Basic-block boundary: sample Fig. 3a for the block's load
            // base registers, then snapshot the register file.
            for (std::size_t d = 0; d < VariationProfile::depths.size();
                 ++d) {
                unsigned depth = VariationProfile::depths[d];
                // snapshots[j] holds the state after basic block j-1,
                // so the state `depth` blocks ago is at index
                // bbIndex - depth + 1 (valid once that snapshot exists).
                if (bbIndex < depth)
                    continue;
                const auto &old_snapshot =
                    snapshots[(bbIndex - depth + 1) % ringSize];
                for (RegIndex r : baseRegsThisBlock) {
                    result.registerDelta.byDepth[d].sample(absBlockDelta(
                        registers[r], old_snapshot[r]));
                }
            }
            baseRegsThisBlock.clear();

            ++bbIndex;
            snapshots[bbIndex % ringSize] = registers;
            ++result.basicBlocks;
        }
    };

    const isa::StaticDecode *decode =
        source.program().decodeTable().data();
    std::vector<DynOp> batch(batchOpsEnabled() ? opBatchSize : 1);
    while (result.instructions < max_insts) {
        std::size_t want = static_cast<std::size_t>(std::min<std::uint64_t>(
            batch.size(), max_insts - result.instructions));
        std::size_t got = source.nextBatch(batch.data(), want);
        if (got == 0)
            break;
        for (std::size_t i = 0; i < got; ++i)
            profileOne(batch[i], decode[batch[i].pcIndex]);
    }
    (void)maxDepth;
    return result;
}

ProfileResult
profileRegisterVariation(const isa::Program &program,
                         std::uint64_t max_insts)
{
    LiveSource source(program);
    return profileRegisterVariation(source, max_insts);
}

} // namespace bfsim::sim
