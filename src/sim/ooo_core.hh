/**
 * @file
 * Cycle-level out-of-order core timing model.
 *
 * A one-pass execute-at-fetch model of the paper's baseline core
 * (Table II: 4-wide out-of-order, 192-entry ROB, tournament branch
 * predictor):
 *
 *  - Fetch: `width` instructions per cycle, at most one taken branch per
 *    cycle, stalled by ROB occupancy and branch-misprediction redirects.
 *  - Issue: dataflow-limited; an instruction issues at the first cycle
 *    with a free issue slot (and load port, for memory ops) after its
 *    source registers become ready. Register renaming is assumed, so
 *    only true dependences constrain scheduling.
 *  - Loads access the modeled cache hierarchy; MSHR merging and
 *    in-flight fills are handled by the hierarchy's ready-time
 *    discipline. Stores retire through a store buffer without stalling.
 *  - Commit: in order, `width` per cycle.
 *
 * Branch predictor state is trained at commit; because the model is
 * one-pass, wrong-path fetch is not replayed — the misprediction cost is
 * modeled as a fetch stall until the branch's execute completion plus a
 * frontend redirect penalty (a standard approximation).
 *
 * Prefetcher integration: demand-trained prefetchers observe every L1-D
 * access; B-Fetch is driven by its decode/execute/commit hooks. Both
 * share the prefetch queue, drained at a fixed rate into the L1-D.
 */

#ifndef BFSIM_SIM_OOO_CORE_HH_
#define BFSIM_SIM_OOO_CORE_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/bfetch.hh"
#include "core/config.hh"
#include "mem/hierarchy.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/queue.hh"
#include "sim/dyn_op_source.hh"

namespace bfsim::sim {

/**
 * Human-readable name of a prefetcher spec, matching the paper's
 * figure legends ("sms" -> "SMS", "bfetch" -> "Bfetch"); parameter
 * clauses are preserved, unknown names returned verbatim. Thin alias
 * of prefetch::prefetcherDisplayName for the label-assembly call
 * sites that predate the registry.
 */
std::string prefetcherName(const std::string &spec);

/** Core configuration (defaults per Table II). */
struct CoreConfig
{
    unsigned width = 4;          ///< fetch/issue/commit width
    unsigned robSize = 192;      ///< reorder buffer entries
    unsigned lqSize = 32;        ///< load-queue entries
    unsigned sqSize = 32;        ///< store-queue entries
    Cycle decodeDepth = 3;       ///< fetch-to-dispatch latency
    Cycle redirectPenalty = 3;   ///< post-resolution frontend refill
    unsigned loadPorts = 2;      ///< L1-D ports
    unsigned pfIssuePerCycle = 2;///< prefetch-queue drain rate
    unsigned pfQueueEntries = 100; ///< prefetch-queue capacity (Table I)
    double bpSizeScale = 1.0;    ///< predictor size scale (Fig. 13)
    /**
     * Branch-predictor registry spec, `name[:k=v,...]` (see
     * branch/registry.hh). The default is the paper's baseline
     * tournament predictor; bpSizeScale feeds the chosen predictor's
     * `scale` knob unless the spec pins its own.
     */
    std::string predictor = "tournament";
    /**
     * Prefetch-scheme registry spec (see prefetch/registry.hh):
     * none, nextn, stride, sms, bfetch or perfect (case-insensitive),
     * each with optional `:k=v` parameters.
     */
    std::string prefetcher = "None";
    core::BFetchConfig bfetch{}; ///< B-Fetch knobs (Figs. 12, 15)
    /**
     * Commit-progress watchdog: throw SimError if consecutive commits
     * are ever separated by more than this many cycles (a wedged timing
     * model would otherwise spin forever inside runBatch). 0 selects
     * the BFSIM_DEADLOCK_CYCLES environment variable, falling back to a
     * built-in default far above any legitimate memory stall.
     */
    std::uint64_t deadlockCycles = 0;
};

/** End-of-run results for one core. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    double ipc = 0.0;
    std::uint64_t condBranches = 0;
    std::uint64_t mispredicts = 0;
    double branchMissRate = 0.0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    /** Fetch-cycle branch-count distribution (Fig. 7): index 1..4. */
    std::array<std::uint64_t, 5> branchesPerFetchCycle{};
    std::uint64_t fetchCyclesWithBranch = 0;
};

/**
 * Counter-wise `end - begin` with the derived rates (ipc,
 * branchMissRate) recomputed over the difference — the stats of the
 * instructions retired *between* two snapshots of the same core. Used
 * by sampling measurement windows to discard their warmup prefix.
 */
CoreStats coreStatsDelta(const CoreStats &end, const CoreStats &begin);

/**
 * Counter-wise `into += from` with derived rates recomputed — combines
 * per-window measurement deltas into one aggregate (sampled CPI is
 * total cycles over total instructions, not a mean of ratios).
 */
void accumulateCoreStats(CoreStats &into, const CoreStats &from);

/** One simulated core: dynamic-op source + timing model + prefetcher. */
class OooCore
{
  public:
    /**
     * Construct core `core_id` over a shared hierarchy, walking the
     * dynamic instruction stream produced by `source` (live execution,
     * trace capture or trace replay — the timing model cannot tell the
     * difference).
     */
    OooCore(unsigned core_id, const CoreConfig &config,
            std::unique_ptr<DynOpSource> source,
            mem::Hierarchy &hierarchy);

    /** Convenience: live functional execution of `program`. */
    OooCore(unsigned core_id, const CoreConfig &config,
            const isa::Program &program, mem::Hierarchy &hierarchy);

    ~OooCore();

    OooCore(const OooCore &) = delete;
    OooCore &operator=(const OooCore &) = delete;

    /**
     * Advance by one dynamic instruction.
     * @return false when the program halted.
     */
    bool stepInstruction();

    /** Current head-of-fetch cycle (CMP interleaving clock). */
    Cycle fetchCycle() const { return fetchCursor; }

    /** Instructions retired so far. */
    std::uint64_t retired() const { return instCount; }

    /** Snapshot of results as of now. */
    CoreStats stats() const;

    /** The core's B-Fetch engine (nullptr unless kind == BFetch). */
    const core::BFetchEngine *bfetchEngine() const
    {
        return bfetch.get();
    }

    /** The core's branch predictor (tests / Fig. 13 reporting). */
    const branch::DirectionPredictor &predictor() const { return *bp; }

    /** The prefetch queue (occupancy stats). */
    const prefetch::PrefetchQueue &prefetchQueue() const { return queue; }

    /** The demand-trained prefetcher, if any. */
    const prefetch::Prefetcher *demandPrefetcher() const
    {
        return pfEngine.get();
    }

    /**
     * True once the program has executed Halt and every already-
     * delivered (batch-buffered) op has been consumed by the timing
     * model.
     */
    bool
    halted() const
    {
        return batchPos >= batchLen && opSource->halted();
    }

  private:
    /**
     * Walk one dynamic op through fetch/issue/execute/commit. Takes
     * the op's dynamic fields as scalars (not a DynOp) so the span
     * delivery path can feed it straight from the trace columns
     * without materializing a DynOp in memory; both delivery arms call
     * this one body, which is what keeps their statistics
     * bit-identical.
     */
    void processOp(const isa::StaticDecode &d, Addr pc, bool taken,
                   Addr eff_addr, bool writes_reg, RegVal result,
                   InstSeqNum seq);

    /** First cycle >= `from` with a free slot in a banded-count ring. */
    Cycle allocateSlot(std::vector<std::pair<Cycle, std::uint8_t>> &ring,
                       Cycle from, unsigned limit);

    /** Account a fetched instruction; returns its fetch cycle. */
    Cycle fetchOne(bool is_control, bool predicted_taken);

    /** Reset the per-fetch-cycle instruction/branch group state. */
    void resetFetchGroup();

    /**
     * Record the Fig. 7 branches-per-fetch-cycle accounting for the
     * cycle fetch is leaving, then reset the group state.
     */
    void closeFetchCycle();

    /** Drain the prefetch queue into the hierarchy up to `now`. */
    void drainPrefetches(Cycle now);

    unsigned coreId;
    CoreConfig cfg;
    std::uint64_t deadlockLimit; ///< resolved cfg.deadlockCycles
    /**
     * Perfect-memory oracle latched from the prefetch plan at
     * construction so the per-op execute path tests one bool, never a
     * string.
     */
    bool perfectMem = false;
    std::unique_ptr<DynOpSource> opSource;
    mem::Hierarchy &mem;

    // ---- batched op delivery (see sim/dyn_op_source.hh) ----
    bool useBatch;              ///< batchOpsEnabled() at construction
    /**
     * Zero-copy delivery: consume ops straight from the source's
     * span view (trace chunk arrays) instead of copying reconstructed
     * DynOps through opBuf. Starts as useBatch; demoted to false the
     * first time the source reports noSpan (e.g. LiveSource).
     */
    bool useSpan;
    OpSpanView curSpan;         ///< current zero-copy window
    std::vector<DynOp> opBuf;   ///< local delivery buffer (batch path)
    std::size_t batchPos = 0;   ///< next op in the delivery window
    std::size_t batchLen = 0;   ///< ops in the delivery window
    /** The source program's static decode cache (indexed by pcIndex). */
    const isa::StaticDecode *decodeCache;

    std::unique_ptr<branch::DirectionPredictor> bp;
    prefetch::PrefetchQueue queue;
    std::unique_ptr<prefetch::Prefetcher> pfEngine;
    std::unique_ptr<core::BFetchEngine> bfetch;

    // ---- timing state ----
    Cycle fetchCursor = 0;          ///< cycle being filled by fetch
    unsigned fetchedThisCycle = 0;  ///< instructions in fetchCursor
    unsigned branchesThisCycle = 0; ///< control insts in fetchCursor
    Cycle fetchStallUntil = 0;      ///< redirect stall
    bool breakFetchAfter = false;   ///< taken branch ends the group

    std::array<Cycle, numArchRegs> regReady{};
    std::vector<Cycle> robCommitCycle; ///< ring: commit cycle per slot
    std::vector<Cycle> lqCommitCycle;  ///< ring: load-queue slot frees
    std::vector<Cycle> sqCommitCycle;  ///< ring: store-queue slot frees
    // Ring cursors maintained by wrap-around increment; equal to
    // instCount % robSize (resp. loadCount % lqSize, storeCount %
    // sqSize) at all times, without a per-op integer division.
    std::size_t robSlot = 0;
    std::size_t lqSlot = 0;
    std::size_t sqSlot = 0;
    Cycle lastCommitCycle = 0;

    /** Per-cycle issued / load / commit counts (sparse rings). */
    std::vector<std::pair<Cycle, std::uint8_t>> issueRing;
    std::vector<std::pair<Cycle, std::uint8_t>> loadRing;
    std::vector<std::pair<Cycle, std::uint8_t>> commitRing;

    double pfBudget = 0.0;
    Cycle pfLastDrain = 0;

    // ---- statistics ----
    std::uint64_t instCount = 0;
    std::uint64_t condBranchCount = 0;
    std::uint64_t mispredictCount = 0;
    std::uint64_t loadCount = 0;
    std::uint64_t storeCount = 0;
    std::array<std::uint64_t, 5> branchesPerCycleHist{};
    std::uint64_t branchFetchCycles = 0;
};

} // namespace bfsim::sim

#endif // BFSIM_SIM_OOO_CORE_HH_
