#include "sim/ooo_core.hh"

#include <cstdlib>

#include "common/fault.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "prefetch/next_n_line.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"

namespace bfsim::sim {

std::string
prefetcherName(PrefetcherKind kind)
{
    switch (kind) {
      case PrefetcherKind::None: return "None";
      case PrefetcherKind::NextN: return "NextN";
      case PrefetcherKind::Stride: return "Stride";
      case PrefetcherKind::Sms: return "SMS";
      case PrefetcherKind::BFetch: return "Bfetch";
      case PrefetcherKind::Perfect: return "Perfect";
    }
    return "?";
}

namespace {

/** Size of the sparse per-cycle bandwidth rings. */
constexpr std::size_t ringSize = 1 << 14;

/**
 * Resolve CoreConfig::deadlockCycles: explicit config wins, then the
 * BFSIM_DEADLOCK_CYCLES environment variable, then a default orders of
 * magnitude above any legitimate commit-to-commit stall.
 */
std::uint64_t
resolveDeadlockLimit(std::uint64_t configured)
{
    if (configured > 0)
        return configured;
    if (const char *env = std::getenv("BFSIM_DEADLOCK_CYCLES")) {
        char *end = nullptr;
        unsigned long long value = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && value > 0)
            return value;
        warn("ignoring malformed BFSIM_DEADLOCK_CYCLES value");
    }
    return 2'000'000;
}

} // namespace

OooCore::OooCore(unsigned core_id, const CoreConfig &config,
                 const isa::Program &program, mem::Hierarchy &hierarchy)
    : OooCore(core_id, config, std::make_unique<LiveSource>(program),
              hierarchy)
{
}

OooCore::OooCore(unsigned core_id, const CoreConfig &config,
                 std::unique_ptr<DynOpSource> source,
                 mem::Hierarchy &hierarchy)
    : coreId(core_id),
      cfg(config),
      deadlockLimit(resolveDeadlockLimit(config.deadlockCycles)),
      opSource(std::move(source)),
      mem(hierarchy),
      bp(branch::makeTournamentPredictor(config.bpSizeScale)),
      queue(100),
      robCommitCycle(config.robSize, 0),
      lqCommitCycle(config.lqSize, 0),
      sqCommitCycle(config.sqSize, 0),
      issueRing(ringSize, {0, 0}),
      loadRing(ringSize, {0, 0}),
      commitRing(ringSize, {0, 0})
{
    BFSIM_CHECK(opSource != nullptr, "ooo_core",
                "OooCore requires a dynamic-op source");
    BFSIM_CHECK(cfg.width > 0, "ooo_core",
                "core width must be positive");
    BFSIM_CHECK(cfg.robSize > 0, "ooo_core",
                "ROB size must be positive");
    BFSIM_CHECK(cfg.lqSize > 0, "ooo_core",
                "load-queue size must be positive");
    BFSIM_CHECK(cfg.sqSize > 0, "ooo_core",
                "store-queue size must be positive");
    switch (cfg.prefetcher) {
      case PrefetcherKind::NextN:
        pfEngine = std::make_unique<prefetch::NextNLinePrefetcher>();
        break;
      case PrefetcherKind::Stride:
        pfEngine = std::make_unique<prefetch::StridePrefetcher>();
        break;
      case PrefetcherKind::Sms:
        pfEngine = std::make_unique<prefetch::SmsPrefetcher>();
        break;
      case PrefetcherKind::BFetch:
        bfetch = std::make_unique<core::BFetchEngine>(cfg.bfetch, *bp,
                                                      queue);
        mem.setPrefetchFeedback(
            coreId, [this](std::uint16_t hash, bool useful) {
                bfetch->onPrefetchFeedback(hash, useful);
            });
        break;
      case PrefetcherKind::None:
      case PrefetcherKind::Perfect:
        break;
    }
}

OooCore::~OooCore() = default;

Cycle
OooCore::allocateSlot(std::vector<std::pair<Cycle, std::uint8_t>> &ring,
                      Cycle from, unsigned limit)
{
    Cycle cycle = from;
    for (;;) {
        auto &slot = ring[cycle & (ringSize - 1)];
        if (slot.first != cycle) {
            slot.first = cycle;
            slot.second = 1;
            return cycle;
        }
        if (slot.second < limit) {
            ++slot.second;
            return cycle;
        }
        ++cycle;
    }
}

Cycle
OooCore::fetchOne(bool is_control, bool predicted_taken)
{
    Cycle f = fetchCursor;
    if (f < fetchStallUntil) {
        f = fetchStallUntil;
        fetchedThisCycle = 0;
        branchesThisCycle = 0;
        breakFetchAfter = false;
    }

    // ROB occupancy: the slot this instruction will take must have been
    // committed by its previous occupant.
    Cycle rob_free = robCommitCycle[instCount % cfg.robSize];
    if (f < rob_free) {
        f = rob_free;
        fetchedThisCycle = 0;
        branchesThisCycle = 0;
        breakFetchAfter = false;
    }

    if (f != fetchCursor) {
        // Close the Fig. 7 accounting for the cycle we left.
        if (branchesThisCycle > 0) {
            ++branchFetchCycles;
            std::size_t bucket =
                branchesThisCycle > 4 ? 4 : branchesThisCycle;
            ++branchesPerCycleHist[bucket];
        }
        fetchCursor = f;
        fetchedThisCycle = 0;
        branchesThisCycle = 0;
        breakFetchAfter = false;
    }

    if (fetchedThisCycle >= cfg.width || breakFetchAfter) {
        if (branchesThisCycle > 0) {
            ++branchFetchCycles;
            std::size_t bucket =
                branchesThisCycle > 4 ? 4 : branchesThisCycle;
            ++branchesPerCycleHist[bucket];
        }
        ++fetchCursor;
        f = fetchCursor;
        fetchedThisCycle = 0;
        branchesThisCycle = 0;
        breakFetchAfter = false;
    }

    ++fetchedThisCycle;
    if (is_control) {
        ++branchesThisCycle;
        if (predicted_taken)
            breakFetchAfter = true;
    }
    return f;
}

void
OooCore::drainPrefetches(Cycle now)
{
    if (now > pfLastDrain) {
        pfBudget += static_cast<double>(now - pfLastDrain) *
                    cfg.pfIssuePerCycle;
        pfLastDrain = now;
        // A long stall must not bank an unbounded burst.
        if (pfBudget > 4.0 * cfg.pfIssuePerCycle)
            pfBudget = 4.0 * cfg.pfIssuePerCycle;
    }
    while (pfBudget >= 1.0 && !queue.empty()) {
        prefetch::PrefetchCandidate candidate = queue.pop();
        // Tag probes for already-present blocks are cheap and do not
        // consume an L1 fill slot.
        if (mem.prefetch(coreId, candidate.blockAddr, now,
                         candidate.loadPcHash) ==
            mem::PrefetchResult::Issued) {
            pfBudget -= 1.0;
        }
    }
}

bool
OooCore::stepInstruction()
{
    DynOp op;
    if (!opSource->next(op))
        return false;

    const isa::Instruction &inst = *op.inst;
    bool is_control = inst.isControl();
    bool is_cond = inst.isCondBranch();

    // ---------------- fetch + branch prediction ----------------
    bool predicted_taken = op.taken;
    bool mispredicted = false;
    if (is_cond) {
        predicted_taken = bp->predict(op.pc);
        mispredicted = (predicted_taken != op.taken);
        ++condBranchCount;
        if (mispredicted)
            ++mispredictCount;
    }
    bool fetch_break = is_control && (is_cond ? predicted_taken : true);
    Cycle f = fetchOne(is_control, fetch_break);
    Cycle decode = f + cfg.decodeDepth;

    // ---------------- dispatch / issue ----------------
    Cycle ready = decode + 1;
    // Source dependences (renaming assumed: true deps only).
    switch (inst.op) {
      case isa::Opcode::Nop:
      case isa::Opcode::Halt:
      case isa::Opcode::MovI:
      case isa::Opcode::Jmp:
        break;
      case isa::Opcode::Load:
        ready = std::max(ready, regReady[inst.rs1]);
        break;
      default:
        ready = std::max(ready, regReady[inst.rs1]);
        if (!inst.isMemory() && inst.op != isa::Opcode::AddI &&
            inst.op != isa::Opcode::AndI &&
            inst.op != isa::Opcode::OrI &&
            inst.op != isa::Opcode::XorI &&
            inst.op != isa::Opcode::SllI &&
            inst.op != isa::Opcode::SrlI &&
            inst.op != isa::Opcode::CmpLtI &&
            inst.op != isa::Opcode::CmpEqI) {
            ready = std::max(ready, regReady[inst.rs2]);
        }
        if (inst.isStore())
            ready = std::max(ready, regReady[inst.rs2]);
        break;
    }

    // Load/store queue occupancy: the LSQ slot this instruction takes
    // must have been freed (committed) by its previous occupant. This is
    // what bounds memory-level parallelism on a real O3 core.
    if (inst.isLoad())
        ready = std::max(ready, lqCommitCycle[loadCount % cfg.lqSize]);
    else if (inst.isStore())
        ready = std::max(ready, sqCommitCycle[storeCount % cfg.sqSize]);

    Cycle issue = allocateSlot(issueRing, ready, cfg.width);
    if (inst.isMemory())
        issue = allocateSlot(loadRing, issue, cfg.loadPorts);

    // ---------------- execute ----------------
    Cycle done;
    if (inst.isLoad()) {
        if (cfg.prefetcher == PrefetcherKind::Perfect) {
            done = issue + mem.config().l1d.hitLatency;
        } else {
            mem::AccessOutcome outcome =
                mem.access(coreId, op.effAddr, false, issue);
            done = issue + outcome.latency;
            if (pfEngine) {
                prefetch::DemandAccess access{op.pc, op.effAddr, true,
                                              outcome.l1Hit, issue};
                pfEngine->observe(access, queue);
            }
        }
    } else if (inst.isStore()) {
        if (cfg.prefetcher != PrefetcherKind::Perfect) {
            mem::AccessOutcome outcome =
                mem.access(coreId, op.effAddr, true, issue);
            if (pfEngine) {
                prefetch::DemandAccess access{op.pc, op.effAddr, false,
                                              outcome.l1Hit, issue};
                pfEngine->observe(access, queue);
            }
        }
        // Stores drain through the store buffer off the critical path.
        done = issue + 1;
    } else {
        done = issue + inst.executeLatency();
    }

    if (op.writesReg) {
        regReady[inst.rd] = done;
        if (bfetch && !cfg.bfetch.arfFromCommitOnly)
            bfetch->onRegWrite(inst.rd, op.result, op.seq, done);
    }

    // Branch resolution: a mispredicted branch redirects fetch after it
    // executes.
    if (is_cond && mispredicted)
        fetchStallUntil = done + cfg.redirectPenalty;

    // B-Fetch decode hook: every decoded control instruction seeds a
    // lookahead walk with the frontend's prediction for it.
    if (is_control && bfetch) {
        Addr predicted_target;
        bool eff_taken = is_cond ? predicted_taken : true;
        if (eff_taken)
            predicted_target = isa::instAddr(inst.target);
        else
            predicted_target = op.pc + 4;
        bfetch->onDecodeBranch(op.pc, eff_taken, predicted_target,
                               is_cond, decode);
    }

    // ---------------- commit (in order, width per cycle) ----------------
    Cycle commit_ready = std::max(done + 1, lastCommitCycle);
    Cycle commit = allocateSlot(commitRing, commit_ready, cfg.width);
    // Watchdog: in this one-pass model every instruction commits, so a
    // commit-to-commit gap beyond the limit means a wedged latency
    // computation, not a slow workload. Fail the job instead of letting
    // it spin (or silently absorb an absurd stall) inside a batch.
    if (commit - lastCommitCycle > deadlockLimit) {
        throw SimError("ooo_core",
                       "no commit progress for " +
                           std::to_string(commit - lastCommitCycle) +
                           " cycles (limit " +
                           std::to_string(deadlockLimit) +
                           "; raise BFSIM_DEADLOCK_CYCLES if intended)",
                       commit);
    }
    lastCommitCycle = commit;
    robCommitCycle[instCount % cfg.robSize] = commit;
    if (inst.isLoad())
        lqCommitCycle[loadCount++ % cfg.lqSize] = commit;
    else if (inst.isStore())
        sqCommitCycle[storeCount++ % cfg.sqSize] = commit;

    if (bfetch && is_control) {
        // Order matters: confidence training must see the same global
        // history the prediction (and lookahead estimates) used, i.e.
        // before this branch shifts it.
        bfetch->onCommitBranch(op.pc, op.taken,
                               isa::instAddr(inst.target), is_cond,
                               !mispredicted);
    }
    if (is_cond)
        bp->update(op.pc, op.taken);
    if (bfetch) {
        if (inst.isMemory())
            bfetch->onCommitMem(op.pc, inst.rs1, op.effAddr,
                                inst.isLoad());
        if (op.writesReg) {
            bfetch->onCommitRegWrite(inst.rd, op.result);
            if (cfg.bfetch.arfFromCommitOnly)
                bfetch->onRegWrite(inst.rd, op.result, op.seq, commit);
        }
    }

    ++instCount;

    drainPrefetches(fetchCursor);
    return true;
}

CoreStats
OooCore::stats() const
{
    CoreStats s;
    s.instructions = instCount;
    s.cycles = lastCommitCycle ? lastCommitCycle : 1;
    s.ipc = static_cast<double>(instCount) /
            static_cast<double>(s.cycles);
    s.condBranches = condBranchCount;
    s.mispredicts = mispredictCount;
    s.branchMissRate =
        condBranchCount
            ? static_cast<double>(mispredictCount) /
                  static_cast<double>(condBranchCount)
            : 0.0;
    s.loads = loadCount;
    s.stores = storeCount;
    s.branchesPerFetchCycle = branchesPerCycleHist;
    s.fetchCyclesWithBranch = branchFetchCycles;
    return s;
}

} // namespace bfsim::sim
