#include "sim/ooo_core.hh"

#include <cstdlib>

#include "branch/registry.hh"
#include "common/fault.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "prefetch/registry.hh"

namespace bfsim::sim {

std::string
prefetcherName(const std::string &spec)
{
    return prefetch::prefetcherDisplayName(spec);
}

namespace {

/** Size of the sparse per-cycle bandwidth rings. */
constexpr std::size_t ringSize = 1 << 14;

/**
 * Resolve CoreConfig::deadlockCycles: explicit config wins, then the
 * BFSIM_DEADLOCK_CYCLES environment variable, then a default orders of
 * magnitude above any legitimate commit-to-commit stall.
 */
std::uint64_t
resolveDeadlockLimit(std::uint64_t configured)
{
    if (configured > 0)
        return configured;
    if (const char *env = std::getenv("BFSIM_DEADLOCK_CYCLES")) {
        char *end = nullptr;
        unsigned long long value = std::strtoull(env, &end, 10);
        if (end && *end == '\0' && value > 0)
            return value;
        warn("ignoring malformed BFSIM_DEADLOCK_CYCLES value");
    }
    return 2'000'000;
}

} // namespace

OooCore::OooCore(unsigned core_id, const CoreConfig &config,
                 const isa::Program &program, mem::Hierarchy &hierarchy)
    : OooCore(core_id, config, std::make_unique<LiveSource>(program),
              hierarchy)
{
}

OooCore::OooCore(unsigned core_id, const CoreConfig &config,
                 std::unique_ptr<DynOpSource> source,
                 mem::Hierarchy &hierarchy)
    : coreId(core_id),
      cfg(config),
      deadlockLimit(resolveDeadlockLimit(config.deadlockCycles)),
      opSource(std::move(source)),
      mem(hierarchy),
      bp(branch::makePredictor(config.predictor, config.bpSizeScale)),
      queue(config.pfQueueEntries),
      robCommitCycle(config.robSize, 0),
      lqCommitCycle(config.lqSize, 0),
      sqCommitCycle(config.sqSize, 0),
      issueRing(ringSize, {0, 0}),
      loadRing(ringSize, {0, 0}),
      commitRing(ringSize, {0, 0})
{
    BFSIM_CHECK(opSource != nullptr, "ooo_core",
                "OooCore requires a dynamic-op source");
    useBatch = batchOpsEnabled();
    useSpan = useBatch;
    if (useBatch)
        opBuf.resize(opBatchSize);
    decodeCache = opSource->program().decodeTable().data();
    BFSIM_CHECK(cfg.width > 0, "ooo_core",
                "core width must be positive");
    BFSIM_CHECK(cfg.pfQueueEntries > 0, "ooo_core",
                "prefetch-queue capacity must be positive");
    BFSIM_CHECK(cfg.robSize > 0, "ooo_core",
                "ROB size must be positive");
    BFSIM_CHECK(cfg.lqSize > 0, "ooo_core",
                "load-queue size must be positive");
    BFSIM_CHECK(cfg.sqSize > 0, "ooo_core",
                "store-queue size must be positive");
    // Registry-driven prefetch plan (prefetch/registry.hh): the demand
    // prefetcher arrives constructed; B-Fetch composition stays here
    // because the engine wraps this core's predictor and queue.
    prefetch::CorePrefetch plan =
        prefetch::makeCorePrefetch(cfg.prefetcher);
    pfEngine = std::move(plan.demand);
    perfectMem = plan.perfectMem;
    if (plan.attachBFetch) {
        bfetch = std::make_unique<core::BFetchEngine>(cfg.bfetch, *bp,
                                                      queue);
        mem.setPrefetchFeedback(
            coreId, [this](std::uint16_t hash, bool useful) {
                bfetch->onPrefetchFeedback(hash, useful);
            });
    }
}

OooCore::~OooCore() = default;

Cycle
OooCore::allocateSlot(std::vector<std::pair<Cycle, std::uint8_t>> &ring,
                      Cycle from, unsigned limit)
{
    Cycle cycle = from;
    for (;;) {
        auto &slot = ring[cycle & (ringSize - 1)];
        if (slot.first != cycle) {
            slot.first = cycle;
            slot.second = 1;
            return cycle;
        }
        if (slot.second < limit) {
            ++slot.second;
            return cycle;
        }
        ++cycle;
    }
}

void
OooCore::resetFetchGroup()
{
    fetchedThisCycle = 0;
    branchesThisCycle = 0;
    breakFetchAfter = false;
}

void
OooCore::closeFetchCycle()
{
    if (branchesThisCycle > 0) {
        ++branchFetchCycles;
        std::size_t bucket =
            branchesThisCycle > 4 ? 4 : branchesThisCycle;
        ++branchesPerCycleHist[bucket];
    }
    resetFetchGroup();
}

Cycle
OooCore::fetchOne(bool is_control, bool predicted_taken)
{
    Cycle f = fetchCursor;
    if (f < fetchStallUntil) {
        f = fetchStallUntil;
        resetFetchGroup();
    }

    // ROB occupancy: the slot this instruction will take must have been
    // committed by its previous occupant.
    Cycle rob_free = robCommitCycle[robSlot];
    if (f < rob_free) {
        f = rob_free;
        resetFetchGroup();
    }

    if (f != fetchCursor) {
        // Close the Fig. 7 accounting for the cycle we left. (When a
        // stall or ROB wait already reset the group above, the counts
        // are zero and only the cursor moves — matching the historical
        // accounting, which never billed stalled-over cycles.)
        closeFetchCycle();
        fetchCursor = f;
    }

    if (fetchedThisCycle >= cfg.width || breakFetchAfter) {
        closeFetchCycle();
        ++fetchCursor;
        f = fetchCursor;
    }

    ++fetchedThisCycle;
    if (is_control) {
        ++branchesThisCycle;
        if (predicted_taken)
            breakFetchAfter = true;
    }
    return f;
}

void
OooCore::drainPrefetches(Cycle now)
{
    // Overhaul-arm shortcuts, both exact no-op skips. Empty queue:
    // only budget accrual remains, and deferring it is exact —
    // iterated per-call accrual min(b + d_i*rate, cap) telescopes to
    // the same value as one accrual over the summed gap, because
    // accrual is linear and the cap binds identically either way.
    // Same cycle with a spent budget: accrual adds nothing and the
    // issue loop cannot run. The reference arm keeps paying the
    // pre-overhaul per-op cost.
    if (useBatch && (queue.empty() ||
                     (now == pfLastDrain && pfBudget < 1.0)))
        return;
    if (now > pfLastDrain) {
        pfBudget += static_cast<double>(now - pfLastDrain) *
                    cfg.pfIssuePerCycle;
        pfLastDrain = now;
        // A long stall must not bank an unbounded burst.
        if (pfBudget > 4.0 * cfg.pfIssuePerCycle)
            pfBudget = 4.0 * cfg.pfIssuePerCycle;
    }
    while (pfBudget >= 1.0 && !queue.empty()) {
        prefetch::PrefetchCandidate candidate = queue.pop();
        // Tag probes for already-present blocks are cheap and do not
        // consume an L1 fill slot.
        if (mem.prefetch(coreId, candidate.blockAddr, now,
                         candidate.loadPcHash) ==
            mem::PrefetchResult::Issued) {
            pfBudget -= 1.0;
        }
    }
}

bool
OooCore::stepInstruction()
{
    if (useSpan) {
        if (batchPos >= batchLen) {
            std::size_t n = opSource->nextSpan(curSpan, opBatchSize);
            if (n == DynOpSource::noSpan) {
                // Source has no span representation (e.g. LiveSource):
                // latch the copying batch path for the rest of the run.
                useSpan = false;
                return stepInstruction();
            }
            batchPos = 0;
            batchLen = n;
            if (n == 0)
                return false;
        }
        // Feed the op to processOp straight from the trace's column
        // arrays; no DynOp is materialized in memory at all.
        std::size_t s = batchPos++;
        std::uint32_t pc_index = curSpan.pcIndex[s];
        std::uint8_t flags = curSpan.flags[s];
        processOp(decodeCache[pc_index], isa::instAddr(pc_index),
                  (flags & OpSpanView::takenFlag) != 0,
                  curSpan.effAddr[s],
                  (flags & OpSpanView::writesRegFlag) != 0,
                  curSpan.result[s], curSpan.baseSeq + s);
    } else if (useBatch) {
        if (batchPos >= batchLen) {
            batchLen = opSource->nextBatch(opBuf.data(), opBuf.size());
            batchPos = 0;
            if (batchLen == 0)
                return false;
        }
        const DynOp &op = opBuf[batchPos++];
        processOp(decodeCache[op.pcIndex], op.pc, op.taken, op.effAddr,
                  op.writesReg, op.result, op.seq);
    } else {
        // Reference path (BFSIM_BATCH_OPS=0): one virtual call and one
        // full decode per op, exactly as the pre-batching hot loop paid
        // them. Both paths share processOp, so stats cannot diverge.
        DynOp op;
        if (!opSource->next(op))
            return false;
        processOp(isa::decodeOne(*op.inst), op.pc, op.taken, op.effAddr,
                  op.writesReg, op.result, op.seq);
    }
    return true;
}

void
OooCore::processOp(const isa::StaticDecode &d, Addr pc, bool taken,
                   Addr eff_addr, bool writes_reg, RegVal result,
                   InstSeqNum seq)
{
    bool is_control = d.isControl();
    bool is_cond = d.isCondBranch();

    // ---------------- fetch + branch prediction ----------------
    bool predicted_taken = taken;
    bool mispredicted = false;
    if (is_cond) {
        predicted_taken = bp->predict(pc);
        mispredicted = (predicted_taken != taken);
        ++condBranchCount;
        if (mispredicted)
            ++mispredictCount;
    }
    bool fetch_break = is_control && (is_cond ? predicted_taken : true);
    Cycle f = fetchOne(is_control, fetch_break);
    Cycle decode = f + cfg.decodeDepth;

    // ---------------- dispatch / issue ----------------
    Cycle ready = decode + 1;
    // Source dependences (renaming assumed: true deps only).
    if (d.readsRs1())
        ready = std::max(ready, regReady[d.rs1]);
    if (d.readsRs2())
        ready = std::max(ready, regReady[d.rs2]);

    // Load/store queue occupancy: the LSQ slot this instruction takes
    // must have been freed (committed) by its previous occupant. This is
    // what bounds memory-level parallelism on a real O3 core.
    if (d.isLoad())
        ready = std::max(ready, lqCommitCycle[lqSlot]);
    else if (d.isStore())
        ready = std::max(ready, sqCommitCycle[sqSlot]);

    Cycle issue = allocateSlot(issueRing, ready, cfg.width);
    if (d.isMemory())
        issue = allocateSlot(loadRing, issue, cfg.loadPorts);

    // ---------------- execute ----------------
    Cycle done;
    if (d.isLoad()) {
        if (perfectMem) {
            done = issue + mem.config().l1d.hitLatency;
        } else {
            mem::AccessOutcome outcome =
                mem.access(coreId, eff_addr, false, issue);
            done = issue + outcome.latency;
            if (pfEngine) {
                prefetch::DemandAccess access{pc, eff_addr, true,
                                              outcome.l1Hit, issue};
                pfEngine->observe(access, queue);
            }
        }
    } else if (d.isStore()) {
        if (!perfectMem) {
            mem::AccessOutcome outcome =
                mem.access(coreId, eff_addr, true, issue);
            if (pfEngine) {
                prefetch::DemandAccess access{pc, eff_addr, false,
                                              outcome.l1Hit, issue};
                pfEngine->observe(access, queue);
            }
        }
        // Stores drain through the store buffer off the critical path.
        done = issue + 1;
    } else {
        done = issue + d.latency;
    }

    if (writes_reg) {
        regReady[d.rd] = done;
        if (bfetch && !cfg.bfetch.arfFromCommitOnly)
            bfetch->onRegWrite(d.rd, result, seq, done);
    }

    // Branch resolution: a mispredicted branch redirects fetch after it
    // executes.
    if (is_cond && mispredicted)
        fetchStallUntil = done + cfg.redirectPenalty;

    // B-Fetch decode hook: every decoded control instruction seeds a
    // lookahead walk with the frontend's prediction for it.
    if (is_control && bfetch) {
        Addr predicted_target;
        bool eff_taken = is_cond ? predicted_taken : true;
        if (eff_taken)
            predicted_target = d.targetAddr;
        else
            predicted_target = pc + 4;
        bfetch->onDecodeBranch(pc, eff_taken, predicted_target,
                               is_cond, decode);
    }

    // ---------------- commit (in order, width per cycle) ----------------
    Cycle commit_ready = std::max(done + 1, lastCommitCycle);
    Cycle commit = allocateSlot(commitRing, commit_ready, cfg.width);
    // Watchdog: in this one-pass model every instruction commits, so a
    // commit-to-commit gap beyond the limit means a wedged latency
    // computation, not a slow workload. Fail the job instead of letting
    // it spin (or silently absorb an absurd stall) inside a batch.
    if (commit - lastCommitCycle > deadlockLimit) {
        throw SimError("ooo_core",
                       "no commit progress for " +
                           std::to_string(commit - lastCommitCycle) +
                           " cycles (limit " +
                           std::to_string(deadlockLimit) +
                           "; raise BFSIM_DEADLOCK_CYCLES if intended)",
                       commit);
    }
    lastCommitCycle = commit;
    robCommitCycle[robSlot] = commit;
    if (++robSlot == cfg.robSize)
        robSlot = 0;
    if (d.isLoad()) {
        lqCommitCycle[lqSlot] = commit;
        if (++lqSlot == cfg.lqSize)
            lqSlot = 0;
        ++loadCount;
    } else if (d.isStore()) {
        sqCommitCycle[sqSlot] = commit;
        if (++sqSlot == cfg.sqSize)
            sqSlot = 0;
        ++storeCount;
    }

    if (bfetch && is_control) {
        // Order matters: confidence training must see the same global
        // history the prediction (and lookahead estimates) used, i.e.
        // before this branch shifts it.
        bfetch->onCommitBranch(pc, taken, d.targetAddr, is_cond,
                               !mispredicted);
    }
    if (is_cond)
        bp->update(pc, taken);
    if (bfetch) {
        if (d.isMemory())
            bfetch->onCommitMem(pc, d.rs1, eff_addr, d.isLoad());
        if (writes_reg) {
            bfetch->onCommitRegWrite(d.rd, result);
            if (cfg.bfetch.arfFromCommitOnly)
                bfetch->onRegWrite(d.rd, result, seq, commit);
        }
    }

    ++instCount;

    drainPrefetches(fetchCursor);
}

CoreStats
OooCore::stats() const
{
    CoreStats s;
    s.instructions = instCount;
    s.cycles = lastCommitCycle ? lastCommitCycle : 1;
    s.ipc = static_cast<double>(instCount) /
            static_cast<double>(s.cycles);
    s.condBranches = condBranchCount;
    s.mispredicts = mispredictCount;
    s.branchMissRate =
        condBranchCount
            ? static_cast<double>(mispredictCount) /
                  static_cast<double>(condBranchCount)
            : 0.0;
    s.loads = loadCount;
    s.stores = storeCount;
    s.branchesPerFetchCycle = branchesPerCycleHist;
    s.fetchCyclesWithBranch = branchFetchCycles;
    return s;
}

namespace {

void
recomputeDerived(CoreStats &s)
{
    s.ipc = s.cycles ? static_cast<double>(s.instructions) /
                           static_cast<double>(s.cycles)
                     : 0.0;
    s.branchMissRate =
        s.condBranches ? static_cast<double>(s.mispredicts) /
                             static_cast<double>(s.condBranches)
                       : 0.0;
}

} // namespace

CoreStats
coreStatsDelta(const CoreStats &end, const CoreStats &begin)
{
    CoreStats d;
    d.instructions = end.instructions - begin.instructions;
    d.cycles = end.cycles - begin.cycles;
    d.condBranches = end.condBranches - begin.condBranches;
    d.mispredicts = end.mispredicts - begin.mispredicts;
    d.loads = end.loads - begin.loads;
    d.stores = end.stores - begin.stores;
    for (std::size_t i = 0; i < d.branchesPerFetchCycle.size(); ++i) {
        d.branchesPerFetchCycle[i] = end.branchesPerFetchCycle[i] -
                                     begin.branchesPerFetchCycle[i];
    }
    d.fetchCyclesWithBranch =
        end.fetchCyclesWithBranch - begin.fetchCyclesWithBranch;
    recomputeDerived(d);
    return d;
}

void
accumulateCoreStats(CoreStats &into, const CoreStats &from)
{
    into.instructions += from.instructions;
    into.cycles += from.cycles;
    into.condBranches += from.condBranches;
    into.mispredicts += from.mispredicts;
    into.loads += from.loads;
    into.stores += from.stores;
    for (std::size_t i = 0; i < into.branchesPerFetchCycle.size(); ++i)
        into.branchesPerFetchCycle[i] += from.branchesPerFetchCycle[i];
    into.fetchCyclesWithBranch += from.fetchCyclesWithBranch;
    recomputeDerived(into);
}

} // namespace bfsim::sim
