#include "sim/trace.hh"

#include <chrono>

#include "common/fault.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "sim/trace_store.hh"

namespace bfsim::sim {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

TraceBuffer::TraceBuffer(const isa::Program &program)
    : prog(program), chunks(maxChunks)
{
}

TraceBuffer::TraceBuffer(
    const isa::Program &program,
    std::unique_ptr<trace_store::ArtifactReader> artifact)
    : prog(program), reader(std::move(artifact)), chunks(maxChunks)
{
    // Adopt the artifact's checkpoint records up front (they stay valid
    // even if a later chunk turns out corrupt: the stream they describe
    // is deterministic and live re-capture reproduces it bit-
    // identically), so sampling can restore window state on the disk
    // tier without touching the op stream.
    if (reader)
        ckpts = reader->checkpoints();
}

TraceBuffer::~TraceBuffer() = default;

Executor &
TraceBuffer::executor()
{
    if (!exec) {
        // First live extension: rebuild architectural state over the
        // committed prefix (store-decoded and/or previously captured)
        // by *trace-directed replay* instead of re-interpreting every
        // instruction. The stream already holds every store's value
        // (regs[rs2] at store time is reproduced from the recorded
        // writebacks) and every register writeback, so applying those
        // effects is sufficient — and several times cheaper than
        // step(), which is what makes window fast-forward affordable.
        // The same walk rebuilds the checkpoint warming-cache state the
        // prefix implies, so capture-time checkpoints recorded after
        // this point match what a from-scratch capture would emit.
        exec = std::make_unique<Executor>(prog);
        warmTracker =
            std::make_unique<trace_store::CheckpointWarmCache>();
        std::uint64_t replay =
            committed.load(std::memory_order_relaxed);
        const isa::Instruction *insts = prog.insts().data();
        const isa::StaticDecode *decode = prog.decodeTable().data();
        Memory &mem = exec->memory();
        std::array<RegVal, numArchRegs> regs{};
        std::uint32_t pc = exec->pc();
        std::uint64_t i = 0;
        while (i < replay) {
            OpSpanView span;
            std::size_t n = spanAt(
                i, static_cast<std::size_t>(std::min<std::uint64_t>(
                       chunkOps, replay - i)),
                span);
            for (std::size_t k = 0; k < n; ++k) {
                std::uint32_t pcv = span.pcIndex[k];
                Addr addr = span.effAddr[k];
                if (addr != 0) {
                    warmTracker->access(addr);
                    if (decode[pcv].isStore())
                        mem.write64(addr, regs[insts[pcv].rs2]);
                }
                // Mirrors Executor::writeReg: r0 stays hardwired zero.
                if ((span.flags[k] & writesRegFlag) &&
                    insts[pcv].rd != 0) {
                    regs[insts[pcv].rd] = span.result[k];
                }
                pc = (decode[pcv].isControl() &&
                      (span.flags[k] & takenFlag))
                         ? insts[pcv].target
                         : pcv + 1;
            }
            i += n;
        }
        exec->restoreState(pc, regs, replay);
    }
    return *exec;
}

void
TraceBuffer::recordCheckpoint(std::uint64_t avail, Executor &engine)
{
    trace_store::Checkpoint ckpt;
    ckpt.opIndex = avail;
    ckpt.pcIndex = engine.pc();
    for (RegIndex r = 0; r < numArchRegs; ++r)
        ckpt.regs[r] = engine.reg(r);
    ckpt.cacheTags = warmTracker->snapshot();

    std::lock_guard<std::mutex> lock(ckptMutex);
    // Keep the vector sorted and free of duplicates. Adopted artifact
    // records can reach past `committed` (a corrupt chunk degraded the
    // tail to live capture), so live extension may cross boundaries
    // that already have a record.
    auto it = std::lower_bound(
        ckpts.begin(), ckpts.end(), avail,
        [](const trace_store::Checkpoint &c, std::uint64_t v) {
            return c.opIndex < v;
        });
    if (it != ckpts.end() && it->opIndex == avail)
        return;
    ckpts.insert(it, std::move(ckpt));
}

bool
TraceBuffer::checkpointAtOrBefore(std::uint64_t op,
                                  trace_store::Checkpoint &out) const
{
    std::lock_guard<std::mutex> lock(ckptMutex);
    auto it = std::upper_bound(
        ckpts.begin(), ckpts.end(), op,
        [](std::uint64_t v, const trace_store::Checkpoint &c) {
            return v < c.opIndex;
        });
    if (it == ckpts.begin())
        return false;
    out = *std::prev(it);
    return true;
}

std::vector<trace_store::Checkpoint>
TraceBuffer::checkpoints() const
{
    std::lock_guard<std::mutex> lock(ckptMutex);
    return ckpts;
}

std::uint64_t
TraceBuffer::ensure(std::uint64_t n)
{
    std::uint64_t avail = committed.load(std::memory_order_acquire);
    if (avail >= n)
        return avail;

    std::lock_guard<std::mutex> lock(extendMutex);
    if (fault::shouldFail(fault::Site::TraceExtend))
        throw SimError("trace", "injected fault: trace extension");
    avail = committed.load(std::memory_order_relaxed);
    if (isHalted.load(std::memory_order_relaxed))
        return avail;

    // Capture-time checkpoint density (in ops). Sampled once per
    // ensure() call so a mid-capture knob change cannot tear a chunk.
    const std::uint64_t ckpt_interval_ops =
        trace_store::checkpointIntervalChunks() * chunkOps;

    // Record in per-chunk spans: chunk lookup, bounds checks and the
    // `committed` release-store are hoisted out of the per-op loop, so
    // recording adds only four plain stores per executed op. Readers
    // acquire `committed` and never see a span before its array writes.
    DynOp op;
    while (avail < n) {
        std::size_t chunk_index =
            static_cast<std::size_t>(avail / chunkOps);
        if (chunk_index >= maxChunks) {
            throw SimError(
                "trace",
                "trace buffer exceeds " +
                    std::to_string(maxChunks * chunkOps) +
                    " ops; disable the trace cache (BFSIM_TRACE_CACHE=0)"
                    " for runs this long");
        }
        if (!chunks[chunk_index]) {
            chunks[chunk_index] = std::make_unique<Chunk>();
            allocatedChunks.fetch_add(1, std::memory_order_relaxed);
        }
        Chunk &chunk = *chunks[chunk_index];

        // Disk tier: decode a whole stored chunk straight into the SoA
        // arrays. While the reader is attached, `avail` only stops
        // being chunk-aligned at the artifact's tail, after which the
        // next decode returns 0 and live extension takes over.
        if (reader) {
            try {
                std::size_t got = reader->decodeChunk(
                    chunk.pcIndex.get(), chunk.effAddr.get(),
                    chunk.result.get(), chunk.flags.get());
                if (got > 0) {
                    avail += got;
                    committed.store(avail, std::memory_order_release);
                    continue;
                }
                // Artifact exhausted: either the program halted within
                // it, or the consumer wants more than was ever
                // captured — extend live past the stored end.
                if (reader->halted()) {
                    isHalted.store(true, std::memory_order_release);
                    reader.reset();
                    break;
                }
                reader.reset();
            } catch (const SimError &error) {
                // Mid-stream corruption or an injected trace_store
                // fault: the artifact is untrustworthy but the run is
                // not — everything committed so far was CRC-verified,
                // so live execution resumes from it bit-identically.
                warn(std::string("trace store: ") + error.message() +
                     "; resuming with live execution");
                reader.reset();
            }
        }

        std::size_t k = static_cast<std::size_t>(avail % chunkOps);
        std::size_t span_end = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunkOps, k + (n - avail)));
        std::uint32_t *pcs = chunk.pcIndex.get();
        Addr *addrs = chunk.effAddr.get();
        RegVal *results = chunk.result.get();
        std::uint8_t *flags = chunk.flags.get();
        bool halted_now = false;
        auto live_start = std::chrono::steady_clock::now();
        Executor &engine = executor();
        // At a checkpoint-interval chunk boundary, snapshot the live
        // architectural state *before* stepping the boundary op — the
        // same instant saveArtifact's reconstruction describes — so
        // capture-time records equal save-time records byte for byte.
        if (avail > 0 && avail % ckpt_interval_ops == 0)
            recordCheckpoint(avail, engine);
        for (; k < span_end; ++k) {
            if (!engine.step(op)) {
                halted_now = true;
                break;
            }
            pcs[k] = op.pcIndex;
            addrs[k] = op.effAddr;
            results[k] = op.result;
            flags[k] = static_cast<std::uint8_t>(
                (op.taken ? takenFlag : 0) |
                (op.writesReg ? writesRegFlag : 0));
            if (op.effAddr != 0)
                warmTracker->access(op.effAddr);
            ++avail;
        }
        captureSecs.store(captureSecs.load(std::memory_order_relaxed) +
                              secondsSince(live_start),
                          std::memory_order_relaxed);
        committed.store(avail, std::memory_order_release);
        if (halted_now) {
            isHalted.store(true, std::memory_order_release);
            break;
        }
    }
    return avail;
}

void
TraceBuffer::fetch(std::uint64_t i, DynOp &op) const
{
    const Chunk &chunk =
        *chunks[static_cast<std::size_t>(i / chunkOps)];
    std::size_t k = static_cast<std::size_t>(i % chunkOps);
    std::uint32_t pc_index = chunk.pcIndex[k];
    const isa::Instruction &inst = prog.at(pc_index);
    std::uint8_t flags = chunk.flags[k];

    op.pcIndex = pc_index;
    op.pc = isa::instAddr(pc_index);
    op.inst = &inst;
    op.seq = i + 1;
    op.taken = (flags & takenFlag) != 0;
    op.effAddr = chunk.effAddr[k];
    op.writesReg = (flags & writesRegFlag) != 0;
    op.result = chunk.result[k];
    std::uint32_t next_pc =
        (inst.isControl() && op.taken) ? inst.target : pc_index + 1;
    op.targetPc = isa::instAddr(next_pc);
}

void
TraceBuffer::fetchSpan(std::uint64_t start, std::size_t count,
                       DynOp *out) const
{
    const isa::Instruction *insts = prog.insts().data();
    const isa::StaticDecode *decode = prog.decodeTable().data();
    std::uint64_t i = start;
    std::size_t filled = 0;
    while (filled < count) {
        const Chunk &chunk =
            *chunks[static_cast<std::size_t>(i / chunkOps)];
        std::size_t k = static_cast<std::size_t>(i % chunkOps);
        std::size_t span = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunkOps - k, count - filled));
        const std::uint32_t *pcs = chunk.pcIndex.get();
        const Addr *addrs = chunk.effAddr.get();
        const RegVal *results = chunk.result.get();
        const std::uint8_t *flag_bytes = chunk.flags.get();
        for (std::size_t s = 0; s < span; ++s, ++k) {
            DynOp &op = out[filled + s];
            std::uint32_t pc_index = pcs[k];
            std::uint8_t flags = flag_bytes[k];
            op.pcIndex = pc_index;
            op.pc = isa::instAddr(pc_index);
            op.inst = &insts[pc_index];
            op.seq = i + s + 1;
            op.taken = (flags & takenFlag) != 0;
            op.effAddr = addrs[k];
            op.writesReg = (flags & writesRegFlag) != 0;
            op.result = results[k];
            std::uint32_t next_pc =
                (decode[pc_index].isControl() && op.taken)
                    ? insts[pc_index].target
                    : pc_index + 1;
            op.targetPc = isa::instAddr(next_pc);
        }
        filled += span;
        i += span;
    }
}

std::size_t
TraceBuffer::spanAt(std::uint64_t start, std::size_t count,
                    OpSpanView &span) const
{
    const Chunk &chunk =
        *chunks[static_cast<std::size_t>(start / chunkOps)];
    std::size_t k = static_cast<std::size_t>(start % chunkOps);
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunkOps - k, count));
    span.pcIndex = chunk.pcIndex.get() + k;
    span.effAddr = chunk.effAddr.get() + k;
    span.result = chunk.result.get() + k;
    span.flags = chunk.flags.get() + k;
    span.baseSeq = start + 1;
    span.count = n;
    return n;
}

std::uint64_t
TraceBuffer::memoryBytes() const
{
    constexpr std::uint64_t perOp = sizeof(std::uint32_t) +
                                    sizeof(Addr) + sizeof(RegVal) +
                                    sizeof(std::uint8_t);
    return allocatedChunks.load(std::memory_order_relaxed) * chunkOps *
               perOp +
           maxChunks * sizeof(std::unique_ptr<Chunk>);
}

TraceReplay::TraceReplay(std::shared_ptr<TraceBuffer> buffer)
    : buf(std::move(buffer))
{
    BFSIM_CHECK(buf != nullptr, "trace",
                "TraceReplay requires a trace buffer");
    avail = buf->size();
}

bool
TraceReplay::next(DynOp &op)
{
    if (cursor >= avail) {
        avail = buf->size();
        if (cursor >= avail) {
            avail = buf->ensure(cursor + extendBatch);
            if (cursor >= avail)
                return false; // program halted before this op
        }
    }
    buf->fetch(cursor, op);
    ++cursor;
    return true;
}

std::size_t
TraceReplay::nextBatch(DynOp *out, std::size_t max)
{
    if (cursor >= avail) {
        avail = buf->size();
        if (cursor >= avail) {
            avail = buf->ensure(cursor + extendBatch);
            if (cursor >= avail)
                return 0; // program halted before this op
        }
    }
    // Serve only what is already committed: a short batch is cheaper
    // than extending the buffer past what the consumer may ever demand
    // (it loops back here if it does want more).
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, avail - cursor));
    buf->fetchSpan(cursor, n, out);
    cursor += n;
    return n;
}

std::size_t
TraceReplay::nextSpan(OpSpanView &span, std::size_t max)
{
    if (cursor >= avail) {
        avail = buf->size();
        if (cursor >= avail) {
            avail = buf->ensure(cursor + extendBatch);
            if (cursor >= avail) {
                span.count = 0;
                return 0; // program halted before this op
            }
        }
    }
    // As with nextBatch, serve only committed ops; spans are clamped
    // further to one chunk so the view is contiguous.
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, avail - cursor));
    n = buf->spanAt(cursor, n, span);
    cursor += n;
    return n;
}

bool
TraceReplay::halted() const
{
    return buf->halted() && cursor >= buf->size();
}

TraceWindowReplay::TraceWindowReplay(std::shared_ptr<TraceBuffer> buffer,
                                     std::uint64_t begin,
                                     std::uint64_t end)
    : buf(std::move(buffer)), beginOp(begin), endOp(end), cursor(begin)
{
    BFSIM_CHECK(buf != nullptr, "trace",
                "TraceWindowReplay requires a trace buffer");
    BFSIM_CHECK(begin <= end, "trace",
                "TraceWindowReplay window is inverted");
    avail = std::min(buf->size(), endOp);
}

bool
TraceWindowReplay::refill()
{
    if (cursor < avail)
        return true;
    if (cursor >= endOp)
        return false;
    avail = std::min(buf->size(), endOp);
    if (cursor >= avail) {
        avail = std::min(
            buf->ensure(std::min(cursor + extendBatch, endOp)), endOp);
        if (cursor >= avail)
            return false; // program halted before this op
    }
    return true;
}

bool
TraceWindowReplay::next(DynOp &op)
{
    if (!refill())
        return false;
    buf->fetch(cursor, op);
    ++cursor;
    return true;
}

std::size_t
TraceWindowReplay::nextBatch(DynOp *out, std::size_t max)
{
    if (!refill())
        return 0;
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, avail - cursor));
    buf->fetchSpan(cursor, n, out);
    cursor += n;
    return n;
}

std::size_t
TraceWindowReplay::nextSpan(OpSpanView &span, std::size_t max)
{
    if (!refill()) {
        span.count = 0;
        return 0;
    }
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(max, avail - cursor));
    n = buf->spanAt(cursor, n, span);
    cursor += n;
    return n;
}

bool
TraceWindowReplay::halted() const
{
    if (cursor >= endOp)
        return true;
    return buf->halted() && cursor >= buf->size();
}

ArtifactWindowSource::ArtifactWindowSource(
    const isa::Program &program,
    std::unique_ptr<trace_store::ArtifactReader> artifact,
    std::uint64_t begin, std::uint64_t end)
    : prog(program), reader(std::move(artifact)), beginOp(begin),
      endOp(end), cursor(begin)
{
    if (!reader || !reader->seekable())
        throw SimError("sampling",
                       "window source needs a seekable (v2) artifact");
    if (begin > end || end > reader->opCount())
        throw SimError("sampling",
                       "artifact does not cover the sample window");
    std::uint64_t chunk = begin / TraceBuffer::chunkOps;
    if (!reader->seekToChunk(chunk))
        throw SimError("sampling", "cannot seek to the window chunk");
    chunkBase = decodedEnd = chunk * TraceBuffer::chunkOps;
    pcCol.resize(TraceBuffer::chunkOps);
    addrCol.resize(TraceBuffer::chunkOps);
    resultCol.resize(TraceBuffer::chunkOps);
    flagCol.resize(TraceBuffer::chunkOps);
}

ArtifactWindowSource::~ArtifactWindowSource() = default;

bool
ArtifactWindowSource::refill()
{
    if (cursor < std::min(decodedEnd, endOp))
        return true;
    if (cursor >= endOp)
        return false;
    // Decode the chunk holding `cursor`; SimError from a corrupt chunk
    // propagates to the caller, which re-runs the window off the
    // TraceBuffer tier.
    std::size_t got = reader->decodeChunk(pcCol.data(), addrCol.data(),
                                          resultCol.data(),
                                          flagCol.data());
    if (got == 0)
        return false; // coverage was checked; defensive only
    decodedEnd = reader->decoded();
    chunkBase = decodedEnd - got;
    return cursor < std::min(decodedEnd, endOp);
}

bool
ArtifactWindowSource::next(DynOp &op)
{
    if (!refill())
        return false;
    std::size_t k = static_cast<std::size_t>(cursor - chunkBase);
    const isa::Instruction &inst = prog.at(pcCol[k]);
    op.pcIndex = pcCol[k];
    op.pc = isa::instAddr(pcCol[k]);
    op.inst = &inst;
    op.seq = cursor + 1;
    op.taken = (flagCol[k] & OpSpanView::takenFlag) != 0;
    op.effAddr = addrCol[k];
    op.writesReg = (flagCol[k] & OpSpanView::writesRegFlag) != 0;
    op.result = resultCol[k];
    std::uint32_t next_pc = (inst.isControl() && op.taken)
                                ? inst.target
                                : pcCol[k] + 1;
    op.targetPc = isa::instAddr(next_pc);
    ++cursor;
    return true;
}

std::size_t
ArtifactWindowSource::nextBatch(DynOp *out, std::size_t max)
{
    if (!refill())
        return 0;
    std::size_t k = static_cast<std::size_t>(cursor - chunkBase);
    std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        max, std::min(decodedEnd, endOp) - cursor));
    const isa::Instruction *insts = prog.insts().data();
    const isa::StaticDecode *decode = prog.decodeTable().data();
    for (std::size_t s = 0; s < n; ++s, ++k) {
        DynOp &op = out[s];
        std::uint32_t pc_index = pcCol[k];
        std::uint8_t flags = flagCol[k];
        op.pcIndex = pc_index;
        op.pc = isa::instAddr(pc_index);
        op.inst = &insts[pc_index];
        op.seq = cursor + s + 1;
        op.taken = (flags & OpSpanView::takenFlag) != 0;
        op.effAddr = addrCol[k];
        op.writesReg = (flags & OpSpanView::writesRegFlag) != 0;
        op.result = resultCol[k];
        std::uint32_t next_pc =
            (decode[pc_index].isControl() && op.taken)
                ? insts[pc_index].target
                : pc_index + 1;
        op.targetPc = isa::instAddr(next_pc);
    }
    cursor += n;
    return n;
}

std::size_t
ArtifactWindowSource::nextSpan(OpSpanView &span, std::size_t max)
{
    if (!refill()) {
        span.count = 0;
        return 0;
    }
    std::size_t k = static_cast<std::size_t>(cursor - chunkBase);
    std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        max, std::min(decodedEnd, endOp) - cursor));
    span.pcIndex = pcCol.data() + k;
    span.effAddr = addrCol.data() + k;
    span.result = resultCol.data() + k;
    span.flags = flagCol.data() + k;
    span.baseSeq = cursor + 1;
    span.count = n;
    cursor += n;
    return n;
}

bool
ArtifactWindowSource::halted() const
{
    return cursor >= endOp;
}

} // namespace bfsim::sim
