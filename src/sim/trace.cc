#include "sim/trace.hh"

#include "common/fault.hh"
#include "common/sim_error.hh"

namespace bfsim::sim {

TraceBuffer::TraceBuffer(const isa::Program &program)
    : prog(program), exec(program), chunks(maxChunks)
{
}

TraceBuffer::~TraceBuffer() = default;

std::uint64_t
TraceBuffer::ensure(std::uint64_t n)
{
    std::uint64_t avail = committed.load(std::memory_order_acquire);
    if (avail >= n)
        return avail;

    std::lock_guard<std::mutex> lock(extendMutex);
    if (fault::shouldFail(fault::Site::TraceExtend))
        throw SimError("trace", "injected fault: trace extension");
    avail = committed.load(std::memory_order_relaxed);
    if (isHalted.load(std::memory_order_relaxed))
        return avail;

    // Record in per-chunk spans: chunk lookup, bounds checks and the
    // `committed` release-store are hoisted out of the per-op loop, so
    // recording adds only four plain stores per executed op. Readers
    // acquire `committed` and never see a span before its array writes.
    DynOp op;
    while (avail < n) {
        std::size_t chunk_index =
            static_cast<std::size_t>(avail / chunkOps);
        if (chunk_index >= maxChunks) {
            throw SimError(
                "trace",
                "trace buffer exceeds " +
                    std::to_string(maxChunks * chunkOps) +
                    " ops; disable the trace cache (BFSIM_TRACE_CACHE=0)"
                    " for runs this long");
        }
        if (!chunks[chunk_index]) {
            chunks[chunk_index] = std::make_unique<Chunk>();
            allocatedChunks.fetch_add(1, std::memory_order_relaxed);
        }
        Chunk &chunk = *chunks[chunk_index];
        std::size_t k = static_cast<std::size_t>(avail % chunkOps);
        std::size_t span_end = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunkOps, k + (n - avail)));
        std::uint32_t *pcs = chunk.pcIndex.get();
        Addr *addrs = chunk.effAddr.get();
        RegVal *results = chunk.result.get();
        std::uint8_t *flags = chunk.flags.get();
        bool halted_now = false;
        for (; k < span_end; ++k) {
            if (!exec.step(op)) {
                halted_now = true;
                break;
            }
            pcs[k] = op.pcIndex;
            addrs[k] = op.effAddr;
            results[k] = op.result;
            flags[k] = static_cast<std::uint8_t>(
                (op.taken ? takenFlag : 0) |
                (op.writesReg ? writesRegFlag : 0));
            ++avail;
        }
        committed.store(avail, std::memory_order_release);
        if (halted_now) {
            isHalted.store(true, std::memory_order_release);
            break;
        }
    }
    return avail;
}

void
TraceBuffer::fetch(std::uint64_t i, DynOp &op) const
{
    const Chunk &chunk =
        *chunks[static_cast<std::size_t>(i / chunkOps)];
    std::size_t k = static_cast<std::size_t>(i % chunkOps);
    std::uint32_t pc_index = chunk.pcIndex[k];
    const isa::Instruction &inst = prog.at(pc_index);
    std::uint8_t flags = chunk.flags[k];

    op.pcIndex = pc_index;
    op.pc = isa::instAddr(pc_index);
    op.inst = &inst;
    op.seq = i + 1;
    op.taken = (flags & takenFlag) != 0;
    op.effAddr = chunk.effAddr[k];
    op.writesReg = (flags & writesRegFlag) != 0;
    op.result = chunk.result[k];
    std::uint32_t next_pc =
        (inst.isControl() && op.taken) ? inst.target : pc_index + 1;
    op.targetPc = isa::instAddr(next_pc);
}

std::uint64_t
TraceBuffer::memoryBytes() const
{
    constexpr std::uint64_t perOp = sizeof(std::uint32_t) +
                                    sizeof(Addr) + sizeof(RegVal) +
                                    sizeof(std::uint8_t);
    return allocatedChunks.load(std::memory_order_relaxed) * chunkOps *
               perOp +
           maxChunks * sizeof(std::unique_ptr<Chunk>);
}

TraceReplay::TraceReplay(std::shared_ptr<TraceBuffer> buffer)
    : buf(std::move(buffer))
{
    BFSIM_CHECK(buf != nullptr, "trace",
                "TraceReplay requires a trace buffer");
    avail = buf->size();
}

bool
TraceReplay::next(DynOp &op)
{
    if (cursor >= avail) {
        avail = buf->size();
        if (cursor >= avail) {
            avail = buf->ensure(cursor + extendBatch);
            if (cursor >= avail)
                return false; // program halted before this op
        }
    }
    buf->fetch(cursor, op);
    ++cursor;
    return true;
}

bool
TraceReplay::halted() const
{
    return buf->halted() && cursor >= buf->size();
}

} // namespace bfsim::sim
