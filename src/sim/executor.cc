#include "sim/executor.hh"

#include "common/fault.hh"
#include "common/sim_error.hh"

namespace bfsim::sim {

using isa::Opcode;

Executor::Executor(const isa::Program &program) : prog(program)
{
    BFSIM_CHECK(!prog.empty(), "executor",
                "cannot execute an empty program");
    for (const auto &[addr, value] : prog.initialImage())
        dataMemory.write64(addr, value);
}

void
Executor::writeReg(RegIndex index, RegVal value)
{
    // r0 is hard-wired to zero, as in most RISC ISAs; kernels rely on it
    // as a constant-zero source.
    if (index != 0)
        registers[index] = value;
}

bool
Executor::step(DynOp &op)
{
    if (fault::shouldFail(fault::Site::ExecutorStep))
        throw SimError("executor", "injected fault: executor step");
    if (isHalted)
        return false;

    const isa::Instruction &inst = prog.at(pcIndex);
    op = DynOp{};
    op.pcIndex = pcIndex;
    op.pc = isa::instAddr(pcIndex);
    op.inst = &inst;
    op.seq = ++seqCounter;

    std::uint32_t next_pc = pcIndex + 1;
    RegVal a = registers[inst.rs1];
    RegVal b = registers[inst.rs2];
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);

    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::Load:
        op.effAddr = a + static_cast<Addr>(inst.imm);
        op.result = dataMemory.read64(op.effAddr);
        op.writesReg = true;
        break;
      case Opcode::Store:
        op.effAddr = a + static_cast<Addr>(inst.imm);
        dataMemory.write64(op.effAddr, b);
        break;
      case Opcode::Add:
        op.result = a + b; op.writesReg = true; break;
      case Opcode::Sub:
        op.result = a - b; op.writesReg = true; break;
      case Opcode::Mul:
        op.result = a * b; op.writesReg = true; break;
      case Opcode::And:
        op.result = a & b; op.writesReg = true; break;
      case Opcode::Or:
        op.result = a | b; op.writesReg = true; break;
      case Opcode::Xor:
        op.result = a ^ b; op.writesReg = true; break;
      case Opcode::Sll:
        op.result = a << (b & 63); op.writesReg = true; break;
      case Opcode::Srl:
        op.result = a >> (b & 63); op.writesReg = true; break;
      case Opcode::CmpLt:
        op.result = sa < sb ? 1 : 0; op.writesReg = true; break;
      case Opcode::CmpEq:
        op.result = a == b ? 1 : 0; op.writesReg = true; break;
      case Opcode::AddI:
        op.result = a + static_cast<RegVal>(inst.imm);
        op.writesReg = true; break;
      case Opcode::AndI:
        op.result = a & static_cast<RegVal>(inst.imm);
        op.writesReg = true; break;
      case Opcode::OrI:
        op.result = a | static_cast<RegVal>(inst.imm);
        op.writesReg = true; break;
      case Opcode::XorI:
        op.result = a ^ static_cast<RegVal>(inst.imm);
        op.writesReg = true; break;
      case Opcode::SllI:
        op.result = a << (inst.imm & 63); op.writesReg = true; break;
      case Opcode::SrlI:
        op.result = a >> (inst.imm & 63); op.writesReg = true; break;
      case Opcode::CmpLtI:
        op.result = sa < inst.imm ? 1 : 0; op.writesReg = true; break;
      case Opcode::CmpEqI:
        op.result = a == static_cast<RegVal>(inst.imm) ? 1 : 0;
        op.writesReg = true; break;
      case Opcode::MovI:
        op.result = static_cast<RegVal>(inst.imm);
        op.writesReg = true; break;
      case Opcode::FAdd:
        op.result = a + b; op.writesReg = true; break;
      case Opcode::FMul:
        op.result = a * b; op.writesReg = true; break;
      case Opcode::Beq:
        op.taken = (a == b); break;
      case Opcode::Bne:
        op.taken = (a != b); break;
      case Opcode::Blt:
        op.taken = (sa < sb); break;
      case Opcode::Bge:
        op.taken = (sa >= sb); break;
      case Opcode::Jmp:
        op.taken = true; break;
      case Opcode::Halt:
        isHalted = true;
        return false;
    }

    if (op.writesReg)
        writeReg(inst.rd, op.result);

    if (inst.isControl() && op.taken)
        next_pc = inst.target;
    op.targetPc = isa::instAddr(next_pc);

    pcIndex = next_pc;
    return true;
}

} // namespace bfsim::sim
