/**
 * @file
 * Abstract producer of the dynamic instruction stream.
 *
 * The timing model is execute-at-fetch: functional execution produces a
 * DynOp stream that the out-of-order timing model merely walks, so the
 * stream is bit-identical across every prefetcher / core configuration
 * of the same (program, budget). DynOpSource is the seam that exploits
 * this: the timing layers (OooCore, Cmp, Profiler) consume the
 * interface, and the stream can come from live functional execution
 * (LiveSource), be recorded while it is produced (TraceCapture), or be
 * replayed from a previously captured TraceBuffer with zero functional
 * work (TraceReplay, see sim/trace.hh).
 */

#ifndef BFSIM_SIM_DYN_OP_SOURCE_HH_
#define BFSIM_SIM_DYN_OP_SOURCE_HH_

#include <cstddef>

#include "common/hot_loop.hh"
#include "sim/executor.hh"

namespace bfsim::sim {

/**
 * Whether timing consumers pull ops in batches (nextBatch) instead of
 * one virtual next() call per op. Defaults to on; BFSIM_BATCH_OPS=0
 * keeps the one-op path alive as the bit-identity reference. Alias for
 * the process-wide hot-loop kill-switch (common/hot_loop.hh), which
 * also gates the cache index arithmetic.
 */
inline bool batchOpsEnabled() { return hotLoopEnabled(); }

/** Programmatic override of BFSIM_BATCH_OPS (tests, tools). */
inline void setBatchOpsEnabled(bool enabled) { setHotLoopEnabled(enabled); }

/**
 * Ops a timing consumer buffers per nextBatch refill. Small enough that
 * the buffer (plus its DynOp payloads) stays L1/L2-resident, large
 * enough to amortize the per-refill virtual dispatch to noise.
 */
constexpr std::size_t opBatchSize = 256;

/**
 * A zero-copy window onto consecutive trace-resident ops, in the
 * structure-of-arrays layout the trace stores (sim/trace.hh). Consumers
 * that accept spans rebuild each DynOp in registers from these arrays
 * instead of having the source memcpy fully-reconstructed 64-byte
 * DynOps through an intermediate buffer. Only the fields a timing
 * consumer reads are exposed; `DynOp::inst` and `DynOp::targetPc` have
 * no columns (the batched timing path decodes through the static
 * decode cache and never touches them).
 */
struct OpSpanView
{
    static constexpr std::uint8_t takenFlag = 1;
    static constexpr std::uint8_t writesRegFlag = 2;

    const std::uint32_t *pcIndex = nullptr; ///< static instruction index
    const Addr *effAddr = nullptr;          ///< load/store address
    const RegVal *result = nullptr;         ///< register writeback value
    const std::uint8_t *flags = nullptr;    ///< taken / writesReg bits
    InstSeqNum baseSeq = 0;                 ///< seq of the span's first op
    std::size_t count = 0;                  ///< ops in the span
};

/** Produces one core's dynamic instruction stream in program order. */
class DynOpSource
{
  public:
    /** nextSpan: the source has no zero-copy span representation. */
    static constexpr std::size_t noSpan = ~std::size_t{0};

    virtual ~DynOpSource();

    /**
     * Produce the next dynamic instruction.
     * @return false once the program has halted (no op is produced for
     *         the Halt instruction itself, matching Executor::step).
     */
    virtual bool next(DynOp &op) = 0;

    /**
     * Produce up to `max` consecutive dynamic instructions into `out`,
     * returning how many were produced. Returns short batches freely
     * (e.g. a trace cursor stops at its buffer's recorded end) and 0
     * only once the program has halted, so consumers loop until 0. The
     * base implementation loops next(); sources with cheaper bulk paths
     * override it.
     */
    virtual std::size_t nextBatch(DynOp *out, std::size_t max);

    /**
     * Expose up to `max` consecutive ops as a zero-copy OpSpanView and
     * advance past them, returning the span length. Returns noSpan when
     * the source holds no span representation (consumers then latch the
     * nextBatch path), short spans freely (chunk boundaries), and 0
     * only once the program has halted. The view's arrays stay valid
     * until the source is destroyed (trace chunks are never freed or
     * reallocated while cursors exist). The base implementation returns
     * noSpan.
     */
    virtual std::size_t nextSpan(OpSpanView &span, std::size_t max);

    /** True once the stream has ended on a Halt. */
    virtual bool halted() const = 0;

    /** Dynamic instructions produced so far. */
    virtual InstSeqNum produced() const = 0;

    /** The program whose stream this source produces. */
    virtual const isa::Program &program() const = 0;
};

/**
 * The stream straight from a private functional executor: today's
 * behaviour, no recording, no sharing. Used when the trace cache is
 * disabled (BFSIM_TRACE_CACHE=0) and by one-shot consumers.
 */
class LiveSource : public DynOpSource
{
  public:
    explicit LiveSource(const isa::Program &program) : exec(program) {}

    bool next(DynOp &op) override { return exec.step(op); }

    std::size_t
    nextBatch(DynOp *out, std::size_t max) override
    {
        std::size_t n = 0;
        while (n < max && exec.step(out[n]))
            ++n;
        return n;
    }

    bool halted() const override { return exec.halted(); }
    InstSeqNum produced() const override { return exec.executed(); }
    const isa::Program &program() const override
    {
        return exec.program();
    }

    /** The underlying executor (architectural state inspection). */
    const Executor &executor() const { return exec; }

  private:
    Executor exec;
};

} // namespace bfsim::sim

#endif // BFSIM_SIM_DYN_OP_SOURCE_HH_
