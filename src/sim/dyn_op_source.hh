/**
 * @file
 * Abstract producer of the dynamic instruction stream.
 *
 * The timing model is execute-at-fetch: functional execution produces a
 * DynOp stream that the out-of-order timing model merely walks, so the
 * stream is bit-identical across every prefetcher / core configuration
 * of the same (program, budget). DynOpSource is the seam that exploits
 * this: the timing layers (OooCore, Cmp, Profiler) consume the
 * interface, and the stream can come from live functional execution
 * (LiveSource), be recorded while it is produced (TraceCapture), or be
 * replayed from a previously captured TraceBuffer with zero functional
 * work (TraceReplay, see sim/trace.hh).
 */

#ifndef BFSIM_SIM_DYN_OP_SOURCE_HH_
#define BFSIM_SIM_DYN_OP_SOURCE_HH_

#include "sim/executor.hh"

namespace bfsim::sim {

/** Produces one core's dynamic instruction stream in program order. */
class DynOpSource
{
  public:
    virtual ~DynOpSource();

    /**
     * Produce the next dynamic instruction.
     * @return false once the program has halted (no op is produced for
     *         the Halt instruction itself, matching Executor::step).
     */
    virtual bool next(DynOp &op) = 0;

    /** True once the stream has ended on a Halt. */
    virtual bool halted() const = 0;

    /** Dynamic instructions produced so far. */
    virtual InstSeqNum produced() const = 0;
};

/**
 * The stream straight from a private functional executor: today's
 * behaviour, no recording, no sharing. Used when the trace cache is
 * disabled (BFSIM_TRACE_CACHE=0) and by one-shot consumers.
 */
class LiveSource : public DynOpSource
{
  public:
    explicit LiveSource(const isa::Program &program) : exec(program) {}

    bool next(DynOp &op) override { return exec.step(op); }
    bool halted() const override { return exec.halted(); }
    InstSeqNum produced() const override { return exec.executed(); }

    /** The underlying executor (architectural state inspection). */
    const Executor &executor() const { return exec; }

  private:
    Executor exec;
};

} // namespace bfsim::sim

#endif // BFSIM_SIM_DYN_OP_SOURCE_HH_
