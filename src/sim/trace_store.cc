#include "sim/trace_store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "common/checksum.hh"
#include "common/fault.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "isa/program.hh"
#include "sim/trace.hh"

namespace bfsim::sim::trace_store {

namespace {

// ---- on-disk layout ---------------------------------------------------

/** 'BFTR' little-endian. */
constexpr std::uint32_t magicValue = 0x52544642u;

/**
 * Header byte offsets (48 bytes total, little-endian):
 *   0  u32 magic          'BFTR'
 *   4  u32 version        formatVersion
 *   8  u64 progHash       programHash() of the traced program
 *  16  u64 budget         key instruction budget
 *  24  u64 opCount        ops in the stream
 *  32  u32 chunkOps       TraceBuffer chunk geometry at capture time
 *  36  u32 programSize    static instruction count (decode bound)
 *  40  u8  halted         program executed Halt within opCount ops
 *  41  u8x3 pad           zero
 *  44  u32 headerCrc      crc32c of bytes [0, 44)
 * Chunk frames follow: u32 payloadBytes, u32 chunkOpCount,
 * u32 payloadCrc, payload.
 */
constexpr std::size_t headerBytes = 48;
constexpr std::size_t headerCrcOffset = 44;
constexpr std::size_t frameBytes = 12;

/** Control-byte bits of the per-op encoding (bits 5-7 reserved 0). */
constexpr std::uint8_t ctrlTaken = 1u << 0;     ///< == OpSpanView::takenFlag
constexpr std::uint8_t ctrlWritesReg = 1u << 1; ///< == OpSpanView::writesRegFlag
constexpr std::uint8_t ctrlPcStep = 1u << 2;    ///< pcIndex == prev + 1
constexpr std::uint8_t ctrlHasAddr = 1u << 3;   ///< effAddr != 0
constexpr std::uint8_t ctrlResultSkip = 1u << 4; ///< result repeats
constexpr std::uint8_t ctrlReserved = 0xe0u;

static_assert(ctrlTaken == OpSpanView::takenFlag &&
                  ctrlWritesReg == OpSpanView::writesRegFlag,
              "control low bits must match the in-memory flag byte so "
              "decode writes them through unchanged");

// ---- little-endian serialization helpers ------------------------------

void
put32(std::vector<unsigned char> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<unsigned char>(v >> (i * 8)));
}

void
put64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>(v >> (i * 8)));
}

std::uint32_t
get32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (i * 8);
    return v;
}

std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (i * 8);
    return v;
}

/** LEB128 of a zigzagged wrapping difference. */
void
putZigzag(std::vector<unsigned char> &out, std::uint64_t delta)
{
    auto n = static_cast<std::int64_t>(delta);
    std::uint64_t z = (static_cast<std::uint64_t>(n) << 1) ^
                      static_cast<std::uint64_t>(n >> 63);
    while (z >= 0x80) {
        out.push_back(static_cast<unsigned char>(z) | 0x80u);
        z >>= 7;
    }
    out.push_back(static_cast<unsigned char>(z));
}

/**
 * Decode one zigzag varint from [p + pos, p + end); advances pos.
 * @return false on truncation or overlong (> 10 byte) encodings.
 */
bool
getZigzag(const unsigned char *p, std::size_t &pos, std::size_t end,
          std::uint64_t &delta)
{
    std::uint64_t z = 0;
    for (int shift = 0; shift < 70; shift += 7) {
        if (pos >= end)
            return false;
        unsigned char byte = p[pos++];
        z |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
        if (!(byte & 0x80u)) {
            delta = (z >> 1) ^ (~(z & 1) + 1);
            return true;
        }
    }
    return false;
}

// ---- store configuration / stats --------------------------------------

std::mutex &
stateMutex()
{
    static std::mutex m;
    return m;
}

std::string &
directoryRef()
{
    static std::string dir = [] {
        const char *env = std::getenv("BFSIM_TRACE_DIR");
        return env ? std::string(env) : std::string();
    }();
    return dir;
}

Stats &
statsRef()
{
    static Stats s;
    return s;
}

thread_local ThreadCounters threadCounters;

void
countHit()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().hits;
    ++threadCounters.hits;
}

void
countMiss()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().misses;
    ++threadCounters.misses;
}

void
countFallback()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().fallbacks;
    ++threadCounters.fallbacks;
}

void
countRead(std::uint64_t bytes, std::uint64_t ops, double seconds)
{
    std::lock_guard<std::mutex> lock(stateMutex());
    statsRef().bytesRead += bytes;
    statsRef().opsRead += ops;
    statsRef().decodeSeconds += seconds;
}

void
countWrite(std::uint64_t bytes, std::uint64_t ops)
{
    std::lock_guard<std::mutex> lock(stateMutex());
    statsRef().bytesWritten += bytes;
    statsRef().opsWritten += ops;
}

std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Parsed, validated header of an existing artifact file. */
struct Header
{
    std::uint64_t progHash = 0;
    std::uint64_t budget = 0;
    std::uint64_t opCount = 0;
    std::uint32_t chunkOps = 0;
    std::uint32_t programSize = 0;
    bool halted = false;
};

/**
 * Validate `bytes` (the first headerBytes of a file) against `key`.
 * @return false with `why` set on any mismatch.
 */
bool
parseHeader(const unsigned char *bytes, std::size_t len, const Key &key,
            Header &header, std::string &why)
{
    if (len < headerBytes) {
        why = "file shorter than the header";
        return false;
    }
    if (get32(bytes + 0) != magicValue) {
        why = "bad magic";
        return false;
    }
    if (crc32c(bytes, headerCrcOffset) != get32(bytes + headerCrcOffset)) {
        why = "header checksum mismatch";
        return false;
    }
    std::uint32_t version = get32(bytes + 4);
    if (version != formatVersion) {
        why = "format version " + std::to_string(version) +
              " (want " + std::to_string(formatVersion) + ")";
        return false;
    }
    header.progHash = get64(bytes + 8);
    header.budget = get64(bytes + 16);
    header.opCount = get64(bytes + 24);
    header.chunkOps = get32(bytes + 32);
    header.programSize = get32(bytes + 36);
    header.halted = bytes[40] != 0;
    if (header.progHash != key.progHash) {
        why = "program hash mismatch";
        return false;
    }
    if (header.budget != key.budget) {
        why = "instruction budget mismatch";
        return false;
    }
    if (header.chunkOps != TraceBuffer::chunkOps) {
        why = "chunk geometry mismatch";
        return false;
    }
    return true;
}

/** Serialize a header (with its CRC) for `key` into `out`. */
void
appendHeader(std::vector<unsigned char> &out, const Key &key,
             std::uint64_t op_count, std::uint32_t program_size,
             bool halted)
{
    std::size_t base = out.size();
    put32(out, magicValue);
    put32(out, formatVersion);
    put64(out, key.progHash);
    put64(out, key.budget);
    put64(out, op_count);
    put32(out, static_cast<std::uint32_t>(TraceBuffer::chunkOps));
    put32(out, program_size);
    out.push_back(halted ? 1 : 0);
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    put32(out, crc32c(out.data() + base, headerCrcOffset));
}

/** Closes an fd on scope exit (and releases any flock it holds). */
struct FdGuard
{
    explicit FdGuard(int fd) : fd(fd) {}
    ~FdGuard()
    {
        if (fd >= 0)
            ::close(fd);
    }
    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;
    int fd;
};

} // namespace

std::uint64_t
programHash(const isa::Program &program)
{
    Fnv1a64 hash;
    hash.update64(program.size());
    for (const isa::Instruction &inst : program.insts()) {
        hash.update64(static_cast<std::uint8_t>(inst.op));
        hash.update64(inst.rd);
        hash.update64(inst.rs1);
        hash.update64(inst.rs2);
        hash.update64(static_cast<std::uint64_t>(inst.imm));
        hash.update64(inst.target);
    }
    hash.update64(program.initialImage().size());
    for (const auto &[addr, value] : program.initialImage()) {
        hash.update64(addr);
        hash.update64(value);
    }
    return hash.value();
}

Key
makeKey(const std::string &workload, std::uint64_t budget,
        const isa::Program &program)
{
    return Key{workload, budget, programHash(program)};
}

bool
enabled()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return !directoryRef().empty();
}

std::string
directory()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return directoryRef();
}

void
setDirectory(const std::string &dir)
{
    {
        std::lock_guard<std::mutex> lock(stateMutex());
        directoryRef() = dir;
    }
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            warn("trace store: cannot create directory '" + dir +
                 "': " + ec.message());
        }
    }
}

std::string
artifactPath(const Key &key)
{
    return directory() + "/" + sanitize(key.workload) + "-" +
           std::to_string(key.budget) + "-" + hex16(key.progHash) +
           ".bft";
}

ArtifactReader::~ArtifactReader()
{
    if (fileBase)
        ::munmap(const_cast<unsigned char *>(fileBase), fileBytes);
    if (fd >= 0)
        ::close(fd);
}

std::size_t
ArtifactReader::decodeChunk(std::uint32_t *pc_index, Addr *eff_addr,
                            RegVal *result, std::uint8_t *flags)
{
    if (cursor >= totalOps)
        return 0;

    // Corruption (or an injected trace_store fault) throws without
    // advancing `cursor`, so the owning TraceBuffer can degrade to live
    // execution from exactly the ops it has already committed.
    auto corrupt = [](const std::string &why) -> SimError {
        countFallback();
        return SimError("trace_store", "trace artifact unusable: " + why);
    };
    if (fault::shouldFail(fault::Site::TraceStore))
        throw corrupt("injected fault: artifact decode");

    auto start_time = std::chrono::steady_clock::now();

    if (offset + frameBytes > fileBytes)
        throw corrupt("truncated chunk frame");
    std::uint32_t payload_bytes = get32(fileBase + offset);
    std::uint32_t chunk_count = get32(fileBase + offset + 4);
    std::uint32_t payload_crc = get32(fileBase + offset + 8);
    std::uint64_t expected = std::min<std::uint64_t>(
        TraceBuffer::chunkOps, totalOps - cursor);
    if (chunk_count != expected)
        throw corrupt("chunk op count disagrees with the header");
    if (offset + frameBytes + payload_bytes > fileBytes)
        throw corrupt("truncated chunk payload");

    const unsigned char *payload = fileBase + offset + frameBytes;
    if (crc32c(payload, payload_bytes) != payload_crc)
        throw corrupt("chunk checksum mismatch");

    // Delta contexts reset per chunk, matching the encoder, so every
    // chunk decodes independently of its predecessors.
    std::fill(lastAddr.begin(), lastAddr.end(), 0);
    std::fill(lastResult.begin(), lastResult.end(), 0);
    std::int64_t prev_pc = -1;
    std::size_t pos = 0;
    for (std::uint32_t k = 0; k < chunk_count; ++k) {
        if (pos >= payload_bytes)
            throw corrupt("chunk payload ends mid-op");
        std::uint8_t control = payload[pos++];
        if (control & ctrlReserved)
            throw corrupt("reserved control bits set");
        if ((control & ctrlResultSkip) && !(control & ctrlWritesReg))
            throw corrupt("result-skip without register write");

        std::uint64_t delta;
        std::int64_t pc;
        if (control & ctrlPcStep) {
            pc = prev_pc + 1;
        } else {
            if (!getZigzag(payload, pos, payload_bytes, delta))
                throw corrupt("bad pc varint");
            pc = prev_pc + static_cast<std::int64_t>(delta);
        }
        if (pc < 0 || pc >= static_cast<std::int64_t>(programSize))
            throw corrupt("pc index out of program bounds");
        prev_pc = pc;
        auto pcv = static_cast<std::uint32_t>(pc);

        Addr addr = 0;
        if (control & ctrlHasAddr) {
            if (!getZigzag(payload, pos, payload_bytes, delta))
                throw corrupt("bad address varint");
            addr = lastAddr[pcv] + delta;
            lastAddr[pcv] = addr;
        }

        RegVal value = 0;
        if (control & ctrlWritesReg) {
            if (control & ctrlResultSkip) {
                value = lastResult[pcv];
            } else {
                if (!getZigzag(payload, pos, payload_bytes, delta))
                    throw corrupt("bad result varint");
                value = lastResult[pcv] + delta;
            }
            lastResult[pcv] = value;
        }

        pc_index[k] = pcv;
        eff_addr[k] = addr;
        result[k] = value;
        flags[k] = control & (ctrlTaken | ctrlWritesReg);
    }
    if (pos != payload_bytes)
        throw corrupt("chunk payload has trailing bytes");

    offset += frameBytes + payload_bytes;
    cursor += chunk_count;
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time)
            .count();
    countRead(frameBytes + payload_bytes, chunk_count, seconds);
    return chunk_count;
}

std::unique_ptr<ArtifactReader>
openArtifact(const Key &key, const isa::Program &program)
{
    if (!enabled())
        return nullptr;
    std::string path = artifactPath(key);

    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        countMiss();
        return nullptr;
    }

    // A present-but-unusable artifact is a fallback *and* a miss: the
    // caller recaptures live and the batch-end save rewrites the file.
    auto reject = [&](const std::string &why) {
        warn("trace store: ignoring '" + path + "': " + why);
        countFallback();
        countMiss();
    };

    struct ::stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        reject("cannot stat");
        return nullptr;
    }
    auto file_bytes = static_cast<std::size_t>(st.st_size);
    if (file_bytes < headerBytes) {
        ::close(fd);
        reject("file shorter than the header");
        return nullptr;
    }

    void *base =
        ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
        ::close(fd);
        reject("mmap failed");
        return nullptr;
    }

    auto reader = std::unique_ptr<ArtifactReader>(new ArtifactReader);
    reader->fileBase = static_cast<const unsigned char *>(base);
    reader->fileBytes = file_bytes;
    reader->fd = fd;

    if (fault::shouldFail(fault::Site::TraceStore)) {
        reject("injected fault: artifact open");
        return nullptr;
    }

    Header header;
    std::string why;
    if (!parseHeader(reader->fileBase, file_bytes, key, header, why)) {
        reject(why);
        return nullptr;
    }
    if (header.programSize != program.size()) {
        reject("program size mismatch");
        return nullptr;
    }

    reader->offset = headerBytes;
    reader->totalOps = header.opCount;
    reader->programSize = header.programSize;
    reader->sawHalt = header.halted;
    reader->lastAddr.assign(header.programSize, 0);
    reader->lastResult.assign(header.programSize, 0);
    countHit();
    return reader;
}

bool
saveArtifact(const Key &key, const TraceBuffer &buffer)
{
    if (!enabled())
        return false;
    std::uint64_t ops = buffer.size();
    std::uint32_t program_size =
        static_cast<std::uint32_t>(buffer.program().size());
    std::string path = artifactPath(key);

    {
        std::error_code ec;
        std::filesystem::create_directories(directory(), ec);
    }

    // Exclusive non-blocking advisory lock on a sibling .lock file:
    // when several processes finish a batch over the same store, one
    // writes and the rest skip — the artifact content is identical by
    // construction, so losing the race costs nothing.
    std::string lock_path = path + ".lock";
    FdGuard lock_fd(::open(lock_path.c_str(),
                           O_CREAT | O_RDWR | O_CLOEXEC, 0644));
    if (lock_fd.fd < 0) {
        warn("trace store: cannot create '" + lock_path + "'");
        return false;
    }
    if (::flock(lock_fd.fd, LOCK_EX | LOCK_NB) != 0)
        return false; // another writer is on it; skip

    // Re-validate under the lock: skip when the existing artifact
    // already covers at least this stream (a concurrent process may
    // have demanded — and saved — a longer tail).
    {
        FdGuard existing(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
        if (existing.fd >= 0) {
            unsigned char head[headerBytes];
            ssize_t got = ::read(existing.fd, head, headerBytes);
            Header header;
            std::string why;
            if (got == static_cast<ssize_t>(headerBytes) &&
                parseHeader(head, headerBytes, key, header, why) &&
                header.programSize == program_size &&
                (header.opCount > ops ||
                 (header.opCount == ops &&
                  header.halted == buffer.halted()))) {
                return false;
            }
        }
    }

    std::vector<unsigned char> out;
    out.reserve(static_cast<std::size_t>(ops * 3) + 4096);
    appendHeader(out, key, ops, program_size, buffer.halted());

    // Encode chunk by chunk straight off the buffer's SoA storage.
    std::vector<Addr> last_addr(program_size, 0);
    std::vector<RegVal> last_result(program_size, 0);
    std::uint64_t start = 0;
    while (start < ops) {
        OpSpanView span;
        std::size_t n = buffer.spanAt(
            start, static_cast<std::size_t>(
                       std::min<std::uint64_t>(TraceBuffer::chunkOps,
                                               ops - start)),
            span);

        std::size_t frame_base = out.size();
        put32(out, 0); // payload size, patched below
        put32(out, static_cast<std::uint32_t>(n));
        put32(out, 0); // payload CRC, patched below
        std::size_t payload_base = out.size();

        std::fill(last_addr.begin(), last_addr.end(), 0);
        std::fill(last_result.begin(), last_result.end(), 0);
        std::int64_t prev_pc = -1;
        for (std::size_t k = 0; k < n; ++k) {
            std::uint32_t pcv = span.pcIndex[k];
            Addr addr = span.effAddr[k];
            RegVal value = span.result[k];
            std::uint8_t mem_flags =
                span.flags[k] &
                (OpSpanView::takenFlag | OpSpanView::writesRegFlag);

            std::uint8_t control = mem_flags;
            bool pc_step =
                static_cast<std::int64_t>(pcv) == prev_pc + 1;
            if (pc_step)
                control |= ctrlPcStep;
            if (addr != 0)
                control |= ctrlHasAddr;
            bool writes = (mem_flags & ctrlWritesReg) != 0;
            bool result_skip = writes && value == last_result[pcv];
            if (result_skip)
                control |= ctrlResultSkip;
            out.push_back(control);

            if (!pc_step) {
                putZigzag(out, static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(pcv) -
                                   prev_pc));
            }
            prev_pc = pcv;
            if (addr != 0) {
                putZigzag(out, addr - last_addr[pcv]);
                last_addr[pcv] = addr;
            }
            if (writes && !result_skip)
                putZigzag(out, value - last_result[pcv]);
            if (writes)
                last_result[pcv] = value;
        }

        auto payload_bytes =
            static_cast<std::uint32_t>(out.size() - payload_base);
        std::uint32_t crc = crc32c(out.data() + payload_base,
                                   payload_bytes);
        for (int i = 0; i < 4; ++i) {
            out[frame_base + i] =
                static_cast<unsigned char>(payload_bytes >> (i * 8));
            out[frame_base + 8 + i] =
                static_cast<unsigned char>(crc >> (i * 8));
        }
        start += n;
    }

    // Crash-safe publication: write a .tmp sibling, fsync, rename. A
    // writer killed mid-write leaves only a .tmp readers never open.
    std::string tmp_path = path + ".tmp";
    {
        FdGuard tmp_fd(::open(tmp_path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                              0644));
        if (tmp_fd.fd < 0) {
            warn("trace store: cannot write '" + tmp_path + "'");
            return false;
        }
        std::size_t written = 0;
        while (written < out.size()) {
            ssize_t n = ::write(tmp_fd.fd, out.data() + written,
                                out.size() - written);
            if (n <= 0) {
                warn("trace store: short write to '" + tmp_path + "'");
                return false;
            }
            written += static_cast<std::size_t>(n);
        }
        ::fsync(tmp_fd.fd);
    }
    if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
        warn("trace store: cannot rename '" + tmp_path + "' into place");
        return false;
    }
    countWrite(out.size(), ops);
    return true;
}

Stats
stats()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return statsRef();
}

void
resetStats()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    statsRef() = Stats{};
    threadCounters = ThreadCounters{};
}

ThreadCounters
takeThreadCounters()
{
    ThreadCounters taken = threadCounters;
    threadCounters = ThreadCounters{};
    return taken;
}

} // namespace bfsim::sim::trace_store
