#include "sim/trace_store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <thread>

#include "common/checksum.hh"
#include "common/fault.hh"
#include "common/log.hh"
#include "common/sim_error.hh"
#include "common/subprocess.hh"
#include "isa/program.hh"
#include "sim/trace.hh"

namespace bfsim::sim::trace_store {

namespace {

// ---- on-disk layout ---------------------------------------------------

/** 'BFTR' little-endian. */
constexpr std::uint32_t magicValue = 0x52544642u;

/** 'BFIX' little-endian: v2 chunk-index section magic. */
constexpr std::uint32_t indexMagicValue = 0x58494642u;

/** 'BFCK' little-endian: v2 checkpoint section magic. */
constexpr std::uint32_t ckptMagicValue = 0x4b434642u;

/** 'BFX2' little-endian: v2 footer magic. */
constexpr std::uint32_t footerMagicValue = 0x32584642u;

/**
 * v2 footer, the last footerBytes of the file:
 *   0  u32 magic           'BFX2'
 *   4  u32 chunkCount
 *   8  u64 indexOffset     byte offset of the 'BFIX' section
 *  16  u32 checkpointCount
 *  20  u32 footerCrc       crc32c of bytes [0, 20)
 */
constexpr std::size_t footerBytes = 24;

/** Fixed-size prefix of one v2 checkpoint record (before regs/tags). */
constexpr std::size_t ckptRecordHeadBytes = 16;

/** Full serialized size of one v2 checkpoint record. */
constexpr std::size_t ckptRecordBytes =
    ckptRecordHeadBytes + std::size_t{numArchRegs} * 8 +
    std::size_t{checkpointCacheSets} * checkpointCacheWays * 8;

/**
 * Header byte offsets (48 bytes total, little-endian):
 *   0  u32 magic          'BFTR'
 *   4  u32 version        formatVersion
 *   8  u64 progHash       programHash() of the traced program
 *  16  u64 budget         key instruction budget
 *  24  u64 opCount        ops in the stream
 *  32  u32 chunkOps       TraceBuffer chunk geometry at capture time
 *  36  u32 programSize    static instruction count (decode bound)
 *  40  u8  halted         program executed Halt within opCount ops
 *  41  u8x3 pad           zero
 *  44  u32 headerCrc      crc32c of bytes [0, 44)
 * Chunk frames follow: u32 payloadBytes, u32 chunkOpCount,
 * u32 payloadCrc, payload.
 */
constexpr std::size_t headerBytes = 48;
constexpr std::size_t headerCrcOffset = 44;
constexpr std::size_t frameBytes = 12;

/** Control-byte bits of the per-op encoding (bits 5-7 reserved 0). */
constexpr std::uint8_t ctrlTaken = 1u << 0;     ///< == OpSpanView::takenFlag
constexpr std::uint8_t ctrlWritesReg = 1u << 1; ///< == OpSpanView::writesRegFlag
constexpr std::uint8_t ctrlPcStep = 1u << 2;    ///< pcIndex == prev + 1
constexpr std::uint8_t ctrlHasAddr = 1u << 3;   ///< effAddr != 0
constexpr std::uint8_t ctrlResultSkip = 1u << 4; ///< result repeats
constexpr std::uint8_t ctrlReserved = 0xe0u;

static_assert(ctrlTaken == OpSpanView::takenFlag &&
                  ctrlWritesReg == OpSpanView::writesRegFlag,
              "control low bits must match the in-memory flag byte so "
              "decode writes them through unchanged");

// ---- little-endian serialization helpers ------------------------------

void
put32(std::vector<unsigned char> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<unsigned char>(v >> (i * 8)));
}

void
put64(std::vector<unsigned char> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<unsigned char>(v >> (i * 8)));
}

std::uint32_t
get32(const unsigned char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (i * 8);
    return v;
}

std::uint64_t
get64(const unsigned char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (i * 8);
    return v;
}

/** LEB128 of a zigzagged wrapping difference. */
void
putZigzag(std::vector<unsigned char> &out, std::uint64_t delta)
{
    auto n = static_cast<std::int64_t>(delta);
    std::uint64_t z = (static_cast<std::uint64_t>(n) << 1) ^
                      static_cast<std::uint64_t>(n >> 63);
    while (z >= 0x80) {
        out.push_back(static_cast<unsigned char>(z) | 0x80u);
        z >>= 7;
    }
    out.push_back(static_cast<unsigned char>(z));
}

/**
 * Decode one zigzag varint from [p + pos, p + end); advances pos.
 * @return false on truncation or overlong (> 10 byte) encodings.
 */
bool
getZigzag(const unsigned char *p, std::size_t &pos, std::size_t end,
          std::uint64_t &delta)
{
    std::uint64_t z = 0;
    for (int shift = 0; shift < 70; shift += 7) {
        if (pos >= end)
            return false;
        unsigned char byte = p[pos++];
        z |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
        if (!(byte & 0x80u)) {
            delta = (z >> 1) ^ (~(z & 1) + 1);
            return true;
        }
    }
    return false;
}

// ---- store configuration / stats --------------------------------------

/** Deterministic mixer for the lock-retry jitter. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::mutex &
stateMutex()
{
    static std::mutex m;
    return m;
}

std::string &
directoryRef()
{
    static std::string dir = [] {
        const char *env = std::getenv("BFSIM_TRACE_DIR");
        return env ? std::string(env) : std::string();
    }();
    return dir;
}

std::string &
remoteRef()
{
    static std::string endpoint = [] {
        const char *env = std::getenv("BFSIM_REMOTE_STORE");
        return env ? std::string(env) : std::string();
    }();
    return endpoint;
}

std::uint32_t &
saveVersionRef()
{
    static std::uint32_t version = [] {
        const char *env = std::getenv("BFSIM_TRACE_FORMAT");
        if (env && *env) {
            char *end = nullptr;
            long v = std::strtol(env, &end, 10);
            if (end && *end == '\0' && v >= minReadVersion &&
                v <= formatVersion) {
                return static_cast<std::uint32_t>(v);
            }
            warn(std::string("trace store: ignoring BFSIM_TRACE_FORMAT='") +
                 env + "' (want 1.." + std::to_string(formatVersion) + ")");
        }
        return formatVersion;
    }();
    return version;
}

std::uint32_t &
checkpointIntervalRef()
{
    static std::uint32_t interval = [] {
        const char *env = std::getenv("BFSIM_CHECKPOINT_CHUNKS");
        if (env && *env) {
            char *end = nullptr;
            long v = std::strtol(env, &end, 10);
            if (end && *end == '\0' && v >= 1 &&
                v <= (1l << 20)) {
                return static_cast<std::uint32_t>(v);
            }
            warn(std::string(
                     "trace store: ignoring BFSIM_CHECKPOINT_CHUNKS='") +
                 env + "' (want a positive chunk count)");
        }
        return checkpointEveryChunks;
    }();
    return interval;
}

Stats &
statsRef()
{
    static Stats s;
    return s;
}

thread_local ThreadCounters threadCounters;

void
countHit()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().hits;
    ++threadCounters.hits;
}

void
countMiss()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().misses;
    ++threadCounters.misses;
}

void
countFallback()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().fallbacks;
    ++threadCounters.fallbacks;
}

void
countRead(std::uint64_t bytes, std::uint64_t ops, double seconds)
{
    std::lock_guard<std::mutex> lock(stateMutex());
    statsRef().bytesRead += bytes;
    statsRef().opsRead += ops;
    statsRef().decodeSeconds += seconds;
}

void
countWrite(std::uint64_t bytes, std::uint64_t ops,
           std::uint64_t checkpoints, std::uint64_t checkpoint_bytes)
{
    std::lock_guard<std::mutex> lock(stateMutex());
    statsRef().bytesWritten += bytes;
    statsRef().opsWritten += ops;
    statsRef().checkpointsWritten += checkpoints;
    statsRef().checkpointBytesWritten += checkpoint_bytes;
}

std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            c = '_';
    }
    return out;
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Parsed, validated header of an existing artifact file. */
struct Header
{
    std::uint32_t version = 0;
    std::uint64_t progHash = 0;
    std::uint64_t budget = 0;
    std::uint64_t opCount = 0;
    std::uint32_t chunkOps = 0;
    std::uint32_t programSize = 0;
    bool halted = false;
};

/**
 * Validate `bytes` (the first headerBytes of a file) against `key`.
 * @return false with `why` set on any mismatch.
 */
bool
parseHeader(const unsigned char *bytes, std::size_t len, const Key &key,
            Header &header, std::string &why)
{
    if (len < headerBytes) {
        why = "file shorter than the header";
        return false;
    }
    if (get32(bytes + 0) != magicValue) {
        why = "bad magic";
        return false;
    }
    if (crc32c(bytes, headerCrcOffset) != get32(bytes + headerCrcOffset)) {
        why = "header checksum mismatch";
        return false;
    }
    std::uint32_t version = get32(bytes + 4);
    if (version < minReadVersion || version > formatVersion) {
        why = "format version " + std::to_string(version) +
              " (want " + std::to_string(minReadVersion) + ".." +
              std::to_string(formatVersion) + ")";
        return false;
    }
    header.version = version;
    header.progHash = get64(bytes + 8);
    header.budget = get64(bytes + 16);
    header.opCount = get64(bytes + 24);
    header.chunkOps = get32(bytes + 32);
    header.programSize = get32(bytes + 36);
    header.halted = bytes[40] != 0;
    if (header.progHash != key.progHash) {
        why = "program hash mismatch";
        return false;
    }
    if (header.budget != key.budget) {
        why = "instruction budget mismatch";
        return false;
    }
    if (header.chunkOps != TraceBuffer::chunkOps) {
        why = "chunk geometry mismatch";
        return false;
    }
    return true;
}

/** Serialize a header (with its CRC) for `key` into `out`. */
void
appendHeader(std::vector<unsigned char> &out, const Key &key,
             std::uint32_t version, std::uint64_t op_count,
             std::uint32_t program_size, bool halted)
{
    std::size_t base = out.size();
    put32(out, magicValue);
    put32(out, version);
    put64(out, key.progHash);
    put64(out, key.budget);
    put64(out, op_count);
    put32(out, static_cast<std::uint32_t>(TraceBuffer::chunkOps));
    put32(out, program_size);
    out.push_back(halted ? 1 : 0);
    out.push_back(0);
    out.push_back(0);
    out.push_back(0);
    put32(out, crc32c(out.data() + base, headerCrcOffset));
}

/**
 * Parse and validate the v2 index / checkpoint / footer sections of an
 * artifact whose header already validated. Any inconsistency —
 * truncation, bad magic, CRC mismatch, geometry drift, out-of-order
 * offsets or checkpoint indices — fails the whole artifact so the
 * caller degrades to live capture (bit-identical by construction).
 */
bool
parseArtifactSections(const unsigned char *base, std::size_t file_bytes,
                      const Header &header,
                      std::vector<std::uint64_t> &offsets,
                      std::vector<Checkpoint> &ckpts, std::string &why)
{
    std::uint64_t expected_chunks =
        (header.opCount + TraceBuffer::chunkOps - 1) /
        TraceBuffer::chunkOps;

    if (file_bytes < headerBytes + footerBytes) {
        why = "v2 file shorter than header plus footer";
        return false;
    }
    const unsigned char *footer = base + file_bytes - footerBytes;
    if (get32(footer + 0) != footerMagicValue) {
        why = "bad v2 footer magic";
        return false;
    }
    if (crc32c(footer, footerBytes - 4) != get32(footer + 20)) {
        why = "v2 footer checksum mismatch";
        return false;
    }
    std::uint64_t chunk_count = get32(footer + 4);
    std::uint64_t index_offset = get64(footer + 8);
    std::uint64_t ckpt_count = get32(footer + 16);
    if (chunk_count != expected_chunks) {
        why = "v2 chunk count disagrees with the header";
        return false;
    }
    if (index_offset < headerBytes ||
        index_offset > file_bytes - footerBytes) {
        why = "v2 index offset out of range";
        return false;
    }

    // Index section: magic, count, offsets[], CRC.
    std::uint64_t index_bytes = 8 + chunk_count * 8 + 4;
    if (index_offset + index_bytes > file_bytes - footerBytes) {
        why = "truncated v2 chunk index";
        return false;
    }
    const unsigned char *index = base + index_offset;
    if (get32(index + 0) != indexMagicValue) {
        why = "bad v2 index magic";
        return false;
    }
    if (get32(index + 4) != chunk_count) {
        why = "v2 index count disagrees with the footer";
        return false;
    }
    if (crc32c(index, index_bytes - 4) !=
        get32(index + index_bytes - 4)) {
        why = "v2 index checksum mismatch";
        return false;
    }
    offsets.clear();
    offsets.reserve(chunk_count);
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < chunk_count; ++i) {
        std::uint64_t off = get64(index + 8 + i * 8);
        bool ok = i == 0 ? off == headerBytes
                         : off > prev && off < index_offset;
        if (!ok || off + frameBytes > index_offset) {
            why = "v2 index offsets out of order or out of range";
            return false;
        }
        offsets.push_back(off);
        prev = off;
    }

    // Checkpoint section directly after the index: head, records, CRC.
    std::uint64_t ckpt_offset = index_offset + index_bytes;
    constexpr std::uint64_t ckpt_head_bytes = 24;
    std::uint64_t ckpt_bytes =
        ckpt_head_bytes + ckpt_count * ckptRecordBytes + 4;
    if (ckpt_offset + ckpt_bytes != file_bytes - footerBytes) {
        why = "v2 checkpoint section size mismatch";
        return false;
    }
    const unsigned char *ckpt = base + ckpt_offset;
    if (get32(ckpt + 0) != ckptMagicValue) {
        why = "bad v2 checkpoint magic";
        return false;
    }
    if (get32(ckpt + 4) != ckpt_count) {
        why = "v2 checkpoint count disagrees with the footer";
        return false;
    }
    if (get32(ckpt + 8) == 0) {
        why = "v2 checkpoint interval is zero";
        return false;
    }
    if (get32(ckpt + 12) != numArchRegs ||
        get32(ckpt + 16) != checkpointCacheSets ||
        get32(ckpt + 20) != checkpointCacheWays) {
        why = "v2 checkpoint geometry mismatch";
        return false;
    }
    if (crc32c(ckpt, ckpt_bytes - 4) != get32(ckpt + ckpt_bytes - 4)) {
        why = "v2 checkpoint checksum mismatch";
        return false;
    }
    ckpts.clear();
    ckpts.reserve(ckpt_count);
    std::uint64_t prev_op = 0;
    for (std::uint64_t i = 0; i < ckpt_count; ++i) {
        const unsigned char *rec =
            ckpt + ckpt_head_bytes + i * ckptRecordBytes;
        Checkpoint record;
        record.opIndex = get64(rec + 0);
        record.pcIndex = get32(rec + 8);
        if (record.opIndex == 0 || record.opIndex >= header.opCount ||
            record.opIndex % TraceBuffer::chunkOps != 0 ||
            (i > 0 && record.opIndex <= prev_op)) {
            why = "v2 checkpoint op index invalid";
            return false;
        }
        if (record.pcIndex >= header.programSize) {
            why = "v2 checkpoint pc out of program bounds";
            return false;
        }
        prev_op = record.opIndex;
        for (std::size_t r = 0; r < numArchRegs; ++r)
            record.regs[r] = get64(rec + ckptRecordHeadBytes + r * 8);
        std::size_t tags_base =
            ckptRecordHeadBytes + std::size_t{numArchRegs} * 8;
        std::size_t tag_count =
            std::size_t{checkpointCacheSets} * checkpointCacheWays;
        record.cacheTags.resize(tag_count);
        for (std::size_t t = 0; t < tag_count; ++t)
            record.cacheTags[t] = get64(rec + tags_base + t * 8);
        ckpts.push_back(std::move(record));
    }
    return true;
}

/** Closes an fd on scope exit (and releases any flock it holds). */
struct FdGuard
{
    explicit FdGuard(int fd) : fd(fd) {}
    ~FdGuard()
    {
        if (fd >= 0)
            ::close(fd);
    }
    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;
    int fd;
};

} // namespace

std::uint64_t
programHash(const isa::Program &program)
{
    Fnv1a64 hash;
    hash.update64(program.size());
    for (const isa::Instruction &inst : program.insts()) {
        hash.update64(static_cast<std::uint8_t>(inst.op));
        hash.update64(inst.rd);
        hash.update64(inst.rs1);
        hash.update64(inst.rs2);
        hash.update64(static_cast<std::uint64_t>(inst.imm));
        hash.update64(inst.target);
    }
    hash.update64(program.initialImage().size());
    for (const auto &[addr, value] : program.initialImage()) {
        hash.update64(addr);
        hash.update64(value);
    }
    return hash.value();
}

Key
makeKey(const std::string &workload, std::uint64_t budget,
        const isa::Program &program)
{
    return Key{workload, budget, programHash(program)};
}

bool
enabled()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return !directoryRef().empty();
}

std::string
directory()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return directoryRef();
}

void
setDirectory(const std::string &dir)
{
    {
        std::lock_guard<std::mutex> lock(stateMutex());
        directoryRef() = dir;
    }
    if (!dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        if (ec) {
            warn("trace store: cannot create directory '" + dir +
                 "': " + ec.message());
        }
    }
}

bool
remoteEnabled()
{
    // The local directory is the cache the remote tier fills; without
    // it there is nowhere to install a fetch or publish a push from.
    std::lock_guard<std::mutex> lock(stateMutex());
    return !remoteRef().empty() && !directoryRef().empty();
}

std::string
remoteEndpoint()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return remoteRef();
}

void
setRemoteEndpoint(const std::string &hostPort)
{
    std::string endpoint = hostPort;
    if (!endpoint.empty()) {
        std::string host;
        std::uint16_t port = 0;
        if (!subprocess::parseHostPort(endpoint, host, port)) {
            warn("trace store: disabling remote tier: malformed "
                 "endpoint '" + endpoint + "' (want host:port)");
            endpoint.clear();
        }
    }
    std::lock_guard<std::mutex> lock(stateMutex());
    remoteRef() = endpoint;
}

std::uint32_t
saveFormatVersion()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return saveVersionRef();
}

void
setSaveFormatVersion(std::uint32_t version)
{
    if (version < minReadVersion || version > formatVersion) {
        warn("trace store: ignoring save format version " +
             std::to_string(version));
        return;
    }
    std::lock_guard<std::mutex> lock(stateMutex());
    saveVersionRef() = version;
}

std::uint32_t
checkpointIntervalChunks()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return checkpointIntervalRef();
}

void
setCheckpointIntervalChunks(std::uint32_t chunks)
{
    if (chunks == 0) {
        warn("trace store: ignoring checkpoint interval 0");
        return;
    }
    std::lock_guard<std::mutex> lock(stateMutex());
    checkpointIntervalRef() = chunks;
}

std::string
artifactName(const Key &key)
{
    return sanitize(key.workload) + "-" + std::to_string(key.budget) +
           "-" + hex16(key.progHash) + ".bft";
}

std::string
artifactPath(const Key &key)
{
    return directory() + "/" + artifactName(key);
}

// ---- remote tier ------------------------------------------------------

namespace {

/**
 * Bounded, jittered exclusive flock (see saveArtifact for rationale).
 * @return false when the lock stayed busy through the whole window.
 */
bool
flockBounded(int fd)
{
    for (unsigned attempt = 0; attempt < 6; ++attempt) {
        if (::flock(fd, LOCK_EX | LOCK_NB) == 0)
            return true;
        std::uint64_t base_ms = 1ull << attempt; // 1,2,4,8,16,32
        std::uint64_t jitter =
            splitmix64((static_cast<std::uint64_t>(::getpid()) << 8) ^
                       attempt) %
            (base_ms + 1);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(base_ms + jitter));
    }
    return false;
}

} // namespace

bool
validRemoteName(const std::string &name)
{
    constexpr std::size_t maxNameBytes = 255;
    const std::string suffix = ".bft";
    if (name.size() <= suffix.size() || name.size() > maxNameBytes)
        return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

bool
readArtifactBytes(const std::string &name,
                  std::vector<unsigned char> &bytes)
{
    if (!validRemoteName(name) || !enabled())
        return false;
    std::string path = directory() + "/" + name;
    FdGuard fd(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
    if (fd.fd < 0)
        return false;
    struct ::stat st;
    if (::fstat(fd.fd, &st) != 0 || st.st_size <= 0 ||
        static_cast<std::uint64_t>(st.st_size) >
            subprocess::maxFramePayload) {
        return false;
    }
    bytes.resize(static_cast<std::size_t>(st.st_size));
    std::size_t got = 0;
    while (got < bytes.size()) {
        ssize_t n = ::read(fd.fd, bytes.data() + got,
                           bytes.size() - got);
        if (n <= 0)
            return false;
        got += static_cast<std::size_t>(n);
    }
    return true;
}

int
acceptArtifactBytes(const std::string &name, const unsigned char *data,
                    std::size_t len)
{
    if (!validRemoteName(name) || !enabled())
        return -1;
    if (len < headerBytes || len > subprocess::maxFramePayload)
        return -1;
    // Validate the byte stream's own header: magic, CRC, version and
    // chunk geometry. The content-addressed name is the cross-check —
    // both ends derive it from the same key — so foreign bytes under a
    // plausible name still fail the reader's full validation later;
    // what matters here is never installing obvious garbage.
    if (get32(data) != magicValue)
        return -1;
    if (crc32c(data, headerCrcOffset) != get32(data + headerCrcOffset))
        return -1;
    std::uint32_t version = get32(data + 4);
    if (version < minReadVersion || version > formatVersion)
        return -1;
    if (get32(data + 32) != TraceBuffer::chunkOps)
        return -1;
    std::uint64_t prog_hash = get64(data + 8);
    std::uint64_t budget = get64(data + 16);
    std::uint64_t op_count = get64(data + 24);
    bool halted = data[40] != 0;

    std::string dir = directory();
    {
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
    }
    std::string path = dir + "/" + name;
    std::string lock_path = path + ".lock";
    FdGuard lock_fd(::open(lock_path.c_str(),
                           O_CREAT | O_RDWR | O_CLOEXEC, 0644));
    if (lock_fd.fd < 0)
        return -1;
    if (!flockBounded(lock_fd.fd))
        return 0; // a concurrent publisher owns it; theirs will land

    // Under-lock coverage re-check, the exactly-once half of the
    // protocol: an artifact that already covers at least this stream is
    // kept, so N hosts pushing the same capture store it once and the
    // rest are clean skips.
    {
        FdGuard existing(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
        if (existing.fd >= 0) {
            unsigned char head[headerBytes];
            ssize_t got = ::read(existing.fd, head, headerBytes);
            if (got == static_cast<ssize_t>(headerBytes) &&
                get32(head) == magicValue &&
                crc32c(head, headerCrcOffset) ==
                    get32(head + headerCrcOffset) &&
                get64(head + 8) == prog_hash &&
                get64(head + 16) == budget) {
                std::uint64_t have_ops = get64(head + 24);
                std::uint32_t have_version = get32(head + 4);
                bool have_halted = head[40] != 0;
                if (have_ops > op_count ||
                    (have_ops == op_count && have_halted == halted &&
                     have_version >= version)) {
                    return 0;
                }
            }
        }
    }

    // Same crash-safe publication as saveArtifact (we hold its lock).
    std::string tmp_path = path + ".tmp";
    {
        FdGuard tmp_fd(::open(tmp_path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                              0644));
        if (tmp_fd.fd < 0)
            return -1;
        std::size_t written = 0;
        while (written < len) {
            ssize_t n = ::write(tmp_fd.fd, data + written,
                                len - written);
            if (n <= 0)
                return -1;
            written += static_cast<std::size_t>(n);
        }
        ::fsync(tmp_fd.fd);
    }
    if (::rename(tmp_path.c_str(), path.c_str()) != 0)
        return -1;
    return 1;
}

namespace {

/**
 * Fetch `name` from the configured remote endpoint into the local
 * store directory. @return true when the local artifact file is now
 * present (freshly installed, or an already-covering local copy won
 * the under-lock re-check).
 */
/** A write to a daemon that died mid-transfer must surface as EPIPE,
 * not kill a bench process that never installed signal handlers. */
void
ignoreSigpipeOnce()
{
    static std::once_flag flag;
    std::call_once(flag, [] { std::signal(SIGPIPE, SIG_IGN); });
}

bool
remoteFetchArtifact(const std::string &name)
{
    ignoreSigpipeOnce();
    std::string endpoint = remoteEndpoint();
    std::string host;
    std::uint16_t port = 0;
    if (endpoint.empty() ||
        !subprocess::parseHostPort(endpoint, host, port)) {
        return false;
    }
    auto count_error = [] {
        std::lock_guard<std::mutex> lock(stateMutex());
        ++statsRef().remoteErrors;
    };
    std::string why;
    int raw_fd = subprocess::dialTcp(host, port, 5.0, why);
    if (raw_fd < 0) {
        warn("trace store: remote '" + endpoint + "' unreachable: " +
             why);
        count_error();
        return false;
    }
    FdGuard fd(raw_fd);
    if (!subprocess::writeFrame(fd.fd, subprocess::FrameType::StoreGet,
                                name.data(), name.size())) {
        count_error();
        return false;
    }
    // The daemon greets framed connections with a Line hello; skip any
    // text frames ahead of the store response.
    subprocess::FrameType type;
    std::vector<unsigned char> payload;
    for (;;) {
        if (!subprocess::readFrame(fd.fd, type, payload)) {
            count_error();
            return false;
        }
        if (type != subprocess::FrameType::Line)
            break;
    }
    if (type == subprocess::FrameType::StoreMiss) {
        std::lock_guard<std::mutex> lock(stateMutex());
        ++statsRef().remoteMisses;
        return false;
    }
    if (type != subprocess::FrameType::StoreData) {
        count_error();
        return false;
    }
    int installed =
        acceptArtifactBytes(name, payload.data(), payload.size());
    if (installed < 0) {
        warn("trace store: remote '" + endpoint +
             "' returned an unusable artifact for '" + name + "'");
        count_error();
        return false;
    }
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().remoteHits;
    statsRef().remoteBytesFetched += payload.size();
    return true;
}

/** Push freshly published artifact bytes to the remote endpoint. */
void
remotePushArtifact(const std::string &name,
                   const std::vector<unsigned char> &bytes)
{
    ignoreSigpipeOnce();
    std::string endpoint = remoteEndpoint();
    std::string host;
    std::uint16_t port = 0;
    if (endpoint.empty() ||
        !subprocess::parseHostPort(endpoint, host, port)) {
        return;
    }
    auto count_error = [] {
        std::lock_guard<std::mutex> lock(stateMutex());
        ++statsRef().remoteErrors;
    };
    std::string why;
    int raw_fd = subprocess::dialTcp(host, port, 5.0, why);
    if (raw_fd < 0) {
        warn("trace store: remote '" + endpoint + "' unreachable: " +
             why);
        count_error();
        return;
    }
    FdGuard fd(raw_fd);
    std::vector<unsigned char> payload;
    payload.reserve(4 + name.size() + bytes.size());
    put32(payload, static_cast<std::uint32_t>(name.size()));
    payload.insert(payload.end(), name.begin(), name.end());
    payload.insert(payload.end(), bytes.begin(), bytes.end());
    if (!subprocess::writeFrame(fd.fd, subprocess::FrameType::StorePut,
                                payload.data(), payload.size())) {
        count_error();
        return;
    }
    subprocess::FrameType type;
    std::vector<unsigned char> response;
    for (;;) {
        if (!subprocess::readFrame(fd.fd, type, response)) {
            count_error();
            return;
        }
        if (type != subprocess::FrameType::Line)
            break;
    }
    if (type != subprocess::FrameType::StoreAck) {
        count_error();
        return;
    }
    std::lock_guard<std::mutex> lock(stateMutex());
    ++statsRef().remotePushes;
}

} // namespace

struct ArtifactReader::Mapping
{
    ~Mapping()
    {
        if (base)
            ::munmap(const_cast<unsigned char *>(base), bytes);
        if (fd >= 0)
            ::close(fd);
    }
    const unsigned char *base = nullptr;
    std::size_t bytes = 0;
    int fd = -1;
};

ArtifactReader::~ArtifactReader() = default;

const std::vector<Checkpoint> &
ArtifactReader::checkpoints() const
{
    static const std::vector<Checkpoint> empty;
    return checkpointRecords ? *checkpointRecords : empty;
}

std::unique_ptr<ArtifactReader>
ArtifactReader::clone() const
{
    auto reader = std::unique_ptr<ArtifactReader>(new ArtifactReader);
    reader->mapping = mapping;
    reader->fileBase = fileBase;
    reader->fileBytes = fileBytes;
    reader->offset = headerBytes;
    reader->totalOps = totalOps;
    reader->cursor = 0;
    reader->programSize = programSize;
    reader->fileVersion = fileVersion;
    reader->sawHalt = sawHalt;
    reader->lastAddr.assign(programSize, 0);
    reader->lastResult.assign(programSize, 0);
    reader->chunkOffsets = chunkOffsets;
    reader->checkpointRecords = checkpointRecords;
    return reader;
}

bool
ArtifactReader::seekToChunk(std::uint64_t chunk)
{
    if (!chunkOffsets || chunk >= chunkOffsets->size())
        return false;
    // Chunks decode independently (delta contexts reset per chunk) and
    // decodeChunk derives the expected op count from `cursor`, so
    // repositioning both is the whole seek.
    offset = static_cast<std::size_t>((*chunkOffsets)[chunk]);
    cursor = chunk * TraceBuffer::chunkOps;
    return true;
}

std::size_t
ArtifactReader::decodeChunk(std::uint32_t *pc_index, Addr *eff_addr,
                            RegVal *result, std::uint8_t *flags)
{
    if (cursor >= totalOps)
        return 0;

    // Corruption (or an injected trace_store fault) throws without
    // advancing `cursor`, so the owning TraceBuffer can degrade to live
    // execution from exactly the ops it has already committed.
    auto corrupt = [](const std::string &why) -> SimError {
        countFallback();
        return SimError("trace_store", "trace artifact unusable: " + why);
    };
    if (fault::shouldFail(fault::Site::TraceStore))
        throw corrupt("injected fault: artifact decode");

    auto start_time = std::chrono::steady_clock::now();

    if (offset + frameBytes > fileBytes)
        throw corrupt("truncated chunk frame");
    std::uint32_t payload_bytes = get32(fileBase + offset);
    std::uint32_t chunk_count = get32(fileBase + offset + 4);
    std::uint32_t payload_crc = get32(fileBase + offset + 8);
    std::uint64_t expected = std::min<std::uint64_t>(
        TraceBuffer::chunkOps, totalOps - cursor);
    if (chunk_count != expected)
        throw corrupt("chunk op count disagrees with the header");
    if (offset + frameBytes + payload_bytes > fileBytes)
        throw corrupt("truncated chunk payload");

    const unsigned char *payload = fileBase + offset + frameBytes;
    if (crc32c(payload, payload_bytes) != payload_crc)
        throw corrupt("chunk checksum mismatch");

    // Delta contexts reset per chunk, matching the encoder, so every
    // chunk decodes independently of its predecessors.
    std::fill(lastAddr.begin(), lastAddr.end(), 0);
    std::fill(lastResult.begin(), lastResult.end(), 0);
    std::int64_t prev_pc = -1;
    std::size_t pos = 0;
    for (std::uint32_t k = 0; k < chunk_count; ++k) {
        if (pos >= payload_bytes)
            throw corrupt("chunk payload ends mid-op");
        std::uint8_t control = payload[pos++];
        if (control & ctrlReserved)
            throw corrupt("reserved control bits set");
        if ((control & ctrlResultSkip) && !(control & ctrlWritesReg))
            throw corrupt("result-skip without register write");

        std::uint64_t delta;
        std::int64_t pc;
        if (control & ctrlPcStep) {
            pc = prev_pc + 1;
        } else {
            if (!getZigzag(payload, pos, payload_bytes, delta))
                throw corrupt("bad pc varint");
            pc = prev_pc + static_cast<std::int64_t>(delta);
        }
        if (pc < 0 || pc >= static_cast<std::int64_t>(programSize))
            throw corrupt("pc index out of program bounds");
        prev_pc = pc;
        auto pcv = static_cast<std::uint32_t>(pc);

        Addr addr = 0;
        if (control & ctrlHasAddr) {
            if (!getZigzag(payload, pos, payload_bytes, delta))
                throw corrupt("bad address varint");
            addr = lastAddr[pcv] + delta;
            lastAddr[pcv] = addr;
        }

        RegVal value = 0;
        if (control & ctrlWritesReg) {
            if (control & ctrlResultSkip) {
                value = lastResult[pcv];
            } else {
                if (!getZigzag(payload, pos, payload_bytes, delta))
                    throw corrupt("bad result varint");
                value = lastResult[pcv] + delta;
            }
            lastResult[pcv] = value;
        }

        pc_index[k] = pcv;
        eff_addr[k] = addr;
        result[k] = value;
        flags[k] = control & (ctrlTaken | ctrlWritesReg);
    }
    if (pos != payload_bytes)
        throw corrupt("chunk payload has trailing bytes");

    offset += frameBytes + payload_bytes;
    cursor += chunk_count;
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_time)
            .count();
    countRead(frameBytes + payload_bytes, chunk_count, seconds);
    return chunk_count;
}

std::unique_ptr<ArtifactReader>
openArtifact(const Key &key, const isa::Program &program)
{
    if (!enabled())
        return nullptr;
    std::string path = artifactPath(key);

    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0 && remoteEnabled()) {
        // Remote tier: a local miss consults the fleet's shared store
        // before falling back to live capture. A successful fetch
        // installs into the local directory (which acts as the cache
        // for the remote tier), so the normal open path below — mmap,
        // header validation, v2 sections — applies unchanged.
        if (remoteFetchArtifact(artifactName(key)))
            fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    }
    if (fd < 0) {
        countMiss();
        return nullptr;
    }

    // A present-but-unusable artifact is a fallback *and* a miss: the
    // caller recaptures live and the batch-end save rewrites the file.
    auto reject = [&](const std::string &why) {
        warn("trace store: ignoring '" + path + "': " + why);
        countFallback();
        countMiss();
    };

    struct ::stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        reject("cannot stat");
        return nullptr;
    }
    auto file_bytes = static_cast<std::size_t>(st.st_size);
    if (file_bytes < headerBytes) {
        ::close(fd);
        reject("file shorter than the header");
        return nullptr;
    }

    void *base =
        ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
        ::close(fd);
        reject("mmap failed");
        return nullptr;
    }

    auto reader = std::unique_ptr<ArtifactReader>(new ArtifactReader);
    reader->mapping = std::make_shared<ArtifactReader::Mapping>();
    reader->mapping->base = static_cast<const unsigned char *>(base);
    reader->mapping->bytes = file_bytes;
    reader->mapping->fd = fd;
    reader->fileBase = reader->mapping->base;
    reader->fileBytes = file_bytes;

    if (fault::shouldFail(fault::Site::TraceStore)) {
        reject("injected fault: artifact open");
        return nullptr;
    }

    Header header;
    std::string why;
    if (!parseHeader(reader->fileBase, file_bytes, key, header, why)) {
        reject(why);
        return nullptr;
    }
    if (header.programSize != program.size()) {
        reject("program size mismatch");
        return nullptr;
    }

    if (header.version >= 2) {
        std::vector<std::uint64_t> chunk_offsets;
        std::vector<Checkpoint> ckpts;
        if (!parseArtifactSections(reader->fileBase, file_bytes, header,
                                   chunk_offsets, ckpts, why)) {
            reject(why);
            return nullptr;
        }
        reader->chunkOffsets =
            std::make_shared<const std::vector<std::uint64_t>>(
                std::move(chunk_offsets));
        reader->checkpointRecords =
            std::make_shared<const std::vector<Checkpoint>>(
                std::move(ckpts));
    }

    reader->offset = headerBytes;
    reader->totalOps = header.opCount;
    reader->programSize = header.programSize;
    reader->sawHalt = header.halted;
    reader->fileVersion = header.version;
    reader->lastAddr.assign(header.programSize, 0);
    reader->lastResult.assign(header.programSize, 0);
    countHit();
    return reader;
}

bool
saveArtifact(const Key &key, const TraceBuffer &buffer)
{
    if (!enabled())
        return false;
    std::uint64_t ops = buffer.size();
    std::uint32_t program_size =
        static_cast<std::uint32_t>(buffer.program().size());
    std::string path = artifactPath(key);

    {
        std::error_code ec;
        std::filesystem::create_directories(directory(), ec);
    }

    // Exclusive non-blocking advisory lock on a sibling .lock file:
    // when several processes finish a batch over the same store, one
    // writes and the rest skip — the artifact content is identical by
    // construction, so losing the race costs nothing.
    std::string lock_path = path + ".lock";
    FdGuard lock_fd(::open(lock_path.c_str(),
                           O_CREAT | O_RDWR | O_CLOEXEC, 0644));
    if (lock_fd.fd < 0) {
        warn("trace store: cannot create '" + lock_path + "'");
        return false;
    }
    // Bounded, jittered retry before abandoning: writers hold the lock
    // only for the milliseconds an artifact write takes, so a short
    // wait usually converts "concurrent publisher, skip and recompute
    // later" into "wait our turn" — but never blocks a batch on a
    // wedged peer. Jitter (seeded per pid+attempt) de-syncs workers
    // that all finish a sweep at the same instant.
    if (!flockBounded(lock_fd.fd)) {
        std::lock_guard<std::mutex> lock(stateMutex());
        ++statsRef().publishAbandoned;
        return false; // persistent writer on it; abandon publication
    }

    std::uint32_t version = saveFormatVersion();

    // Re-validate under the lock: skip when the existing artifact
    // already covers at least this stream (a concurrent process may
    // have demanded — and saved — a longer tail). An equal-coverage
    // artifact in an *older* format is rewritten — that upgrades v1
    // files to the seekable v2 layout in place — but a longer stream is
    // never clobbered just to change formats.
    {
        FdGuard existing(::open(path.c_str(), O_RDONLY | O_CLOEXEC));
        if (existing.fd >= 0) {
            unsigned char head[headerBytes];
            ssize_t got = ::read(existing.fd, head, headerBytes);
            Header header;
            std::string why;
            if (got == static_cast<ssize_t>(headerBytes) &&
                parseHeader(head, headerBytes, key, header, why) &&
                header.programSize == program_size &&
                (header.opCount > ops ||
                 (header.opCount == ops &&
                  header.halted == buffer.halted() &&
                  header.version >= version))) {
                return false;
            }
        }
    }

    std::vector<unsigned char> out;
    out.reserve(static_cast<std::size_t>(ops * 3) + 4096);
    appendHeader(out, key, version, ops, program_size, buffer.halted());

    // Encode chunk by chunk straight off the buffer's SoA storage. For
    // v2, also collect each chunk frame's file offset and reconstruct
    // the architectural state (register file via the recorded
    // writebacks, canonical warmed-cache tags via the address stream)
    // to emit as periodic checkpoint records.
    std::vector<Addr> last_addr(program_size, 0);
    std::vector<RegVal> last_result(program_size, 0);
    std::vector<std::uint64_t> chunk_offsets;
    std::vector<Checkpoint> checkpoints;
    std::array<RegVal, numArchRegs> regs{};
    CheckpointWarmCache warm;
    const std::uint32_t ckpt_interval = checkpointIntervalChunks();
    const auto &insts = buffer.program().insts();
    std::uint64_t start = 0;
    while (start < ops) {
        OpSpanView span;
        std::size_t n = buffer.spanAt(
            start, static_cast<std::size_t>(
                       std::min<std::uint64_t>(TraceBuffer::chunkOps,
                                               ops - start)),
            span);

        if (version >= 2) {
            chunk_offsets.push_back(out.size());
            std::uint64_t chunk_index = start / TraceBuffer::chunkOps;
            if (chunk_index > 0 && chunk_index % ckpt_interval == 0) {
                Checkpoint ckpt;
                ckpt.opIndex = start;
                ckpt.pcIndex = span.pcIndex[0];
                ckpt.regs = regs;
                ckpt.cacheTags = warm.snapshot();
                checkpoints.push_back(std::move(ckpt));
            }
        }

        std::size_t frame_base = out.size();
        put32(out, 0); // payload size, patched below
        put32(out, static_cast<std::uint32_t>(n));
        put32(out, 0); // payload CRC, patched below
        std::size_t payload_base = out.size();

        std::fill(last_addr.begin(), last_addr.end(), 0);
        std::fill(last_result.begin(), last_result.end(), 0);
        std::int64_t prev_pc = -1;
        for (std::size_t k = 0; k < n; ++k) {
            std::uint32_t pcv = span.pcIndex[k];
            Addr addr = span.effAddr[k];
            RegVal value = span.result[k];
            std::uint8_t mem_flags =
                span.flags[k] &
                (OpSpanView::takenFlag | OpSpanView::writesRegFlag);

            if (version >= 2) {
                if (addr != 0)
                    warm.access(addr);
                // Mirrors Executor::writeReg: r0 stays hardwired zero.
                if ((mem_flags & OpSpanView::writesRegFlag) &&
                    insts[pcv].rd != 0) {
                    regs[insts[pcv].rd] = value;
                }
            }

            std::uint8_t control = mem_flags;
            bool pc_step =
                static_cast<std::int64_t>(pcv) == prev_pc + 1;
            if (pc_step)
                control |= ctrlPcStep;
            if (addr != 0)
                control |= ctrlHasAddr;
            bool writes = (mem_flags & ctrlWritesReg) != 0;
            bool result_skip = writes && value == last_result[pcv];
            if (result_skip)
                control |= ctrlResultSkip;
            out.push_back(control);

            if (!pc_step) {
                putZigzag(out, static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(pcv) -
                                   prev_pc));
            }
            prev_pc = pcv;
            if (addr != 0) {
                putZigzag(out, addr - last_addr[pcv]);
                last_addr[pcv] = addr;
            }
            if (writes && !result_skip)
                putZigzag(out, value - last_result[pcv]);
            if (writes)
                last_result[pcv] = value;
        }

        auto payload_bytes =
            static_cast<std::uint32_t>(out.size() - payload_base);
        std::uint32_t crc = crc32c(out.data() + payload_base,
                                   payload_bytes);
        for (int i = 0; i < 4; ++i) {
            out[frame_base + i] =
                static_cast<unsigned char>(payload_bytes >> (i * 8));
            out[frame_base + 8 + i] =
                static_cast<unsigned char>(crc >> (i * 8));
        }
        start += n;
    }

    if (version >= 2) {
        // Index section: per-chunk file offsets for random access.
        std::uint64_t index_offset = out.size();
        auto chunk_count =
            static_cast<std::uint32_t>(chunk_offsets.size());
        put32(out, indexMagicValue);
        put32(out, chunk_count);
        for (std::uint64_t off : chunk_offsets)
            put64(out, off);
        put32(out, crc32c(out.data() + index_offset,
                          out.size() - index_offset));

        // Checkpoint section: periodic architectural state records.
        std::size_t ckpt_base = out.size();
        put32(out, ckptMagicValue);
        put32(out, static_cast<std::uint32_t>(checkpoints.size()));
        put32(out, ckpt_interval);
        put32(out, numArchRegs);
        put32(out, checkpointCacheSets);
        put32(out, checkpointCacheWays);
        for (const Checkpoint &ckpt : checkpoints) {
            put64(out, ckpt.opIndex);
            put32(out, ckpt.pcIndex);
            put32(out, 0);
            for (RegVal reg : ckpt.regs)
                put64(out, reg);
            for (Addr tag : ckpt.cacheTags)
                put64(out, tag);
        }
        put32(out, crc32c(out.data() + ckpt_base,
                          out.size() - ckpt_base));

        // Footer: fixed-size trailer locating the sections from EOF.
        std::size_t footer_base = out.size();
        put32(out, footerMagicValue);
        put32(out, chunk_count);
        put64(out, index_offset);
        put32(out, static_cast<std::uint32_t>(checkpoints.size()));
        put32(out, crc32c(out.data() + footer_base,
                          out.size() - footer_base));
    }

    // Crash-safe publication: write a .tmp sibling, fsync, rename. A
    // writer killed mid-write leaves only a .tmp readers never open.
    std::string tmp_path = path + ".tmp";
    {
        FdGuard tmp_fd(::open(tmp_path.c_str(),
                              O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                              0644));
        if (tmp_fd.fd < 0) {
            warn("trace store: cannot write '" + tmp_path + "'");
            return false;
        }
        std::size_t written = 0;
        while (written < out.size()) {
            ssize_t n = ::write(tmp_fd.fd, out.data() + written,
                                out.size() - written);
            if (n <= 0) {
                warn("trace store: short write to '" + tmp_path + "'");
                return false;
            }
            written += static_cast<std::size_t>(n);
        }
        ::fsync(tmp_fd.fd);
    }
    if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
        warn("trace store: cannot rename '" + tmp_path + "' into place");
        return false;
    }
    countWrite(out.size(), ops,
               version >= 2 ? checkpoints.size() : 0,
               version >= 2 ? checkpoints.size() * ckptRecordBytes : 0);
    // Remote tier: a freshly published capture is also pushed to the
    // fleet's shared store so any other host's next miss becomes a
    // fetch. The server re-runs the same under-lock coverage check, so
    // concurrent pushes of the same capture store exactly one copy.
    if (remoteEnabled())
        remotePushArtifact(artifactName(key), out);
    return true;
}

Stats
stats()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    return statsRef();
}

void
resetStats()
{
    std::lock_guard<std::mutex> lock(stateMutex());
    statsRef() = Stats{};
    threadCounters = ThreadCounters{};
}

ThreadCounters
takeThreadCounters()
{
    ThreadCounters taken = threadCounters;
    threadCounters = ThreadCounters{};
    return taken;
}

} // namespace bfsim::sim::trace_store
