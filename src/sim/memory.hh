/**
 * @file
 * Sparse functional memory for the simulated cores.
 *
 * Backing storage is allocated in 64KB pages on first touch, so kernels
 * can use multi-megabyte footprints (needed to exceed the 2MB/core LLC)
 * without the simulator paying for untouched space. All architectural
 * accesses are 8-byte aligned 64-bit words; the cache model operates on
 * 64B blocks above this.
 */

#ifndef BFSIM_SIM_MEMORY_HH_
#define BFSIM_SIM_MEMORY_HH_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/sim_error.hh"
#include "common/types.hh"

namespace bfsim::sim {

/** Byte-addressable sparse memory with 64-bit word access. */
class Memory
{
  public:
    /** Read the 64-bit word at an 8-byte aligned address. */
    std::uint64_t
    read64(Addr addr) const
    {
        checkAlignment(addr);
        auto it = pages.find(pageOf(addr));
        if (it == pages.end())
            return 0;
        return it->second[wordIndex(addr)];
    }

    /** Write the 64-bit word at an 8-byte aligned address. */
    void
    write64(Addr addr, std::uint64_t value)
    {
        checkAlignment(addr);
        auto &page = pages[pageOf(addr)];
        if (page.empty())
            page.assign(wordsPerPage, 0);
        page[wordIndex(addr)] = value;
    }

    /** Number of resident pages (footprint reporting / tests). */
    std::size_t residentPages() const { return pages.size(); }

    /** Resident footprint in bytes. */
    std::size_t residentBytes() const
    {
        return pages.size() * pageBytes;
    }

  private:
    static constexpr unsigned pageBits = 16; // 64KB pages
    static constexpr std::size_t pageBytes = 1ULL << pageBits;
    static constexpr std::size_t wordsPerPage = pageBytes / 8;

    static void
    checkAlignment(Addr addr)
    {
        BFSIM_CHECK((addr & 0x7) == 0, "memory",
                    "unaligned 64-bit memory access");
    }

    static Addr pageOf(Addr addr) { return addr >> pageBits; }

    static std::size_t
    wordIndex(Addr addr)
    {
        return (addr & (pageBytes - 1)) >> 3;
    }

    std::unordered_map<Addr, std::vector<std::uint64_t>> pages;
};

} // namespace bfsim::sim

#endif // BFSIM_SIM_MEMORY_HH_
