#include "sim/dyn_op_source.hh"

namespace bfsim::sim {

DynOpSource::~DynOpSource() = default;

} // namespace bfsim::sim
