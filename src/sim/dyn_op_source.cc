#include "sim/dyn_op_source.hh"

namespace bfsim::sim {

DynOpSource::~DynOpSource() = default;

std::size_t
DynOpSource::nextBatch(DynOp *out, std::size_t max)
{
    std::size_t n = 0;
    while (n < max && next(out[n]))
        ++n;
    return n;
}

std::size_t
DynOpSource::nextSpan(OpSpanView &, std::size_t)
{
    return noSpan;
}

} // namespace bfsim::sim
