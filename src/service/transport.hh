/**
 * @file
 * Framed TCP transport for the bfsimd service layer.
 *
 * TCP peers (remote clients, coordinator<->worker links, remote
 * trace-store fetches) speak the length-prefixed frame format of
 * common/subprocess.hh rather than raw newline text: framing survives
 * arbitrary byte boundaries, carries binary payloads (wire-encoded jobs
 * and results, trace artifacts) without escaping, and lets a reader
 * reject an oversized or garbage header instead of buffering without
 * bound. The text protocol of service/protocol.hh rides unchanged
 * inside FrameType::Line frames — one request or response line per
 * frame, no trailing newline — so the daemon's command dispatch and the
 * Python client's JSON parsing are byte-identical across both
 * transports.
 *
 * FramedConn owns one connected stream socket. Writes are whole frames
 * under an internal mutex, so multiple threads (a worker streaming
 * results while the read loop answers pings) interleave at frame
 * granularity. Reads are single-consumer: one thread calls read().
 */

#ifndef BFSIM_SERVICE_TRANSPORT_HH_
#define BFSIM_SERVICE_TRANSPORT_HH_

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "common/subprocess.hh"

namespace bfsim::service {

/** One framed stream connection; closes the fd on destruction. */
class FramedConn
{
  public:
    /** Take ownership of a connected socket (left in blocking mode). */
    explicit FramedConn(int fd) : fd_(fd) {}
    ~FramedConn();

    FramedConn(const FramedConn &) = delete;
    FramedConn &operator=(const FramedConn &) = delete;

    int fd() const { return fd_; }

    /**
     * Write one frame (thread-safe). A peer that disconnected turns
     * this — and every later write — into a false return; senders keep
     * going regardless, mirroring LineWriter's gone-peer behaviour.
     */
    bool send(subprocess::FrameType type, const void *payload,
              std::size_t len);

    /** One protocol text line as a FrameType::Line frame. */
    bool sendLine(const std::string &text);

    /**
     * Read the next frame. Waits up to `timeoutMs` (-1 = forever),
     * waking early when either wake fd turns readable (the daemon's
     * stop pipe, the process shutdown self-pipe).
     *
     * @return 1 a frame was produced; 0 timeout or wake-fd (no frame);
     *         -1 peer EOF, transport error, or corrupt framing.
     */
    int read(subprocess::FrameType &type,
             std::vector<unsigned char> &payload, int wakeFd1 = -1,
             int wakeFd2 = -1, int timeoutMs = -1);

    /** True once the peer is unreachable for writes. */
    bool peerGone() const { return gone_; }

    /** True once the inbound byte stream failed frame validation. */
    bool corrupt() const { return decoder_.corrupt(); }

  private:
    int fd_;
    std::mutex writeMutex_;
    bool gone_ = false;
    subprocess::FrameDecoder decoder_;
};

/**
 * Parse "host:port" and dial it with a connect timeout. @return a
 * connected blocking fd, or -1 with `why` set.
 */
int dialPeer(const std::string &hostPort, double timeoutSeconds,
             std::string &why);

} // namespace bfsim::service

#endif // BFSIM_SERVICE_TRANSPORT_HH_
