/**
 * @file
 * Sharded sweep coordinator: one bfsimd instance started with
 * `--coordinate host:port,...` executes each sweep by farming its job
 * list out to remote worker daemons instead of simulating locally.
 *
 * Scheduling is pull-based: the coordinator keeps at most `capacity`
 * jobs outstanding per worker (the capacity each worker advertises in
 * its hello), so a fast host drains the shared pending queue faster
 * and naturally takes more of the sweep — no static partitioning, no
 * stragglers from an unlucky split. The pending queue is ordered by
 * (priority desc, submission ordinal asc): `opt priority N` raises
 * points the client wants first.
 *
 * Failure policy reuses the local batch semantics at fleet scale:
 *  - a worker that disconnects (crash, SIGKILL, network partition) has
 *    its in-flight ordinals requeued; per-ordinal crash counts against
 *    BatchOptions::poisonThreshold quarantine a job that keeps killing
 *    workers, exactly like the process-pool backend quarantines one
 *    that keeps killing forked workers;
 *  - with a job deadline set, an ordinal whose every assignee has held
 *    it past the deadline is failed, like the local deadline policy;
 *  - when the pending queue is empty and a host sits idle, the tail of
 *    a busy host is *stolen*: the oldest single-assignee in-flight
 *    ordinal is duplicate-dispatched (at most two assignees), first
 *    result wins, the loser's result is dropped on arrival;
 *  - when every worker is dead the remaining jobs run locally, so a
 *    sweep never fails just because the fleet did.
 *
 * Results stream to the client in strict submission order (out-of-order
 * completions buffer until their turn), so the merged output of a
 * sharded sweep is line-for-line comparable with a single local daemon
 * running `opt workers 1`. Every completed job is appended to the same
 * per-sweep journal directory the local path uses — a killed
 * coordinator, re-submitted the same sweep, restores every finished
 * job before contacting any worker, and the journal is interchangeable
 * between sharded and local execution.
 */

#ifndef BFSIM_SERVICE_COORDINATOR_HH_
#define BFSIM_SERVICE_COORDINATOR_HH_

#include <functional>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace bfsim::service {

/** Sink for one JSON response line to the requesting client. */
using LineSink = std::function<void(const std::string &line)>;

/**
 * Execute `request` sharded across `endpoints` ("host:port" worker
 * daemons), streaming start / job / done lines (plus "shard" status and
 * "shard-event" lines) through `sendLine` and journaling under
 * `journalDir` ("" disables). `localWorkers` sizes the local fallback
 * batch when the whole fleet is lost; `stopFd` (or the process
 * shutdown self-pipe) interrupts the sweep between completions.
 *
 * @return true when the sweep ran to completion (failed jobs included);
 * false when interrupted.
 */
bool runShardedSweep(const LineSink &sendLine, SweepRequest &request,
                     const std::vector<std::string> &endpoints,
                     const std::string &journalDir,
                     unsigned localWorkers, int stopFd);

} // namespace bfsim::service

#endif // BFSIM_SERVICE_COORDINATOR_HH_
