#include "service/daemon.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "common/log.hh"
#include "common/signal_util.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"
#include "harness/experiment.hh"
#include "harness/wire.hh"
#include "service/coordinator.hh"
#include "service/protocol.hh"
#include "service/transport.hh"
#include "sim/trace_store.hh"

namespace bfsim::service {

namespace {

[[noreturn]] void
serviceError(const std::string &message)
{
    throw SimError("service", message);
}

/**
 * Line-oriented writer over a Unix connection. A peer that disconnected
 * mid-sweep turns every later write into a silent no-op (the sweep
 * must finish and journal regardless of whether anyone is watching).
 */
class LineWriter
{
  public:
    explicit LineWriter(int fd) : fd(fd) {}

    void
    sendLine(const std::string &text)
    {
        if (gone)
            return;
        std::string line = text;
        line.push_back('\n');
        std::size_t sent = 0;
        while (sent < line.size()) {
            ssize_t n = ::write(fd, line.data() + sent,
                                line.size() - sent);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                gone = true;
                return;
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    bool clientGone() const { return gone; }

  private:
    int fd;
    bool gone = false;
};

/** Buffered line reader that also watches the shutdown self-pipe and
 * this daemon's private stop pipe. */
class LineReader
{
  public:
    LineReader(int fd, int stopFd) : fd(fd), stopFd(stopFd) {}

    /**
     * Read the next newline-terminated line. Returns false on peer
     * EOF, error, or a shutdown/stop signal arriving while idle.
     */
    bool
    readLine(std::string &line)
    {
        for (;;) {
            std::size_t pos = buffer.find('\n');
            if (pos != std::string::npos) {
                line = buffer.substr(0, pos);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                buffer.erase(0, pos + 1);
                return true;
            }
            struct pollfd fds[3];
            nfds_t count = 0;
            fds[count++] = {fd, POLLIN, 0};
            fds[count++] = {signal_util::shutdownFd(), POLLIN, 0};
            if (stopFd >= 0)
                fds[count++] = {stopFd, POLLIN, 0};
            int ready = ::poll(fds, count, -1);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            for (nfds_t i = 1; i < count; ++i)
                if (fds[i].revents & POLLIN)
                    return false;
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd;
    int stopFd;
    std::string buffer;
};

/** One client connection, transport-agnostic: the command loop reads
 * protocol lines and writes JSON lines through this. */
class Channel
{
  public:
    virtual ~Channel() = default;
    /** False on peer EOF or a stop/shutdown wake. */
    virtual bool readLine(std::string &line) = 0;
    virtual void sendLine(const std::string &line) = 0;
    virtual bool peerGone() const = 0;
    /** True when this connection already owns the sweep mutex (a
     * worker connection running remote jobs). */
    virtual bool holdsSweepLock() const { return false; }
};

class UnixChannel final : public Channel
{
  public:
    UnixChannel(int fd, int stopFd) : reader(fd, stopFd), writer(fd) {}

    bool readLine(std::string &line) override
    {
        return reader.readLine(line);
    }
    void sendLine(const std::string &line) override
    {
        writer.sendLine(line);
    }
    bool peerGone() const override { return writer.clientGone(); }

  private:
    LineReader reader;
    LineWriter writer;
};

void
sendError(Channel &channel, const std::string &message)
{
    channel.sendLine("{\"type\": \"error\", \"message\": \"" +
                     jsonEscape(message) + "\"}");
}

void
sendOk(Channel &channel, const std::string &command,
       const std::string &extra = {})
{
    channel.sendLine("{\"type\": \"ok\", \"command\": \"" + command +
                     "\"" + extra + "}");
}

} // namespace

/**
 * A framed TCP connection. Besides carrying the text protocol in Line
 * frames, it serves the two binary dialects: remote jobs (WireJob in,
 * WireResult out, executed on a lazily created per-connection worker
 * pool under the daemon-wide sweep mutex) and the remote trace-store
 * tier (StoreGet/StorePut against the daemon's trace directory).
 */
class TcpChannel final : public Channel
{
  public:
    TcpChannel(Daemon &daemon, int fd) : daemon_(daemon), conn_(fd) {}

    ~TcpChannel() override
    {
        // Drain outstanding remote jobs (their results still stream to
        // the peer if it is alive), persist any trace captures they
        // produced, then release the sweep slot.
        pool_.reset();
        if (ranJobs_)
            harness::persistTraceStore();
        if (sweepLock_.owns_lock())
            sweepLock_.unlock();
    }

    bool
    readLine(std::string &line) override
    {
        for (;;) {
            subprocess::FrameType type;
            std::vector<unsigned char> payload;
            int rc = conn_.read(type, payload, daemon_.stopFds_[0],
                                signal_util::shutdownFd());
            if (rc <= 0)
                return false;
            switch (type) {
              case subprocess::FrameType::Line:
                line.assign(payload.begin(), payload.end());
                return true;
              case subprocess::FrameType::WireJob:
                handleWireJob(payload);
                break;
              case subprocess::FrameType::StoreGet:
                handleStoreGet(payload);
                break;
              case subprocess::FrameType::StorePut:
                handleStorePut(payload);
                break;
              default:
                break; // ignore frame kinds this side never consumes
            }
        }
    }

    void sendLine(const std::string &line) override
    {
        conn_.sendLine(line);
    }
    bool peerGone() const override { return conn_.peerGone(); }
    bool holdsSweepLock() const override
    {
        return sweepLock_.owns_lock();
    }

  private:
    void
    handleWireJob(const std::vector<unsigned char> &payload)
    {
        namespace wire = harness::wire;
        std::uint64_t ordinal = 0;
        unsigned retries = 0;
        harness::BatchJob job;
        try {
            wire::Reader r(payload);
            ordinal = r.u64();
            retries = r.u32();
            job = wire::decodeBatchJob(r);
        } catch (const SimError &error) {
            sendError(*this, "bad wire job: " + error.message());
            return;
        }
        if (!pool_) {
            // First remote job on this connection: claim the daemon's
            // sweep slot (held until the connection closes, so remote
            // jobs never overlap a local sweep's process-pool fork)
            // and start the worker pool the hello advertised.
            sweepLock_ = std::unique_lock(daemon_.sweepMutex_);
            pool_ = std::make_unique<ThreadPool>(
                daemon_.resolvedWorkers());
            ranJobs_ = true;
        }
        pool_->submit([this, ordinal, retries,
                       job = std::move(job)]() mutable {
            harness::BatchItem item = harness::runJobAttempts(
                job, static_cast<std::size_t>(ordinal) + 1, retries);
            harness::wire::Writer w;
            w.u64(ordinal);
            harness::wire::encodeBatchItem(w, item);
            conn_.send(subprocess::FrameType::WireResult,
                       w.bytes().data(), w.bytes().size());
        });
    }

    void
    handleStoreGet(const std::vector<unsigned char> &payload)
    {
        std::string name(payload.begin(), payload.end());
        std::vector<unsigned char> bytes;
        if (sim::trace_store::validRemoteName(name) &&
            sim::trace_store::readArtifactBytes(name, bytes)) {
            conn_.send(subprocess::FrameType::StoreData, bytes.data(),
                       bytes.size());
        } else {
            conn_.send(subprocess::FrameType::StoreMiss, nullptr, 0);
        }
    }

    void
    handleStorePut(const std::vector<unsigned char> &payload)
    {
        int stored = -1;
        if (payload.size() >= 4) {
            std::uint32_t name_len = 0;
            for (int i = 0; i < 4; ++i)
                name_len |= static_cast<std::uint32_t>(payload[i])
                            << (i * 8);
            if (name_len > 0 && 4 + name_len < payload.size()) {
                std::string name(payload.begin() + 4,
                                 payload.begin() + 4 + name_len);
                stored = sim::trace_store::acceptArtifactBytes(
                    name, payload.data() + 4 + name_len,
                    payload.size() - 4 - name_len);
            }
        }
        unsigned char ack = stored == 1 ? 1 : 0;
        conn_.send(subprocess::FrameType::StoreAck, &ack, 1);
    }

    Daemon &daemon_;
    FramedConn conn_;
    std::unique_lock<std::mutex> sweepLock_;
    std::unique_ptr<ThreadPool> pool_;
    bool ranJobs_ = false;
};

namespace {

/** Execute an accumulated request, streaming progress to the client. */
void
runSweep(Channel &channel, SweepRequest &request,
         const DaemonOptions &daemon, unsigned defaultWorkers,
         int stopFd)
{
    std::string journal_dir = journalDirFor(daemon.journalRoot,
                                            request);
    unsigned workers = request.workers ? request.workers
                                       : defaultWorkers;

    if (!daemon.coordinators.empty()) {
        runShardedSweep(
            [&channel](const std::string &line) {
                channel.sendLine(line);
            },
            request, daemon.coordinators, journal_dir, workers,
            stopFd);
        return;
    }

    harness::BatchOptions batch = request.batch;
    batch.journalDir = journal_dir;
    std::ostringstream start;
    start << "{\"type\": \"start\", \"jobs\": " << request.jobs.size()
          << ", \"isolate\": \"" << isolateName(batch.isolate)
          << "\", \"journal\": \"" << jsonEscape(batch.journalDir)
          << "\"}";
    channel.sendLine(start.str());

    harness::BatchResult result = harness::runBatch(
        request.jobs, workers,
        [&channel](const harness::BatchItem &item, std::size_t done,
                   std::size_t total) {
            channel.sendLine(itemLine(item, done, total));
        },
        batch);

    std::ostringstream done;
    done.precision(17);
    done << "{\"type\": \"done\", \"total\": " << result.items.size()
         << ", \"failures\": " << result.failures()
         << ", \"journaled\": " << result.journaled()
         << ", \"isolate\": \"" << isolateName(result.isolate)
         << "\", \"interrupted\": "
         << (signal_util::shutdownRequested() ? "true" : "false")
         << ", \"wall_seconds\": " << result.wallSeconds << "}";
    channel.sendLine(done.str());
}

} // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {}

Daemon::~Daemon()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (tcpListenFd_ >= 0)
        ::close(tcpListenFd_);
    for (int fd : stopFds_)
        if (fd >= 0)
            ::close(fd);
    if (bound_)
        ::unlink(options_.socketPath.c_str());
}

unsigned
Daemon::resolvedWorkers() const
{
    return options_.workers ? options_.workers
                            : ThreadPool::defaultThreadCount();
}

void
Daemon::requestStop()
{
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true))
        return;
    if (stopFds_[1] >= 0) {
        unsigned char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(stopFds_[1], &byte, 1);
    }
}

void
Daemon::bind()
{
    if (options_.socketPath.empty())
        serviceError("bfsimd needs a socket path");
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof addr.sun_path)
        serviceError("socket path too long: " + options_.socketPath);
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        serviceError(std::string("socket: ") + std::strerror(errno));
    // The daemon owns its path: a leftover socket file from a crashed
    // previous instance would make bind fail, so remove it first.
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) < 0)
        serviceError("bind " + options_.socketPath + ": " +
                     std::strerror(errno));
    bound_ = true;
    if (::listen(listenFd_, 8) < 0)
        serviceError(std::string("listen: ") + std::strerror(errno));

    if (!options_.listenSpec.empty()) {
        std::string host;
        std::uint16_t port = 0;
        if (!subprocess::parseHostPort(options_.listenSpec, host,
                                       port))
            serviceError("malformed --listen '" + options_.listenSpec +
                         "' (expected host:port)");
        std::string why;
        tcpListenFd_ = subprocess::listenTcp(host, port, boundPort_,
                                             why);
        if (tcpListenFd_ < 0)
            serviceError("listen " + options_.listenSpec + ": " + why);
        if (!options_.portFile.empty()) {
            std::FILE *file = std::fopen(options_.portFile.c_str(),
                                         "w");
            if (!file)
                serviceError("cannot write port file " +
                             options_.portFile);
            std::fprintf(file, "%u\n",
                         static_cast<unsigned>(boundPort_));
            std::fclose(file);
        }
    }

    if (::pipe(stopFds_) != 0)
        serviceError(std::string("pipe: ") + std::strerror(errno));
    for (int fd : stopFds_)
        ::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

int
Daemon::serve()
{
    signal_util::installShutdownHandlers();
    std::string endpoints = options_.socketPath;
    if (tcpListenFd_ >= 0)
        endpoints += " and tcp port " + std::to_string(boundPort_);
    inform("bfsimd: listening on " + endpoints +
           " (isolate=" + isolateName(options_.isolate) +
           (options_.journalRoot.empty()
                ? std::string(", journaling disabled")
                : ", journal root " + options_.journalRoot) +
           (options_.coordinators.empty()
                ? std::string()
                : ", coordinating " +
                      std::to_string(options_.coordinators.size()) +
                      " worker(s)") +
           ")");
    for (;;) {
        if (signal_util::shutdownRequested() || stopping_.load())
            break;
        struct pollfd fds[4];
        nfds_t count = 0;
        fds[count++] = {listenFd_, POLLIN, 0};
        int tcp_slot = -1;
        if (tcpListenFd_ >= 0) {
            tcp_slot = static_cast<int>(count);
            fds[count++] = {tcpListenFd_, POLLIN, 0};
        }
        fds[count++] = {signal_util::shutdownFd(), POLLIN, 0};
        fds[count++] = {stopFds_[0], POLLIN, 0};
        int ready = ::poll(fds, count, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            serviceError(std::string("poll: ") + std::strerror(errno));
        }
        if (fds[count - 1].revents & POLLIN ||
            fds[count - 2].revents & POLLIN)
            break;
        int accept_fd = -1;
        bool framed = false;
        if (fds[0].revents & POLLIN) {
            accept_fd = listenFd_;
        } else if (tcp_slot >= 0 && (fds[tcp_slot].revents & POLLIN)) {
            accept_fd = tcpListenFd_;
            framed = true;
        } else {
            continue;
        }
        int fd = ::accept(accept_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            serviceError(std::string("accept: ") +
                         std::strerror(errno));
        }
        if (options_.once) {
            handleConnection(fd, framed);
            break;
        }
        std::lock_guard<std::mutex> lock(threadsMutex_);
        threads_.emplace_back(
            [this, fd, framed] { handleConnection(fd, framed); });
    }
    // New connections are refused from here on; wake every connection
    // thread (they poll the stop pipe) and wait for them to finish.
    requestStop();
    {
        std::lock_guard<std::mutex> lock(threadsMutex_);
        for (std::thread &thread : threads_)
            if (thread.joinable())
                thread.join();
        threads_.clear();
    }
    inform("bfsimd: shutting down");
    harness::drainAbandonedPools(2.0);
    return 0;
}

void
Daemon::handleConnection(int fd, bool framed)
{
    std::unique_ptr<Channel> channel;
    std::string hello = "{\"type\": \"hello\", \"service\": "
                        "\"bfsimd\", \"version\": 1, \"pid\": " +
                        std::to_string(::getpid());
    if (framed) {
        // The framed hello advertises this daemon's job capacity so a
        // coordinator knows how many WireJobs to keep in flight here.
        channel = std::make_unique<TcpChannel>(*this, fd);
        hello += ", \"workers\": " +
                 std::to_string(resolvedWorkers()) + "}";
    } else {
        channel = std::make_unique<UnixChannel>(fd, stopFds_[0]);
        hello += "}";
    }
    channel->sendLine(hello);

    SweepRequest request;
    bool in_sweep = false;
    std::string line;
    while (channel->readLine(line)) {
        std::vector<std::string> tokens = splitTokens(line);
        if (tokens.empty())
            continue;
        const std::string &command = tokens[0];
        try {
            if (command == "ping") {
                channel->sendLine("{\"type\": \"pong\"}");
            } else if (command == "shutdown") {
                channel->sendLine("{\"type\": \"bye\"}");
                requestStop();
                break;
            } else if (command == "sweep") {
                request = SweepRequest{};
                request.batch.isolate = options_.isolate;
                in_sweep = true;
                sendOk(*channel, "sweep");
            } else if (command == "opt") {
                if (!in_sweep)
                    serviceError("opt outside a sweep (send 'sweep' "
                                 "first)");
                if (tokens.size() != 3)
                    serviceError("opt expects: opt <key> <value>");
                applyOption(request, tokens[1], tokens[2]);
                sendOk(*channel, "opt");
            } else if (command == "job") {
                if (!in_sweep)
                    serviceError("job outside a sweep (send 'sweep' "
                                 "first)");
                addJob(request, tokens);
                sendOk(*channel, "job",
                       ", \"index\": " +
                           std::to_string(request.jobs.size() - 1));
            } else if (command == "run") {
                if (!in_sweep)
                    serviceError("run outside a sweep (send 'sweep' "
                                 "first)");
                if (request.jobs.empty())
                    serviceError("run with no jobs");
                {
                    // One sweep at a time daemon-wide; a connection
                    // already serving remote jobs holds the slot.
                    std::unique_lock<std::mutex> sweep_lock;
                    if (!channel->holdsSweepLock())
                        sweep_lock =
                            std::unique_lock<std::mutex>(sweepMutex_);
                    runSweep(*channel, request, options_,
                             resolvedWorkers(), stopFds_[0]);
                }
                in_sweep = false;
                if (signal_util::shutdownRequested()) {
                    requestStop();
                    break;
                }
            } else {
                serviceError("unknown command '" + command + "'");
            }
        } catch (const SimError &error) {
            sendError(*channel, error.message());
        }
        if (channel->peerGone())
            break;
    }
    channel.reset(); // drains remote jobs before the fd closes
    if (!framed)
        ::close(fd); // TcpChannel's FramedConn owns and closes its fd
}

} // namespace bfsim::service
