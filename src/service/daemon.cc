#include "service/daemon.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <utility>

#include "common/log.hh"
#include "common/signal_util.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"
#include "service/protocol.hh"

namespace bfsim::service {

namespace {

[[noreturn]] void
serviceError(const std::string &message)
{
    throw SimError("service", message);
}

/**
 * Line-oriented writer over a connection. A peer that disconnected
 * mid-sweep turns every later write into a silent no-op (the sweep
 * must finish and journal regardless of whether anyone is watching).
 */
class LineWriter
{
  public:
    explicit LineWriter(int fd) : fd(fd) {}

    void
    sendLine(const std::string &text)
    {
        if (gone)
            return;
        std::string line = text;
        line.push_back('\n');
        std::size_t sent = 0;
        while (sent < line.size()) {
            ssize_t n = ::write(fd, line.data() + sent,
                                line.size() - sent);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                gone = true;
                return;
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    bool clientGone() const { return gone; }

  private:
    int fd;
    bool gone = false;
};

/** Buffered line reader that also watches the shutdown self-pipe. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd(fd) {}

    /**
     * Read the next newline-terminated line. Returns false on peer
     * EOF, error, or a shutdown signal arriving while idle.
     */
    bool
    readLine(std::string &line)
    {
        for (;;) {
            std::size_t pos = buffer.find('\n');
            if (pos != std::string::npos) {
                line = buffer.substr(0, pos);
                if (!line.empty() && line.back() == '\r')
                    line.pop_back();
                buffer.erase(0, pos + 1);
                return true;
            }
            struct pollfd fds[2];
            fds[0] = {fd, POLLIN, 0};
            fds[1] = {signal_util::shutdownFd(), POLLIN, 0};
            int ready = ::poll(fds, 2, -1);
            if (ready < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (fds[1].revents & POLLIN)
                return false;
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            if (n == 0)
                return false;
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd;
    std::string buffer;
};

std::string
isolateName(harness::IsolateMode mode)
{
    return mode == harness::IsolateMode::Process ? "process" : "none";
}

void
sendError(LineWriter &writer, const std::string &message)
{
    writer.sendLine("{\"type\": \"error\", \"message\": \"" +
                    jsonEscape(message) + "\"}");
}

void
sendOk(LineWriter &writer, const std::string &command,
       const std::string &extra = {})
{
    writer.sendLine("{\"type\": \"ok\", \"command\": \"" + command +
                    "\"" + extra + "}");
}

/** The headline metric of a finished item, by job shape. */
double
itemValue(const harness::BatchItem &item)
{
    switch (item.kind) {
      case harness::BatchJob::Kind::Single:
        return item.single ? item.single->core.ipc : 0.0;
      case harness::BatchJob::Kind::Mix:
        return item.mix ? item.mix->weightedSpeedup : 0.0;
      case harness::BatchJob::Kind::Custom:
        return item.value;
    }
    return 0.0;
}

std::string
itemLine(const harness::BatchItem &item, std::size_t done,
         std::size_t total)
{
    std::ostringstream out;
    out.precision(17);
    out << "{\"type\": \"job\", \"done\": " << done << ", \"total\": "
        << total << ", \"label\": \"" << jsonEscape(item.label)
        << "\", \"failed\": " << (item.failed ? "true" : "false")
        << ", \"cached\": " << (item.cached ? "true" : "false")
        << ", \"journaled\": " << (item.journaled ? "true" : "false")
        << ", \"crashes\": " << item.crashes << ", \"attempts\": "
        << item.attempts << ", \"value\": " << itemValue(item)
        << ", \"seconds\": " << item.seconds;
    if (item.failed)
        out << ", \"error\": \"" << jsonEscape(item.error) << "\"";
    out << "}";
    return out.str();
}

/** Execute an accumulated request, streaming progress to the client. */
void
runSweep(LineWriter &writer, SweepRequest &request,
         const DaemonOptions &daemon)
{
    harness::BatchOptions batch = request.batch;
    batch.journalDir = journalDirFor(daemon.journalRoot, request);
    unsigned workers = request.workers ? request.workers
                                       : daemon.workers;
    std::ostringstream start;
    start << "{\"type\": \"start\", \"jobs\": " << request.jobs.size()
          << ", \"isolate\": \"" << isolateName(batch.isolate)
          << "\", \"journal\": \"" << jsonEscape(batch.journalDir)
          << "\"}";
    writer.sendLine(start.str());

    harness::BatchResult result = harness::runBatch(
        request.jobs, workers,
        [&writer](const harness::BatchItem &item, std::size_t done,
                  std::size_t total) {
            writer.sendLine(itemLine(item, done, total));
        },
        batch);

    std::ostringstream done;
    done.precision(17);
    done << "{\"type\": \"done\", \"total\": " << result.items.size()
         << ", \"failures\": " << result.failures()
         << ", \"journaled\": " << result.journaled()
         << ", \"isolate\": \"" << isolateName(result.isolate)
         << "\", \"interrupted\": "
         << (signal_util::shutdownRequested() ? "true" : "false")
         << ", \"wall_seconds\": " << result.wallSeconds << "}";
    writer.sendLine(done.str());
}

} // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {}

Daemon::~Daemon()
{
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (bound_)
        ::unlink(options_.socketPath.c_str());
}

void
Daemon::bind()
{
    if (options_.socketPath.empty())
        serviceError("bfsimd needs a socket path");
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    if (options_.socketPath.size() >= sizeof addr.sun_path)
        serviceError("socket path too long: " + options_.socketPath);
    std::strncpy(addr.sun_path, options_.socketPath.c_str(),
                 sizeof addr.sun_path - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        serviceError(std::string("socket: ") + std::strerror(errno));
    // The daemon owns its path: a leftover socket file from a crashed
    // previous instance would make bind fail, so remove it first.
    ::unlink(options_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof addr) < 0)
        serviceError("bind " + options_.socketPath + ": " +
                     std::strerror(errno));
    bound_ = true;
    if (::listen(listenFd_, 8) < 0)
        serviceError(std::string("listen: ") + std::strerror(errno));
}

int
Daemon::serve()
{
    signal_util::installShutdownHandlers();
    inform("bfsimd: listening on " + options_.socketPath +
           " (isolate=" + isolateName(options_.isolate) +
           (options_.journalRoot.empty()
                ? std::string(", journaling disabled")
                : ", journal root " + options_.journalRoot) +
           ")");
    for (;;) {
        if (signal_util::shutdownRequested())
            break;
        struct pollfd fds[2];
        fds[0] = {listenFd_, POLLIN, 0};
        fds[1] = {signal_util::shutdownFd(), POLLIN, 0};
        int ready = ::poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            serviceError(std::string("poll: ") + std::strerror(errno));
        }
        if (fds[1].revents & POLLIN)
            break;
        if (!(fds[0].revents & POLLIN))
            continue;
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            serviceError(std::string("accept: ") +
                         std::strerror(errno));
        }
        bool keep_serving = handleConnection(fd);
        ::close(fd);
        if (!keep_serving || options_.once)
            break;
    }
    inform("bfsimd: shutting down");
    harness::drainAbandonedPools(2.0);
    return 0;
}

bool
Daemon::handleConnection(int fd)
{
    LineWriter writer(fd);
    LineReader reader(fd);
    writer.sendLine("{\"type\": \"hello\", \"service\": \"bfsimd\", "
                    "\"version\": 1, \"pid\": " +
                    std::to_string(::getpid()) + "}");

    SweepRequest request;
    bool in_sweep = false;
    std::string line;
    while (reader.readLine(line)) {
        std::vector<std::string> tokens = splitTokens(line);
        if (tokens.empty())
            continue;
        const std::string &command = tokens[0];
        try {
            if (command == "ping") {
                writer.sendLine("{\"type\": \"pong\"}");
            } else if (command == "shutdown") {
                writer.sendLine("{\"type\": \"bye\"}");
                return false;
            } else if (command == "sweep") {
                request = SweepRequest{};
                request.batch.isolate = options_.isolate;
                in_sweep = true;
                sendOk(writer, "sweep");
            } else if (command == "opt") {
                if (!in_sweep)
                    serviceError("opt outside a sweep (send 'sweep' "
                                 "first)");
                if (tokens.size() != 3)
                    serviceError("opt expects: opt <key> <value>");
                applyOption(request, tokens[1], tokens[2]);
                sendOk(writer, "opt");
            } else if (command == "job") {
                if (!in_sweep)
                    serviceError("job outside a sweep (send 'sweep' "
                                 "first)");
                addJob(request, tokens);
                sendOk(writer, "job",
                       ", \"index\": " +
                           std::to_string(request.jobs.size() - 1));
            } else if (command == "run") {
                if (!in_sweep)
                    serviceError("run outside a sweep (send 'sweep' "
                                 "first)");
                if (request.jobs.empty())
                    serviceError("run with no jobs");
                runSweep(writer, request, options_);
                in_sweep = false;
                if (signal_util::shutdownRequested())
                    return false;
            } else {
                serviceError("unknown command '" + command + "'");
            }
        } catch (const SimError &error) {
            sendError(writer, error.message());
        }
        if (writer.clientGone())
            return true;
    }
    // EOF mid-request: the client went away; keep serving others
    // unless a shutdown signal is what broke the read.
    return !signal_util::shutdownRequested();
}

} // namespace bfsim::service
