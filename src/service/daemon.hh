/**
 * @file
 * bfsimd: the crash-resilient sweep service.
 *
 * A long-lived daemon that accepts sweep requests over a Unix-domain
 * stream socket and (with --listen) a framed TCP socket (protocol:
 * service/protocol.hh, transport: service/transport.hh), executes each
 * sweep through harness::runBatch — by default with the
 * process-isolated backend (harness/process_pool.hh), so a segfaulting
 * or wedged job costs one forked worker, never the daemon — and
 * streams per-job progress back as JSON lines.
 *
 * Crash resilience is end to end: every completed job is journaled
 * (harness/journal.hh) under a directory derived from the request's
 * canonical identity, so a daemon that is SIGKILL'd mid-sweep and
 * restarted resumes the re-submitted sweep from the journal with zero
 * recomputed jobs. The journal composes with the in-process memo cache
 * and the on-disk trace store: restored results are adopted into the
 * memo cache exactly as freshly computed ones are.
 *
 * Connection model: concurrent — each accepted connection is served on
 * its own thread. Command traffic (ping, request building) interleaves
 * freely; sweep *execution* is serialized daemon-wide, so two clients
 * that both send `run` queue behind one another rather than contending
 * for cores. A client that disconnects mid-sweep does NOT cancel it —
 * the daemon finishes and journals the sweep, and the client can
 * reconnect and re-submit to collect the results instantly.
 *
 * TCP peers additionally speak three framed dialects over the same
 * connection (service/transport.hh):
 *  - WireJob/WireResult: a sharding coordinator ships individual jobs;
 *    this daemon runs each through harness::runJobAttempts on a
 *    per-connection worker pool and streams results back as they
 *    finish (its hello advertises the pool capacity);
 *  - StoreGet/StorePut: remote trace-store tier — peers fetch and
 *    publish trace artifacts against this daemon's --trace-dir
 *    (sim/trace_store.hh server half, exactly-once under flock).
 *
 * With --coordinate, `run` does not simulate locally at all: the job
 * list is sharded across the listed worker daemons with pull-based
 * work-stealing (service/coordinator.hh).
 *
 * SIGINT/SIGTERM drain gracefully (in-flight jobs finish and are
 * journaled); a second signal aborts in-flight work. The `shutdown`
 * command stops only this daemon instance (a private stop pipe, not
 * the process-wide signal latch), so several daemons can share one
 * process in tests.
 */

#ifndef BFSIM_SERVICE_DAEMON_HH_
#define BFSIM_SERVICE_DAEMON_HH_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/batch.hh"

namespace bfsim::service {

/** Configuration of one bfsimd instance. */
struct DaemonOptions
{
    /** Unix-domain socket path to bind (required). */
    std::string socketPath;
    /**
     * Root directory for per-sweep journals ("" disables journaling).
     * Each sweep journals under `<root>/sweep-<16 hex>` keyed by its
     * canonical request identity (protocol.hh journalDirFor).
     */
    std::string journalRoot;
    /** Default worker count (0 = hardware concurrency). */
    unsigned workers = 0;
    /** Default execution backend for sweeps (requests may override). */
    harness::IsolateMode isolate = harness::IsolateMode::Process;
    /** Serve exactly one connection, then exit (tests, one-shot CI). */
    bool once = false;
    /**
     * TCP listen spec "host:port" ("" = Unix socket only; port 0 binds
     * an ephemeral port — see Daemon::boundPort / portFile).
     */
    std::string listenSpec;
    /** File to write the bound TCP port into after listen ("" = none;
     * how scripts discover an ephemeral --listen port). */
    std::string portFile;
    /**
     * Worker daemon endpoints ("host:port") for sharded sweeps. When
     * non-empty, `run` dispatches through the coordinator instead of
     * simulating locally.
     */
    std::vector<std::string> coordinators;
};

/** The bfsimd service loop. */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Create, bind and listen on the Unix socket (unlinking any stale
     * file at the path first) and, when configured, the TCP socket.
     * Throws SimError("service") on failure.
     */
    void bind();

    /**
     * Accept and serve connections until a shutdown signal, a
     * `shutdown` command (or, with DaemonOptions::once, until the first
     * connection closes). Returns the process exit status (0 on clean
     * shutdown).
     */
    int serve();

    /** TCP port actually bound (after bind(); 0 when not listening). */
    std::uint16_t boundPort() const { return boundPort_; }

    /** Stop serve() from another thread (what `shutdown` uses). */
    void requestStop();

  private:
    friend class TcpChannel;

    /** Serve one accepted connection (runs on its own thread). */
    void handleConnection(int fd, bool framed);

    unsigned resolvedWorkers() const;

    DaemonOptions options_;
    int listenFd_ = -1;
    int tcpListenFd_ = -1;
    std::uint16_t boundPort_ = 0;
    bool bound_ = false;
    /** Self-pipe waking this daemon's loops on `shutdown`. */
    int stopFds_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};
    /** Serializes sweep execution (and remote-job serving) daemon-wide:
     * concurrent in-process jobs must never overlap a process-pool
     * fork, and two sweeps would contend for every core anyway. */
    std::mutex sweepMutex_;
    std::mutex threadsMutex_;
    std::vector<std::thread> threads_;
};

} // namespace bfsim::service

#endif // BFSIM_SERVICE_DAEMON_HH_
