/**
 * @file
 * bfsimd: the crash-resilient sweep service.
 *
 * A long-lived daemon that accepts sweep requests over a Unix-domain
 * stream socket (protocol: service/protocol.hh), executes each sweep
 * through harness::runBatch — by default with the process-isolated
 * backend (harness/process_pool.hh), so a segfaulting or wedged job
 * costs one forked worker, never the daemon — and streams per-job
 * progress back as JSON lines.
 *
 * Crash resilience is end to end: every completed job is journaled
 * (harness/journal.hh) under a directory derived from the request's
 * canonical identity, so a daemon that is SIGKILL'd mid-sweep and
 * restarted resumes the re-submitted sweep from the journal with zero
 * recomputed jobs. The journal composes with the in-process memo cache
 * and the on-disk trace store: restored results are adopted into the
 * memo cache exactly as freshly computed ones are.
 *
 * Connection model: one client at a time (accepted connections queue in
 * the listen backlog). A client that disconnects mid-sweep does NOT
 * cancel it — the daemon finishes and journals the sweep, and the
 * client can reconnect and re-submit to collect the results instantly.
 * SIGINT/SIGTERM drain gracefully (in-flight jobs finish and are
 * journaled); a second signal aborts in-flight work.
 */

#ifndef BFSIM_SERVICE_DAEMON_HH_
#define BFSIM_SERVICE_DAEMON_HH_

#include <string>

#include "harness/batch.hh"

namespace bfsim::service {

/** Configuration of one bfsimd instance. */
struct DaemonOptions
{
    /** Unix-domain socket path to bind (required). */
    std::string socketPath;
    /**
     * Root directory for per-sweep journals ("" disables journaling).
     * Each sweep journals under `<root>/sweep-<16 hex>` keyed by its
     * canonical request identity (protocol.hh journalDirFor).
     */
    std::string journalRoot;
    /** Default worker count (0 = hardware concurrency). */
    unsigned workers = 0;
    /** Default execution backend for sweeps (requests may override). */
    harness::IsolateMode isolate = harness::IsolateMode::Process;
    /** Serve exactly one connection, then exit (tests, one-shot CI). */
    bool once = false;
};

/** The bfsimd service loop. */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions options);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /**
     * Create, bind and listen on the socket (unlinking any stale file
     * at the path first). Throws SimError("service") on failure.
     */
    void bind();

    /**
     * Accept and serve connections until a shutdown signal (or, with
     * DaemonOptions::once, until the first connection closes). Returns
     * the process exit status (0 on clean shutdown).
     */
    int serve();

  private:
    /** Serve one accepted connection; returns false to stop serving. */
    bool handleConnection(int fd);

    DaemonOptions options_;
    int listenFd_ = -1;
    bool bound_ = false;
};

} // namespace bfsim::service

#endif // BFSIM_SERVICE_DAEMON_HH_
