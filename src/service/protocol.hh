/**
 * @file
 * Wire protocol of the bfsimd sweep daemon (see service/daemon.hh).
 *
 * Requests are plain text lines; responses are JSON objects, one per
 * line, so any stdlib-only client (tools/bfsimd_client.py) can speak it
 * without a serialization dependency. A sweep is built incrementally:
 *
 *     sweep                          # begin a new request
 *     opt instructions 200000        # applies to *subsequent* job lines
 *     opt retries 1
 *     job single mcf bfetch [label]  # one single-core point
 *     job mix mcf,lbm stride [label] # one multiprogrammed point
 *     run                            # execute, stream progress
 *
 * plus the connection-level commands `ping` (liveness) and `shutdown`
 * (stop the daemon). Each accepted line is answered with
 * {"type":"ok",...} (or {"type":"error","message":...}); `run` streams
 * {"type":"start"}, one {"type":"job"} per completed point and a
 * final {"type":"done"} summary.
 *
 * This header is the parsing half: it turns request lines into
 * harness::BatchJob vectors and computes the canonical request key the
 * daemon uses to derive a stable per-sweep journal directory, so a
 * re-submitted identical sweep resumes from the journal of the
 * previous (possibly killed) attempt.
 */

#ifndef BFSIM_SERVICE_PROTOCOL_HH_
#define BFSIM_SERVICE_PROTOCOL_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "harness/batch.hh"
#include "harness/experiment.hh"

namespace bfsim::service {

/** One sweep request under construction over a connection. */
struct SweepRequest
{
    /** Points accumulated by `job` lines, in submission order. */
    std::vector<harness::BatchJob> jobs;
    /** Failure policy; `opt` lines override the env-seeded defaults. */
    harness::BatchOptions batch = harness::BatchOptions::fromEnv();
    /** Snapshot applied to each subsequent `job` line. */
    harness::RunOptions run{};
    /** Worker count for the sweep (0 = daemon default). */
    unsigned workers = 0;
    /**
     * Priority applied to each subsequent `job` line (higher first in
     * the sharded coordinator's dispatch queue; a scheduling hint, not
     * part of the request's canonical identity).
     */
    int priority = 0;
};

/** Whitespace-split tokens of one request line (empty for blanks). */
std::vector<std::string> splitTokens(const std::string &line);

/**
 * Apply one `opt <key> <value>` pair. Keys: instructions, width, rob,
 * predictor, sample, retries, fail-fast, deadline, poison, heartbeat,
 * isolate (process|none), workers, priority. Throws
 * SimError("protocol") on an unknown key or unparsable value.
 */
void applyOption(SweepRequest &request, const std::string &key,
                 const std::string &value);

/**
 * Append the job described by an already-tokenized
 * `job single|mix <workloads> <prefetcher> [label]` line, snapshotting
 * the request's current RunOptions. Workload names and the prefetcher
 * spec are validated here so a typo fails the `job` line, not the
 * whole sweep. Throws SimError("protocol") on malformed input.
 */
void addJob(SweepRequest &request,
            const std::vector<std::string> &tokens);

/**
 * Canonical identity of the request: the journal jobKeyStrings of all
 * jobs, newline-joined. Two textually different request scripts that
 * produce the same points (same order) share an identity.
 */
std::string canonicalKey(const SweepRequest &request);

/**
 * Stable per-sweep journal directory: `root/sweep-<16 hex>` where the
 * hex is FNV-1a-64 of canonicalKey. Empty when `root` is empty
 * (journaling disabled).
 */
std::string journalDirFor(const std::string &root,
                          const SweepRequest &request);

/** JSON string-escape (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &text);

/** Human name of an execution backend, for status lines. */
std::string isolateName(harness::IsolateMode mode);

/** The headline metric of a finished item, by job shape. */
double itemValue(const harness::BatchItem &item);

/**
 * The {"type":"job",...} progress line streamed per finished point.
 * Shared by the local sweep path and the sharded coordinator so a
 * client sees byte-identical lines whichever executed the sweep.
 */
std::string itemLine(const harness::BatchItem &item, std::size_t done,
                     std::size_t total);

} // namespace bfsim::service

#endif // BFSIM_SERVICE_PROTOCOL_HH_
