/**
 * @file
 * bfsimd entry point. Flags (env fallbacks in parentheses):
 *
 *   --socket=PATH        Unix socket to bind (BFSIMD_SOCKET; required)
 *   --listen=HOST:PORT   also accept framed TCP peers (port 0 binds an
 *                        ephemeral port; see --port-file)
 *   --port-file=PATH     write the bound TCP port here after listen
 *   --coordinate=LIST    comma-separated worker daemon host:port
 *                        endpoints; sweeps are sharded across them
 *                        instead of simulated locally
 *   --remote-store=H:P   remote trace-store endpoint this process
 *                        fetches from / pushes to (BFSIM_REMOTE_STORE)
 *   --journal-root=DIR   per-sweep journal root (BFSIMD_JOURNAL_ROOT;
 *                        empty disables journaling)
 *   --workers=N          default sweep worker count (0 = hardware)
 *   --isolate=MODE       process (default) or none
 *   --trace-dir=DIR      on-disk trace store (BFSIM_TRACE_DIR); also
 *                        what StoreGet/StorePut peers are served from
 *   --once               serve one connection, then exit
 *   --quiet              suppress informational logging
 *
 * Exit status: 0 on clean shutdown (signal or `shutdown` command),
 * 1 on a startup error (bad flag, bind failure).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "service/daemon.hh"
#include "sim/trace_store.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket=PATH [--listen=HOST:PORT]\n"
        "          [--port-file=PATH] [--coordinate=HOST:PORT,...]\n"
        "          [--remote-store=HOST:PORT] [--journal-root=DIR]\n"
        "          [--workers=N] [--isolate=process|none]\n"
        "          [--trace-dir=DIR] [--once] [--quiet]\n",
        argv0);
}

std::vector<std::string>
splitEndpoints(const std::string &list)
{
    std::vector<std::string> endpoints;
    std::string current;
    for (char c : list) {
        if (c == ',') {
            if (!current.empty())
                endpoints.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        endpoints.push_back(current);
    return endpoints;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfsim;

    service::DaemonOptions options;
    if (const char *env = std::getenv("BFSIMD_SOCKET"))
        options.socketPath = env;
    if (const char *env = std::getenv("BFSIMD_JOURNAL_ROOT"))
        options.journalRoot = env;
    std::string trace_dir;
    std::string remote_store;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](std::size_t prefix) {
            return arg.substr(prefix);
        };
        if (arg.rfind("--socket=", 0) == 0) {
            options.socketPath = value(9);
        } else if (arg.rfind("--listen=", 0) == 0) {
            options.listenSpec = value(9);
        } else if (arg.rfind("--port-file=", 0) == 0) {
            options.portFile = value(12);
        } else if (arg.rfind("--coordinate=", 0) == 0) {
            options.coordinators = splitEndpoints(value(13));
        } else if (arg.rfind("--remote-store=", 0) == 0) {
            remote_store = value(15);
        } else if (arg.rfind("--journal-root=", 0) == 0) {
            options.journalRoot = value(15);
        } else if (arg.rfind("--workers=", 0) == 0) {
            options.workers = static_cast<unsigned>(
                std::strtoul(value(10).c_str(), nullptr, 10));
        } else if (arg.rfind("--isolate=", 0) == 0) {
            std::string mode = value(10);
            if (mode == "process") {
                options.isolate = harness::IsolateMode::Process;
            } else if (mode == "none") {
                options.isolate = harness::IsolateMode::None;
            } else {
                std::fprintf(stderr,
                             "--isolate expects 'process' or 'none', "
                             "got '%s'\n",
                             mode.c_str());
                return 1;
            }
        } else if (arg.rfind("--trace-dir=", 0) == 0) {
            trace_dir = value(12);
        } else if (arg == "--once") {
            options.once = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    if (options.socketPath.empty()) {
        usage(argv[0]);
        return 1;
    }
    setQuiet(quiet);
    if (!trace_dir.empty())
        sim::trace_store::setDirectory(trace_dir);
    if (!remote_store.empty())
        sim::trace_store::setRemoteEndpoint(remote_store);

    try {
        service::Daemon daemon(std::move(options));
        daemon.bind();
        return daemon.serve();
    } catch (const SimError &error) {
        std::fprintf(stderr, "bfsimd: %s\n", error.what());
        return 1;
    }
}
