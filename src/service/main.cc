/**
 * @file
 * bfsimd entry point. Flags (env fallbacks in parentheses):
 *
 *   --socket=PATH        Unix socket to bind (BFSIMD_SOCKET; required)
 *   --journal-root=DIR   per-sweep journal root (BFSIMD_JOURNAL_ROOT;
 *                        empty disables journaling)
 *   --workers=N          default sweep worker count (0 = hardware)
 *   --isolate=MODE       process (default) or none
 *   --trace-dir=DIR      on-disk trace store (BFSIM_TRACE_DIR)
 *   --once               serve one connection, then exit
 *   --quiet              suppress informational logging
 *
 * Exit status: 0 on clean shutdown (signal or `shutdown` command),
 * 1 on a startup error (bad flag, bind failure).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "common/sim_error.hh"
#include "service/daemon.hh"
#include "sim/trace_store.hh"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket=PATH [--journal-root=DIR] [--workers=N]\n"
        "          [--isolate=process|none] [--trace-dir=DIR] [--once]\n"
        "          [--quiet]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bfsim;

    service::DaemonOptions options;
    if (const char *env = std::getenv("BFSIMD_SOCKET"))
        options.socketPath = env;
    if (const char *env = std::getenv("BFSIMD_JOURNAL_ROOT"))
        options.journalRoot = env;
    std::string trace_dir;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](std::size_t prefix) {
            return arg.substr(prefix);
        };
        if (arg.rfind("--socket=", 0) == 0) {
            options.socketPath = value(9);
        } else if (arg.rfind("--journal-root=", 0) == 0) {
            options.journalRoot = value(15);
        } else if (arg.rfind("--workers=", 0) == 0) {
            options.workers = static_cast<unsigned>(
                std::strtoul(value(10).c_str(), nullptr, 10));
        } else if (arg.rfind("--isolate=", 0) == 0) {
            std::string mode = value(10);
            if (mode == "process") {
                options.isolate = harness::IsolateMode::Process;
            } else if (mode == "none") {
                options.isolate = harness::IsolateMode::None;
            } else {
                std::fprintf(stderr,
                             "--isolate expects 'process' or 'none', "
                             "got '%s'\n",
                             mode.c_str());
                return 1;
            }
        } else if (arg.rfind("--trace-dir=", 0) == 0) {
            trace_dir = value(12);
        } else if (arg == "--once") {
            options.once = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
            usage(argv[0]);
            return 1;
        }
    }
    if (options.socketPath.empty()) {
        usage(argv[0]);
        return 1;
    }
    setQuiet(quiet);
    if (!trace_dir.empty())
        sim::trace_store::setDirectory(trace_dir);

    try {
        service::Daemon daemon(std::move(options));
        daemon.bind();
        return daemon.serve();
    } catch (const SimError &error) {
        std::fprintf(stderr, "bfsimd: %s\n", error.what());
        return 1;
    }
}
