#include "service/transport.hh"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>

namespace bfsim::service {

FramedConn::~FramedConn()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
FramedConn::send(subprocess::FrameType type, const void *payload,
                 std::size_t len)
{
    std::lock_guard<std::mutex> lock(writeMutex_);
    if (gone_)
        return false;
    if (!subprocess::writeFrame(fd_, type, payload, len)) {
        gone_ = true;
        return false;
    }
    return true;
}

bool
FramedConn::sendLine(const std::string &text)
{
    return send(subprocess::FrameType::Line, text.data(), text.size());
}

int
FramedConn::read(subprocess::FrameType &type,
                 std::vector<unsigned char> &payload, int wakeFd1,
                 int wakeFd2, int timeoutMs)
{
    for (;;) {
        // Frames already decoded from earlier reads come first: a
        // single kernel read may have carried several.
        subprocess::Frame frame;
        if (decoder_.next(frame)) {
            type = frame.type;
            payload = std::move(frame.payload);
            return 1;
        }
        if (decoder_.corrupt())
            return -1;

        struct pollfd fds[3];
        nfds_t count = 0;
        fds[count++] = {fd_, POLLIN, 0};
        if (wakeFd1 >= 0)
            fds[count++] = {wakeFd1, POLLIN, 0};
        if (wakeFd2 >= 0)
            fds[count++] = {wakeFd2, POLLIN, 0};
        int ready = ::poll(fds, count, timeoutMs);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (ready == 0)
            return 0; // timeout
        for (nfds_t i = 1; i < count; ++i)
            if (fds[i].revents & POLLIN)
                return 0; // wake fd
        if (!(fds[0].revents & (POLLIN | POLLHUP | POLLERR)))
            continue;

        // The fd stays blocking (whole-frame writes depend on it), but
        // after POLLIN one read() never blocks; the decoder reassembles
        // whatever boundary the kernel delivered.
        unsigned char chunk[65536];
        ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (n == 0)
            return -1; // peer EOF
        decoder_.feed(chunk, static_cast<std::size_t>(n));
    }
}

int
dialPeer(const std::string &hostPort, double timeoutSeconds,
         std::string &why)
{
    std::string host;
    std::uint16_t port = 0;
    if (!subprocess::parseHostPort(hostPort, host, port)) {
        why = "malformed endpoint '" + hostPort +
              "' (expected host:port)";
        return -1;
    }
    return subprocess::dialTcp(host, port, timeoutSeconds, why);
}

} // namespace bfsim::service
