#include "service/coordinator.hh"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "common/signal_util.hh"
#include "common/sim_error.hh"
#include "harness/journal.hh"
#include "harness/wire.hh"
#include "service/transport.hh"

namespace bfsim::service {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point when)
{
    return std::chrono::duration<double>(Clock::now() - when).count();
}

/** Connect timeout to a worker daemon, and its hello wait. */
constexpr double connectTimeoutSeconds = 5.0;
/** Minimum age before an in-flight job is eligible for stealing. */
constexpr double stealAgeSeconds = 1.0;

/** One worker daemon the coordinator dispatches to. */
struct HostState
{
    std::string endpoint;
    std::unique_ptr<FramedConn> conn; // null once the host is dead
    /** Concurrent jobs the worker advertised (hello "workers"). */
    unsigned capacity = 1;
    /** Outstanding ordinals and their dispatch times. */
    std::map<std::size_t, Clock::time_point> inflight;
    std::uint64_t completedJobs = 0;

    bool alive() const { return conn != nullptr; }
};

class Coordinator
{
  public:
    Coordinator(const LineSink &sendLine, SweepRequest &request,
                const std::vector<std::string> &endpoints,
                const std::string &journalDir, unsigned localWorkers,
                int stopFd)
        : sendLine_(sendLine), request_(request),
          endpoints_(endpoints), localWorkers_(localWorkers),
          stopFd_(stopFd), journal_(journalDir),
          total_(request.jobs.size()), completedFlags_(total_, false)
    {}

    bool
    run()
    {
        Clock::time_point start_time = Clock::now();
        std::ostringstream start;
        start << "{\"type\": \"start\", \"jobs\": " << total_
              << ", \"isolate\": \"sharded\", \"journal\": \""
              << jsonEscape(journal_.directory())
              << "\", \"shards\": " << endpoints_.size() << "}";
        sendLine_(start.str());

        restoreFromJournal();
        connectHosts();

        while (completedCount_ < total_ && !interrupted()) {
            if (!anyHostAlive()) {
                localFallback();
                break;
            }
            refill();
            maybeSteal();
            pollHosts();
            checkDeadlines();
        }

        // Anything still unfinished after an interruption stays
        // uncomputed: the journal holds every completed job, so a
        // re-submission resumes with zero recompute.
        std::ostringstream done;
        done.precision(17);
        done << "{\"type\": \"done\", \"total\": " << emitted_
             << ", \"failures\": " << failures_
             << ", \"journaled\": " << restoredCount_
             << ", \"isolate\": \"sharded\", \"interrupted\": "
             << (interrupted() ? "true" : "false")
             << ", \"wall_seconds\": " << secondsSince(start_time)
             << "}";
        sendLine_(done.str());
        return !interrupted();
    }

  private:
    bool
    interrupted() const
    {
        return interrupted_ || signal_util::shutdownRequested();
    }

    const harness::BatchJob &
    jobAt(std::size_t ordinal) const
    {
        return request_.jobs[ordinal];
    }

    void
    shardEvent(const std::string &event, const std::string &host,
               const std::string &detail, long ordinal = -1)
    {
        std::ostringstream out;
        out << "{\"type\": \"shard-event\", \"event\": \"" << event
            << "\", \"host\": \"" << jsonEscape(host) << "\"";
        if (ordinal >= 0)
            out << ", \"ordinal\": " << ordinal;
        if (!detail.empty())
            out << ", \"detail\": \"" << jsonEscape(detail) << "\"";
        out << "}";
        sendLine_(out.str());
    }

    void
    shardStatus()
    {
        std::ostringstream out;
        out << "{\"type\": \"shard\", \"completed\": "
            << completedCount_ << ", \"total\": " << total_
            << ", \"pending\": " << pending_.size() << ", \"hosts\": [";
        bool first = true;
        for (const HostState &host : hosts_) {
            if (!first)
                out << ", ";
            first = false;
            out << "{\"endpoint\": \"" << jsonEscape(host.endpoint)
                << "\", \"alive\": " << (host.alive() ? "true" : "false")
                << ", \"inflight\": " << host.inflight.size()
                << ", \"done\": " << host.completedJobs << "}";
        }
        out << "]}";
        sendLine_(out.str());
        lastStatus_ = Clock::now();
    }

    /** Insert an ordinal into the pending queue at its policy slot. */
    void
    enqueuePending(std::size_t ordinal)
    {
        auto before = [this](std::size_t a, std::size_t b) {
            int pa = jobAt(a).priority, pb = jobAt(b).priority;
            return pa != pb ? pa > pb : a < b;
        };
        pending_.insert(std::lower_bound(pending_.begin(),
                                         pending_.end(), ordinal,
                                         before),
                        ordinal);
    }

    void
    restoreFromJournal()
    {
        for (std::size_t i = 0; i < total_; ++i) {
            harness::BatchItem item;
            if (journal_.restore(jobAt(i), item)) {
                complete(i, std::move(item));
            } else if (jobAt(i).kind ==
                       harness::BatchJob::Kind::Custom) {
                // Custom jobs carry an opaque closure and cannot cross
                // the wire; the line protocol never creates them, but
                // run one locally rather than failing if it appears.
                complete(i, harness::runJobAttempts(
                                jobAt(i), i + 1,
                                request_.batch.retries));
            } else {
                enqueuePending(i);
            }
        }
    }

    void
    connectHosts()
    {
        for (const std::string &endpoint : endpoints_) {
            HostState host;
            host.endpoint = endpoint;
            std::string why;
            int fd = dialPeer(endpoint, connectTimeoutSeconds, why);
            if (fd < 0) {
                warn("coordinator: cannot reach " + endpoint + ": " +
                     why);
                shardEvent("unreachable", endpoint, why);
            } else {
                host.conn = std::make_unique<FramedConn>(fd);
                shardEvent("connected", endpoint, "");
            }
            hosts_.push_back(std::move(host));
        }
        shardStatus();
    }

    bool
    anyHostAlive() const
    {
        for (const HostState &host : hosts_)
            if (host.alive())
                return true;
        return false;
    }

    unsigned
    assigneeCount(std::size_t ordinal) const
    {
        unsigned count = 0;
        for (const HostState &host : hosts_)
            count += host.inflight.count(ordinal) ? 1 : 0;
        return count;
    }

    void
    eraseInflightAll(std::size_t ordinal)
    {
        for (HostState &host : hosts_)
            host.inflight.erase(ordinal);
    }

    bool
    dispatch(HostState &host, std::size_t ordinal)
    {
        harness::wire::Writer w;
        w.u64(ordinal);
        w.u32(request_.batch.retries);
        harness::wire::encodeBatchJob(w, jobAt(ordinal));
        if (!host.conn->send(subprocess::FrameType::WireJob,
                             w.bytes().data(), w.bytes().size()))
            return false;
        host.inflight.emplace(ordinal, Clock::now());
        return true;
    }

    /** Keep every live host loaded up to its advertised capacity. */
    void
    refill()
    {
        for (HostState &host : hosts_) {
            if (!host.alive())
                continue;
            while (host.inflight.size() < host.capacity &&
                   !pending_.empty()) {
                std::size_t ordinal = pending_.front();
                pending_.erase(pending_.begin());
                if (!dispatch(host, ordinal)) {
                    enqueuePending(ordinal);
                    hostDeath(host, "send failed");
                    break;
                }
            }
        }
    }

    /**
     * Tail shedding: with nothing pending and an idle slot available,
     * duplicate-dispatch the oldest single-assignee in-flight ordinal
     * of the busiest host. First WireResult wins; the duplicate's is
     * dropped by the completed-flag check.
     */
    void
    maybeSteal()
    {
        if (!pending_.empty())
            return;
        for (HostState &thief : hosts_) {
            if (!thief.alive() ||
                thief.inflight.size() >= thief.capacity)
                continue;
            HostState *victim = nullptr;
            std::size_t target = 0;
            double oldest = stealAgeSeconds;
            for (HostState &other : hosts_) {
                if (&other == &thief || !other.alive())
                    continue;
                for (const auto &[ordinal, when] : other.inflight) {
                    double age = secondsSince(when);
                    if (age >= oldest &&
                        assigneeCount(ordinal) < 2 &&
                        !thief.inflight.count(ordinal)) {
                        victim = &other;
                        target = ordinal;
                        oldest = age;
                    }
                }
            }
            if (!victim)
                return; // nothing old enough anywhere; stop scanning
            if (dispatch(thief, target)) {
                shardEvent("steal", thief.endpoint,
                           "duplicated from " + victim->endpoint,
                           static_cast<long>(target));
            } else {
                hostDeath(thief, "send failed");
            }
        }
    }

    void
    pollHosts()
    {
        std::vector<struct pollfd> fds;
        std::vector<HostState *> owners;
        for (HostState &host : hosts_) {
            if (!host.alive())
                continue;
            fds.push_back({host.conn->fd(), POLLIN, 0});
            owners.push_back(&host);
        }
        std::size_t extras = fds.size();
        if (stopFd_ >= 0)
            fds.push_back({stopFd_, POLLIN, 0});
        if (signal_util::shutdownFd() >= 0)
            fds.push_back({signal_util::shutdownFd(), POLLIN, 0});

        int ready = ::poll(fds.data(),
                           static_cast<nfds_t>(fds.size()), 1000);
        if (ready < 0)
            return; // EINTR; the shutdown latch is checked by callers
        for (std::size_t i = extras; i < fds.size(); ++i) {
            if (fds[i].revents & POLLIN) {
                interrupted_ = true;
                return;
            }
        }
        for (std::size_t i = 0; i < extras; ++i) {
            if (!(fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            drainHost(*owners[i]);
        }
        if (secondsSince(lastStatus_) >= 1.0)
            shardStatus();
    }

    void
    drainHost(HostState &host)
    {
        for (;;) {
            subprocess::FrameType type;
            std::vector<unsigned char> payload;
            int rc = host.conn->read(type, payload, -1, -1, 0);
            if (rc == 0)
                return;
            if (rc < 0) {
                hostDeath(host, "connection lost");
                return;
            }
            if (!handleFrame(host, type, payload)) {
                hostDeath(host, "corrupt frame");
                return;
            }
        }
    }

    bool
    handleFrame(HostState &host, subprocess::FrameType type,
                const std::vector<unsigned char> &payload)
    {
        namespace wire = harness::wire;
        if (type == subprocess::FrameType::Line) {
            // The worker's hello advertises its capacity; every other
            // text line (command acks) is irrelevant to dispatch.
            std::string line(payload.begin(), payload.end());
            std::size_t at = line.find("\"workers\": ");
            if (at != std::string::npos) {
                unsigned workers = static_cast<unsigned>(
                    std::strtoul(line.c_str() + at + 11, nullptr, 10));
                if (workers > 0)
                    host.capacity = workers;
            }
            return true;
        }
        if (type != subprocess::FrameType::WireResult)
            return true; // ignore frame kinds a future worker may add
        try {
            wire::Reader r(payload);
            auto ordinal = static_cast<std::size_t>(r.u64());
            wire::DecodedItem decoded = wire::decodeBatchItem(r);
            if (ordinal >= total_)
                return false;
            if (host.inflight.erase(ordinal))
                ++host.completedJobs;
            if (completedFlags_[ordinal])
                return true; // steal loser: first result already won
            const harness::BatchJob &job = jobAt(ordinal);
            harness::BatchItem item = std::move(decoded.item);
            if (decoded.single) {
                item.single = &harness::adoptSingleResult(
                    job.workloads[0], job.prefetcher, job.options,
                    std::move(*decoded.single));
            } else if (decoded.mix) {
                item.mix = &harness::adoptMixResult(
                    job.workloads, job.prefetcher, job.options,
                    std::move(*decoded.mix));
            }
            complete(ordinal, std::move(item));
            return true;
        } catch (const SimError &) {
            return false; // corrupt result payload: treat host as lost
        }
    }

    void
    hostDeath(HostState &host, const std::string &why)
    {
        if (!host.alive())
            return;
        warn("coordinator: lost " + host.endpoint + " (" + why + ")");
        shardEvent("dead", host.endpoint, why);
        std::vector<std::size_t> orphans;
        for (const auto &[ordinal, when] : host.inflight)
            orphans.push_back(ordinal);
        host.inflight.clear();
        host.conn.reset();
        for (std::size_t ordinal : orphans) {
            if (completedFlags_[ordinal] || assigneeCount(ordinal) > 0)
                continue; // done, or a duplicate is still running it
            requeue(host.endpoint, ordinal);
        }
    }

    /** A worker died with this ordinal in flight: retry or quarantine,
     * mirroring the process-pool crash policy at fleet scale. */
    void
    requeue(const std::string &endpoint, std::size_t ordinal)
    {
        unsigned crashes = ++crashes_[ordinal];
        if (crashes >= request_.batch.poisonThreshold) {
            shardEvent("poison", endpoint, "", static_cast<long>(ordinal));
            harness::BatchItem item;
            item.label = jobAt(ordinal).label;
            item.kind = jobAt(ordinal).kind;
            item.failed = true;
            item.attempts = crashes;
            item.error = "job killed " + std::to_string(crashes) +
                         " worker daemon(s); quarantined as poison";
            complete(ordinal, std::move(item));
            return;
        }
        shardEvent("requeue", endpoint, "", static_cast<long>(ordinal));
        enqueuePending(ordinal);
    }

    void
    checkDeadlines()
    {
        double deadline = request_.batch.jobDeadlineSeconds;
        if (deadline <= 0.0)
            return;
        std::map<std::size_t, double> youngest;
        for (const HostState &host : hosts_)
            for (const auto &[ordinal, when] : host.inflight) {
                double age = secondsSince(when);
                auto [it, fresh] = youngest.emplace(ordinal, age);
                if (!fresh && age < it->second)
                    it->second = age;
            }
        for (const auto &[ordinal, age] : youngest) {
            if (age <= deadline || completedFlags_[ordinal])
                continue;
            // Every assignee has held it past the deadline: fail the
            // job like the local deadline policy, and drop whichever
            // result eventually straggles in.
            eraseInflightAll(ordinal);
            shardEvent("deadline", "", "", static_cast<long>(ordinal));
            harness::BatchItem item;
            item.label = jobAt(ordinal).label;
            item.kind = jobAt(ordinal).kind;
            item.failed = true;
            item.error = "job deadline (" + std::to_string(deadline) +
                         "s) exceeded on every assigned worker";
            complete(ordinal, std::move(item));
        }
    }

    /** Every worker is gone: finish the sweep in this process. */
    void
    localFallback()
    {
        std::vector<harness::BatchJob> rest;
        std::vector<std::size_t> ordinals;
        for (std::size_t i = 0; i < total_; ++i) {
            if (!completedFlags_[i]) {
                rest.push_back(jobAt(i));
                ordinals.push_back(i);
            }
        }
        if (rest.empty())
            return;
        shardEvent("fallback", "local",
                   std::to_string(rest.size()) + " job(s) run locally");
        harness::BatchOptions batch = request_.batch;
        // complete() journals each result as it lands; running the
        // batch with its own journal would double-write the records.
        batch.journalDir.clear();
        harness::runBatch(
            rest, localWorkers_,
            [&](const harness::BatchItem &item, std::size_t, std::size_t) {
                complete(ordinals[item.index],
                         harness::BatchItem(item));
            },
            batch);
    }

    void
    complete(std::size_t ordinal, harness::BatchItem item)
    {
        if (completedFlags_[ordinal])
            return;
        completedFlags_[ordinal] = true;
        ++completedCount_;
        eraseInflightAll(ordinal);
        item.index = ordinal;
        auto crash = crashes_.find(ordinal);
        if (crash != crashes_.end())
            item.crashes = std::max(item.crashes, crash->second);
        if (item.failed)
            ++failures_;
        if (item.journaled)
            ++restoredCount_;
        else if (!item.failed)
            journal_.append(jobAt(ordinal), item);
        ready_.emplace(ordinal, std::move(item));
        // Strict submission-order emission: buffer until this ordinal
        // is next, so the client's merged stream is line-for-line
        // comparable with a serial local sweep.
        while (true) {
            auto it = ready_.find(nextEmit_);
            if (it == ready_.end())
                break;
            sendLine_(itemLine(it->second, ++emitted_, total_));
            ready_.erase(it);
            ++nextEmit_;
        }
    }

    const LineSink &sendLine_;
    SweepRequest &request_;
    const std::vector<std::string> &endpoints_;
    unsigned localWorkers_;
    int stopFd_;
    harness::SweepJournal journal_;

    std::size_t total_;
    std::vector<bool> completedFlags_;
    std::vector<std::size_t> pending_;
    std::vector<HostState> hosts_;
    std::map<std::size_t, unsigned> crashes_;
    std::map<std::size_t, harness::BatchItem> ready_;
    std::size_t nextEmit_ = 0;
    std::size_t emitted_ = 0;
    std::size_t completedCount_ = 0;
    std::size_t failures_ = 0;
    std::size_t restoredCount_ = 0;
    bool interrupted_ = false;
    Clock::time_point lastStatus_ = Clock::now();
};

} // namespace

bool
runShardedSweep(const LineSink &sendLine, SweepRequest &request,
                const std::vector<std::string> &endpoints,
                const std::string &journalDir, unsigned localWorkers,
                int stopFd)
{
    Coordinator coordinator(sendLine, request, endpoints, journalDir,
                            localWorkers, stopFd);
    return coordinator.run();
}

} // namespace bfsim::service
