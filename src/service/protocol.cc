#include "service/protocol.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "branch/registry.hh"
#include "common/checksum.hh"
#include "common/sim_error.hh"
#include "harness/journal.hh"
#include "harness/sampling.hh"
#include "prefetch/registry.hh"
#include "workloads/workload.hh"

namespace bfsim::service {

namespace {

[[noreturn]] void
protocolError(const std::string &message)
{
    throw SimError("protocol", message);
}

std::uint64_t
parseCount(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    unsigned long long count = std::strtoull(value.c_str(), &end, 10);
    if (!end || *end != '\0' || value.empty())
        protocolError("opt " + key + " expects a non-negative integer, "
                      "got '" + value + "'");
    return count;
}

double
parseSeconds(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double seconds = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || value.empty() || seconds < 0.0)
        protocolError("opt " + key + " expects non-negative seconds, "
                      "got '" + value + "'");
    return seconds;
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : text) {
        if (c == ',') {
            if (!current.empty())
                parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        parts.push_back(current);
    return parts;
}

void
validateWorkload(const std::string &name)
{
    for (const auto &w : workloads::allWorkloads())
        if (w.name == name)
            return;
    protocolError("unknown workload '" + name + "'");
}

void
validatePrefetcher(const std::string &spec)
{
    try {
        prefetch::makeCorePrefetch(spec);
    } catch (const SimError &error) {
        protocolError("bad prefetcher spec: " + error.message());
    }
}

} // namespace

std::vector<std::string>
splitTokens(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty())
                tokens.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

void
applyOption(SweepRequest &request, const std::string &key,
            const std::string &value)
{
    if (key == "instructions") {
        std::uint64_t count = parseCount(key, value);
        if (count == 0)
            protocolError("opt instructions expects a positive count");
        request.run.instructions = count;
    } else if (key == "width") {
        std::uint64_t width = parseCount(key, value);
        if (width == 0 || width > 64)
            protocolError("opt width expects 1..64");
        request.run.width = static_cast<unsigned>(width);
    } else if (key == "rob") {
        std::uint64_t rob = parseCount(key, value);
        if (rob == 0)
            protocolError("opt rob expects a positive size");
        request.run.robSize = static_cast<unsigned>(rob);
    } else if (key == "predictor") {
        try {
            branch::makePredictor(value);
        } catch (const SimError &error) {
            protocolError("bad predictor spec: " + error.message());
        }
        request.run.predictor = value;
    } else if (key == "sample") {
        try {
            request.run.sample = harness::SampleConfig::parse(value);
        } catch (const SimError &error) {
            protocolError("bad sample spec: " + error.message());
        }
    } else if (key == "retries") {
        request.batch.retries =
            static_cast<unsigned>(parseCount(key, value));
    } else if (key == "fail-fast") {
        request.batch.failFast = value == "1" || value == "true";
    } else if (key == "deadline") {
        request.batch.jobDeadlineSeconds = parseSeconds(key, value);
    } else if (key == "poison") {
        std::uint64_t threshold = parseCount(key, value);
        if (threshold == 0)
            protocolError("opt poison expects a positive count");
        request.batch.poisonThreshold =
            static_cast<unsigned>(threshold);
    } else if (key == "heartbeat") {
        request.batch.heartbeatTimeoutSeconds =
            parseSeconds(key, value);
    } else if (key == "isolate") {
        if (value == "process")
            request.batch.isolate = harness::IsolateMode::Process;
        else if (value == "none" || value == "thread")
            request.batch.isolate = harness::IsolateMode::None;
        else
            protocolError("opt isolate expects 'process' or 'none', "
                          "got '" + value + "'");
    } else if (key == "workers") {
        request.workers = static_cast<unsigned>(parseCount(key, value));
    } else if (key == "priority") {
        char *end = nullptr;
        long priority = std::strtol(value.c_str(), &end, 10);
        if (!end || *end != '\0' || value.empty())
            protocolError("opt priority expects an integer, got '" +
                          value + "'");
        request.priority = static_cast<int>(priority);
    } else {
        protocolError("unknown option '" + key + "'");
    }
}

void
addJob(SweepRequest &request, const std::vector<std::string> &tokens)
{
    // tokens: ["job", "single"|"mix", workloads, prefetcher, [label]]
    if (tokens.size() < 4 || tokens.size() > 5)
        protocolError("job expects: job single|mix <workloads> "
                      "<prefetcher> [label]");
    const std::string &shape = tokens[1];
    const std::string &spec = tokens[3];
    std::string label = tokens.size() == 5 ? tokens[4] : std::string();
    validatePrefetcher(spec);
    if (shape == "single") {
        validateWorkload(tokens[2]);
        request.jobs.push_back(harness::BatchJob::single(
            tokens[2], spec, request.run, std::move(label)));
    } else if (shape == "mix") {
        std::vector<std::string> members = splitCommas(tokens[2]);
        if (members.size() < 2)
            protocolError("job mix expects at least two "
                          "comma-separated workloads");
        for (const std::string &name : members)
            validateWorkload(name);
        request.jobs.push_back(harness::BatchJob::mix(
            members, spec, request.run, std::move(label)));
    } else {
        protocolError("job expects 'single' or 'mix', got '" + shape +
                      "'");
    }
    request.jobs.back().priority = request.priority;
}

std::string
canonicalKey(const SweepRequest &request)
{
    std::string key;
    for (const harness::BatchJob &job : request.jobs) {
        key += harness::SweepJournal::jobKeyString(job);
        key += '\n';
    }
    return key;
}

std::string
journalDirFor(const std::string &root, const SweepRequest &request)
{
    if (root.empty())
        return {};
    std::string key = canonicalKey(request);
    Fnv1a64 hash;
    hash.update(key.data(), key.size());
    char stem[32];
    std::snprintf(stem, sizeof stem, "sweep-%016llx",
                  static_cast<unsigned long long>(hash.value()));
    return root + "/" + stem;
}

std::string
isolateName(harness::IsolateMode mode)
{
    return mode == harness::IsolateMode::Process ? "process" : "none";
}

double
itemValue(const harness::BatchItem &item)
{
    switch (item.kind) {
      case harness::BatchJob::Kind::Single:
        return item.single ? item.single->core.ipc : 0.0;
      case harness::BatchJob::Kind::Mix:
        return item.mix ? item.mix->weightedSpeedup : 0.0;
      case harness::BatchJob::Kind::Custom:
        return item.value;
    }
    return 0.0;
}

std::string
itemLine(const harness::BatchItem &item, std::size_t done,
         std::size_t total)
{
    std::ostringstream out;
    out.precision(17);
    out << "{\"type\": \"job\", \"done\": " << done << ", \"total\": "
        << total << ", \"label\": \"" << jsonEscape(item.label)
        << "\", \"failed\": " << (item.failed ? "true" : "false")
        << ", \"cached\": " << (item.cached ? "true" : "false")
        << ", \"journaled\": " << (item.journaled ? "true" : "false")
        << ", \"crashes\": " << item.crashes << ", \"attempts\": "
        << item.attempts << ", \"value\": " << itemValue(item)
        << ", \"seconds\": " << item.seconds;
    if (item.failed)
        out << ", \"error\": \"" << jsonEscape(item.error) << "\"";
    out << "}";
    return out.str();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace bfsim::service
