#include "mem/cache.hh"

#include <bit>

#include "common/hot_loop.hh"
#include "common/sim_error.hh"

namespace bfsim::mem {

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    BFSIM_CHECK(cfg.sizeBytes % (blockSizeBytes * cfg.associativity) ==
                    0,
                "cache",
                "cache '" + cfg.name + "' size not divisible by way "
                "size");
    sets = cfg.sizeBytes / (blockSizeBytes * cfg.associativity);
    BFSIM_CHECK(std::has_single_bit(sets), "cache",
                "cache '" + cfg.name + "' set count must be a power "
                "of two");
    setBits = static_cast<unsigned>(std::countr_zero(sets));
    fastIndex = hotLoopEnabled();
    if (fastIndex) {
        tags.assign(sets * cfg.associativity, invalidTag);
        lru.assign(sets * cfg.associativity, 0);
    }
    blocks.assign(sets * cfg.associativity, CacheBlock{});
}

std::size_t
Cache::setIndex(Addr addr) const
{
    Addr bn = blockNumber(addr);
    return fastIndex ? (bn & (sets - 1)) : (bn % sets);
}

Addr
Cache::tagOf(Addr addr) const
{
    Addr bn = blockNumber(addr);
    return fastIndex ? (bn >> setBits) : (bn / sets);
}

std::size_t
Cache::findWay(std::size_t base, Addr tag) const
{
    if (fastIndex) {
        for (unsigned way = 0; way < cfg.associativity; ++way) {
            if (tags[base + way] == tag)
                return base + way;
        }
        return npos;
    }
    // Reference mode: the pre-overhaul probe, striding through the
    // wide block records.
    for (unsigned way = 0; way < cfg.associativity; ++way) {
        const CacheBlock &blk = blocks[base + way];
        if (blk.valid && blk.tag == tag)
            return base + way;
    }
    return npos;
}

CacheBlock *
Cache::lookup(Addr addr)
{
    std::size_t idx =
        findWay(setIndex(addr) * cfg.associativity, tagOf(addr));
    if (idx == npos)
        return nullptr;
    if (fastIndex)
        lru[idx] = ++lruClock;
    else
        blocks[idx].lruStamp = ++lruClock;
    return &blocks[idx];
}

bool
Cache::contains(Addr addr) const
{
    return peek(addr) != nullptr;
}

const CacheBlock *
Cache::peek(Addr addr) const
{
    std::size_t idx =
        findWay(setIndex(addr) * cfg.associativity, tagOf(addr));
    return idx == npos ? nullptr : &blocks[idx];
}

CacheBlock *
Cache::insert(Addr addr, EvictInfo &evict)
{
    std::size_t set = setIndex(addr);
    std::size_t base = set * cfg.associativity;
    Addr tag = tagOf(addr);

    evict = EvictInfo{};

    // Victim priority in both modes: reuse an existing way for the
    // same tag (refill), else the first invalid way, else the
    // least-recently-used way (first minimum in way order).
    std::size_t victim = npos;
    bool evicting = false;
    if (fastIndex) {
        // One fused pass over the narrow tag/LRU arrays. The LRU
        // minimum is tracked alongside but only consulted when every
        // way turned out valid, which matches scanning separately.
        std::size_t first_invalid = npos;
        std::size_t lru_min = base;
        for (unsigned way = 0; way < cfg.associativity; ++way) {
            std::size_t idx = base + way;
            if (tags[idx] == tag) {
                victim = idx;
                break;
            }
            if (tags[idx] == invalidTag) {
                if (first_invalid == npos)
                    first_invalid = idx;
            } else if (lru[idx] < lru[lru_min]) {
                lru_min = idx;
            }
        }
        if (victim == npos)
            victim = first_invalid;
        if (victim == npos) {
            victim = lru_min;
            evicting = true;
        }
    } else {
        // Reference mode: the pre-overhaul three-scan insert over the
        // wide block records.
        victim = findWay(base, tag);
        if (victim == npos) {
            for (unsigned way = 0; way < cfg.associativity; ++way) {
                if (!blocks[base + way].valid) {
                    victim = base + way;
                    break;
                }
            }
        }
        if (victim == npos) {
            victim = base;
            for (unsigned way = 1; way < cfg.associativity; ++way) {
                if (blocks[base + way].lruStamp <
                    blocks[victim].lruStamp)
                    victim = base + way;
            }
            evicting = true;
        }
    }

    if (evicting) {
        Addr victim_tag = fastIndex ? tags[victim] : blocks[victim].tag;
        evict.evicted = true;
        evict.dirty = blocks[victim].dirty;
        evict.wastedPrefetch = blocks[victim].prefetched &&
                               !blocks[victim].prefetchUseful;
        evict.loadPcHash = blocks[victim].loadPcHash;
        evict.blockAddr =
            ((victim_tag << setBits) + static_cast<Addr>(set))
            << blockSizeBits;
    }

    blocks[victim] = CacheBlock{};
    ++lruClock;
    if (fastIndex) {
        tags[victim] = tag;
        lru[victim] = lruClock;
    } else {
        blocks[victim].tag = tag;
        blocks[victim].valid = true;
        blocks[victim].lruStamp = lruClock;
    }
    return &blocks[victim];
}

void
Cache::invalidate(Addr addr)
{
    std::size_t idx =
        findWay(setIndex(addr) * cfg.associativity, tagOf(addr));
    if (idx == npos)
        return;
    if (fastIndex)
        tags[idx] = invalidTag;
    else
        blocks[idx].valid = false;
}

std::size_t
Cache::validBlockCount() const
{
    std::size_t count = 0;
    if (fastIndex) {
        for (Addr tag : tags)
            if (tag != invalidTag)
                ++count;
    } else {
        for (const CacheBlock &blk : blocks)
            if (blk.valid)
                ++count;
    }
    return count;
}

} // namespace bfsim::mem
