#include "mem/cache.hh"

#include <bit>

#include "common/sim_error.hh"

namespace bfsim::mem {

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    BFSIM_CHECK(cfg.sizeBytes % (blockSizeBytes * cfg.associativity) ==
                    0,
                "cache",
                "cache '" + cfg.name + "' size not divisible by way "
                "size");
    sets = cfg.sizeBytes / (blockSizeBytes * cfg.associativity);
    BFSIM_CHECK(std::has_single_bit(sets), "cache",
                "cache '" + cfg.name + "' set count must be a power "
                "of two");
    blocks.assign(sets * cfg.associativity, CacheBlock{});
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return blockNumber(addr) & (sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return blockNumber(addr) / sets;
}

CacheBlock *
Cache::lookup(Addr addr)
{
    std::size_t base = setIndex(addr) * cfg.associativity;
    Addr tag = tagOf(addr);
    for (unsigned way = 0; way < cfg.associativity; ++way) {
        CacheBlock &blk = blocks[base + way];
        if (blk.valid && blk.tag == tag) {
            blk.lruStamp = ++lruClock;
            return &blk;
        }
    }
    return nullptr;
}

bool
Cache::contains(Addr addr) const
{
    return peek(addr) != nullptr;
}

const CacheBlock *
Cache::peek(Addr addr) const
{
    std::size_t base = setIndex(addr) * cfg.associativity;
    Addr tag = tagOf(addr);
    for (unsigned way = 0; way < cfg.associativity; ++way) {
        const CacheBlock &blk = blocks[base + way];
        if (blk.valid && blk.tag == tag)
            return &blk;
    }
    return nullptr;
}

CacheBlock *
Cache::insert(Addr addr, EvictInfo &evict)
{
    std::size_t set = setIndex(addr);
    std::size_t base = set * cfg.associativity;
    Addr tag = tagOf(addr);

    evict = EvictInfo{};

    // Reuse an existing block for the same tag (refill), else an invalid
    // way, else the LRU victim.
    CacheBlock *victim = nullptr;
    for (unsigned way = 0; way < cfg.associativity; ++way) {
        CacheBlock &blk = blocks[base + way];
        if (blk.valid && blk.tag == tag) {
            victim = &blk;
            break;
        }
        if (!blk.valid && !victim)
            victim = &blk;
    }
    if (!victim) {
        victim = &blocks[base];
        for (unsigned way = 1; way < cfg.associativity; ++way) {
            CacheBlock &blk = blocks[base + way];
            if (blk.lruStamp < victim->lruStamp)
                victim = &blk;
        }
        evict.evicted = true;
        evict.dirty = victim->dirty;
        evict.wastedPrefetch =
            victim->prefetched && !victim->prefetchUseful;
        evict.loadPcHash = victim->loadPcHash;
        evict.blockAddr =
            ((victim->tag * sets) +
             (static_cast<Addr>(set))) << blockSizeBits;
    }

    *victim = CacheBlock{};
    victim->tag = tag;
    victim->valid = true;
    victim->lruStamp = ++lruClock;
    return victim;
}

void
Cache::invalidate(Addr addr)
{
    std::size_t base = setIndex(addr) * cfg.associativity;
    Addr tag = tagOf(addr);
    for (unsigned way = 0; way < cfg.associativity; ++way) {
        CacheBlock &blk = blocks[base + way];
        if (blk.valid && blk.tag == tag) {
            blk.valid = false;
            return;
        }
    }
}

std::size_t
Cache::validBlockCount() const
{
    std::size_t count = 0;
    for (const auto &blk : blocks)
        if (blk.valid)
            ++count;
    return count;
}

} // namespace bfsim::mem
