/**
 * @file
 * The modeled memory hierarchy: per-core L1-D and unified L2, a shared
 * last-level L3, and one bandwidth-limited DRAM channel (Table II).
 *
 * Timing follows an insert-at-issue discipline: a missing block is
 * allocated immediately with a future `readyAt` fill time. A later access
 * to the same block hits in the tag array and simply waits for the fill,
 * which naturally models MSHR merging and — crucially for this paper —
 * *late* prefetches, whose partial benefit B-Fetch's timeliness argument
 * depends on.
 *
 * Cores address private virtual spaces; the hierarchy forms physical
 * addresses by placing each core's space at a 1 TiB-aligned offset, so
 * multiprogrammed mixes contend for shared-L3 capacity and DRAM bandwidth
 * exactly as in the paper's CMP experiments.
 */

#ifndef BFSIM_MEM_HIERARCHY_HH_
#define BFSIM_MEM_HIERARCHY_HH_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "mem/cache.hh"
#include "mem/dram.hh"

namespace bfsim::mem {

/** Full hierarchy configuration (defaults mirror the paper's Table II). */
struct HierarchyConfig
{
    unsigned numCores = 1;
    CacheConfig l1d{"L1D", 64 * 1024, 8, 2};
    CacheConfig l2{"L2", 256 * 1024, 8, 10};
    /** L3 is sized at l3PerCoreBytes * numCores (paper: 2MB/core). */
    std::size_t l3PerCoreBytes = 2 * 1024 * 1024;
    unsigned l3Associativity = 16;
    Cycle l3HitLatency = 20;
    DramConfig dram{};
    /** L1 MSHR count: maximum in-flight demand misses per core
     *  (gem5 classic-cache default). */
    unsigned l1Mshrs = 4;
};

/** Outcome of one demand access. */
struct AccessOutcome
{
    Cycle latency = 0;       ///< cycles until the data is usable
    bool l1Hit = false;
    bool l2Hit = false;
    bool l3Hit = false;
    /** Demand access was the first use of a prefetched block. */
    bool usedPrefetch = false;
    /** The prefetched block was still in flight (late prefetch). */
    bool latePrefetch = false;
};

/** Result classification of a prefetch request. */
enum class PrefetchResult
{
    Issued,          ///< prefetch injected into the hierarchy
    AlreadyPresent,  ///< target block already in (or filling) the L1-D
};

/** Per-core demand/prefetch statistics. */
struct CoreMemStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l3Hits = 0;
    std::uint64_t dramAccesses = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t prefetchesDuplicate = 0;
    std::uint64_t usefulPrefetches = 0;
    std::uint64_t uselessPrefetches = 0;
    std::uint64_t latePrefetches = 0;
    std::uint64_t writebacks = 0;
};

/**
 * Counter-wise `end - begin`: the memory-system activity between two
 * snapshots of the same core (sampling windows subtract their warmup).
 */
CoreMemStats memStatsDelta(const CoreMemStats &end,
                           const CoreMemStats &begin);

/** Counter-wise `into += from` (combining sampling windows). */
void accumulateMemStats(CoreMemStats &into, const CoreMemStats &from);

/**
 * Notification that a prefetch attributed to `loadPcHash` proved useful
 * (demand-hit before eviction) or useless (evicted untouched). B-Fetch's
 * per-load filter trains on exactly this signal.
 */
using PrefetchFeedback =
    std::function<void(std::uint16_t load_pc_hash, bool useful)>;

/** The multi-core cache hierarchy. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /** Perform a demand load/store for `core` at virtual address vaddr. */
    AccessOutcome access(unsigned core, Addr vaddr, bool is_store,
                         Cycle now);

    /**
     * Inject a prefetch of vaddr into core's L1-D. `load_pc_hash`
     * attributes the prefetch for later usefulness feedback.
     */
    PrefetchResult prefetch(unsigned core, Addr vaddr, Cycle now,
                            std::uint16_t load_pc_hash);

    /** Register the per-core prefetch usefulness callback. */
    void setPrefetchFeedback(unsigned core, PrefetchFeedback feedback);

    /** True when the block is present (or filling) in core's L1-D. */
    bool inL1(unsigned core, Addr vaddr) const;

    /**
     * Functional warmup: install checkpoint block tags into core's
     * L1-D before a sampling window runs. `block_tags` holds virtual
     * block numbers (byte address >> 6) in MRU-to-LRU order per
     * snapshot set, `snapshot_ways` entries each, with invalidAddr
     * marking an empty way (the trace_store checkpoint layout). Ways
     * are installed LRU-first so the L1's true-LRU order reproduces
     * the snapshot's recency order; blocks arrive clean, ready
     * (readyAt 0) and unattributed, and *no* statistics are touched —
     * warmup is state, not activity. Works identically in the SoA
     * fast-index and reference block layouts.
     */
    void installL1Warmup(unsigned core,
                         const std::vector<Addr> &block_tags,
                         unsigned snapshot_ways);

    /** Per-core statistics. */
    const CoreMemStats &stats(unsigned core) const
    {
        return coreStats.at(core);
    }

    /** Shared-DRAM statistics. */
    const Dram &dram() const { return dramChannel; }

    /** Configured geometry. */
    const HierarchyConfig &config() const { return cfg; }

  private:
    Addr physical(unsigned core, Addr vaddr) const;

    /**
     * Find / fetch a block for the lower levels (L2 down), returning the
     * cycle its data is available and recording hit levels. Fills lower
     * levels on the way.
     */
    Cycle fetchFromBeyondL1(unsigned core, Addr paddr, Cycle now,
                            AccessOutcome &outcome, bool is_demand);

    /** Allocate in core's L1-D, handling victim writeback + feedback. */
    CacheBlock *fillL1(unsigned core, Addr paddr, Cycle now);

    /** MSHR admission: returns the cycle the miss may start. */
    Cycle mshrAdmit(unsigned core, Cycle now);

    HierarchyConfig cfg;
    std::vector<std::unique_ptr<Cache>> l1dCaches;
    std::vector<std::unique_ptr<Cache>> l2Caches;
    std::unique_ptr<Cache> l3Cache;
    Dram dramChannel;
    std::vector<CoreMemStats> coreStats;
    std::vector<PrefetchFeedback> feedback;
    /** Per-core in-flight miss completion times (lazily pruned FIFO). */
    std::vector<std::deque<Cycle>> mshrBusy;
};

} // namespace bfsim::mem

#endif // BFSIM_MEM_HIERARCHY_HH_
