#include "mem/hierarchy.hh"

#include "common/fault.hh"
#include "common/sim_error.hh"

namespace bfsim::mem {

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : cfg(config), dramChannel(config.dram)
{
    BFSIM_CHECK(cfg.numCores > 0, "hierarchy",
                "hierarchy needs at least one core");
    for (unsigned c = 0; c < cfg.numCores; ++c) {
        l1dCaches.push_back(std::make_unique<Cache>(cfg.l1d));
        l2Caches.push_back(std::make_unique<Cache>(cfg.l2));
    }
    CacheConfig l3cfg;
    l3cfg.name = "L3";
    l3cfg.sizeBytes = cfg.l3PerCoreBytes * cfg.numCores;
    l3cfg.associativity = cfg.l3Associativity;
    l3cfg.hitLatency = cfg.l3HitLatency;
    l3Cache = std::make_unique<Cache>(l3cfg);
    coreStats.resize(cfg.numCores);
    feedback.resize(cfg.numCores);
    mshrBusy.resize(cfg.numCores);
}

Addr
Hierarchy::physical(unsigned core, Addr vaddr) const
{
    return vaddr + (static_cast<Addr>(core) << 40);
}

void
Hierarchy::setPrefetchFeedback(unsigned core, PrefetchFeedback fb)
{
    feedback.at(core) = std::move(fb);
}

bool
Hierarchy::inL1(unsigned core, Addr vaddr) const
{
    return l1dCaches[core]->contains(physical(core, vaddr));
}

void
Hierarchy::installL1Warmup(unsigned core,
                           const std::vector<Addr> &block_tags,
                           unsigned snapshot_ways)
{
    if (snapshot_ways == 0)
        return;
    Cache &l1 = *l1dCaches.at(core);
    std::size_t snapshot_sets = block_tags.size() / snapshot_ways;
    // Deliberately bypasses fillL1: warmup installs *state* without
    // the activity accounting (fills, evictions, writebacks, prefetch
    // feedback) a demand fill performs. Cache::insert is stat-free and
    // handles victim selection, so a snapshot denser than the L1's
    // geometry simply keeps the most recent blocks.
    for (std::size_t s = 0; s < snapshot_sets; ++s) {
        for (unsigned w = snapshot_ways; w-- > 0;) {
            Addr block = block_tags[s * snapshot_ways + w];
            if (block == invalidAddr)
                continue;
            Addr vaddr = block << blockSizeBits;
            EvictInfo evict;
            l1.insert(physical(core, vaddr), evict);
        }
    }
}

Cycle
Hierarchy::mshrAdmit(unsigned core, Cycle now)
{
    auto &busy = mshrBusy[core];
    while (!busy.empty() && busy.front() <= now)
        busy.pop_front();
    if (busy.size() < cfg.l1Mshrs)
        return now;
    // All MSHRs occupied: the miss cannot start until the oldest
    // outstanding fill completes.
    return busy.front();
}

CacheBlock *
Hierarchy::fillL1(unsigned core, Addr paddr, Cycle now)
{
    EvictInfo evict;
    CacheBlock *blk = l1dCaches[core]->insert(paddr, evict);
    if (evict.evicted) {
        if (evict.wastedPrefetch) {
            ++coreStats[core].uselessPrefetches;
            if (feedback[core])
                feedback[core](evict.loadPcHash, false);
        }
        if (evict.dirty) {
            ++coreStats[core].writebacks;
            // Dirty L1 victims write back into the L2; mark dirty there
            // if present, otherwise propagate (rare with inclusive fill).
            Addr victim_paddr = evict.blockAddr;
            if (CacheBlock *l2blk = l2Caches[core]->lookup(victim_paddr)) {
                l2blk->dirty = true;
            } else if (CacheBlock *l3blk = l3Cache->lookup(victim_paddr)) {
                l3blk->dirty = true;
            } else {
                dramChannel.writeback(now);
            }
        }
    }
    return blk;
}

Cycle
Hierarchy::fetchFromBeyondL1(unsigned core, Addr paddr, Cycle now,
                             AccessOutcome &outcome, bool is_demand)
{
    Cache &l2 = *l2Caches[core];
    // L2 lookup.
    if (CacheBlock *blk = l2.lookup(paddr)) {
        outcome.l2Hit = true;
        Cycle data_ready = now + cfg.l2.hitLatency;
        if (blk->readyAt > data_ready)
            data_ready = blk->readyAt;
        return data_ready;
    }
    // L3 lookup (shared).
    if (CacheBlock *blk = l3Cache->lookup(paddr)) {
        outcome.l3Hit = true;
        Cycle data_ready = now + cfg.l2.hitLatency + cfg.l3HitLatency;
        if (blk->readyAt > data_ready)
            data_ready = blk->readyAt;
        // Fill L2.
        EvictInfo evict;
        CacheBlock *l2blk = l2.insert(paddr, evict);
        if (evict.evicted && evict.dirty) {
            if (CacheBlock *l3victim = l3Cache->lookup(evict.blockAddr))
                l3victim->dirty = true;
            else
                dramChannel.writeback(now);
        }
        l2blk->readyAt = data_ready;
        return data_ready;
    }
    // DRAM.
    ++coreStats[core].dramAccesses;
    Cycle issue = now + cfg.l2.hitLatency + cfg.l3HitLatency;
    Cycle data_ready = dramChannel.read(issue, is_demand);
    // Fill L3 then L2.
    EvictInfo evict;
    CacheBlock *l3blk = l3Cache->insert(paddr, evict);
    if (evict.evicted && evict.dirty)
        dramChannel.writeback(now);
    l3blk->readyAt = data_ready;
    CacheBlock *l2blk = l2.insert(paddr, evict);
    if (evict.evicted && evict.dirty) {
        if (CacheBlock *l3victim = l3Cache->lookup(evict.blockAddr))
            l3victim->dirty = true;
        else
            dramChannel.writeback(now);
    }
    l2blk->readyAt = data_ready;
    return data_ready;
}

AccessOutcome
Hierarchy::access(unsigned core, Addr vaddr, bool is_store, Cycle now)
{
    if (fault::shouldFail(fault::Site::CacheAccess))
        throw SimError("hierarchy", "injected fault: cache access", now);
    AccessOutcome outcome;
    Addr paddr = physical(core, vaddr);
    Cache &l1 = *l1dCaches[core];
    ++coreStats[core].accesses;

    if (CacheBlock *blk = l1.lookup(paddr)) {
        outcome.l1Hit = true;
        ++coreStats[core].l1Hits;
        Cycle done = now + l1.hitLatency();
        if (blk->readyAt > now) {
            // Fill still in flight (MSHR merge / late prefetch).
            if (blk->prefetched && !blk->prefetchUseful) {
                outcome.latePrefetch = true;
                ++coreStats[core].latePrefetches;
                // Demand hit on an in-flight prefetch upgrades it to
                // demand priority: the wait is capped at what a fresh
                // demand miss would cost, as MSHR hit-under-prefetch
                // upgrading achieves in real controllers.
                Cycle upgrade_cap = now + cfg.l2.hitLatency +
                                    cfg.l3HitLatency +
                                    dramChannel.config().accessLatency;
                if (blk->readyAt > upgrade_cap)
                    blk->readyAt = upgrade_cap;
            }
            done = blk->readyAt + l1.hitLatency();
        }
        if (blk->prefetched && !blk->prefetchUseful) {
            blk->prefetchUseful = true;
            outcome.usedPrefetch = true;
            ++coreStats[core].usefulPrefetches;
            if (feedback[core])
                feedback[core](blk->loadPcHash, true);
        }
        if (is_store)
            blk->dirty = true;
        outcome.latency = done - now;
        return outcome;
    }

    // L1 miss: admit through the MSHRs, then fetch from below.
    Cycle start = mshrAdmit(core, now) + l1.hitLatency();
    Cycle data_ready = fetchFromBeyondL1(core, paddr, start, outcome,
                                         true);
    if (outcome.l2Hit)
        ++coreStats[core].l2Hits;
    else if (outcome.l3Hit)
        ++coreStats[core].l3Hits;

    CacheBlock *blk = fillL1(core, paddr, now);
    blk->readyAt = data_ready;
    if (is_store)
        blk->dirty = true;
    mshrBusy[core].push_back(data_ready);

    outcome.latency = data_ready - now;
    return outcome;
}

PrefetchResult
Hierarchy::prefetch(unsigned core, Addr vaddr, Cycle now,
                    std::uint16_t load_pc_hash)
{
    Addr paddr = physical(core, vaddr);
    Cache &l1 = *l1dCaches[core];
    if (l1.contains(paddr)) {
        ++coreStats[core].prefetchesDuplicate;
        return PrefetchResult::AlreadyPresent;
    }

    AccessOutcome outcome;
    Cycle start = now + l1.hitLatency();
    Cycle data_ready = fetchFromBeyondL1(core, paddr, start, outcome,
                                         false);

    CacheBlock *blk = fillL1(core, paddr, now);
    blk->readyAt = data_ready;
    blk->prefetched = true;
    blk->prefetchUseful = false;
    blk->loadPcHash = load_pc_hash;
    ++coreStats[core].prefetchesIssued;
    return PrefetchResult::Issued;
}

CoreMemStats
memStatsDelta(const CoreMemStats &end, const CoreMemStats &begin)
{
    CoreMemStats d;
    d.accesses = end.accesses - begin.accesses;
    d.l1Hits = end.l1Hits - begin.l1Hits;
    d.l2Hits = end.l2Hits - begin.l2Hits;
    d.l3Hits = end.l3Hits - begin.l3Hits;
    d.dramAccesses = end.dramAccesses - begin.dramAccesses;
    d.prefetchesIssued = end.prefetchesIssued - begin.prefetchesIssued;
    d.prefetchesDuplicate =
        end.prefetchesDuplicate - begin.prefetchesDuplicate;
    d.usefulPrefetches = end.usefulPrefetches - begin.usefulPrefetches;
    d.uselessPrefetches =
        end.uselessPrefetches - begin.uselessPrefetches;
    d.latePrefetches = end.latePrefetches - begin.latePrefetches;
    d.writebacks = end.writebacks - begin.writebacks;
    return d;
}

void
accumulateMemStats(CoreMemStats &into, const CoreMemStats &from)
{
    into.accesses += from.accesses;
    into.l1Hits += from.l1Hits;
    into.l2Hits += from.l2Hits;
    into.l3Hits += from.l3Hits;
    into.dramAccesses += from.dramAccesses;
    into.prefetchesIssued += from.prefetchesIssued;
    into.prefetchesDuplicate += from.prefetchesDuplicate;
    into.usefulPrefetches += from.usefulPrefetches;
    into.uselessPrefetches += from.uselessPrefetches;
    into.latePrefetches += from.latePrefetches;
    into.writebacks += from.writebacks;
}

} // namespace bfsim::mem
