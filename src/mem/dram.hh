/**
 * @file
 * Bandwidth-limited DRAM model.
 *
 * The paper limits the memory controller to 12.8 GB/s ("representative of
 * a memory controller of a x64 DDR3", V-A) on top of a 200-cycle access
 * latency (Table II). We model that as a fixed access latency plus a
 * single shared channel whose data bus can start one 64 B block transfer
 * every `cyclesPerBlock` cycles; requests queue when the bus is busy.
 *
 * Like real memory controllers, demand reads are prioritized over
 * prefetch reads: a demand read queues only behind other demand traffic,
 * while prefetch reads queue behind everything. Prefetch traffic still
 * consumes channel bandwidth — which is what makes *useless* prefetches
 * expensive in the paper's multiprogrammed experiments (Fig. 9-11).
 */

#ifndef BFSIM_MEM_DRAM_HH_
#define BFSIM_MEM_DRAM_HH_

#include <cstdint>

#include "common/stats.hh"
#include "common/types.hh"

namespace bfsim::mem {

/** DRAM timing parameters. */
struct DramConfig
{
    /** Fixed access latency in core cycles (Table II: 200). */
    Cycle accessLatency = 200;
    /**
     * Minimum spacing between block transfers in core cycles. At a 3.2GHz
     * core clock, 12.8 GB/s moves one 64 B block every 16 cycles.
     */
    Cycle cyclesPerBlock = 16;
};

/** The shared DRAM channel. */
class Dram
{
  public:
    explicit Dram(const DramConfig &config = {}) : cfg(config) {}

    /**
     * Issue a block read at `now`; returns the cycle at which the
     * block's data is available (queueing + fixed latency). Demand
     * reads (`is_demand`) bypass queued prefetch traffic.
     */
    Cycle
    read(Cycle now, bool is_demand = true)
    {
        Cycle queue_head = is_demand ? demandBusyUntil : busBusyUntil;
        Cycle start = now > queue_head ? now : queue_head;
        Cycle finish = start + cfg.cyclesPerBlock;
        if (finish > busBusyUntil)
            busBusyUntil = finish;
        if (is_demand) {
            demandBusyUntil = finish;
            ++readCount;
        } else {
            ++prefetchReadCount;
        }
        queueDelayTotal += start - now;
        return start + cfg.accessLatency;
    }

    /**
     * Issue a block writeback at `now`; consumes bus bandwidth but the
     * requester does not wait for completion.
     */
    void
    writeback(Cycle now)
    {
        Cycle start = now > busBusyUntil ? now : busBusyUntil;
        busBusyUntil = start + cfg.cyclesPerBlock;
        ++writebackCount;
    }

    /** Number of demand block reads serviced. */
    std::uint64_t reads() const { return readCount; }

    /** Number of prefetch block reads serviced. */
    std::uint64_t prefetchReads() const { return prefetchReadCount; }

    /** Number of writebacks serviced. */
    std::uint64_t writebacks() const { return writebackCount; }

    /** Total cycles requests spent queued on the busy bus. */
    std::uint64_t totalQueueDelay() const { return queueDelayTotal; }

    /** Configured timing. */
    const DramConfig &config() const { return cfg; }

  private:
    DramConfig cfg;
    Cycle busBusyUntil = 0;
    Cycle demandBusyUntil = 0;
    std::uint64_t readCount = 0;
    std::uint64_t prefetchReadCount = 0;
    std::uint64_t writebackCount = 0;
    std::uint64_t queueDelayTotal = 0;
};

} // namespace bfsim::mem

#endif // BFSIM_MEM_DRAM_HH_
