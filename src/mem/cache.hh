/**
 * @file
 * A set-associative cache tag array with true-LRU replacement and the
 * per-block prefetch metadata the paper adds to the L1-D ("each cache
 * block ... is augmented with a 10-bit hash of the load PC for the
 * prefetch address and a 1-bit vector to indicate whether the prefetch
 * is useful", IV-B.3).
 *
 * The simulator separates functional data (in sim::Memory) from cache
 * timing state, so blocks hold tags and metadata only.
 */

#ifndef BFSIM_MEM_CACHE_HH_
#define BFSIM_MEM_CACHE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bfsim::mem {

/** Geometry and latency of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::size_t sizeBytes = 64 * 1024;
    unsigned associativity = 8;
    Cycle hitLatency = 2;
};

/**
 * Per-block state. In overhaul mode (DESIGN.md §11) the tag and LRU
 * stamp live in separate parallel arrays inside Cache, so a set probe
 * scans one contiguous run of tags (one cache line for 8 ways) instead
 * of striding through these wider records; the `tag`/`valid`/
 * `lruStamp` fields here are then unused. In reference mode
 * (BFSIM_BATCH_OPS=0) the pre-overhaul layout is kept alive for
 * measurement: probes scan these fields and the parallel arrays are
 * unused. A Cache latches its mode at construction, so each instance
 * only ever maintains one copy.
 */
struct CacheBlock
{
    Addr tag = 0;             ///< reference-mode only
    bool valid = false;       ///< reference-mode only
    bool dirty = false;
    /** Block was brought in by a prefetch and not yet demanded. */
    bool prefetched = false;
    /** A demand access touched this prefetched block (paper's 1-bit). */
    bool prefetchUseful = false;
    /** 10-bit hash of the load PC the prefetch was issued for. */
    std::uint16_t loadPcHash = 0;
    /** Cycle at which the (possibly in-flight) fill completes. */
    Cycle readyAt = 0;
    /** LRU timestamp; larger is more recent. Reference-mode only. */
    std::uint64_t lruStamp = 0;
};

/** Result of a lookup or insertion. */
struct EvictInfo
{
    bool evicted = false;        ///< a valid block was displaced
    bool dirty = false;          ///< the victim needed a writeback
    bool wastedPrefetch = false; ///< victim was prefetched, never used
    std::uint16_t loadPcHash = 0;///< victim's prefetch attribution
    Addr blockAddr = 0;          ///< victim's block-aligned address
};

/**
 * A single cache level's tag array. Addresses passed in are full byte
 * addresses; the cache aligns internally.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up a block; returns the block pointer (updating LRU) on hit,
     * nullptr on miss.
     */
    CacheBlock *lookup(Addr addr);

    /** Side-effect-free presence check (no LRU update). */
    bool contains(Addr addr) const;

    /** Side-effect-free block peek (no LRU update); nullptr on miss. */
    const CacheBlock *peek(Addr addr) const;

    /**
     * Allocate a block for addr (evicting the LRU victim if needed) and
     * return it; victim details are reported through `evict`.
     */
    CacheBlock *insert(Addr addr, EvictInfo &evict);

    /** Invalidate a block if present. */
    void invalidate(Addr addr);

    /** Number of sets. */
    std::size_t numSets() const { return sets; }

    /** Configured geometry. */
    const CacheConfig &config() const { return cfg; }

    /** Hit latency shortcut. */
    Cycle hitLatency() const { return cfg.hitLatency; }

    /** Count of valid blocks (testing / occupancy reporting). */
    std::size_t validBlockCount() const;

  private:
    /**
     * Sentinel marking an empty way in `tags`. Real tags are block
     * numbers shifted right, so they can never reach ~0 for any
     * simulated address.
     */
    static constexpr Addr invalidTag = ~Addr{0};

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    /**
     * Scan a set's ways for `tag`; returns the block index on match,
     * npos otherwise. `base` is the set's first index. One body for
     * lookup/peek/insert/invalidate (they differ only in what they do
     * with the match).
     */
    std::size_t findWay(std::size_t base, Addr tag) const;

    static constexpr std::size_t npos = ~std::size_t{0};

    CacheConfig cfg;
    std::size_t sets;
    unsigned setBits; ///< log2(sets): tagOf/setIndex are shift/mask
    /**
     * Overhaul flag (latched at construction from the hot-loop
     * kill-switch). Off reproduces the pre-overhaul memory side
     * faithfully for measurement: divide/modulo set and tag arithmetic
     * and probes that stride through the wide CacheBlock records.
     * Results are identical — sets is a power of two and both layouts
     * hold the same state — only arithmetic and layout differ.
     */
    bool fastIndex;
    // Overhaul-mode set-major SoA tag array (invalidTag = empty way)
    // and LRU stamps (larger = more recent), indexed
    // set * associativity + way. Unused (empty) in reference mode.
    std::vector<Addr> tags;
    std::vector<std::uint64_t> lru;
    // Per-block metadata (both modes); tag/valid/lruStamp inside are
    // the reference-mode copies.
    std::vector<CacheBlock> blocks;
    std::uint64_t lruClock = 0;
};

} // namespace bfsim::mem

#endif // BFSIM_MEM_CACHE_HH_
