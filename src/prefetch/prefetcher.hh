/**
 * @file
 * Data-prefetcher interface shared by the baseline prefetchers (Next-N,
 * Stride, SMS) and used by the simulated core to train on demand traffic.
 *
 * B-Fetch itself does NOT implement this interface alone — it is driven
 * by decode/commit/execute events from the core pipeline rather than by
 * demand accesses (see src/core/bfetch.hh) — but it shares the same
 * PrefetchQueue, so issue bandwidth and queue capacity are modeled
 * identically across all schemes.
 */

#ifndef BFSIM_PREFETCH_PREFETCHER_HH_
#define BFSIM_PREFETCH_PREFETCHER_HH_

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "prefetch/queue.hh"

namespace bfsim::prefetch {

/** One demand access as observed at the L1-D. */
struct DemandAccess
{
    Addr pc = 0;       ///< PC of the load/store
    Addr vaddr = 0;    ///< effective (virtual) address
    bool isLoad = true;
    bool l1Hit = false;
    Cycle now = 0;
};

/** Abstract demand-trained data prefetcher. */
class Prefetcher
{
  public:
    virtual ~Prefetcher() = default;

    /**
     * Observe one demand access and push any prefetch candidates into
     * the queue.
     */
    virtual void observe(const DemandAccess &access, PrefetchQueue &queue)
        = 0;

    /** Short scheme name as it appears in the paper's figures. */
    virtual std::string name() const = 0;

    /** Total prefetcher storage in bits (Table I accounting). */
    virtual std::size_t storageBits() const = 0;
};

/** 10-bit PC hash used to attribute prefetches to their trigger/load PC. */
inline std::uint16_t
pcHash10(Addr pc)
{
    std::uint64_t x = pc >> 2;
    x ^= x >> 10;
    x ^= x >> 20;
    return static_cast<std::uint16_t>(x & 0x3ff);
}

} // namespace bfsim::prefetch

#endif // BFSIM_PREFETCH_PREFETCHER_HH_
