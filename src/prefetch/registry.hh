/**
 * @file
 * Prefetcher registry: string-spec construction of a core's prefetch
 * scheme (DESIGN.md §14), replacing the PrefetcherKind enum and the
 * hard-wired if/else chain formerly in sim/ooo_core.cc.
 *
 * A scheme is more than a Prefetcher object: "bfetch" is a composition
 * the core itself wires (its engine needs the core's predictor and
 * queue), and "perfect" is a memory-model oracle with no prefetcher at
 * all. The registry therefore produces a CorePrefetch plan — an
 * optional demand-trained prefetcher plus the two wiring flags — and
 * the core finishes construction from it with no per-scheme branching
 * of its own.
 *
 * Canonical names: none, nextn, stride, sms, bfetch, perfect (lookup
 * is case-insensitive, so the paper-legend spellings "None"/"SMS"/
 * "Bfetch" used in bench tables resolve unchanged). displayName()
 * recovers the legend spelling from any spec, which keeps every table,
 * label and JSON field byte-identical to the enum era.
 */

#ifndef BFSIM_PREFETCH_REGISTRY_HH_
#define BFSIM_PREFETCH_REGISTRY_HH_

#include <memory>
#include <string>
#include <vector>

#include "common/registry.hh"
#include "prefetch/prefetcher.hh"

namespace bfsim::prefetch {

/** The constructed prefetch plan for one core. */
struct CorePrefetch
{
    /** Demand-trained prefetcher (nullptr for none/bfetch/perfect). */
    std::unique_ptr<Prefetcher> demand;
    /** Attach a B-Fetch engine (composed by the core: it owns the
     *  predictor and prefetch queue the engine is built around). */
    bool attachBFetch = false;
    /** Oracle mode: every data access is an L1 hit (Fig. 1). */
    bool perfectMem = false;
};

/** The registry of prefetch schemes (built once, immutable). */
const Registry<CorePrefetch> &prefetcherRegistry();

/**
 * Construct the prefetch plan described by `spec` ("sms",
 * "stride:degree=4", "nextn:degree=2", ...). Throws SimError for
 * unknown names (listing the registered ones) and malformed or
 * unconsumed parameters.
 */
CorePrefetch makeCorePrefetch(const std::string &spec);

/** Canonical registered scheme names, in registration order. */
std::vector<std::string> prefetcherNames();

/**
 * Figure-legend display name for `spec` ("sms" -> "SMS", "bfetch" ->
 * "Bfetch"); lenient on unknown names, parameter clause preserved.
 */
std::string prefetcherDisplayName(const std::string &spec);

} // namespace bfsim::prefetch

#endif // BFSIM_PREFETCH_REGISTRY_HH_
