/**
 * @file
 * The prefetch queue between any prefetch engine and the L1-D port.
 * Table I budgets a 100-entry queue; candidates are block-aligned,
 * deduplicated against queue contents, and dropped when the queue is
 * full (oldest-first drain).
 */

#ifndef BFSIM_PREFETCH_QUEUE_HH_
#define BFSIM_PREFETCH_QUEUE_HH_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/hot_loop.hh"
#include "common/types.hh"

namespace bfsim::prefetch {

/** One queued prefetch candidate. */
struct PrefetchCandidate
{
    Addr blockAddr = 0;           ///< block-aligned target address
    std::uint16_t loadPcHash = 0; ///< attribution for usefulness feedback
};

/**
 * Fixed-capacity FIFO of pending prefetch candidates with dedup.
 *
 * In overhaul mode (DESIGN.md §11) this is a preallocated ring:
 * push/pop never allocate, and the dedup check is a linear scan of the
 * live entries — for a 100-entry queue that is one pass over a
 * contiguous array, cheaper than maintaining a node-based hash set at
 * hot-loop rates. With the hot-loop kill-switch off (BFSIM_BATCH_OPS=0)
 * the pre-overhaul deque + hash-set implementation is kept alive as
 * the measurement reference; both arms implement identical accept /
 * drop / dedup semantics, so stats are bit-identical. The mode is
 * latched at construction.
 */
class PrefetchQueue
{
  public:
    /** Construct with a capacity (paper: 100 entries). */
    explicit PrefetchQueue(std::size_t capacity = 100)
        : maxEntries(capacity), fast(hotLoopEnabled())
    {
        if (fast)
            ring.resize(capacity);
    }

    /**
     * Enqueue a candidate (block-aligning the address); duplicates of
     * queued blocks and full-queue pushes are dropped. (Order matters:
     * a duplicate arriving at a full queue counts as a full-queue drop,
     * matching the historical accounting.)
     * @return true when the candidate was accepted.
     */
    bool
    push(Addr addr, std::uint16_t load_pc_hash)
    {
        Addr block = blockAlign(addr);
        if (fast) {
            if (count >= maxEntries) {
                ++droppedCount;
                return false;
            }
            for (std::size_t i = 0; i < count; ++i) {
                if (ring[wrap(head + i)].blockAddr == block) {
                    ++duplicateCount;
                    return false;
                }
            }
            ring[wrap(head + count)] = {block, load_pc_hash};
            ++count;
        } else {
            if (entries.size() >= maxEntries) {
                ++droppedCount;
                return false;
            }
            if (queuedBlocks.contains(block)) {
                ++duplicateCount;
                return false;
            }
            entries.push_back({block, load_pc_hash});
            queuedBlocks.insert(block);
        }
        ++pushedCount;
        return true;
    }

    /** True when no candidates are pending. */
    bool empty() const { return fast ? count == 0 : entries.empty(); }

    /** Number of pending candidates. */
    std::size_t size() const { return fast ? count : entries.size(); }

    /** Pop the oldest candidate; queue must not be empty. */
    PrefetchCandidate
    pop()
    {
        if (fast) {
            PrefetchCandidate candidate = ring[head];
            head = wrap(head + 1);
            --count;
            return candidate;
        }
        PrefetchCandidate candidate = entries.front();
        entries.pop_front();
        queuedBlocks.erase(candidate.blockAddr);
        return candidate;
    }

    /** Remove all pending candidates. */
    void
    clear()
    {
        head = 0;
        count = 0;
        entries.clear();
        queuedBlocks.clear();
    }

    /** Candidates accepted over the run. */
    std::uint64_t pushed() const { return pushedCount; }

    /** Candidates dropped because the queue was full. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Candidates dropped as duplicates of queued blocks. */
    std::uint64_t duplicates() const { return duplicateCount; }

    /** Storage bits: each entry holds a block address + 10-bit hash. */
    std::size_t storageBits() const { return maxEntries * (32 + 10); }

  private:
    /** Ring-index wraparound (capacity is not required to be 2^n). */
    std::size_t wrap(std::size_t i) const
    {
        return i >= maxEntries ? i - maxEntries : i;
    }

    std::size_t maxEntries;
    bool fast;                              ///< latched overhaul mode
    std::vector<PrefetchCandidate> ring;    ///< overhaul-mode storage
    std::size_t head = 0;                   ///< index of oldest entry
    std::size_t count = 0;                  ///< live entries
    std::deque<PrefetchCandidate> entries;  ///< reference-mode storage
    std::unordered_set<Addr> queuedBlocks;  ///< reference-mode dedup
    std::uint64_t pushedCount = 0;
    std::uint64_t droppedCount = 0;
    std::uint64_t duplicateCount = 0;
};

} // namespace bfsim::prefetch

#endif // BFSIM_PREFETCH_QUEUE_HH_
