/**
 * @file
 * The prefetch queue between any prefetch engine and the L1-D port.
 * Table I budgets a 100-entry queue; candidates are block-aligned,
 * deduplicated against queue contents, and dropped when the queue is
 * full (oldest-first drain).
 */

#ifndef BFSIM_PREFETCH_QUEUE_HH_
#define BFSIM_PREFETCH_QUEUE_HH_

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "common/types.hh"

namespace bfsim::prefetch {

/** One queued prefetch candidate. */
struct PrefetchCandidate
{
    Addr blockAddr = 0;           ///< block-aligned target address
    std::uint16_t loadPcHash = 0; ///< attribution for usefulness feedback
};

/** Fixed-capacity FIFO of pending prefetch candidates with dedup. */
class PrefetchQueue
{
  public:
    /** Construct with a capacity (paper: 100 entries). */
    explicit PrefetchQueue(std::size_t capacity = 100)
        : maxEntries(capacity) {}

    /**
     * Enqueue a candidate (block-aligning the address); duplicates of
     * queued blocks and full-queue pushes are dropped.
     * @return true when the candidate was accepted.
     */
    bool
    push(Addr addr, std::uint16_t load_pc_hash)
    {
        Addr block = blockAlign(addr);
        if (entries.size() >= maxEntries) {
            ++droppedCount;
            return false;
        }
        if (queuedBlocks.contains(block)) {
            ++duplicateCount;
            return false;
        }
        entries.push_back({block, load_pc_hash});
        queuedBlocks.insert(block);
        ++pushedCount;
        return true;
    }

    /** True when no candidates are pending. */
    bool empty() const { return entries.empty(); }

    /** Number of pending candidates. */
    std::size_t size() const { return entries.size(); }

    /** Pop the oldest candidate; queue must not be empty. */
    PrefetchCandidate
    pop()
    {
        PrefetchCandidate candidate = entries.front();
        entries.pop_front();
        queuedBlocks.erase(candidate.blockAddr);
        return candidate;
    }

    /** Remove all pending candidates. */
    void
    clear()
    {
        entries.clear();
        queuedBlocks.clear();
    }

    /** Candidates accepted over the run. */
    std::uint64_t pushed() const { return pushedCount; }

    /** Candidates dropped because the queue was full. */
    std::uint64_t dropped() const { return droppedCount; }

    /** Candidates dropped as duplicates of queued blocks. */
    std::uint64_t duplicates() const { return duplicateCount; }

    /** Storage bits: each entry holds a block address + 10-bit hash. */
    std::size_t storageBits() const { return maxEntries * (32 + 10); }

  private:
    std::size_t maxEntries;
    std::deque<PrefetchCandidate> entries;
    std::unordered_set<Addr> queuedBlocks;
    std::uint64_t pushedCount = 0;
    std::uint64_t droppedCount = 0;
    std::uint64_t duplicateCount = 0;
};

} // namespace bfsim::prefetch

#endif // BFSIM_PREFETCH_QUEUE_HH_
