#include "prefetch/registry.hh"

#include "prefetch/next_n_line.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"

namespace bfsim::prefetch {

namespace {

using PrefetcherRegistry = Registry<CorePrefetch>;

PrefetcherRegistry
buildRegistry()
{
    PrefetcherRegistry registry("prefetcher");

    registry.add("none", "None", [](const Params &) {
        return CorePrefetch{};
    });

    registry.add("nextn", "NextN", [](const Params &params) {
        CorePrefetch plan;
        plan.demand = std::make_unique<NextNLinePrefetcher>(
            static_cast<unsigned>(params.getU64("degree", 4)));
        return plan;
    });

    registry.add("stride", "Stride", [](const Params &params) {
        StrideConfig config;
        config.entries = static_cast<std::size_t>(
            params.getU64("entries", config.entries));
        config.degree = static_cast<unsigned>(
            params.getU64("degree", config.degree));
        CorePrefetch plan;
        plan.demand = std::make_unique<StridePrefetcher>(config);
        return plan;
    });

    registry.add("sms", "SMS", [](const Params &params) {
        SmsConfig config;
        config.regionBytes = static_cast<std::size_t>(
            params.getU64("region_bytes", config.regionBytes));
        config.granuleBytes = static_cast<std::size_t>(
            params.getU64("granule_bytes", config.granuleBytes));
        config.agtEntries = static_cast<std::size_t>(
            params.getU64("agt_entries", config.agtEntries));
        config.phtEntries = static_cast<std::size_t>(
            params.getU64("pht_entries", config.phtEntries));
        CorePrefetch plan;
        plan.demand = std::make_unique<SmsPrefetcher>(config);
        return plan;
    });

    // B-Fetch's engine is composed by the core (it wraps the core's
    // own branch predictor and prefetch queue; its knobs live in
    // CoreConfig::bfetch, swept by figs. 12/15 and the ablations).
    registry.add("bfetch", "Bfetch", [](const Params &) {
        CorePrefetch plan;
        plan.attachBFetch = true;
        return plan;
    });

    registry.add("perfect", "Perfect", [](const Params &) {
        CorePrefetch plan;
        plan.perfectMem = true;
        return plan;
    });

    return registry;
}

} // namespace

const Registry<CorePrefetch> &
prefetcherRegistry()
{
    static PrefetcherRegistry registry = buildRegistry();
    return registry;
}

CorePrefetch
makeCorePrefetch(const std::string &spec)
{
    return prefetcherRegistry().make(spec);
}

std::vector<std::string>
prefetcherNames()
{
    return prefetcherRegistry().names();
}

std::string
prefetcherDisplayName(const std::string &spec)
{
    return prefetcherRegistry().displayName(spec);
}

} // namespace bfsim::prefetch
