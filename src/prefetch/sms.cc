#include "prefetch/sms.hh"

#include <bit>

#include "common/sim_error.hh"

namespace bfsim::prefetch {

SmsPrefetcher::SmsPrefetcher(const SmsConfig &config)
    : cfg(config),
      patternWidth(static_cast<unsigned>(config.regionBytes /
                                         config.granuleBytes)),
      blocksPerGranule(static_cast<unsigned>(config.granuleBytes /
                                             blockSizeBytes)),
      agt(config.agtEntries),
      pht(config.phtEntries)
{
    if (!std::has_single_bit(cfg.regionBytes) ||
        !std::has_single_bit(cfg.granuleBytes) ||
        !std::has_single_bit(cfg.phtEntries)) {
        throw SimError("sms", "SMS sizes must be powers of two");
    }
    BFSIM_CHECK(cfg.granuleBytes >= blockSizeBytes, "sms",
                "SMS granule must be at least one cache block");
    BFSIM_CHECK(patternWidth <= 64, "sms",
                "SMS patterns wider than 64 bits are not supported");
}

Addr
SmsPrefetcher::regionOf(Addr vaddr) const
{
    return vaddr & ~static_cast<Addr>(cfg.regionBytes - 1);
}

unsigned
SmsPrefetcher::granuleOf(Addr vaddr) const
{
    return static_cast<unsigned>((vaddr & (cfg.regionBytes - 1)) /
                                 cfg.granuleBytes);
}

std::size_t
SmsPrefetcher::phtIndex(Addr pc, unsigned granule) const
{
    // PC+offset indexing as in the SMS paper: patterns are keyed on the
    // trigger instruction and its position within the region.
    std::uint64_t key = ((pc >> 2) << 5) ^ granule;
    key *= 0x9e3779b97f4a7c15ULL;
    return (key >> 16) & (pht.size() - 1);
}

void
SmsPrefetcher::endGeneration(const AgtEntry &entry)
{
    // Record only patterns with spatial correlation beyond the trigger.
    if ((entry.pattern & ~(1ULL << entry.triggerGranule)) == 0)
        return;
    PhtEntry &slot = pht[phtIndex(entry.triggerPc, entry.triggerGranule)];
    slot.pattern = entry.pattern;
    slot.valid = true;
}

void
SmsPrefetcher::observe(const DemandAccess &access, PrefetchQueue &queue)
{
    Addr region = regionOf(access.vaddr);
    unsigned granule = granuleOf(access.vaddr);

    // Accumulate into an active generation if one covers this region.
    for (auto &entry : agt) {
        if (entry.valid && entry.regionBase == region) {
            entry.pattern |= (1ULL << granule);
            entry.lruStamp = ++lruClock;
            return;
        }
    }

    // Trigger access: start a new generation, evicting the LRU entry
    // (whose generation thereby ends and trains the PHT).
    AgtEntry *victim = &agt[0];
    for (auto &entry : agt) {
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lruStamp < victim->lruStamp)
            victim = &entry;
    }
    if (victim->valid)
        endGeneration(*victim);

    victim->regionBase = region;
    victim->triggerPc = access.pc;
    victim->triggerGranule = granule;
    victim->pattern = (1ULL << granule);
    victim->lruStamp = ++lruClock;
    victim->valid = true;

    // Predict: if the PHT has a pattern for this (pc, granule) trigger,
    // stream every recorded granule of the region around the trigger.
    const PhtEntry &predicted = pht[phtIndex(access.pc, granule)];
    if (!predicted.valid)
        return;
    Addr trigger_block = blockAlign(access.vaddr);
    for (unsigned g = 0; g < patternWidth; ++g) {
        if (!(predicted.pattern & (1ULL << g)))
            continue;
        Addr granule_base =
            region + static_cast<Addr>(g) * cfg.granuleBytes;
        for (unsigned b = 0; b < blocksPerGranule; ++b) {
            Addr block = granule_base +
                         static_cast<Addr>(b) * blockSizeBytes;
            if (block == trigger_block)
                continue;
            queue.push(block, pcHash10(access.pc));
        }
    }
}

std::size_t
SmsPrefetcher::storageBits() const
{
    // AGT entry: region tag (~26) + trigger PC (32) + granule index (5) +
    // pattern (patternWidth) + valid (1).
    std::size_t agt_bits =
        agt.size() * (26 + 32 + 5 + patternWidth + 1);
    // PHT entry (untagged): pattern + valid + spare control bit, the
    // 18-bit entry Table I's 36KB budget implies.
    std::size_t pht_bits = pht.size() * (patternWidth + 2);
    return agt_bits + pht_bits;
}

} // namespace bfsim::prefetch
