#include "prefetch/stride.hh"

#include <bit>

#include "common/sim_error.hh"

namespace bfsim::prefetch {

StridePrefetcher::StridePrefetcher(const StrideConfig &config)
    : cfg(config), table(config.entries)
{
    BFSIM_CHECK(std::has_single_bit(cfg.entries), "stride",
                "stride RPT entries must be a power of two");
}

std::size_t
StridePrefetcher::index(Addr pc) const
{
    return (pc >> 2) & (table.size() - 1);
}

void
StridePrefetcher::observe(const DemandAccess &access, PrefetchQueue &queue)
{
    if (!access.isLoad)
        return;

    Entry &entry = table[index(access.pc)];
    Addr tag = access.pc >> 2;

    if (!entry.valid || entry.tag != tag) {
        entry = Entry{};
        entry.tag = tag;
        entry.lastAddr = access.vaddr;
        entry.valid = true;
        entry.state = State::Initial;
        return;
    }

    std::int64_t delta = static_cast<std::int64_t>(access.vaddr) -
                         static_cast<std::int64_t>(entry.lastAddr);
    bool matched = (delta == entry.stride) && delta != 0;

    switch (entry.state) {
      case State::Initial:
        entry.state = matched ? State::Steady : State::Transient;
        break;
      case State::Transient:
        entry.state = matched ? State::Steady : State::NoPred;
        break;
      case State::Steady:
        if (!matched)
            entry.state = State::Initial;
        break;
      case State::NoPred:
        if (matched)
            entry.state = State::Transient;
        break;
    }
    if (!matched)
        entry.stride = delta;
    entry.lastAddr = access.vaddr;

    // Classic RPT behaviour: train on every load, but launch the
    // prefetch burst only when the demand stream actually misses —
    // an all-hits steady phase keeps the prefetcher quiet.
    if (entry.state == State::Steady && entry.stride != 0 &&
        !access.l1Hit) {
        for (unsigned i = 1; i <= cfg.degree; ++i) {
            Addr target = access.vaddr +
                static_cast<Addr>(entry.stride * static_cast<std::int64_t>(i));
            queue.push(target, pcHash10(access.pc));
        }
    }
}

std::size_t
StridePrefetcher::storageBits() const
{
    // tag(30) + lastAddr(32) + stride(16) + state(2) + valid(1)
    return table.size() * (30 + 32 + 16 + 2 + 1);
}

} // namespace bfsim::prefetch
