/**
 * @file
 * "Next-n Lines" sequential prefetcher (Smith, 1978; paper III-A): on a
 * demand miss, queue the next n sequential cache lines.
 */

#ifndef BFSIM_PREFETCH_NEXT_N_LINE_HH_
#define BFSIM_PREFETCH_NEXT_N_LINE_HH_

#include "prefetch/prefetcher.hh"

namespace bfsim::prefetch {

/** Sequential next-n-lines prefetcher. */
class NextNLinePrefetcher : public Prefetcher
{
  public:
    /** Construct with a lookahead degree (lines fetched per miss). */
    explicit NextNLinePrefetcher(unsigned degree = 4) : degreeN(degree) {}

    void
    observe(const DemandAccess &access, PrefetchQueue &queue) override
    {
        if (access.l1Hit)
            return;
        Addr block = blockAlign(access.vaddr);
        for (unsigned i = 1; i <= degreeN; ++i)
            queue.push(block + i * blockSizeBytes, pcHash10(access.pc));
    }

    std::string name() const override { return "NextN"; }

    /** Stateless beyond the degree constant. */
    std::size_t storageBits() const override { return 0; }

  private:
    unsigned degreeN;
};

} // namespace bfsim::prefetch

#endif // BFSIM_PREFETCH_NEXT_N_LINE_HH_
