/**
 * @file
 * Spatial Memory Streaming (Somogyi et al., ISCA'06) — the paper's
 * "best-of-class" light-weight comparator.
 *
 * SMS divides memory into fixed spatial regions (paper configuration:
 * 2KB) and learns, per trigger instruction, the bit pattern of locations
 * the program touches within a region during one "spatial generation".
 * The implementation follows the practical configuration the B-Fetch
 * paper evaluates (IV-C): a 64-entry accumulation table and a 16K-entry
 * pattern history table; the separate filter table of the original design
 * is folded into the accumulation table, as in the JILP'11 version the
 * paper cites [24].
 *
 * Table I budgets the PHT at 36KB = 16K x 18 bits, which corresponds to
 * an untagged table whose per-region pattern is kept at a 128B granule
 * (16 pattern bits + control) rather than per 64B block. We implement
 * exactly that: each set pattern bit causes both blocks of its granule to
 * be prefetched. This coarser granule is also what the paper's milc
 * discussion contrasts with B-Fetch's 256B neg/posPatt reach.
 *
 * Generations begin at a trigger access (first touch of a region not
 * being accumulated) and end when the accumulation entry is evicted —
 * a standard proxy for the original's cache-eviction generation end.
 */

#ifndef BFSIM_PREFETCH_SMS_HH_
#define BFSIM_PREFETCH_SMS_HH_

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace bfsim::prefetch {

/** SMS configuration (defaults per paper IV-C / Table I). */
struct SmsConfig
{
    std::size_t regionBytes = 2048;  ///< spatial region size
    std::size_t granuleBytes = 128;  ///< pattern-bit coverage granule
    std::size_t agtEntries = 64;     ///< accumulation table entries
    std::size_t phtEntries = 16384;  ///< pattern history table entries
};

/** Spatial Memory Streaming prefetcher. */
class SmsPrefetcher : public Prefetcher
{
  public:
    explicit SmsPrefetcher(const SmsConfig &config = {});

    void observe(const DemandAccess &access, PrefetchQueue &queue)
        override;

    std::string name() const override { return "SMS"; }

    std::size_t storageBits() const override;

    /** Pattern bits per region (regionBytes / granuleBytes). */
    unsigned patternBits() const { return patternWidth; }

  private:
    struct AgtEntry
    {
        Addr regionBase = 0;
        Addr triggerPc = 0;
        unsigned triggerGranule = 0; ///< granule index of the trigger
        std::uint64_t pattern = 0;   ///< touched-granule bit vector
        std::uint64_t lruStamp = 0;
        bool valid = false;
    };

    struct PhtEntry
    {
        std::uint64_t pattern = 0;
        bool valid = false;
    };

    Addr regionOf(Addr vaddr) const;
    unsigned granuleOf(Addr vaddr) const;
    std::size_t phtIndex(Addr pc, unsigned granule) const;

    /** Close a generation: record its pattern into the PHT. */
    void endGeneration(const AgtEntry &entry);

    SmsConfig cfg;
    unsigned patternWidth;
    unsigned blocksPerGranule;
    std::vector<AgtEntry> agt;
    std::vector<PhtEntry> pht;
    std::uint64_t lruClock = 0;
};

} // namespace bfsim::prefetch

#endif // BFSIM_PREFETCH_SMS_HH_
