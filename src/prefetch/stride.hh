/**
 * @file
 * Reference-prediction-table stride prefetcher (Chen & Baer, 1995).
 *
 * Each load PC owns an RPT entry tracking its last address, current
 * stride and a 2-bit state machine (initial / transient / steady /
 * no-prediction). In the steady state the next `degree` strided
 * addresses are queued. The paper found degree 8 to perform best
 * ("prefetching the next 8 strided addresses", V-A) and uses that
 * configuration in all figures.
 */

#ifndef BFSIM_PREFETCH_STRIDE_HH_
#define BFSIM_PREFETCH_STRIDE_HH_

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace bfsim::prefetch {

/** Configuration of the stride prefetcher. */
struct StrideConfig
{
    std::size_t entries = 512; ///< RPT entries (power of two)
    unsigned degree = 8;       ///< strided blocks queued when steady
};

/** Per-PC stride prefetcher. */
class StridePrefetcher : public Prefetcher
{
  public:
    explicit StridePrefetcher(const StrideConfig &config = {});

    void observe(const DemandAccess &access, PrefetchQueue &queue)
        override;

    std::string name() const override { return "Stride"; }

    std::size_t storageBits() const override;

  private:
    /** RPT state machine states. */
    enum class State : std::uint8_t
    {
        Initial,
        Transient,
        Steady,
        NoPred,
    };

    struct Entry
    {
        Addr tag = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        State state = State::Initial;
        bool valid = false;
    };

    std::size_t index(Addr pc) const;

    StrideConfig cfg;
    std::vector<Entry> table;
};

} // namespace bfsim::prefetch

#endif // BFSIM_PREFETCH_STRIDE_HH_
