/**
 * @file
 * Branch-predictor registry: string-spec construction of every
 * DirectionPredictor (DESIGN.md §14).
 *
 * Specs follow the common `name[:k=v,...]` grammar of
 * common/registry.hh. Registered predictors: bimodal, gshare, local,
 * tournament (the paper's baseline), tage. Every factory honors a
 * `scale` parameter defaulting to the caller-supplied Fig. 13 size
 * scale, so `--predictor=tage` composes with the fig13 sweep's
 * bpSizeScale axis unchanged, while `tage:scale=2` pins it per spec.
 *
 * Adding a predictor is one new file implementing DirectionPredictor
 * plus one `add(...)` line in registry.cc.
 */

#ifndef BFSIM_BRANCH_REGISTRY_HH_
#define BFSIM_BRANCH_REGISTRY_HH_

#include <memory>
#include <string>
#include <vector>

#include "branch/predictor.hh"
#include "common/registry.hh"

namespace bfsim::branch {

/** The registry of direction predictors (built once, immutable). */
const Registry<std::unique_ptr<DirectionPredictor>, double> &
predictorRegistry();

/**
 * Construct the predictor described by `spec` ("tournament",
 * "tage:tables=6", ...). `size_scale` is the Fig. 13 scale applied to
 * every table unless the spec's own `scale` parameter overrides it.
 * Throws SimError for unknown names (listing the registered ones) and
 * malformed or unconsumed parameters.
 */
std::unique_ptr<DirectionPredictor>
makePredictor(const std::string &spec, double size_scale = 1.0);

/** Canonical registered predictor names, in registration order. */
std::vector<std::string> predictorNames();

/**
 * Display name for `spec` (lenient; parameter clause preserved). With
 * only lowercase canonical predictor names registered this is spec
 * normalization, kept for symmetry with prefetcherDisplayName.
 */
std::string predictorDisplayName(const std::string &spec);

} // namespace bfsim::branch

#endif // BFSIM_BRANCH_REGISTRY_HH_
