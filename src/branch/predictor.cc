#include "branch/predictor.hh"

#include <bit>
#include <cmath>

#include "common/sim_error.hh"

namespace bfsim::branch {

/** Round to the nearest power of two, at least minimum. */
std::size_t
scaledEntries(std::size_t base, double scale, std::size_t minimum)
{
    auto scaled = static_cast<std::size_t>(
        std::llround(static_cast<double>(base) * scale));
    std::size_t pow2 = std::bit_ceil(std::max(scaled, minimum));
    // bit_ceil rounds up; round down when that is closer.
    if (pow2 > minimum && pow2 - scaled > scaled - pow2 / 2)
        pow2 /= 2;
    return std::max(pow2, minimum);
}

namespace {

unsigned
log2Entries(std::size_t entries)
{
    return static_cast<unsigned>(std::bit_width(entries) - 1);
}

} // namespace

// ---------------------------------------------------------------- Bimodal

BimodalPredictor::BimodalPredictor(std::size_t entries)
    : table(entries, SatCounter(2, 1))
{
    if (!std::has_single_bit(entries))
        throw SimError("branch",
                       "bimodal predictor entries must be a power of "
                       "two");
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc >> 2) & (table.size() - 1);
}

bool
BimodalPredictor::predict(Addr pc) const
{
    return table[index(pc)].isSet();
}

bool
BimodalPredictor::probe(Addr pc, std::uint64_t) const
{
    return predict(pc);
}

void
BimodalPredictor::update(Addr pc, bool taken)
{
    auto &counter = table[index(pc)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
}

std::size_t
BimodalPredictor::storageBits() const
{
    return table.size() * 2;
}

// ----------------------------------------------------------------- GShare

GSharePredictor::GSharePredictor(std::size_t entries)
    : table(entries, SatCounter(2, 1)), histBits(log2Entries(entries))
{
    if (!std::has_single_bit(entries))
        throw SimError("branch",
                       "gshare predictor entries must be a power of "
                       "two");
}

std::size_t
GSharePredictor::index(Addr pc, std::uint64_t history) const
{
    return ((pc >> 2) ^ history) & (table.size() - 1);
}

bool
GSharePredictor::predict(Addr pc) const
{
    return probe(pc, globalHistory);
}

bool
GSharePredictor::probe(Addr pc, std::uint64_t history) const
{
    return table[index(pc, history)].isSet();
}

void
GSharePredictor::update(Addr pc, bool taken)
{
    auto &counter = table[index(pc, globalHistory)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
    globalHistory = ((globalHistory << 1) | (taken ? 1 : 0)) &
                    ((1ULL << histBits) - 1);
}

std::size_t
GSharePredictor::storageBits() const
{
    return table.size() * 2 + histBits;
}

// ------------------------------------------------------------------ Local

LocalPredictor::LocalPredictor(std::size_t history_entries,
                               unsigned history_bits,
                               std::size_t pattern_entries)
    : historyTable(history_entries, 0),
      patternTable(pattern_entries, SatCounter(3, 3)),
      localHistBits(history_bits)
{
    if (!std::has_single_bit(history_entries) ||
        !std::has_single_bit(pattern_entries)) {
        throw SimError("branch",
                       "local predictor table sizes must be powers of "
                       "two");
    }
}

std::size_t
LocalPredictor::historyIndex(Addr pc) const
{
    return (pc >> 2) & (historyTable.size() - 1);
}

bool
LocalPredictor::predict(Addr pc) const
{
    std::uint32_t hist = historyTable[historyIndex(pc)];
    return patternTable[hist & (patternTable.size() - 1)].isSet();
}

bool
LocalPredictor::probe(Addr pc, std::uint64_t) const
{
    // The local component keys on per-branch history which a lookahead
    // walker cannot speculatively extend cheaply; probing uses the
    // committed local history, a faithful model of the hardware sharing
    // in the paper (the prefetch pipeline reads the same arrays).
    return predict(pc);
}

void
LocalPredictor::update(Addr pc, bool taken)
{
    std::uint32_t &hist = historyTable[historyIndex(pc)];
    auto &counter = patternTable[hist & (patternTable.size() - 1)];
    if (taken)
        counter.increment();
    else
        counter.decrement();
    hist = ((hist << 1) | (taken ? 1 : 0)) & ((1u << localHistBits) - 1);
}

std::size_t
LocalPredictor::storageBits() const
{
    return historyTable.size() * localHistBits + patternTable.size() * 3;
}

// ------------------------------------------------------------- Tournament

TournamentPredictor::TournamentPredictor(const TournamentConfig &config)
    : localHistoryTable(scaledEntries(2048, config.sizeScale), 0),
      localPatternTable(scaledEntries(2048, config.sizeScale),
                        SatCounter(3, 3)),
      localHistBits(10),
      globalTable(scaledEntries(8192, config.sizeScale), SatCounter(2, 1)),
      chooserTable(scaledEntries(4096, config.sizeScale), SatCounter(2, 1)),
      histBits(log2Entries(globalTable.size()))
{
}

std::size_t
TournamentPredictor::chooserIndex(std::uint64_t history) const
{
    return history & (chooserTable.size() - 1);
}

std::size_t
TournamentPredictor::globalIndex(Addr pc, std::uint64_t history) const
{
    return ((pc >> 2) ^ history) & (globalTable.size() - 1);
}

bool
TournamentPredictor::predict(Addr pc) const
{
    return probe(pc, globalHistory);
}

bool
TournamentPredictor::probe(Addr pc, std::uint64_t history) const
{
    std::uint32_t local_hist =
        localHistoryTable[(pc >> 2) & (localHistoryTable.size() - 1)];
    bool local_pred =
        localPatternTable[local_hist & (localPatternTable.size() - 1)]
            .isSet();
    bool global_pred = globalTable[globalIndex(pc, history)].isSet();
    bool choose_global = chooserTable[chooserIndex(history)].isSet();
    return choose_global ? global_pred : local_pred;
}

void
TournamentPredictor::update(Addr pc, bool taken)
{
    std::uint32_t &local_hist =
        localHistoryTable[(pc >> 2) & (localHistoryTable.size() - 1)];
    auto &local_counter =
        localPatternTable[local_hist & (localPatternTable.size() - 1)];
    auto &global_counter = globalTable[globalIndex(pc, globalHistory)];
    auto &chooser = chooserTable[chooserIndex(globalHistory)];

    bool local_pred = local_counter.isSet();
    bool global_pred = global_counter.isSet();

    // Train the chooser toward whichever component was right, only on
    // disagreement (classic tournament update rule).
    if (local_pred != global_pred) {
        if (global_pred == taken)
            chooser.increment();
        else
            chooser.decrement();
    }

    if (taken) {
        local_counter.increment();
        global_counter.increment();
    } else {
        local_counter.decrement();
        global_counter.decrement();
    }

    local_hist = ((local_hist << 1) | (taken ? 1 : 0)) &
                 ((1u << localHistBits) - 1);
    globalHistory = ((globalHistory << 1) | (taken ? 1 : 0)) &
                    ((1ULL << histBits) - 1);
}

std::size_t
TournamentPredictor::storageBits() const
{
    return localHistoryTable.size() * localHistBits +
           localPatternTable.size() * 3 + globalTable.size() * 2 +
           chooserTable.size() * 2 + histBits;
}

std::unique_ptr<DirectionPredictor>
makeTournamentPredictor(double size_scale)
{
    TournamentConfig config;
    config.sizeScale = size_scale;
    return std::make_unique<TournamentPredictor>(config);
}

} // namespace bfsim::branch
