#include "branch/tage.hh"

#include <bit>
#include <cmath>

#include "common/sim_error.hh"

namespace bfsim::branch {

namespace {

/**
 * Fold `len` history bits down to `width` bits by XORing successive
 * width-bit chunks. Pure function of the explicit history value, which
 * is what keeps probe() side-effect free: no folded-history registers
 * to maintain speculatively.
 */
std::uint64_t
fold(std::uint64_t history, unsigned len, unsigned width)
{
    std::uint64_t h =
        len >= 64 ? history : history & ((1ULL << len) - 1);
    std::uint64_t folded = 0;
    for (unsigned bit = 0; bit < len; bit += width)
        folded ^= h >> bit;
    return folded & ((1ULL << width) - 1);
}

} // namespace

TagePredictor::TagePredictor(const TageConfig &config)
    : baseTable(scaledEntries(config.baseEntries, config.sizeScale),
                SatCounter(2, 1)),
      tagWidth(config.tagBits),
      maxHist(config.maxHistory)
{
    if (config.numTables < 1)
        throw SimError("branch", "tage needs at least one tagged table");
    if (config.tagBits < 4 || config.tagBits > 15)
        throw SimError("branch", "tage tag width must be in [4, 15]");
    if (config.maxHistory > 63) {
        // core/bfetch.cc masks speculative history with
        // (1 << historyBits()) - 1; 64 would overflow the shift.
        throw SimError("branch", "tage max history must be <= 63");
    }
    if (config.minHistory < 1 ||
        config.minHistory > config.maxHistory) {
        throw SimError("branch",
                       "tage history lengths must satisfy 1 <= min <= "
                       "max");
    }

    std::size_t tag_entries =
        scaledEntries(config.tagEntries, config.sizeScale);
    taggedTables.assign(config.numTables,
                        std::vector<TaggedEntry>(tag_entries));

    // Geometric history series: L_i = min * (max/min)^(i/(N-1)),
    // strictly increasing after integer rounding.
    histLengths.resize(config.numTables);
    for (unsigned t = 0; t < config.numTables; ++t) {
        double exponent =
            config.numTables > 1
                ? static_cast<double>(t) /
                      static_cast<double>(config.numTables - 1)
                : 1.0;
        double length =
            static_cast<double>(config.minHistory) *
            std::pow(static_cast<double>(config.maxHistory) /
                         static_cast<double>(config.minHistory),
                     exponent);
        auto rounded = static_cast<unsigned>(std::llround(length));
        if (t > 0 && rounded <= histLengths[t - 1])
            rounded = histLengths[t - 1] + 1;
        histLengths[t] = rounded;
    }
    if (histLengths.back() > 63)
        throw SimError("branch", "tage history series exceeds 63 bits");
    maxHist = histLengths.back();
}

std::size_t
TagePredictor::baseIndex(Addr pc) const
{
    return (pc >> 2) & (baseTable.size() - 1);
}

std::size_t
TagePredictor::tableIndex(unsigned t, Addr pc,
                          std::uint64_t history) const
{
    const std::size_t entries = taggedTables[t].size();
    const unsigned bits =
        static_cast<unsigned>(std::bit_width(entries) - 1);
    std::uint64_t hashed = (pc >> 2) ^ ((pc >> 2) >> (t + 1)) ^
                           fold(history, histLengths[t], bits);
    return hashed & (entries - 1);
}

std::uint16_t
TagePredictor::tableTag(unsigned t, Addr pc, std::uint64_t history) const
{
    std::uint64_t hashed = (pc >> 2) ^
                           fold(history, histLengths[t], tagWidth) ^
                           (fold(history, histLengths[t], tagWidth - 1)
                            << 1);
    return static_cast<std::uint16_t>(hashed &
                                      ((1ULL << tagWidth) - 1));
}

TagePredictor::Lookup
TagePredictor::lookup(Addr pc, std::uint64_t history) const
{
    Lookup result;
    bool base_pred = baseTable[baseIndex(pc)].isSet();
    result.altPred = base_pred;
    result.providerPred = base_pred;
    for (int t = static_cast<int>(taggedTables.size()) - 1; t >= 0;
         --t) {
        std::size_t index =
            tableIndex(static_cast<unsigned>(t), pc, history);
        const TaggedEntry &entry = taggedTables[t][index];
        if (entry.tag !=
            tableTag(static_cast<unsigned>(t), pc, history)) {
            continue;
        }
        if (result.provider < 0) {
            result.provider = t;
            result.providerIndex = index;
            result.providerPred = entry.ctr >= 4;
        } else {
            result.alt = t;
            result.altPred = entry.ctr >= 4;
            break;
        }
    }
    if (result.provider >= 0 && result.alt < 0)
        result.altPred = base_pred;
    result.pred =
        result.provider >= 0 ? result.providerPred : base_pred;
    return result;
}

bool
TagePredictor::predict(Addr pc) const
{
    return probe(pc, globalHistory);
}

bool
TagePredictor::probe(Addr pc, std::uint64_t history) const
{
    return lookup(pc, history).pred;
}

void
TagePredictor::update(Addr pc, bool taken)
{
    Lookup seen = lookup(pc, globalHistory);

    if (seen.provider >= 0) {
        TaggedEntry &entry =
            taggedTables[seen.provider][seen.providerIndex];
        // Useful counters track "provider beat the alternate", the
        // signal that protects the entry from reallocation.
        if (seen.providerPred != seen.altPred) {
            if (seen.providerPred == taken) {
                if (entry.useful < 3)
                    ++entry.useful;
            } else if (entry.useful > 0) {
                --entry.useful;
            }
        }
        if (taken) {
            if (entry.ctr < 7)
                ++entry.ctr;
        } else if (entry.ctr > 0) {
            --entry.ctr;
        }
        // The base table keeps learning when it was the alternate, so
        // a reallocated entry falls back on a trained default.
        if (seen.alt < 0) {
            auto &base = baseTable[baseIndex(pc)];
            if (taken)
                base.increment();
            else
                base.decrement();
        }
    } else {
        auto &base = baseTable[baseIndex(pc)];
        if (taken)
            base.increment();
        else
            base.decrement();
    }

    // Allocate in a longer-history table on a misprediction. The LFSR
    // picks how many eligible (useful == 0) tables to skip, giving the
    // classic randomized-start allocation with fully deterministic
    // state; when every candidate is protected, age them all instead.
    if (seen.pred != taken &&
        seen.provider + 1 < static_cast<int>(taggedTables.size())) {
        lfsr = static_cast<std::uint16_t>(
            (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u));
        unsigned skip = lfsr & 1u;
        bool allocated = false;
        for (unsigned t = static_cast<unsigned>(seen.provider + 1);
             t < taggedTables.size(); ++t) {
            std::size_t index = tableIndex(t, pc, globalHistory);
            TaggedEntry &entry = taggedTables[t][index];
            if (entry.useful != 0)
                continue;
            if (skip > 0) {
                --skip;
                continue;
            }
            entry.tag = tableTag(t, pc, globalHistory);
            entry.ctr = taken ? 4 : 3;
            entry.useful = 0;
            allocated = true;
            break;
        }
        if (!allocated) {
            for (unsigned t = static_cast<unsigned>(seen.provider + 1);
                 t < taggedTables.size(); ++t) {
                TaggedEntry &entry =
                    taggedTables[t][tableIndex(t, pc, globalHistory)];
                if (entry.useful > 0)
                    --entry.useful;
            }
        }
    }

    // Graceful periodic decay so stale useful bits cannot pin the
    // tables forever (the standard TAGE column reset, halved).
    if ((++updateCount & ((1u << 18) - 1)) == 0) {
        for (auto &table : taggedTables)
            for (TaggedEntry &entry : table)
                entry.useful >>= 1;
    }

    globalHistory = ((globalHistory << 1) | (taken ? 1u : 0u)) &
                    ((1ULL << maxHist) - 1);
}

std::size_t
TagePredictor::storageBits() const
{
    std::size_t bits = baseTable.size() * 2 + maxHist;
    for (const auto &table : taggedTables)
        bits += table.size() * (tagWidth + 3 + 2);
    return bits;
}

} // namespace bfsim::branch
