#include "branch/registry.hh"

#include "branch/tage.hh"

namespace bfsim::branch {

namespace {

using PredictorRegistry =
    Registry<std::unique_ptr<DirectionPredictor>, double>;

/**
 * Table entry count for a factory: an explicit `key` parameter wins
 * verbatim (the constructor's power-of-two check still applies);
 * otherwise the baseline count under the effective scale.
 */
std::size_t
entriesParam(const Params &params, const char *key, std::size_t base,
             double scale)
{
    std::uint64_t explicit_entries = params.getU64(key, 0);
    if (explicit_entries > 0)
        return static_cast<std::size_t>(explicit_entries);
    return scaledEntries(base, scale);
}

PredictorRegistry
buildRegistry()
{
    PredictorRegistry registry("predictor");

    registry.add("bimodal", "bimodal",
                 [](const Params &params, double scale) {
                     scale = params.getDouble("scale", scale);
                     return std::make_unique<BimodalPredictor>(
                         entriesParam(params, "entries", 4096, scale));
                 });

    registry.add("gshare", "gshare",
                 [](const Params &params, double scale) {
                     scale = params.getDouble("scale", scale);
                     return std::make_unique<GSharePredictor>(
                         entriesParam(params, "entries", 4096, scale));
                 });

    registry.add(
        "local", "local", [](const Params &params, double scale) {
            scale = params.getDouble("scale", scale);
            return std::make_unique<LocalPredictor>(
                entriesParam(params, "history_entries", 2048, scale),
                static_cast<unsigned>(params.getU64("history_bits", 10)),
                entriesParam(params, "pattern_entries", 2048, scale));
        });

    // The paper's baseline (Table II). The factory must construct
    // exactly what makeTournamentPredictor(scale) constructs — the
    // registry_test memcmp-identity gate depends on it.
    registry.add("tournament", "tournament",
                 [](const Params &params, double scale) {
                     TournamentConfig config;
                     config.sizeScale = params.getDouble("scale", scale);
                     return std::make_unique<TournamentPredictor>(
                         config);
                 });

    registry.add(
        "tage", "tage", [](const Params &params, double scale) {
            TageConfig config;
            config.sizeScale = params.getDouble("scale", scale);
            config.baseEntries = static_cast<std::size_t>(
                params.getU64("base_entries", config.baseEntries));
            config.tagEntries = static_cast<std::size_t>(
                params.getU64("entries", config.tagEntries));
            config.numTables = static_cast<unsigned>(
                params.getU64("tables", config.numTables));
            config.tagBits = static_cast<unsigned>(
                params.getU64("tag_bits", config.tagBits));
            config.minHistory = static_cast<unsigned>(
                params.getU64("min_hist", config.minHistory));
            config.maxHistory = static_cast<unsigned>(
                params.getU64("max_hist", config.maxHistory));
            return std::make_unique<TagePredictor>(config);
        });

    return registry;
}

} // namespace

const Registry<std::unique_ptr<DirectionPredictor>, double> &
predictorRegistry()
{
    static PredictorRegistry registry = buildRegistry();
    return registry;
}

std::unique_ptr<DirectionPredictor>
makePredictor(const std::string &spec, double size_scale)
{
    return predictorRegistry().make(spec, size_scale);
}

std::vector<std::string>
predictorNames()
{
    return predictorRegistry().names();
}

std::string
predictorDisplayName(const std::string &spec)
{
    return predictorRegistry().displayName(spec);
}

} // namespace bfsim::branch
