#include "branch/confidence.hh"

#include "common/sim_error.hh"

namespace bfsim::branch {

CompositeConfidence::CompositeConfidence(const ConfidenceConfig &config)
    : cfg(config),
      jrsTable(config.jrsEntries, SatCounter(config.jrsBits, 0)),
      upDownTable(config.upDownEntries, SatCounter(config.upDownBits, 0)),
      selfTable(config.selfEntries, SatCounter(config.selfBits, 0)),
      calibration(numCalibrationBuckets)
{
    if (!std::has_single_bit(config.jrsEntries) ||
        !std::has_single_bit(config.upDownEntries) ||
        !std::has_single_bit(config.selfEntries)) {
        throw SimError("confidence",
                       "confidence table sizes must be powers of two");
    }
}

std::size_t
CompositeConfidence::jrsIndex(Addr pc, std::uint64_t history) const
{
    // Indexed by PC alone: the lookahead walker probes branches under
    // speculative histories, and a history-hashed index would make it
    // read entries training never touched. The run-length (miss
    // distance) signal the JRS counters carry is per-branch anyway.
    (void)history;
    return ((pc >> 2) * 0x45d9f3b3ULL) & (jrsTable.size() - 1);
}

std::size_t
CompositeConfidence::upDownIndex(Addr pc) const
{
    return (pc >> 2) & (upDownTable.size() - 1);
}

std::size_t
CompositeConfidence::selfIndex(Addr pc) const
{
    // A different hash than up-down so the two per-PC tables alias
    // differently (the skewing that motivates a composite estimator).
    return ((pc >> 2) * 0x9e3779b1u) & (selfTable.size() - 1);
}

unsigned
CompositeConfidence::level(Addr pc, std::uint64_t history) const
{
    return jrsTable[jrsIndex(pc, history)].value() +
           upDownTable[upDownIndex(pc)].value() +
           selfTable[selfIndex(pc)].value();
}

unsigned
CompositeConfidence::maxLevel() const
{
    return ((1u << cfg.jrsBits) - 1) + ((1u << cfg.upDownBits) - 1) +
           ((1u << cfg.selfBits) - 1);
}

double
CompositeConfidence::estimate(Addr pc, std::uint64_t history) const
{
    unsigned lvl = level(pc, history);
    const Calibration &cal = calibration[bucketOf(lvl)];
    // Until a bucket has gathered enough outcomes, fall back to a
    // level-proportional prior so deep lookahead is possible from the
    // start on well-behaved branches.
    double p;
    if (cal.total >= 32) {
        p = (static_cast<double>(cal.correct) + 1.0) /
            (static_cast<double>(cal.total) + 2.0);
    } else {
        p = 0.5 + 0.49 * static_cast<double>(lvl) /
                      static_cast<double>(maxLevel());
    }
    if (p < 0.5)
        p = 0.5;
    if (p > 0.999)
        p = 0.999;
    return p;
}

std::size_t
CompositeConfidence::bucketOf(unsigned lvl) const
{
    // Calibration is kept per coarse confidence band rather than per
    // exact level so every band trains quickly.
    return (static_cast<std::size_t>(lvl) * numCalibrationBuckets) /
           (maxLevel() + 1);
}

void
CompositeConfidence::train(Addr pc, std::uint64_t history, bool correct)
{
    Calibration &cal = calibration[bucketOf(level(pc, history))];
    cal.total += 1;
    if (correct)
        cal.correct += 1;

    auto &jrs = jrsTable[jrsIndex(pc, history)];
    auto &ud = upDownTable[upDownIndex(pc)];
    auto &self = selfTable[selfIndex(pc)];
    if (correct) {
        jrs.increment();
        ud.increment();
        self.increment();
    } else {
        jrs.reset();
        ud.decrement();
        // Self counters penalize mispredictions harder so persistently
        // hard branches stay low-confidence.
        self.decrement();
        self.decrement();
    }
}

std::size_t
CompositeConfidence::storageBits() const
{
    return jrsTable.size() * cfg.jrsBits +
           upDownTable.size() * cfg.upDownBits +
           selfTable.size() * cfg.selfBits;
}

} // namespace bfsim::branch
