/**
 * @file
 * TAGE: TAgged GEometric-history-length branch predictor (Seznec &
 * Michaud, JILP 2006) as a drop-in DirectionPredictor.
 *
 * A bimodal base table backs N tagged tables indexed by geometrically
 * increasing slices of global history; the longest-history table with a
 * tag match provides the prediction, the next match (or the base table)
 * the alternate. Useful counters protect entries that out-predict their
 * alternate from allocation; mispredictions allocate a fresh entry in a
 * longer-history table chosen with an internal LFSR, so allocation is
 * deterministic in the committed branch stream — identical commit
 * sequences build bit-identical predictor state across live execution,
 * trace replay and disk-decoded sources.
 *
 * Constraints from the B-Fetch integration (core/bfetch.cc): probe()
 * must be a pure function of (pc, history) — all index/tag folds are
 * computed on the fly from the explicit history value, never cached —
 * and historyBits() must stay <= 63 because the lookahead engine masks
 * speculative history with (1 << historyBits()) - 1.
 */

#ifndef BFSIM_BRANCH_TAGE_HH_
#define BFSIM_BRANCH_TAGE_HH_

#include <cstdint>
#include <vector>

#include "branch/predictor.hh"

namespace bfsim::branch {

/** TAGE geometry (defaults ~8KB, the baseline tournament's class). */
struct TageConfig
{
    std::size_t baseEntries = 4096; ///< bimodal base table (power of 2)
    std::size_t tagEntries = 1024;  ///< entries per tagged table (pow 2)
    unsigned numTables = 4;         ///< tagged tables
    unsigned tagBits = 8;           ///< partial tag width
    unsigned minHistory = 5;        ///< shortest geometric history
    unsigned maxHistory = 44;       ///< longest geometric history (<=63)
    /** Uniform Fig. 13-style scale on both table entry counts. */
    double sizeScale = 1.0;
};

/** Tagged geometric-history predictor. */
class TagePredictor : public DirectionPredictor
{
  public:
    explicit TagePredictor(const TageConfig &config = {});

    bool predict(Addr pc) const override;
    bool probe(Addr pc, std::uint64_t history) const override;
    void update(Addr pc, bool taken) override;
    std::uint64_t history() const override { return globalHistory; }
    unsigned historyBits() const override { return maxHist; }
    std::size_t storageBits() const override;
    std::string name() const override { return "tage"; }

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t ctr = 3;    ///< 3-bit prediction counter (taken >= 4)
        std::uint8_t useful = 0; ///< 2-bit useful counter
    };

    /** probe()/update() shared lookup: provider + alternate. */
    struct Lookup
    {
        int provider = -1;     ///< matching table (-1 = base)
        int alt = -1;          ///< next-longest match (-1 = base)
        std::size_t providerIndex = 0;
        bool providerPred = false;
        bool altPred = false;
        bool pred = false;     ///< the final prediction
    };

    Lookup lookup(Addr pc, std::uint64_t history) const;
    std::size_t baseIndex(Addr pc) const;
    std::size_t tableIndex(unsigned t, Addr pc,
                           std::uint64_t history) const;
    std::uint16_t tableTag(unsigned t, Addr pc,
                           std::uint64_t history) const;

    std::vector<SatCounter> baseTable;
    std::vector<std::vector<TaggedEntry>> taggedTables;
    std::vector<unsigned> histLengths; ///< per-table history bits
    unsigned tagWidth;
    unsigned maxHist;
    std::uint64_t globalHistory = 0;
    /** Allocation-tie-break LFSR: pure internal state, no wall clock. */
    std::uint16_t lfsr = 0xACE1u;
    /** update() count driving the periodic useful-counter decay. */
    std::uint64_t updateCount = 0;
};

} // namespace bfsim::branch

#endif // BFSIM_BRANCH_TAGE_HH_
