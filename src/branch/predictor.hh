/**
 * @file
 * Branch direction predictor interface and concrete predictors.
 *
 * The paper's baseline core uses a 6.55KB tournament predictor (local +
 * global/gshare + chooser, in the style of the Alpha 21264/EV8 designs it
 * cites) with a 2.76% measured miss rate. Fig. 13 scales the predictor
 * to 0.5x/1x/2x/4x, so every table size here derives from one sizeScale.
 *
 * Predictors expose a side-effect-free probe() taking an explicit global
 * history value: B-Fetch's Branch Lookahead stage uses it to predict
 * *future* branches under a speculatively extended history without
 * disturbing the main pipeline's predictor state (paper IV-B.1).
 */

#ifndef BFSIM_BRANCH_PREDICTOR_HH_
#define BFSIM_BRANCH_PREDICTOR_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"

namespace bfsim::branch {

/**
 * Scale a baseline table entry count by the Fig. 13 size factor,
 * rounding to the nearest power of two but never below `minimum`.
 * Shared by every predictor the registry scales uniformly.
 */
std::size_t scaledEntries(std::size_t base, double scale,
                          std::size_t minimum = 64);

/** Saturating n-bit counter helper. */
class SatCounter
{
  public:
    /** Construct an n-bit counter with an initial value. */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxValue((1u << bits) - 1), value_(initial) {}

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (value_ < maxValue)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    /** Set to an explicit value (clamped). */
    void set(unsigned v) { value_ = v > maxValue ? maxValue : v; }

    /** Raw counter value. */
    unsigned value() const { return value_; }

    /** Maximum representable value. */
    unsigned max() const { return maxValue; }

    /** MSB test: counter in the "taken"/confident half of its range. */
    bool isSet() const { return value_ > maxValue / 2; }

  private:
    unsigned maxValue;
    unsigned value_;
};

/** Abstract conditional-branch direction predictor. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the branch at pc under current history. */
    virtual bool predict(Addr pc) const = 0;

    /**
     * Predict the direction of a branch under a caller-supplied global
     * history (used by lookahead walkers). Must not mutate any state.
     */
    virtual bool probe(Addr pc, std::uint64_t history) const = 0;

    /** Train with the resolved outcome and advance predictor history. */
    virtual void update(Addr pc, bool taken) = 0;

    /** Current global history register value. */
    virtual std::uint64_t history() const { return 0; }

    /** Number of history bits maintained (for speculative extension). */
    virtual unsigned historyBits() const { return 0; }

    /** Total predictor storage in bits (for Table I style accounting). */
    virtual std::size_t storageBits() const = 0;

    /** Short human-readable name. */
    virtual std::string name() const = 0;
};

/** A per-PC table of 2-bit counters (classic Smith predictor). */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /** Construct with a power-of-two entry count. */
    explicit BimodalPredictor(std::size_t entries = 4096);

    bool predict(Addr pc) const override;
    bool probe(Addr pc, std::uint64_t history) const override;
    void update(Addr pc, bool taken) override;
    std::size_t storageBits() const override;
    std::string name() const override { return "bimodal"; }

  private:
    std::size_t index(Addr pc) const;
    std::vector<SatCounter> table;
};

/** Global-history predictor hashing history with the PC (gshare). */
class GSharePredictor : public DirectionPredictor
{
  public:
    /** Construct with a power-of-two entry count; history bits = log2. */
    explicit GSharePredictor(std::size_t entries = 4096);

    bool predict(Addr pc) const override;
    bool probe(Addr pc, std::uint64_t history) const override;
    void update(Addr pc, bool taken) override;
    std::uint64_t history() const override { return globalHistory; }
    unsigned historyBits() const override { return histBits; }
    std::size_t storageBits() const override;
    std::string name() const override { return "gshare"; }

  private:
    std::size_t index(Addr pc, std::uint64_t history) const;

    std::vector<SatCounter> table;
    std::uint64_t globalHistory = 0;
    unsigned histBits;
};

/**
 * Two-level local-history predictor: a per-branch history table feeding a
 * pattern table of 3-bit counters (Alpha 21264 local predictor shape).
 */
class LocalPredictor : public DirectionPredictor
{
  public:
    LocalPredictor(std::size_t history_entries = 2048,
                   unsigned history_bits = 10,
                   std::size_t pattern_entries = 2048);

    bool predict(Addr pc) const override;
    bool probe(Addr pc, std::uint64_t history) const override;
    void update(Addr pc, bool taken) override;
    std::size_t storageBits() const override;
    std::string name() const override { return "local"; }

  private:
    std::size_t historyIndex(Addr pc) const;

    std::vector<std::uint32_t> historyTable;
    std::vector<SatCounter> patternTable;
    unsigned localHistBits;
};

/** Configuration for the tournament predictor. */
struct TournamentConfig
{
    /**
     * Uniform scale on all table entry counts; 1.0 is the paper's
     * baseline (~6.5KB), 0.5/2/4 reproduce the Fig. 13 sweep.
     */
    double sizeScale = 1.0;
};

/**
 * Tournament predictor: local + gshare components with a global-history
 * indexed chooser, as in the paper's baseline (Table II).
 */
class TournamentPredictor : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(const TournamentConfig &config = {});

    bool predict(Addr pc) const override;
    bool probe(Addr pc, std::uint64_t history) const override;
    void update(Addr pc, bool taken) override;
    std::uint64_t history() const override { return globalHistory; }
    unsigned historyBits() const override { return histBits; }
    std::size_t storageBits() const override;
    std::string name() const override { return "tournament"; }

  private:
    std::size_t chooserIndex(std::uint64_t history) const;
    std::size_t globalIndex(Addr pc, std::uint64_t history) const;

    // Local component.
    std::vector<std::uint32_t> localHistoryTable;
    std::vector<SatCounter> localPatternTable;
    unsigned localHistBits;

    // Global component.
    std::vector<SatCounter> globalTable;

    // Chooser: isSet() selects the global component.
    std::vector<SatCounter> chooserTable;

    std::uint64_t globalHistory = 0;
    unsigned histBits;
};

/** Factory: the baseline predictor used across the evaluation. */
std::unique_ptr<DirectionPredictor>
makeTournamentPredictor(double size_scale = 1.0);

} // namespace bfsim::branch

#endif // BFSIM_BRANCH_PREDICTOR_HH_
