/**
 * @file
 * Branch confidence estimation.
 *
 * B-Fetch throttles its lookahead with a *path* confidence: the product of
 * the estimated correctness probabilities of the branch predictions along
 * the walked path (after Malik et al., "PaCo", HPCA'08). Individual branch
 * confidence comes from a composite estimator combining JRS
 * (miss-distance) counters, up-down counters, and per-branch self counters
 * (after Jimenez, SBAC-PAD'09) — exactly the combination paper IV-B.1
 * describes.
 *
 * The composite value is converted to a correctness probability through an
 * online calibration table: for each composite confidence level we track
 * how often the prediction actually proved correct and report the observed
 * frequency (with Laplace smoothing). This makes the estimator
 * self-calibrating across workloads with very different branch behaviour.
 */

#ifndef BFSIM_BRANCH_CONFIDENCE_HH_
#define BFSIM_BRANCH_CONFIDENCE_HH_

#include <cstdint>
#include <vector>

#include "branch/predictor.hh"
#include "common/types.hh"

namespace bfsim::branch {

/** Configuration for the composite confidence estimator. */
struct ConfidenceConfig
{
    std::size_t jrsEntries = 1024;      ///< JRS table entries
    unsigned jrsBits = 4;               ///< JRS counter width
    std::size_t upDownEntries = 512;    ///< up-down table entries
    unsigned upDownBits = 4;            ///< up-down counter width
    std::size_t selfEntries = 512;      ///< self-counter table entries
    unsigned selfBits = 4;              ///< self counter width
};

/**
 * Composite branch-confidence estimator (JRS + up-down + self).
 *
 * query() is side-effect free so the B-Fetch lookahead can consult it for
 * speculative future branches; train() is called once per committed
 * conditional branch with whether the prediction was correct.
 */
class CompositeConfidence
{
  public:
    explicit CompositeConfidence(const ConfidenceConfig &config = {});

    /**
     * Estimated probability that a prediction for the branch at pc (under
     * the given global history) is correct, in [0.5, 1.0).
     */
    double estimate(Addr pc, std::uint64_t history) const;

    /** Raw composite confidence level (sum of the three counters). */
    unsigned level(Addr pc, std::uint64_t history) const;

    /** Train with the correctness of a resolved prediction. */
    void train(Addr pc, std::uint64_t history, bool correct);

    /** Total storage in bits for Table I accounting. */
    std::size_t storageBits() const;

    /** Maximum composite level (all three counters saturated). */
    unsigned maxLevel() const;

  private:
    std::size_t jrsIndex(Addr pc, std::uint64_t history) const;
    std::size_t upDownIndex(Addr pc) const;
    std::size_t selfIndex(Addr pc) const;

    ConfidenceConfig cfg;

    /** JRS: incremented on correct, reset on incorrect. */
    std::vector<SatCounter> jrsTable;
    /** Up-down: incremented on correct, decremented on incorrect. */
    std::vector<SatCounter> upDownTable;
    /** Self: per-branch up-down with stronger decrement. */
    std::vector<SatCounter> selfTable;

    /** Calibration: per confidence band, observed (correct, total). */
    struct Calibration
    {
        std::uint64_t correct = 0;
        std::uint64_t total = 0;
    };
    static constexpr std::size_t numCalibrationBuckets = 16;
    std::size_t bucketOf(unsigned lvl) const;
    std::vector<Calibration> calibration;
};

/**
 * Multiplicative path-confidence accumulator used by the Branch Lookahead
 * stage: starts at 1.0 and multiplies in each predicted branch's estimated
 * correctness probability; lookahead stops once below the threshold.
 */
class PathConfidence
{
  public:
    /** Construct with the termination threshold (paper default 0.75). */
    explicit PathConfidence(double threshold = 0.75)
        : thresholdValue(threshold) {}

    /** Reset to full confidence at the start of a lookahead walk. */
    void reset() { confidenceValue = 1.0; }

    /** Fold in one branch's correctness probability. */
    void accumulate(double probability) { confidenceValue *= probability; }

    /** Current cumulative path confidence. */
    double value() const { return confidenceValue; }

    /** True while the path is still considered reliable. */
    bool aboveThreshold() const { return confidenceValue >= thresholdValue; }

    /** The configured threshold. */
    double threshold() const { return thresholdValue; }

  private:
    double thresholdValue;
    double confidenceValue = 1.0;
};

} // namespace bfsim::branch

#endif // BFSIM_BRANCH_CONFIDENCE_HH_
