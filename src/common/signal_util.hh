/**
 * @file
 * Signal utilities for the supervised-process layer: human-readable
 * wait-status decoding (a crashed worker's exit report) and a
 * process-wide graceful-shutdown latch (SIGINT/SIGTERM) the
 * process-isolated batch backend and the bfsimd daemon poll.
 *
 * The latch follows the classic self-pipe pattern: the handler is
 * async-signal-safe (one atomic increment + one write on a pre-opened
 * pipe), and the supervising loop includes the pipe's read end in its
 * poll set so a signal interrupts the wait immediately instead of at
 * the next timeout tick. The *first* signal requests a graceful drain
 * (finish in-flight jobs, journal them, flush partial reports); a
 * *second* signal escalates to immediate abort (in-flight work is
 * killed and reported failed).
 */

#ifndef BFSIM_COMMON_SIGNAL_UTIL_HH_
#define BFSIM_COMMON_SIGNAL_UTIL_HH_

#include <string>

namespace bfsim::signal_util {

/** "SIGSEGV"-style name, or "signal N" for exotic numbers. */
std::string signalName(int sig);

/**
 * Describe a waitpid() status: "exited with status 1", "killed by
 * SIGSEGV", "killed by SIGKILL (core dumped)", ...
 */
std::string describeWaitStatus(int status);

/**
 * Install the SIGINT/SIGTERM shutdown handlers (idempotent) and ignore
 * SIGPIPE (supervisors write to pipes whose peer may have just died;
 * they handle EPIPE explicitly). Safe to call repeatedly.
 */
void installShutdownHandlers();

/**
 * Number of shutdown signals received since the last reset: 0 = run,
 * 1 = drain gracefully, >=2 = abort in-flight work.
 */
int shutdownSignalCount();

/** Convenience: shutdownSignalCount() > 0. */
bool shutdownRequested();

/**
 * Read end of the self-pipe (POLLIN turns ready when a shutdown signal
 * arrives); -1 before installShutdownHandlers(). Never read it empty —
 * use drainShutdownFd() so level-triggered polls don't spin.
 */
int shutdownFd();

/** Consume pending self-pipe bytes (after poll reported readability). */
void drainShutdownFd();

/**
 * Reset the signal count (tests; also the daemon between sweeps when a
 * drain completed and the process decided to keep serving).
 */
void resetShutdownState();

/**
 * Simulate a received shutdown signal (tests: exercises the drain path
 * without delivering a real signal to the test runner).
 */
void requestShutdownForTest();

} // namespace bfsim::signal_util

#endif // BFSIM_COMMON_SIGNAL_UTIL_HH_
