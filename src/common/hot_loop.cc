#include "common/hot_loop.hh"

#include <atomic>
#include <cstdlib>
#include <string>

namespace bfsim {

namespace {

std::atomic<bool> &
hotLoopFlag()
{
    static std::atomic<bool> enabled{[] {
        const char *env = std::getenv("BFSIM_BATCH_OPS");
        return !(env && std::string(env) == "0");
    }()};
    return enabled;
}

} // namespace

bool
hotLoopEnabled()
{
    return hotLoopFlag().load(std::memory_order_relaxed);
}

void
setHotLoopEnabled(bool enabled)
{
    hotLoopFlag().store(enabled, std::memory_order_relaxed);
}

} // namespace bfsim
