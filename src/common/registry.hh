/**
 * @file
 * String-keyed component registry with typed parameter bags.
 *
 * Components (branch predictors, prefetchers, ...) are selected by a
 * textual spec of the form `name[:key=value,key=value,...]` — from the
 * CLI (`--predictor=tage:tables=6`), the environment (BFSIM_PREDICTOR),
 * or a config struct — and constructed through a Registry that maps the
 * lowercased name to a factory. Factories pull their knobs out of a
 * Params bag with typed getters; every key a factory does not consume
 * is reported as an error, so a typo'd knob fails the job loudly
 * instead of silently running the default configuration.
 *
 * Error policy (DESIGN.md §10): everything here throws SimError — an
 * unknown name (the message lists every registered name), a malformed
 * `k=v` pair, a value that does not parse as the requested type, or an
 * unconsumed key. Construction happens inside simulation jobs, where
 * one bad spec must cost one sweep row, not the process; CLI parsers
 * validate eagerly and translate the SimError into fatal() themselves.
 *
 * Registries are built once inside a function-local static (no static
 * initialization order fiasco, no self-registration objects a linker
 * could drop from a static archive); adding a component is one new
 * file plus one `add(...)` line in the component family's registry.cc.
 */

#ifndef BFSIM_COMMON_REGISTRY_HH_
#define BFSIM_COMMON_REGISTRY_HH_

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_error.hh"

namespace bfsim {

/** Lowercased copy of `text` (component names are case-insensitive). */
inline std::string
toLowerName(const std::string &text)
{
    std::string lower = text;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return lower;
}

/**
 * Typed key=value parameter bag handed to component factories. Getters
 * take a default for absent keys, throw SimError on values that do not
 * parse as the requested type, and mark the key consumed; the registry
 * calls checkConsumed() after the factory returns so unknown keys are
 * diagnosed with the component context attached.
 */
class Params
{
  public:
    Params() = default;

    /** Component family ("predictor", "prefetcher") for error text. */
    void setContext(std::string component, std::string owner)
    {
        comp = std::move(component);
        own = std::move(owner);
    }

    /** Insert one key=value pair (parser use). */
    void set(const std::string &key, const std::string &value)
    {
        entries.emplace_back(key, value);
    }

    bool
    has(const std::string &key) const
    {
        return find(key) != nullptr;
    }

    std::string
    getString(const std::string &key, const std::string &def) const
    {
        const std::string *value = take(key);
        return value ? *value : def;
    }

    std::uint64_t
    getU64(const std::string &key, std::uint64_t def) const
    {
        const std::string *value = take(key);
        if (!value)
            return def;
        char *end = nullptr;
        unsigned long long parsed =
            std::strtoull(value->c_str(), &end, 10);
        if (value->empty() || !end || *end != '\0')
            throw malformed(key, *value, "an unsigned integer");
        return parsed;
    }

    double
    getDouble(const std::string &key, double def) const
    {
        const std::string *value = take(key);
        if (!value)
            return def;
        char *end = nullptr;
        double parsed = std::strtod(value->c_str(), &end);
        if (value->empty() || !end || *end != '\0')
            throw malformed(key, *value, "a number");
        return parsed;
    }

    bool
    getBool(const std::string &key, bool def) const
    {
        const std::string *value = take(key);
        if (!value)
            return def;
        if (*value == "1" || *value == "true")
            return true;
        if (*value == "0" || *value == "false")
            return false;
        throw malformed(key, *value, "a boolean (0/1/true/false)");
    }

    /** Throw SimError when any key was never consumed by a getter. */
    void
    checkConsumed() const
    {
        std::string unknown;
        for (const auto &[key, value] : entries) {
            if (consumed.count(key))
                continue;
            if (!unknown.empty())
                unknown += ", ";
            unknown += key;
        }
        if (!unknown.empty()) {
            throw SimError("registry", "unknown parameter(s) [" +
                                           unknown + "] for " + comp +
                                           " '" + own + "'");
        }
    }

  private:
    const std::string *
    find(const std::string &key) const
    {
        for (const auto &entry : entries)
            if (entry.first == key)
                return &entry.second;
        return nullptr;
    }

    const std::string *
    take(const std::string &key) const
    {
        const std::string *value = find(key);
        if (value)
            consumed.insert(key);
        return value;
    }

    SimError
    malformed(const std::string &key, const std::string &value,
              const std::string &expected) const
    {
        return SimError("registry", "parameter '" + key + "' of " +
                                        comp + " '" + own +
                                        "' expects " + expected +
                                        ", got '" + value + "'");
    }

    std::string comp = "component";
    std::string own = "?";
    std::vector<std::pair<std::string, std::string>> entries;
    mutable std::set<std::string> consumed;
};

/** A parsed `name[:k=v,...]` component spec. */
struct ComponentSpec
{
    std::string name;       ///< lowercased component name
    std::string paramsText; ///< raw text after ':' ("" when absent)
    Params params;
};

/**
 * Parse `name[:k=v,k=v,...]`; `component` names the family for error
 * messages. Throws SimError on an empty name or a parameter clause
 * that is not a comma-separated k=v list.
 */
inline ComponentSpec
parseComponentSpec(const std::string &spec, const std::string &component)
{
    ComponentSpec parsed;
    std::string::size_type colon = spec.find(':');
    parsed.name = toLowerName(spec.substr(0, colon));
    if (parsed.name.empty()) {
        throw SimError("registry",
                       "empty " + component + " name in spec '" + spec +
                           "'");
    }
    if (colon == std::string::npos)
        return parsed;
    parsed.paramsText = spec.substr(colon + 1);
    parsed.params.setContext(component, parsed.name);
    std::string::size_type pos = 0;
    while (pos <= parsed.paramsText.size()) {
        std::string::size_type comma = parsed.paramsText.find(',', pos);
        std::string pair = parsed.paramsText.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        std::string::size_type eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw SimError("registry",
                           "malformed parameter '" + pair + "' in " +
                               component + " spec '" + spec +
                               "' (expected key=value)");
        }
        parsed.params.set(toLowerName(pair.substr(0, eq)),
                          pair.substr(eq + 1));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return parsed;
}

/**
 * A string-keyed factory table for one component family. `Product` is
 * what factories return (e.g. std::unique_ptr<DirectionPredictor>);
 * `Args...` are extra construction inputs threaded through make()
 * (e.g. the Fig. 13 size scale a CoreConfig supplies).
 */
template <typename Product, typename... Args>
class Registry
{
  public:
    using Factory = std::function<Product(const Params &, Args...)>;

    /** @param component family name used in diagnostics. */
    explicit Registry(std::string component)
        : comp(std::move(component))
    {
    }

    /** Register `factory` under (lowercase) `name`. */
    void
    add(const std::string &name, const std::string &display,
        Factory factory)
    {
        entries.emplace_back(
            Entry{toLowerName(name), display, std::move(factory)});
    }

    /** True when (lowercased) `name` is registered. */
    bool
    known(const std::string &name) const
    {
        return findEntry(toLowerName(name)) != nullptr;
    }

    /** Registered canonical names, in registration order. */
    std::vector<std::string>
    names() const
    {
        std::vector<std::string> result;
        for (const Entry &entry : entries)
            result.push_back(entry.name);
        return result;
    }

    /**
     * The display name (paper figure-legend spelling) for `spec`,
     * lenient: an unregistered or unparsable name is returned verbatim
     * so label/table assembly outside jobs never throws; a parameter
     * clause is preserved so differently parameterized runs stay
     * distinguishable in labels and memo keys.
     */
    std::string
    displayName(const std::string &spec) const
    {
        std::string::size_type colon = spec.find(':');
        std::string name = spec.substr(0, colon);
        std::string suffix =
            colon == std::string::npos ? "" : spec.substr(colon);
        const Entry *entry = findEntry(toLowerName(name));
        return (entry ? entry->display : name) + suffix;
    }

    /**
     * Parse `spec` and construct the product. Throws SimError for an
     * unknown name (listing every registered name), a malformed or
     * mistyped parameter, or a parameter no factory knob consumed.
     */
    Product
    make(const std::string &spec, Args... args) const
    {
        ComponentSpec parsed = parseComponentSpec(spec, comp);
        const Entry *entry = findEntry(parsed.name);
        if (!entry) {
            std::string known_names;
            for (const Entry &e : entries) {
                if (!known_names.empty())
                    known_names += ", ";
                known_names += e.name;
            }
            throw SimError("registry", "unknown " + comp + " '" +
                                           parsed.name +
                                           "' (registered: " +
                                           known_names + ")");
        }
        parsed.params.setContext(comp, parsed.name);
        Product product = entry->factory(parsed.params, args...);
        parsed.params.checkConsumed();
        return product;
    }

  private:
    struct Entry
    {
        std::string name;
        std::string display;
        Factory factory;
    };

    const Entry *
    findEntry(const std::string &name) const
    {
        for (const Entry &entry : entries)
            if (entry.name == name)
                return &entry;
        return nullptr;
    }

    std::string comp;
    std::vector<Entry> entries;
};

} // namespace bfsim

#endif // BFSIM_COMMON_REGISTRY_HH_
