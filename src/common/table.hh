/**
 * @file
 * Plain-text table formatting for the benchmark harness: every bench binary
 * prints rows in the same layout as the corresponding paper table or figure
 * series so results can be compared side by side.
 */

#ifndef BFSIM_COMMON_TABLE_HH_
#define BFSIM_COMMON_TABLE_HH_

#include <iosfwd>
#include <string>
#include <vector>

namespace bfsim {

/** A column-aligned plain-text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; the cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string fmt(double value, int precision = 3);

    /** Convenience: format an unsigned integer. */
    static std::string fmt(std::uint64_t value);

    /** Render the full table to a string. */
    std::string render() const;

    /** Write the rendered table to a stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (for downstream plotting). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> headerCells;
    std::vector<std::vector<std::string>> rows;
};

} // namespace bfsim

#endif // BFSIM_COMMON_TABLE_HH_
