#include "common/subprocess.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

namespace bfsim::subprocess {

namespace {

void
put32(unsigned char *out, std::uint32_t value)
{
    out[0] = static_cast<unsigned char>(value);
    out[1] = static_cast<unsigned char>(value >> 8);
    out[2] = static_cast<unsigned char>(value >> 16);
    out[3] = static_cast<unsigned char>(value >> 24);
}

std::uint32_t
get32(const unsigned char *in)
{
    return static_cast<std::uint32_t>(in[0]) |
           static_cast<std::uint32_t>(in[1]) << 8 |
           static_cast<std::uint32_t>(in[2]) << 16 |
           static_cast<std::uint32_t>(in[3]) << 24;
}

} // namespace

bool
Pipe::open()
{
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0)
        return false;
    readFd = fds[0];
    writeFd = fds[1];
    return true;
}

void
Pipe::closeRead()
{
    if (readFd >= 0) {
        ::close(readFd);
        readFd = -1;
    }
}

void
Pipe::closeWrite()
{
    if (writeFd >= 0) {
        ::close(writeFd);
        writeFd = -1;
    }
}

void
Pipe::close()
{
    closeRead();
    closeWrite();
}

bool
writeFully(int fd, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readFully(int fd, void *data, std::size_t len)
{
    unsigned char *p = static_cast<unsigned char *>(data);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-object
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, FrameType type, const void *payload, std::size_t len)
{
    if (len > maxFramePayload)
        return false;
    unsigned char header[8];
    put32(header, static_cast<std::uint32_t>(len));
    put32(header + 4, static_cast<std::uint32_t>(type));

    // One writev keeps header+payload contiguous on the pipe even if a
    // concurrent writer (serialized by the caller's mutex, but possibly
    // interleaving at syscall granularity without it) is misused; short
    // writes still fall back to the byte-exact loop.
    struct iovec iov[2];
    iov[0].iov_base = header;
    iov[0].iov_len = sizeof header;
    iov[1].iov_base = const_cast<void *>(payload);
    iov[1].iov_len = len;
    std::size_t total = sizeof header + len;
    for (;;) {
        ssize_t n = ::writev(fd, iov, len > 0 ? 2 : 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (static_cast<std::size_t>(n) == total)
            return true;
        // Short write: finish byte-exactly.
        std::size_t written = static_cast<std::size_t>(n);
        if (written < sizeof header) {
            if (!writeFully(fd, header + written,
                            sizeof header - written))
                return false;
            written = sizeof header;
        }
        return writeFully(
            fd, static_cast<const unsigned char *>(payload) +
                    (written - sizeof header),
            total - written);
    }
}

bool
readFrame(int fd, FrameType &type, std::vector<unsigned char> &payload)
{
    unsigned char header[8];
    if (!readFully(fd, header, sizeof header))
        return false;
    std::uint32_t len = get32(header);
    if (len > maxFramePayload)
        return false;
    type = static_cast<FrameType>(get32(header + 4));
    payload.resize(len);
    if (len > 0 && !readFully(fd, payload.data(), len))
        return false;
    return true;
}

void
FrameDecoder::feed(const unsigned char *data, std::size_t len)
{
    if (corrupted)
        return;
    buffer.insert(buffer.end(), data, data + len);
}

bool
FrameDecoder::next(Frame &frame)
{
    if (corrupted)
        return false;
    // Compact lazily: drop consumed prefix when it dominates.
    if (consumed > 0 && consumed * 2 > buffer.size()) {
        buffer.erase(buffer.begin(),
                     buffer.begin() +
                         static_cast<std::ptrdiff_t>(consumed));
        consumed = 0;
    }
    std::size_t avail = buffer.size() - consumed;
    if (avail < 8)
        return false;
    const unsigned char *base = buffer.data() + consumed;
    std::uint32_t len = get32(base);
    if (len > maxFramePayload) {
        corrupted = true;
        return false;
    }
    if (avail < 8 + static_cast<std::size_t>(len))
        return false;
    frame.type = static_cast<FrameType>(get32(base + 4));
    frame.payload.assign(base + 8, base + 8 + len);
    consumed += 8 + static_cast<std::size_t>(len);
    return true;
}

bool
drainIntoDecoder(int fd, FrameDecoder &decoder)
{
    unsigned char chunk[65536];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
            decoder.feed(chunk, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof chunk)
                return true; // drained what was there
            continue;
        }
        if (n == 0)
            return false; // EOF: writer is gone
        if (errno == EINTR)
            continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
    }
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
parseHostPort(const std::string &spec, std::string &host,
              std::uint16_t &port)
{
    std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || colon + 1 >= spec.size())
        return false;
    const std::string port_text = spec.substr(colon + 1);
    char *end = nullptr;
    unsigned long value = std::strtoul(port_text.c_str(), &end, 10);
    if (!end || *end != '\0' || value > 65535)
        return false;
    host = spec.substr(0, colon);
    port = static_cast<std::uint16_t>(value);
    return true;
}

namespace {

struct AddrInfoGuard
{
    ~AddrInfoGuard()
    {
        if (info)
            ::freeaddrinfo(info);
    }
    struct addrinfo *info = nullptr;
};

} // namespace

int
dialTcp(const std::string &host, std::uint16_t port,
        double timeoutSeconds, std::string &why)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof hints);
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    AddrInfoGuard guard;
    std::string port_text = std::to_string(port);
    int rc = ::getaddrinfo(host.empty() ? "127.0.0.1" : host.c_str(),
                           port_text.c_str(), &hints, &guard.info);
    if (rc != 0) {
        why = std::string("resolve ") + host + ": " + gai_strerror(rc);
        return -1;
    }

    why = "no usable address";
    for (struct addrinfo *ai = guard.info; ai; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family,
                          ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
        if (fd < 0) {
            why = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        // Non-blocking connect + poll implements the timeout; the fd is
        // restored to blocking mode for the caller's framed I/O.
        setNonBlocking(fd);
        int result = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
        if (result != 0 && errno == EINPROGRESS) {
            struct pollfd pfd = {fd, POLLOUT, 0};
            int timeout_ms = timeoutSeconds > 0
                                 ? static_cast<int>(timeoutSeconds * 1e3)
                                 : -1;
            int ready = ::poll(&pfd, 1, timeout_ms);
            if (ready > 0) {
                int err = 0;
                socklen_t len = sizeof err;
                ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
                result = err == 0 ? 0 : -1;
                errno = err;
            } else {
                result = -1;
                errno = ready == 0 ? ETIMEDOUT : errno;
            }
        }
        if (result != 0) {
            why = std::string("connect: ") + std::strerror(errno);
            ::close(fd);
            continue;
        }
        int flags = ::fcntl(fd, F_GETFL, 0);
        if (flags >= 0)
            ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return fd;
    }
    return -1;
}

int
listenTcp(const std::string &host, std::uint16_t port,
          std::uint16_t &boundPort, std::string &why)
{
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof hints);
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    AddrInfoGuard guard;
    std::string port_text = std::to_string(port);
    int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                           port_text.c_str(), &hints, &guard.info);
    if (rc != 0) {
        why = std::string("resolve ") + host + ": " + gai_strerror(rc);
        return -1;
    }

    why = "no usable address";
    for (struct addrinfo *ai = guard.info; ai; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family,
                          ai->ai_socktype | SOCK_CLOEXEC, ai->ai_protocol);
        if (fd < 0) {
            why = std::string("socket: ") + std::strerror(errno);
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 ||
            ::listen(fd, 16) != 0) {
            why = std::string("bind/listen: ") + std::strerror(errno);
            ::close(fd);
            continue;
        }
        struct sockaddr_storage bound;
        socklen_t len = sizeof bound;
        if (::getsockname(fd, reinterpret_cast<struct sockaddr *>(&bound),
                          &len) == 0) {
            if (bound.ss_family == AF_INET) {
                boundPort = ntohs(
                    reinterpret_cast<struct sockaddr_in *>(&bound)
                        ->sin_port);
            } else if (bound.ss_family == AF_INET6) {
                boundPort = ntohs(
                    reinterpret_cast<struct sockaddr_in6 *>(&bound)
                        ->sin6_port);
            } else {
                boundPort = port;
            }
        } else {
            boundPort = port;
        }
        return fd;
    }
    return -1;
}

} // namespace bfsim::subprocess
