#include "common/subprocess.hh"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

namespace bfsim::subprocess {

namespace {

void
put32(unsigned char *out, std::uint32_t value)
{
    out[0] = static_cast<unsigned char>(value);
    out[1] = static_cast<unsigned char>(value >> 8);
    out[2] = static_cast<unsigned char>(value >> 16);
    out[3] = static_cast<unsigned char>(value >> 24);
}

std::uint32_t
get32(const unsigned char *in)
{
    return static_cast<std::uint32_t>(in[0]) |
           static_cast<std::uint32_t>(in[1]) << 8 |
           static_cast<std::uint32_t>(in[2]) << 16 |
           static_cast<std::uint32_t>(in[3]) << 24;
}

} // namespace

bool
Pipe::open()
{
    int fds[2];
    if (::pipe2(fds, O_CLOEXEC) != 0)
        return false;
    readFd = fds[0];
    writeFd = fds[1];
    return true;
}

void
Pipe::closeRead()
{
    if (readFd >= 0) {
        ::close(readFd);
        readFd = -1;
    }
}

void
Pipe::closeWrite()
{
    if (writeFd >= 0) {
        ::close(writeFd);
        writeFd = -1;
    }
}

void
Pipe::close()
{
    closeRead();
    closeWrite();
}

bool
writeFully(int fd, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    while (len > 0) {
        ssize_t n = ::write(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
readFully(int fd, void *data, std::size_t len)
{
    unsigned char *p = static_cast<unsigned char *>(data);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false; // EOF mid-object
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeFrame(int fd, FrameType type, const void *payload, std::size_t len)
{
    if (len > maxFramePayload)
        return false;
    unsigned char header[8];
    put32(header, static_cast<std::uint32_t>(len));
    put32(header + 4, static_cast<std::uint32_t>(type));

    // One writev keeps header+payload contiguous on the pipe even if a
    // concurrent writer (serialized by the caller's mutex, but possibly
    // interleaving at syscall granularity without it) is misused; short
    // writes still fall back to the byte-exact loop.
    struct iovec iov[2];
    iov[0].iov_base = header;
    iov[0].iov_len = sizeof header;
    iov[1].iov_base = const_cast<void *>(payload);
    iov[1].iov_len = len;
    std::size_t total = sizeof header + len;
    for (;;) {
        ssize_t n = ::writev(fd, iov, len > 0 ? 2 : 1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (static_cast<std::size_t>(n) == total)
            return true;
        // Short write: finish byte-exactly.
        std::size_t written = static_cast<std::size_t>(n);
        if (written < sizeof header) {
            if (!writeFully(fd, header + written,
                            sizeof header - written))
                return false;
            written = sizeof header;
        }
        return writeFully(
            fd, static_cast<const unsigned char *>(payload) +
                    (written - sizeof header),
            total - written);
    }
}

bool
readFrame(int fd, FrameType &type, std::vector<unsigned char> &payload)
{
    unsigned char header[8];
    if (!readFully(fd, header, sizeof header))
        return false;
    std::uint32_t len = get32(header);
    if (len > maxFramePayload)
        return false;
    type = static_cast<FrameType>(get32(header + 4));
    payload.resize(len);
    if (len > 0 && !readFully(fd, payload.data(), len))
        return false;
    return true;
}

void
FrameDecoder::feed(const unsigned char *data, std::size_t len)
{
    if (corrupted)
        return;
    buffer.insert(buffer.end(), data, data + len);
}

bool
FrameDecoder::next(Frame &frame)
{
    if (corrupted)
        return false;
    // Compact lazily: drop consumed prefix when it dominates.
    if (consumed > 0 && consumed * 2 > buffer.size()) {
        buffer.erase(buffer.begin(),
                     buffer.begin() +
                         static_cast<std::ptrdiff_t>(consumed));
        consumed = 0;
    }
    std::size_t avail = buffer.size() - consumed;
    if (avail < 8)
        return false;
    const unsigned char *base = buffer.data() + consumed;
    std::uint32_t len = get32(base);
    if (len > maxFramePayload) {
        corrupted = true;
        return false;
    }
    if (avail < 8 + static_cast<std::size_t>(len))
        return false;
    frame.type = static_cast<FrameType>(get32(base + 4));
    frame.payload.assign(base + 8, base + 8 + len);
    consumed += 8 + static_cast<std::size_t>(len);
    return true;
}

bool
drainIntoDecoder(int fd, FrameDecoder &decoder)
{
    unsigned char chunk[65536];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n > 0) {
            decoder.feed(chunk, static_cast<std::size_t>(n));
            if (static_cast<std::size_t>(n) < sizeof chunk)
                return true; // drained what was there
            continue;
        }
        if (n == 0)
            return false; // EOF: writer is gone
        if (errno == EINTR)
            continue;
        return errno == EAGAIN || errno == EWOULDBLOCK;
    }
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // namespace bfsim::subprocess
