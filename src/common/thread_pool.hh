/**
 * @file
 * Fixed-size FIFO thread pool used by the parallel experiment batch
 * runner (harness::runBatch). Tasks are executed in submission order
 * (each worker pops the oldest queued task); results and exceptions
 * propagate through std::future.
 *
 * The pool is deliberately small and boring: simulation jobs are
 * long-running (hundreds of milliseconds to minutes), so scheduling
 * overhead is irrelevant and a single locked deque outperforms a
 * work-stealing setup in complexity per unit of benefit.
 */

#ifndef BFSIM_COMMON_THREAD_POOL_HH_
#define BFSIM_COMMON_THREAD_POOL_HH_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace bfsim {

/** A fixed-size pool of std::thread workers draining a FIFO queue. */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers (0 means defaultThreadCount()). The pool
     * never spawns fewer than one worker.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every queued task, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Begin shutdown: queued tasks still drain, but no new submissions
     * are accepted. Idempotent; the destructor calls it implicitly.
     * Does not join — that remains the destructor's job.
     */
    void stop();

    /**
     * Enqueue a callable; returns a future for its result. Exceptions
     * thrown by the callable surface from future::get(). Submitting
     * after stop() (or racing the destructor) never terminates the
     * process: the returned future holds a std::runtime_error instead.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using Result = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<F>(fn));
        std::future<Result> future = task->get_future();
        if (!enqueue([task] { (*task)(); })) {
            // Pool is stopping: report through the future so callers on
            // other threads see a job failure, not std::terminate.
            std::promise<Result> rejected;
            future = rejected.get_future();
            rejected.set_exception(std::make_exception_ptr(
                std::runtime_error("ThreadPool::submit on a stopping "
                                   "pool")));
        }
        return future;
    }

    /**
     * Worker count for parallel batches: the BFSIM_JOBS environment
     * variable if set to a positive integer, else the hardware
     * concurrency (at least 1).
     */
    static unsigned defaultThreadCount();

  private:
    /** @return false (task dropped) when the pool is stopping. */
    bool enqueue(std::function<void()> task);
    void workerLoop();

    std::mutex mutex;
    std::condition_variable available;
    std::deque<std::function<void()>> queue;
    bool stopping = false;
    std::vector<std::thread> workers;
};

} // namespace bfsim

#endif // BFSIM_COMMON_THREAD_POOL_HH_
