/**
 * @file
 * Lightweight statistics package: named counters, distributions
 * (histograms), and cumulative-distribution helpers used to regenerate the
 * paper's CDF figures (Fig. 3a/3b) and per-cycle breakdowns (Fig. 7).
 */

#ifndef BFSIM_COMMON_STATS_HH_
#define BFSIM_COMMON_STATS_HH_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bfsim {

/** A simple monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    /** Increment by amount (default 1). */
    void inc(std::uint64_t amount = 1) { count_ += amount; }

    /** Current value. */
    std::uint64_t value() const { return count_; }

    /** Reset to zero. */
    void reset() { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/**
 * A bucketed histogram over the integer range [0, numBuckets-1]; samples
 * at or beyond the last bucket accumulate in an overflow bucket.
 */
class Histogram
{
  public:
    /** Create a histogram with the given number of regular buckets. */
    explicit Histogram(std::size_t num_buckets)
        : buckets(num_buckets, 0) {}

    /** Record one sample. */
    void
    sample(std::uint64_t value)
    {
        if (value < buckets.size())
            ++buckets[value];
        else
            ++overflowCount;
        ++totalCount;
    }

    /** Count in bucket i. */
    std::uint64_t bucket(std::size_t i) const { return buckets.at(i); }

    /** Count of samples beyond the last bucket. */
    std::uint64_t overflow() const { return overflowCount; }

    /** Total samples recorded. */
    std::uint64_t total() const { return totalCount; }

    /** Number of regular buckets. */
    std::size_t size() const { return buckets.size(); }

    /** Fraction of samples in bucket i (0 if the histogram is empty). */
    double
    fraction(std::size_t i) const
    {
        return totalCount == 0
                   ? 0.0
                   : static_cast<double>(buckets.at(i)) /
                         static_cast<double>(totalCount);
    }

    /**
     * Cumulative fraction of samples in buckets [0, i]; the value the
     * paper's CDF plots report on the y-axis for delta <= i.
     */
    double
    cumulativeFraction(std::size_t i) const
    {
        if (totalCount == 0)
            return 0.0;
        std::uint64_t sum = 0;
        for (std::size_t k = 0; k <= i && k < buckets.size(); ++k)
            sum += buckets[k];
        return static_cast<double>(sum) / static_cast<double>(totalCount);
    }

    /** Reset all buckets. */
    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        overflowCount = 0;
        totalCount = 0;
    }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflowCount = 0;
    std::uint64_t totalCount = 0;
};

/**
 * Arithmetic helpers over vectors of per-benchmark results; the paper
 * reports geometric means of speedups throughout its evaluation.
 */
double geometricMean(const std::vector<double> &values);

/** Arithmetic mean (used for the paper's branch miss-rate averages). */
double arithmeticMean(const std::vector<double> &values);

/**
 * A registry of named statistics for one simulation, supporting stable
 * iteration order for report generation.
 */
class StatSet
{
  public:
    /** Look up (creating on first use) a named counter. */
    Counter &counter(const std::string &name);

    /** Read a named counter; returns 0 when never created. */
    std::uint64_t get(const std::string &name) const;

    /** All counters in name order. */
    const std::map<std::string, Counter> &all() const { return counters; }

    /** Reset every counter. */
    void reset();

  private:
    std::map<std::string, Counter> counters;
};

} // namespace bfsim

#endif // BFSIM_COMMON_STATS_HH_
