/**
 * @file
 * Low-level subprocess / IPC helpers for the process-isolated execution
 * backend (harness/process_pool) and the bfsimd sweep daemon.
 *
 * The worker protocol is deliberately tiny: each direction of a worker
 * pipe carries length-prefixed frames — a fixed 8-byte header (payload
 * length + frame type, both little-endian u32) followed by the payload
 * bytes. Parent→worker frames dispatch jobs and request shutdown;
 * worker→parent frames return serialized results and heartbeats. Both
 * ends of a pipe live in the same binary, so the payload encoding
 * (harness/wire.hh) needs no cross-version negotiation; the sweep
 * journal, which *does* survive across builds, carries its own magic
 * and version.
 *
 * All raw I/O here is EINTR-safe. Blocking helpers (readFrame,
 * writeFrame) serve the single-threaded worker loop; the supervising
 * parent multiplexes many workers with non-blocking reads fed through a
 * FrameDecoder per pipe.
 */

#ifndef BFSIM_COMMON_SUBPROCESS_HH_
#define BFSIM_COMMON_SUBPROCESS_HH_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bfsim::subprocess {

/** Frame types on a worker pipe or a bfsimd TCP connection. */
enum class FrameType : std::uint32_t
{
    Job = 1,       ///< parent→worker: run job (payload: index + attempt)
    Exit = 2,      ///< parent→worker: drain and _exit cleanly
    Result = 3,    ///< worker→parent: serialized BatchItem
    Heartbeat = 4, ///< worker→parent: liveness beacon (empty payload)
    Hello = 5,     ///< worker→parent: ready for the first job
    // TCP transport (service/transport.hh): the daemon's line protocol
    // and the coordinator's job-shipping protocol share one framing.
    Line = 6,       ///< either way: one text line (no trailing newline)
    WireJob = 7,    ///< coordinator→worker: ordinal + retries + BatchJob
    WireResult = 8, ///< worker→coordinator: ordinal + BatchItem
    // Remote trace-store tier (sim/trace_store.hh): GET/PUT of whole
    // content-addressed artifacts against a daemon-hosted store.
    StoreGet = 9,   ///< client→store: artifact file name
    StorePut = 10,  ///< client→store: name length + name + artifact bytes
    StoreData = 11, ///< store→client: artifact bytes (GET hit)
    StoreMiss = 12, ///< store→client: no such artifact (GET miss)
    StoreAck = 13,  ///< store→client: PUT outcome (1 stored, 0 skipped)
};

/**
 * Upper bound on a frame payload (1 GiB). A length beyond this means a
 * corrupted stream (or a desynchronized reader), not a real frame;
 * readers reject it instead of attempting the allocation.
 */
inline constexpr std::uint32_t maxFramePayload = 1u << 30;

/** One unidirectional pipe; fds are -1 until open() and after close. */
struct Pipe
{
    int readFd = -1;
    int writeFd = -1;

    /** Create (O_CLOEXEC). @return false with errno left set on failure. */
    bool open();
    void closeRead();
    void closeWrite();
    void close();
};

/**
 * Write exactly `len` bytes, retrying short writes and EINTR.
 * @return false on any other error (EPIPE when the peer died).
 */
bool writeFully(int fd, const void *data, std::size_t len);

/**
 * Read exactly `len` bytes, retrying short reads and EINTR.
 * @return false on EOF or error before `len` bytes arrived.
 */
bool readFully(int fd, void *data, std::size_t len);

/**
 * Write one frame (header + payload) with a single gathered write so
 * concurrent writers on the same fd (worker result vs. heartbeat
 * threads) still need only external serialization, not re-framing.
 */
bool writeFrame(int fd, FrameType type, const void *payload,
                std::size_t len);

/** Blocking read of one frame. @return false on EOF/error/oversize. */
bool readFrame(int fd, FrameType &type,
               std::vector<unsigned char> &payload);

/** A parsed frame produced by FrameDecoder. */
struct Frame
{
    FrameType type = FrameType::Heartbeat;
    std::vector<unsigned char> payload;
};

/**
 * Incremental frame parser for the non-blocking supervisor side: feed
 * whatever bytes arrived, then drain complete frames. A frame whose
 * header advertises more than maxFramePayload poisons the decoder
 * (corrupt() turns true and no further frames are produced) — the
 * supervisor treats that worker as crashed.
 */
class FrameDecoder
{
  public:
    void feed(const unsigned char *data, std::size_t len);

    /** Extract the next complete frame. @return false when none. */
    bool next(Frame &frame);

    bool corrupt() const { return corrupted; }

  private:
    std::vector<unsigned char> buffer;
    std::size_t consumed = 0;
    bool corrupted = false;
};

/**
 * Drain readable bytes from a non-blocking fd into `decoder`.
 * @return false when the fd reached EOF or a hard error (worker gone);
 * true when more data may arrive later (including EAGAIN).
 */
bool drainIntoDecoder(int fd, FrameDecoder &decoder);

/** Set O_NONBLOCK on `fd`. @return false on fcntl failure. */
bool setNonBlocking(int fd);

/**
 * Split "host:port" (host may be empty or a dotted quad / name; the
 * port must be 0..65535). @return false on malformed input without
 * touching the outputs.
 */
bool parseHostPort(const std::string &spec, std::string &host,
                   std::uint16_t &port);

/**
 * Blocking TCP connect to host:port with a bounded connect timeout.
 * Numeric addresses and names both resolve (getaddrinfo). @return the
 * connected fd (O_CLOEXEC, blocking), or -1 with a reason in `why`.
 */
int dialTcp(const std::string &host, std::uint16_t port,
            double timeoutSeconds, std::string &why);

/**
 * Create a listening TCP socket bound to host:port (host "" binds all
 * interfaces; port 0 picks an ephemeral port). SO_REUSEADDR is set so
 * restarting daemons do not trip over TIME_WAIT. @return the listening
 * fd and the actually-bound port in `boundPort`, or -1 with a reason
 * in `why`.
 */
int listenTcp(const std::string &host, std::uint16_t port,
              std::uint16_t &boundPort, std::string &why);

} // namespace bfsim::subprocess

#endif // BFSIM_COMMON_SUBPROCESS_HH_
