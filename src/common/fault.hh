/**
 * @file
 * Deterministic seeded fault injection.
 *
 * The harness's recovery paths (per-job failure isolation, bounded
 * retry, trace-capture fallback, crash-safe report writing) are only
 * trustworthy if something actually exercises them, so this facility
 * lets tests and CI plant exactly one failure at a well-defined point:
 *
 *     BFSIM_FAULT=site:nth[:seed]
 *
 *  - `site`  names the injection point: `step` (functional executor
 *    step), `trace` (trace-capture extension), `cache` (memory
 *    hierarchy access), `report` (batch report write), `trace_store`
 *    (on-disk trace artifact open / chunk decode), `crash` (kill the
 *    process-isolated worker with a fatal signal; see Site::WorkerCrash).
 *  - `nth`   selects the fault *scope*: batch jobs are numbered 1..N in
 *    submission order and each job attempt runs inside its own scope,
 *    so `cache:4` fails job 4 — deterministically, serial or parallel.
 *    `nth=0` matches any scope, including code outside a batch (the
 *    report writer runs unscoped; under parallelism the victim job of
 *    an `nth=0` sim-site fault is whichever thread hits it first).
 *  - `seed`  (optional, default 0) picks *which* hit inside the scope
 *    fails: 0 means the scope's first hit of the site; a non-zero seed
 *    deterministically selects a later hit (2..9 via splitmix64), which
 *    e.g. moves a `trace` fault past the harness's capture probe so it
 *    strikes mid-run instead of degrading at source creation.
 *
 * A fault fires exactly once per arming, then self-disarms: the
 * targeted job fails, every other job is untouched, and a retry of the
 * failed job recomputes cleanly — which is precisely the property the
 * recovery tests need to witness. BFSIM_FAULT is read once at process
 * start; tests re-arm programmatically (see harness/fault.hh for the
 * RAII wrapper).
 *
 * Cost when disarmed: one relaxed atomic load per site hit.
 */

#ifndef BFSIM_COMMON_FAULT_HH_
#define BFSIM_COMMON_FAULT_HH_

#include <atomic>
#include <cstdint>
#include <string>

namespace bfsim::fault {

/** Injection points. Keep siteName()/parseSite() in sync. */
enum class Site : unsigned
{
    ExecutorStep = 0, ///< sim::Executor::step ("step")
    TraceExtend,      ///< sim::TraceBuffer::ensure extension ("trace")
    CacheAccess,      ///< mem::Hierarchy::access ("cache")
    ReportWrite,      ///< harness::writeBatchReportFile ("report")
    TraceStore,       ///< trace_store artifact open/decode ("trace_store")
    /**
     * Process-isolated worker crash ("crash"): instead of throwing, the
     * firing site raises a fatal signal (BFSIM_CRASH_SIGNAL: "segv"
     * default, "kill", "abort") and the *whole worker process* dies.
     * Only checked inside harness/process_pool workers — in-process
     * backends ignore it, because there the equivalent event would take
     * down the entire batch, which is exactly what process isolation
     * exists to prevent.
     */
    WorkerCrash,
    siteCount
};

/** Spec name of a site ("step", "trace", "cache", "report", ...). */
const char *siteName(Site site);

/** Parse a spec site name. @return false on unknown names. */
bool parseSite(const std::string &name, Site &site);

/**
 * Arm one fault: fail at `site`, in fault scope `scope` (0 = any), on
 * hit plannedHit(seed) within the scope. Replaces any armed fault and
 * resets the fired count.
 */
void arm(Site site, std::uint64_t scope, std::uint64_t seed = 0);

/** Arm from a "site:nth[:seed]" spec. @return false on parse errors. */
bool armFromSpec(const std::string &spec);

/** Disarm without firing (idempotent). */
void disarm();

/** True while a fault is armed and has not fired yet. */
bool armed();

/** Number of faults injected since the last arm (0 or 1). */
std::uint64_t firedCount();

/** The in-scope hit index (1-based) a given seed targets. */
std::uint64_t plannedHit(std::uint64_t seed);

/**
 * Enter fault scope `ordinal` on this thread (batch runner: job index
 * + 1, per attempt). Resets this thread's per-site hit counters.
 * Ordinal 0 restores the unscoped state.
 */
void beginScope(std::uint64_t ordinal);

/** This thread's current fault scope (0 = unscoped). */
std::uint64_t currentScope();

namespace detail {
extern std::atomic<bool> armedFlag;
bool shouldFailSlow(Site site);
} // namespace detail

/**
 * Site check, called at each injection point: true when this invocation
 * must fail (the caller then throws SimError or degrades). Nearly free
 * while disarmed.
 */
inline bool
shouldFail(Site site)
{
    if (!detail::armedFlag.load(std::memory_order_relaxed))
        return false;
    return detail::shouldFailSlow(site);
}

} // namespace bfsim::fault

#endif // BFSIM_COMMON_FAULT_HH_
