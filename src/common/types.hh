/**
 * @file
 * Fundamental scalar types and cache-geometry constants shared by every
 * module of the B-Fetch simulation library.
 */

#ifndef BFSIM_COMMON_TYPES_HH_
#define BFSIM_COMMON_TYPES_HH_

#include <cstdint>
#include <cstddef>

namespace bfsim {

/** Byte address in the simulated (per-core virtual) address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Architectural register value. */
using RegVal = std::uint64_t;

/** Architectural register index (0..numArchRegs-1). */
using RegIndex = std::uint8_t;

/** Dynamic-instruction sequence number (monotonic per core). */
using InstSeqNum = std::uint64_t;

/** Number of architectural integer registers in the micro-ISA. */
constexpr int numArchRegs = 32;

/** Cache block size in bytes; all caches share this geometry (paper: 64B). */
constexpr unsigned blockSizeBytes = 64;

/** log2 of the cache block size. */
constexpr unsigned blockSizeBits = 6;

static_assert((1u << blockSizeBits) == blockSizeBytes,
              "block size constants disagree");

/** Align an address down to its containing cache-block address. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(blockSizeBytes - 1);
}

/** Cache-block number of an address (address divided by block size). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> blockSizeBits;
}

/** Signed distance between two addresses expressed in cache blocks. */
constexpr std::int64_t
blockDelta(Addr a, Addr b)
{
    return static_cast<std::int64_t>(blockNumber(a)) -
           static_cast<std::int64_t>(blockNumber(b));
}

/** An invalid / sentinel address. */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

} // namespace bfsim

#endif // BFSIM_COMMON_TYPES_HH_
