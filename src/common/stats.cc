#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace bfsim {

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

Counter &
StatSet::counter(const std::string &name)
{
    return counters[name];
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

void
StatSet::reset()
{
    for (auto &entry : counters)
        entry.second.reset();
}

} // namespace bfsim
