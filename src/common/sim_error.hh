/**
 * @file
 * Structured, recoverable simulation errors.
 *
 * SimError is the exception type for everything that can go wrong
 * *inside one simulation job* — bad sweep configurations (non-power-of-
 * two table sizes, zero-width cores), runtime invariant violations that
 * only poison the current run (unaligned functional accesses, trace
 * capacity overflow), watchdog trips, and injected faults. The batch
 * runner (harness::runBatch) catches SimError (and any std::exception)
 * per job, so one bad (workload, config) pair costs one row of a sweep
 * table, not the whole multi-hour campaign.
 *
 * Errors carry context: the component that threw, the simulated cycle
 * (when known), and the workload / batch-job label active on the
 * throwing thread (installed by the batch runner via SimJobScope), so a
 * failed row in a 116-job report says exactly which run died and where.
 *
 * panic()/fatal() in common/log.hh remain for the cases where dying is
 * correct: programmer errors in bench table assembly, CLI misuse, and
 * corrupted static program images. See DESIGN.md "Error-handling
 * policy" for the throw-vs-abort split.
 */

#ifndef BFSIM_COMMON_SIM_ERROR_HH_
#define BFSIM_COMMON_SIM_ERROR_HH_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace bfsim {

/** Per-thread job attribution attached to SimErrors thrown on it. */
struct SimJobContext
{
    std::string workload; ///< workload name(s), '+'-joined for mixes
    std::string label;    ///< batch-job label ("" outside a batch)
};

/** The context currently installed on this thread. */
const SimJobContext &simJobContext();

/** Install / replace this thread's job context (batch runner). */
void setSimJobContext(SimJobContext context);

/** RAII installer: sets the thread's job context, restores on exit. */
class SimJobScope
{
  public:
    SimJobScope(std::string workload, std::string label)
        : saved(simJobContext())
    {
        setSimJobContext({std::move(workload), std::move(label)});
    }
    ~SimJobScope() { setSimJobContext(std::move(saved)); }

    SimJobScope(const SimJobScope &) = delete;
    SimJobScope &operator=(const SimJobScope &) = delete;

  private:
    SimJobContext saved;
};

/**
 * A recoverable simulation failure. what() is preformatted as
 * "component: message [workload=..., label=..., cycle=N]" with the
 * bracketed part present only when context exists.
 */
class SimError : public std::runtime_error
{
  public:
    /**
     * @param component  subsystem that failed ("ooo_core", "trace"...)
     * @param message    human-readable description
     * @param cycle      simulated cycle of the failure (0 = unknown)
     */
    SimError(std::string component, std::string message,
             std::uint64_t cycle = 0);

    const std::string &component() const { return comp; }
    const std::string &message() const { return msg; }
    /** Workload active on the throwing thread ("" if none). */
    const std::string &workload() const { return wl; }
    /** Batch-job label active on the throwing thread ("" if none). */
    const std::string &label() const { return lbl; }
    /** Simulated cycle at the failure (0 = unknown / not applicable). */
    std::uint64_t cycle() const { return cyc; }

  private:
    std::string comp;
    std::string msg;
    std::string wl;
    std::string lbl;
    std::uint64_t cyc;
};

} // namespace bfsim

/**
 * Throw a SimError when `cond` is false. For recoverable invariants and
 * configuration checks inside simulation components; replaces
 * panic()/fatal() at call-sites where one job should fail, not the
 * process. The failed condition text is appended to the message.
 */
#define BFSIM_CHECK(cond, component, message)                            \
    do {                                                                 \
        if (!(cond)) {                                                   \
            throw ::bfsim::SimError((component), std::string(message) +  \
                                                     " [check: " #cond   \
                                                     "]");               \
        }                                                                \
    } while (0)

#endif // BFSIM_COMMON_SIM_ERROR_HH_
