/**
 * @file
 * Process-wide kill-switch for the hot-loop overhaul (DESIGN.md §11):
 * batched op delivery, the static decode cache, and the shift-based
 * cache index arithmetic. Enabled by default; BFSIM_BATCH_OPS=0 keeps
 * the pre-overhaul loop alive as the bit-identity (and measurement)
 * reference — one virtual next() call and one full re-classification
 * per dynamic op, divide-based set/tag math in mem::Cache.
 *
 * Lives in common/ because both the sim/ consumers and mem::Cache need
 * it without creating a sim -> mem -> sim cycle.
 */

#ifndef BFSIM_COMMON_HOT_LOOP_HH_
#define BFSIM_COMMON_HOT_LOOP_HH_

namespace bfsim {

/** Whether the hot-loop overhaul is active (default; BFSIM_BATCH_OPS=0
 *  selects the reference path). Consumers latch this at construction,
 *  so toggles only affect simulators built afterwards. */
bool hotLoopEnabled();

/** Programmatic override of BFSIM_BATCH_OPS (tests, tools). */
void setHotLoopEnabled(bool enabled);

} // namespace bfsim

#endif // BFSIM_COMMON_HOT_LOOP_HH_
