/**
 * @file
 * Deterministic pseudo-random number generation for workload construction.
 *
 * We deliberately avoid std::mt19937 here: workload memory images must be
 * bit-identical across platforms and standard library versions so that
 * experiment results are reproducible. SplitMix64 is tiny, fast and has
 * well-understood statistical quality for this purpose.
 */

#ifndef BFSIM_COMMON_RNG_HH_
#define BFSIM_COMMON_RNG_HH_

#include <cstdint>

namespace bfsim {

/** SplitMix64 generator (Steele, Lea, Flood; public domain algorithm). */
class Rng
{
  public:
    /** Construct with a seed; the same seed always yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound); bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform value in the closed range [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool chance(double p) { return real() < p; }

  private:
    std::uint64_t state;
};

} // namespace bfsim

#endif // BFSIM_COMMON_RNG_HH_
