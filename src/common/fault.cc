#include "common/fault.hh"

#include <array>
#include <cstdlib>

#include "common/log.hh"

namespace bfsim::fault {

namespace detail {
std::atomic<bool> armedFlag{false};
} // namespace detail

namespace {

/** Armed-fault parameters; written under no contention (arm/disarm are
 * test/bootstrap operations), read racily only behind armedFlag. */
std::atomic<unsigned> armedSite{0};
std::atomic<std::uint64_t> armedScope{0};
std::atomic<std::uint64_t> armedHit{1};
std::atomic<std::uint64_t> fired{0};

thread_local std::uint64_t threadScope = 0;
thread_local std::array<std::uint64_t,
                        static_cast<unsigned>(Site::siteCount)>
    threadHits{};

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool
parseUint(const std::string &text, std::uint64_t &value)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    value = std::strtoull(text.c_str(), &end, 10);
    return end && *end == '\0';
}

/** One-time BFSIM_FAULT bootstrap at static-init (before main). */
const bool envLoaded = [] {
    if (const char *env = std::getenv("BFSIM_FAULT")) {
        if (!armFromSpec(env))
            warn(std::string("ignoring malformed BFSIM_FAULT spec '") +
                 env + "' (want site:nth[:seed])");
    }
    return true;
}();

} // namespace

const char *
siteName(Site site)
{
    switch (site) {
      case Site::ExecutorStep: return "step";
      case Site::TraceExtend: return "trace";
      case Site::CacheAccess: return "cache";
      case Site::ReportWrite: return "report";
      case Site::TraceStore: return "trace_store";
      case Site::WorkerCrash: return "crash";
      case Site::siteCount: break;
    }
    return "?";
}

bool
parseSite(const std::string &name, Site &site)
{
    for (unsigned s = 0; s < static_cast<unsigned>(Site::siteCount);
         ++s) {
        if (name == siteName(static_cast<Site>(s))) {
            site = static_cast<Site>(s);
            return true;
        }
    }
    return false;
}

std::uint64_t
plannedHit(std::uint64_t seed)
{
    // Seed 0: the scope's first hit. Otherwise a deterministic later
    // hit, kept small (2..9) so even short smoke runs reach it.
    return seed == 0 ? 1 : 2 + splitmix64(seed) % 8;
}

void
arm(Site site, std::uint64_t scope, std::uint64_t seed)
{
    detail::armedFlag.store(false, std::memory_order_relaxed);
    armedSite.store(static_cast<unsigned>(site),
                    std::memory_order_relaxed);
    armedScope.store(scope, std::memory_order_relaxed);
    armedHit.store(plannedHit(seed), std::memory_order_relaxed);
    fired.store(0, std::memory_order_relaxed);
    detail::armedFlag.store(true, std::memory_order_release);
}

bool
armFromSpec(const std::string &spec)
{
    std::size_t first = spec.find(':');
    if (first == std::string::npos)
        return false;
    std::size_t second = spec.find(':', first + 1);
    std::string site_name = spec.substr(0, first);
    std::string nth_text =
        second == std::string::npos
            ? spec.substr(first + 1)
            : spec.substr(first + 1, second - first - 1);

    Site site;
    std::uint64_t nth = 0, seed = 0;
    if (!parseSite(site_name, site) || !parseUint(nth_text, nth))
        return false;
    if (second != std::string::npos &&
        !parseUint(spec.substr(second + 1), seed)) {
        return false;
    }
    arm(site, nth, seed);
    return true;
}

void
disarm()
{
    detail::armedFlag.store(false, std::memory_order_relaxed);
}

bool
armed()
{
    return detail::armedFlag.load(std::memory_order_relaxed);
}

std::uint64_t
firedCount()
{
    return fired.load(std::memory_order_relaxed);
}

void
beginScope(std::uint64_t ordinal)
{
    threadScope = ordinal;
    threadHits.fill(0);
}

std::uint64_t
currentScope()
{
    return threadScope;
}

namespace detail {

bool
shouldFailSlow(Site site)
{
    if (static_cast<unsigned>(site) !=
        armedSite.load(std::memory_order_relaxed)) {
        return false;
    }
    std::uint64_t scope = armedScope.load(std::memory_order_relaxed);
    if (scope != 0 && scope != threadScope)
        return false;
    std::uint64_t hit = ++threadHits[static_cast<unsigned>(site)];
    if (hit != armedHit.load(std::memory_order_relaxed))
        return false;
    // Fire exactly once per arming, even when scope 0 lets several
    // threads race to the planned hit.
    bool expected = true;
    if (!armedFlag.compare_exchange_strong(expected, false))
        return false;
    fired.fetch_add(1, std::memory_order_relaxed);
    return true;
}

} // namespace detail

} // namespace bfsim::fault
