#include "common/signal_util.hh"

#include <atomic>
#include <csignal>
#include <cstring>
#include <mutex>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace bfsim::signal_util {

namespace {

std::atomic<int> signalCount{0};
int pipeFds[2] = {-1, -1};
std::once_flag installOnce;

extern "C" void
shutdownHandler(int)
{
    signalCount.fetch_add(1, std::memory_order_relaxed);
    if (pipeFds[1] >= 0) {
        unsigned char byte = 1;
        // Best effort: a full pipe already guarantees readability.
        [[maybe_unused]] ssize_t n = ::write(pipeFds[1], &byte, 1);
    }
}

} // namespace

std::string
signalName(int sig)
{
    switch (sig) {
      case SIGHUP: return "SIGHUP";
      case SIGINT: return "SIGINT";
      case SIGQUIT: return "SIGQUIT";
      case SIGILL: return "SIGILL";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGKILL: return "SIGKILL";
      case SIGSEGV: return "SIGSEGV";
      case SIGPIPE: return "SIGPIPE";
      case SIGALRM: return "SIGALRM";
      case SIGTERM: return "SIGTERM";
      default: break;
    }
    return "signal " + std::to_string(sig);
}

std::string
describeWaitStatus(int status)
{
    if (WIFEXITED(status)) {
        return "exited with status " +
               std::to_string(WEXITSTATUS(status));
    }
    if (WIFSIGNALED(status)) {
        std::string text = "killed by " + signalName(WTERMSIG(status));
#ifdef WCOREDUMP
        if (WCOREDUMP(status))
            text += " (core dumped)";
#endif
        return text;
    }
    return "wait status " + std::to_string(status);
}

void
installShutdownHandlers()
{
    std::call_once(installOnce, [] {
        if (::pipe(pipeFds) == 0) {
            ::fcntl(pipeFds[0], F_SETFD, FD_CLOEXEC);
            ::fcntl(pipeFds[1], F_SETFD, FD_CLOEXEC);
            ::fcntl(pipeFds[0], F_SETFL, O_NONBLOCK);
            ::fcntl(pipeFds[1], F_SETFL, O_NONBLOCK);
        }
        struct sigaction action;
        std::memset(&action, 0, sizeof action);
        action.sa_handler = shutdownHandler;
        ::sigemptyset(&action.sa_mask);
        // No SA_RESTART: blocking accept()/poll() must wake up.
        ::sigaction(SIGINT, &action, nullptr);
        ::sigaction(SIGTERM, &action, nullptr);
        ::signal(SIGPIPE, SIG_IGN);
    });
}

int
shutdownSignalCount()
{
    return signalCount.load(std::memory_order_relaxed);
}

bool
shutdownRequested()
{
    return shutdownSignalCount() > 0;
}

int
shutdownFd()
{
    return pipeFds[0];
}

void
drainShutdownFd()
{
    if (pipeFds[0] < 0)
        return;
    unsigned char sink[64];
    while (::read(pipeFds[0], sink, sizeof sink) > 0) {
    }
}

void
resetShutdownState()
{
    signalCount.store(0, std::memory_order_relaxed);
    drainShutdownFd();
}

void
requestShutdownForTest()
{
    shutdownHandler(SIGTERM);
}

} // namespace bfsim::signal_util
