/**
 * @file
 * Minimal logging / error-termination helpers in the spirit of gem5's
 * base/logging.hh: panic() for internal invariant violations, fatal() for
 * user-facing configuration errors, warn()/inform() for status messages.
 *
 * Termination is reserved for failures outside any simulation job
 * (CLI misuse, bench table-assembly bugs, corrupted static programs).
 * Anything that can fail *inside one job* of a batch — sweep configs,
 * per-run invariants, watchdogs — throws SimError instead (see
 * common/sim_error.hh) so the batch runner can isolate the failure to
 * that job.
 */

#ifndef BFSIM_COMMON_LOG_HH_
#define BFSIM_COMMON_LOG_HH_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace bfsim {

/**
 * Terminate because an internal invariant was violated (a simulator bug).
 * Mirrors gem5 panic(): aborts so a debugger / core dump can intervene.
 */
[[noreturn]] void panic(const std::string &message);

/**
 * Terminate because of a user-level configuration error (not a bug).
 * Mirrors gem5 fatal(): exits with a non-zero status.
 */
[[noreturn]] void fatal(const std::string &message);

/** Emit a non-fatal warning to stderr. */
void warn(const std::string &message);

/** Emit an informational status message to stderr. */
void inform(const std::string &message);

/** Globally silence warn()/inform() (used by benches to keep tables clean). */
void setQuiet(bool quiet);

} // namespace bfsim

#endif // BFSIM_COMMON_LOG_HH_
