#include "common/checksum.hh"

#include <array>

namespace bfsim {

namespace {

/** CRC-32C (Castagnoli, reflected polynomial 0x82f63b78) byte table. */
constexpr std::array<std::uint32_t, 256>
makeCrc32cTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0u);
        table[i] = crc;
    }
    return table;
}

constexpr std::array<std::uint32_t, 256> crcTable = makeCrc32cTable();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = (crc >> 8) ^ crcTable[(crc ^ bytes[i]) & 0xffu];
    return ~crc;
}

} // namespace bfsim
