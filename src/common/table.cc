#include "common/table.hh"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/log.hh"

namespace bfsim {

TextTable::TextTable(std::vector<std::string> headers)
    : headerCells(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headerCells.size())
        panic("TextTable row width mismatch");
    rows.push_back(std::move(cells));
}

std::string
TextTable::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TextTable::fmt(std::uint64_t value)
{
    return std::to_string(value);
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headerCells.size(), 0);
    for (std::size_t c = 0; c < headerCells.size(); ++c)
        widths[c] = headerCells[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << cells[c];
        }
        os << '\n';
    };
    emit_row(headerCells);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    os << render();
}

std::string
TextTable::renderCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit_row(headerCells);
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

} // namespace bfsim
