#include "common/log.hh"

#include <atomic>

namespace bfsim {

namespace {
// Atomic so runBatch workers may warn while the main thread toggles it.
std::atomic<bool> quietFlag{false};
} // namespace

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
warn(const std::string &message)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
inform(const std::string &message)
{
    if (!quietFlag)
        std::fprintf(stderr, "info: %s\n", message.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

} // namespace bfsim
