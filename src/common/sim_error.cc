#include "common/sim_error.hh"

namespace bfsim {

namespace {

thread_local SimJobContext threadJobContext;

std::string
formatWhat(const std::string &component, const std::string &message,
           const SimJobContext &context, std::uint64_t cycle)
{
    std::string what = component + ": " + message;
    std::string detail;
    auto append = [&detail](const std::string &piece) {
        if (!detail.empty())
            detail += ", ";
        detail += piece;
    };
    if (!context.workload.empty())
        append("workload=" + context.workload);
    if (!context.label.empty() && context.label != context.workload)
        append("label=" + context.label);
    if (cycle != 0)
        append("cycle=" + std::to_string(cycle));
    if (!detail.empty())
        what += " [" + detail + "]";
    return what;
}

} // namespace

const SimJobContext &
simJobContext()
{
    return threadJobContext;
}

void
setSimJobContext(SimJobContext context)
{
    threadJobContext = std::move(context);
}

SimError::SimError(std::string component, std::string message,
                   std::uint64_t cycle)
    : std::runtime_error(formatWhat(component, message, simJobContext(),
                                    cycle)),
      comp(std::move(component)),
      msg(std::move(message)),
      wl(simJobContext().workload),
      lbl(simJobContext().label),
      cyc(cycle)
{
}

} // namespace bfsim
