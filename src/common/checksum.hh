/**
 * @file
 * Data-integrity primitives for on-disk artifacts.
 *
 * Two independent jobs, two functions:
 *
 *  - crc32c(): the Castagnoli CRC used to frame trace-store chunks and
 *    headers, so a truncated write, a flipped bit or a stale partial
 *    file is detected *before* its payload is trusted. Table-driven
 *    software implementation; throughput is far above the decode rates
 *    the trace store needs.
 *
 *  - Fnv1a64: a streaming 64-bit FNV-1a content hash, used to key
 *    artifacts by what they were captured *from* (program text + data
 *    image), so an edited workload silently invalidates its stored
 *    traces instead of replaying a stale stream.
 */

#ifndef BFSIM_COMMON_CHECKSUM_HH_
#define BFSIM_COMMON_CHECKSUM_HH_

#include <cstddef>
#include <cstdint>

namespace bfsim {

/**
 * CRC-32C (Castagnoli) of `len` bytes at `data`, continuing from
 * `seed` (pass a previous return value to checksum in pieces; 0 starts
 * a fresh checksum).
 */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t seed = 0);

/** Streaming 64-bit FNV-1a hasher. */
class Fnv1a64
{
  public:
    /** Absorb `len` raw bytes. */
    Fnv1a64 &
    update(const void *data, std::size_t len)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            state ^= bytes[i];
            state *= prime;
        }
        return *this;
    }

    /**
     * Absorb one integral value by its little-endian byte expansion
     * (explicit widening, so the hash never depends on the host's
     * struct padding or the caller's integer width).
     */
    Fnv1a64 &
    update64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= static_cast<unsigned char>(value >> (i * 8));
            state *= prime;
        }
        return *this;
    }

    /** The hash of everything absorbed so far. */
    std::uint64_t value() const { return state; }

  private:
    static constexpr std::uint64_t offsetBasis = 0xcbf29ce484222325ull;
    static constexpr std::uint64_t prime = 0x100000001b3ull;

    std::uint64_t state = offsetBasis;
};

} // namespace bfsim

#endif // BFSIM_COMMON_CHECKSUM_HH_
