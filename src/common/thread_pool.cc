#include "common/thread_pool.hh"

#include <cstdlib>
#include <stdexcept>

#include "common/log.hh"

namespace bfsim {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    available.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping)
            throw std::runtime_error("submit on stopping ThreadPool");
        queue.push_back(std::move(task));
    }
    available.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            available.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and fully drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        // packaged_task captures exceptions into the future.
        task();
    }
}

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("BFSIM_JOBS")) {
        char *end = nullptr;
        unsigned long value = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && value > 0)
            return static_cast<unsigned>(value);
        warn("ignoring malformed BFSIM_JOBS value");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace bfsim
