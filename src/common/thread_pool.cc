#include "common/thread_pool.hh"

#include <cstdlib>
#include <stdexcept>

#include "common/log.hh"

namespace bfsim {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    stop();
    for (std::thread &worker : workers)
        worker.join();
}

void
ThreadPool::stop()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        stopping = true;
    }
    available.notify_all();
}

bool
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (stopping)
            return false;
        queue.push_back(std::move(task));
    }
    available.notify_one();
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            available.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and fully drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        // packaged_task captures exceptions into the future; the guard
        // below is for raw tasks, so a throwing task drained during
        // shutdown can never escape the worker and terminate.
        try {
            task();
        } catch (const std::exception &error) {
            warn(std::string("thread-pool task threw: ") + error.what());
        } catch (...) {
            warn("thread-pool task threw a non-standard exception");
        }
    }
}

unsigned
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("BFSIM_JOBS")) {
        char *end = nullptr;
        unsigned long value = std::strtoul(env, &end, 10);
        if (end && *end == '\0' && value > 0)
            return static_cast<unsigned>(value);
        warn("ignoring malformed BFSIM_JOBS value");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace bfsim
