/**
 * @file
 * Functional-executor tests: ALU semantics (parameterized), memory,
 * control flow, the zero register and halting.
 */

#include <array>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "isa/assembler.hh"
#include "sim/executor.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Opcode;
using isa::Program;

/** Run a program to halt (bounded) and return the final registers. */
std::array<RegVal, numArchRegs>
runToHalt(const Program &program, std::uint64_t bound = 100000)
{
    Executor exec(program);
    DynOp op;
    std::uint64_t steps = 0;
    while (exec.step(op)) {
        if (++steps > bound)
            break;
    }
    std::array<RegVal, numArchRegs> regs{};
    for (int r = 0; r < numArchRegs; ++r)
        regs[r] = exec.reg(static_cast<RegIndex>(r));
    return regs;
}

struct AluCase
{
    const char *name;
    Opcode op;
    std::uint64_t a;
    std::uint64_t b;
    std::uint64_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, RegisterRegisterResult)
{
    const AluCase &c = GetParam();
    Assembler as;
    as.movi(isa::R1, static_cast<std::int64_t>(c.a));
    as.movi(isa::R2, static_cast<std::int64_t>(c.b));
    isa::Instruction inst;
    inst.op = c.op;
    inst.rd = isa::R3;
    inst.rs1 = isa::R1;
    inst.rs2 = isa::R2;
    // Emit through the generic path: build program manually.
    as.add(isa::R3, isa::R1, isa::R2); // placeholder, replaced below
    as.halt();
    Program p = as.assemble();
    // Patch instruction 2 with the case's opcode.
    std::vector<isa::Instruction> insts = p.insts();
    insts[2] = inst;
    Program patched(std::move(insts));

    Executor exec(patched);
    DynOp op;
    while (exec.step(op)) {
    }
    EXPECT_EQ(exec.reg(isa::R3), c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluSemantics,
    ::testing::Values(
        AluCase{"add", Opcode::Add, 7, 5, 12},
        AluCase{"add_wrap", Opcode::Add, ~0ULL, 1, 0},
        AluCase{"sub", Opcode::Sub, 7, 5, 2},
        AluCase{"sub_neg", Opcode::Sub, 5, 7,
                static_cast<std::uint64_t>(-2)},
        AluCase{"mul", Opcode::Mul, 6, 7, 42},
        AluCase{"and", Opcode::And, 0xf0f0, 0xff00, 0xf000},
        AluCase{"or", Opcode::Or, 0xf0f0, 0x0f0f, 0xffff},
        AluCase{"xor", Opcode::Xor, 0xff, 0x0f, 0xf0},
        AluCase{"sll", Opcode::Sll, 1, 12, 4096},
        AluCase{"sll_mask", Opcode::Sll, 1, 64 + 3, 8},
        AluCase{"srl", Opcode::Srl, 4096, 12, 1},
        AluCase{"cmplt_true", Opcode::CmpLt, static_cast<std::uint64_t>(-1),
                1, 1},
        AluCase{"cmplt_false", Opcode::CmpLt, 1,
                static_cast<std::uint64_t>(-1), 0},
        AluCase{"cmpeq_true", Opcode::CmpEq, 9, 9, 1},
        AluCase{"cmpeq_false", Opcode::CmpEq, 9, 8, 0},
        AluCase{"fadd", Opcode::FAdd, 3, 4, 7},
        AluCase{"fmul", Opcode::FMul, 3, 4, 12}),
    [](const ::testing::TestParamInfo<AluCase> &info) {
        return info.param.name;
    });

TEST(Executor, ImmediateOps)
{
    Assembler as;
    as.movi(isa::R1, 100);
    as.addi(isa::R2, isa::R1, -30);
    as.andi(isa::R3, isa::R1, 0x6c);
    as.xori(isa::R4, isa::R1, 0xff);
    as.slli(isa::R5, isa::R1, 2);
    as.srli(isa::R6, isa::R1, 2);
    as.cmplti(isa::R7, isa::R1, 101);
    as.cmpeqi(isa::R8, isa::R1, 100);
    as.halt();
    auto regs = runToHalt(as.assemble());
    EXPECT_EQ(regs[isa::R2], 70u);
    EXPECT_EQ(regs[isa::R3], 100u & 0x6c);
    EXPECT_EQ(regs[isa::R4], 100u ^ 0xff);
    EXPECT_EQ(regs[isa::R5], 400u);
    EXPECT_EQ(regs[isa::R6], 25u);
    EXPECT_EQ(regs[isa::R7], 1u);
    EXPECT_EQ(regs[isa::R8], 1u);
}

TEST(Executor, ZeroRegisterIsImmutable)
{
    Assembler as;
    as.movi(isa::R0, 99);
    as.addi(isa::R0, isa::R0, 5);
    as.add(isa::R1, isa::R0, isa::R0);
    as.halt();
    auto regs = runToHalt(as.assemble());
    EXPECT_EQ(regs[isa::R0], 0u);
    EXPECT_EQ(regs[isa::R1], 0u);
}

TEST(Executor, LoadStoreRoundTrip)
{
    Assembler as;
    as.movi(isa::R1, 0x10000);
    as.movi(isa::R2, 12345);
    as.store(isa::R2, isa::R1, 8);
    as.load(isa::R3, isa::R1, 8);
    as.halt();
    auto regs = runToHalt(as.assemble());
    EXPECT_EQ(regs[isa::R3], 12345u);
}

TEST(Executor, InitialImageIsVisible)
{
    Assembler as;
    as.movi(isa::R1, 0x2000);
    as.load(isa::R2, isa::R1, 0);
    as.halt();
    as.data(0x2000, 777);
    auto regs = runToHalt(as.assemble());
    EXPECT_EQ(regs[isa::R2], 777u);
}

TEST(Executor, UntouchedMemoryReadsZero)
{
    Assembler as;
    as.movi(isa::R1, 0x900000);
    as.load(isa::R2, isa::R1, 0);
    as.halt();
    auto regs = runToHalt(as.assemble());
    EXPECT_EQ(regs[isa::R2], 0u);
}

TEST(Executor, ConditionalBranchesFollowSemantics)
{
    Assembler as;
    as.movi(isa::R1, 3);
    as.movi(isa::R2, 0);
    as.label("loop");
    as.addi(isa::R2, isa::R2, 10);
    as.addi(isa::R1, isa::R1, -1);
    as.bne(isa::R1, isa::R0, "loop");
    as.halt();
    auto regs = runToHalt(as.assemble());
    EXPECT_EQ(regs[isa::R2], 30u);
}

TEST(Executor, SignedComparisonBranch)
{
    Assembler as;
    as.movi(isa::R1, -5);
    as.movi(isa::R2, 3);
    as.blt(isa::R1, isa::R2, "neg_less");
    as.movi(isa::R3, 0);
    as.halt();
    as.label("neg_less");
    as.movi(isa::R3, 1);
    as.halt();
    auto regs = runToHalt(as.assemble());
    EXPECT_EQ(regs[isa::R3], 1u);
}

TEST(Executor, DynOpRecordsBranchOutcome)
{
    Assembler as;
    as.movi(isa::R1, 1);
    as.beq(isa::R1, isa::R0, "skip"); // not taken
    as.jmp("end");                    // taken
    as.label("skip");
    as.nop();
    as.label("end");
    as.halt();
    Program p = as.assemble();
    Executor exec(p);
    DynOp op;
    exec.step(op); // movi
    exec.step(op); // beq
    EXPECT_FALSE(op.taken);
    exec.step(op); // jmp
    EXPECT_TRUE(op.taken);
}

TEST(Executor, DynOpRecordsEffectiveAddress)
{
    Assembler as;
    as.movi(isa::R1, 0x4000);
    as.load(isa::R2, isa::R1, 0x20);
    as.halt();
    Program p = as.assemble();
    Executor exec(p);
    DynOp op;
    exec.step(op);
    exec.step(op);
    EXPECT_EQ(op.effAddr, 0x4020u);
}

TEST(Executor, HaltStopsExecution)
{
    Assembler as;
    as.halt();
    as.nop();
    Program p = as.assemble();
    Executor exec(p);
    DynOp op;
    EXPECT_FALSE(exec.step(op));
    EXPECT_TRUE(exec.halted());
    EXPECT_FALSE(exec.step(op));
}

TEST(Executor, SequenceNumbersAreMonotonic)
{
    Assembler as;
    as.nop();
    as.nop();
    as.nop();
    as.halt();
    Program p = as.assemble();
    Executor exec(p);
    DynOp op;
    InstSeqNum last = 0;
    while (exec.step(op)) {
        EXPECT_GT(op.seq, last);
        last = op.seq;
    }
}

TEST(Memory, SparsePagesAllocateOnWrite)
{
    Memory mem;
    EXPECT_EQ(mem.residentPages(), 0u);
    mem.write64(0x10000, 1);
    mem.write64(0x10008, 2);
    EXPECT_EQ(mem.residentPages(), 1u);
    mem.write64(0x90000000, 3);
    EXPECT_EQ(mem.residentPages(), 2u);
    EXPECT_EQ(mem.read64(0x10000), 1u);
    EXPECT_EQ(mem.read64(0x90000000), 3u);
}

TEST(MemoryErrors, UnalignedAccessThrows)
{
    Memory mem;
    EXPECT_THROW(mem.write64(0x1001, 1), SimError);
}

} // namespace
} // namespace bfsim::sim
