/**
 * @file
 * Component-registry tests (DESIGN.md §14): spec parsing and the typed
 * param bag, predictor/prefetcher round-trips, structured errors for
 * unknown names and malformed parameters, registry-vs-factory identity
 * of the paper's tournament baseline, TAGE determinism across the
 * trace-sharing tiers and batch parallelism, and the predictor name's
 * presence in report JSON and memo-cache keys.
 */

#include <cstring>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "branch/registry.hh"
#include "branch/tage.hh"
#include "common/registry.hh"
#include "common/sim_error.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/report.hh"
#include "prefetch/registry.hh"
#include "sim/trace_store.hh"

namespace bfsim {
namespace {

/** Expect `fn` to throw SimError whose message contains every needle. */
template <typename Fn>
void
expectSimError(Fn fn, const std::vector<std::string> &needles)
{
    try {
        fn();
        FAIL() << "expected SimError";
    } catch (const SimError &error) {
        std::string message = error.what();
        for (const std::string &needle : needles) {
            EXPECT_NE(message.find(needle), std::string::npos)
                << "message '" << message << "' lacks '" << needle
                << "'";
        }
    }
}

// ------------------------------------------------------- spec grammar

TEST(ComponentSpec, ParsesNameAndParams)
{
    ComponentSpec spec =
        parseComponentSpec("Tage:tables=6,scale=0.5", "predictor");
    EXPECT_EQ(spec.name, "tage"); // lowercased
    spec.params.setContext("predictor", spec.name);
    EXPECT_EQ(spec.params.getU64("tables", 0), 6u);
    EXPECT_DOUBLE_EQ(spec.params.getDouble("scale", 1.0), 0.5);
    spec.params.checkConsumed(); // both consumed: no throw
}

TEST(ComponentSpec, BareNameHasNoParams)
{
    ComponentSpec spec = parseComponentSpec("gshare", "predictor");
    EXPECT_EQ(spec.name, "gshare");
    EXPECT_FALSE(spec.params.has("entries"));
    EXPECT_EQ(spec.params.getU64("entries", 4096), 4096u);
}

TEST(ComponentSpec, EmptyNameThrows)
{
    expectSimError([] { parseComponentSpec("", "predictor"); },
                   {"empty predictor name"});
    expectSimError([] { parseComponentSpec(":k=v", "predictor"); },
                   {"empty predictor name"});
}

TEST(ComponentSpec, MalformedPairThrows)
{
    expectSimError(
        [] { parseComponentSpec("gshare:entries", "predictor"); },
        {"malformed parameter 'entries'", "key=value"});
    expectSimError(
        [] { parseComponentSpec("gshare:=4", "predictor"); },
        {"malformed parameter"});
}

TEST(Params, TypedGettersRejectGarbage)
{
    ComponentSpec spec = parseComponentSpec(
        "gshare:entries=abc,scale=xyz,flag=maybe", "predictor");
    spec.params.setContext("predictor", spec.name);
    expectSimError([&] { spec.params.getU64("entries", 0); },
                   {"parameter 'entries'", "unsigned integer", "abc"});
    expectSimError([&] { spec.params.getDouble("scale", 1.0); },
                   {"parameter 'scale'", "a number", "xyz"});
    expectSimError([&] { spec.params.getBool("flag", false); },
                   {"parameter 'flag'", "boolean", "maybe"});
}

// ------------------------------------------------ predictor registry

TEST(PredictorRegistry, RoundTripsEveryRegisteredName)
{
    std::vector<std::string> names = branch::predictorNames();
    for (const char *expected :
         {"bimodal", "gshare", "local", "tournament", "tage"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected << " not registered";
    }
    for (const std::string &name : names) {
        auto pred = branch::makePredictor(name);
        ASSERT_NE(pred, nullptr) << name;
        EXPECT_EQ(pred->name(), name);
        EXPECT_GT(pred->storageBits(), 0u) << name;
    }
}

TEST(PredictorRegistry, LookupIsCaseInsensitive)
{
    EXPECT_EQ(branch::makePredictor("Tournament")->name(), "tournament");
    EXPECT_EQ(branch::makePredictor("TAGE")->name(), "tage");
}

TEST(PredictorRegistry, UnknownNameListsRegisteredOnes)
{
    expectSimError([] { branch::makePredictor("neural"); },
                   {"unknown predictor 'neural'", "registered:",
                    "tournament", "tage", "gshare"});
}

TEST(PredictorRegistry, UnconsumedParameterThrows)
{
    expectSimError([] { branch::makePredictor("gshare:bogus=1"); },
                   {"unknown parameter(s) [bogus]", "gshare"});
}

TEST(PredictorRegistry, MistypedParameterThrows)
{
    expectSimError([] { branch::makePredictor("gshare:entries=abc"); },
                   {"parameter 'entries'", "gshare", "abc"});
}

TEST(PredictorRegistry, SpecParamOverridesCallerScale)
{
    auto scaled = branch::makePredictor("gshare", 4.0);
    auto pinned = branch::makePredictor("gshare:scale=1", 4.0);
    auto base = branch::makePredictor("gshare", 1.0);
    EXPECT_GT(scaled->storageBits(), base->storageBits());
    EXPECT_EQ(pinned->storageBits(), base->storageBits());
}

TEST(PredictorRegistry, TageParamsReachConfig)
{
    auto wide = branch::makePredictor("tage:tables=6,tag_bits=10");
    auto base = branch::makePredictor("tage");
    EXPECT_GT(wide->storageBits(), base->storageBits());
    // Config validation fires through the registry path too.
    expectSimError([] { branch::makePredictor("tage:max_hist=64"); },
                   {"tage"});
}

// ----------------------------------------------- prefetcher registry

TEST(PrefetcherRegistry, RoundTripsEveryRegisteredName)
{
    std::vector<std::string> names = prefetch::prefetcherNames();
    for (const char *expected :
         {"none", "nextn", "stride", "sms", "bfetch", "perfect"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << expected << " not registered";
    }
}

TEST(PrefetcherRegistry, PlansHaveExpectedShape)
{
    prefetch::CorePrefetch none = prefetch::makeCorePrefetch("none");
    EXPECT_EQ(none.demand, nullptr);
    EXPECT_FALSE(none.attachBFetch);
    EXPECT_FALSE(none.perfectMem);

    prefetch::CorePrefetch bfetch =
        prefetch::makeCorePrefetch("Bfetch");
    EXPECT_EQ(bfetch.demand, nullptr);
    EXPECT_TRUE(bfetch.attachBFetch);

    prefetch::CorePrefetch perfect =
        prefetch::makeCorePrefetch("Perfect");
    EXPECT_EQ(perfect.demand, nullptr);
    EXPECT_TRUE(perfect.perfectMem);

    for (const char *demand_kind : {"NextN", "Stride", "SMS"}) {
        prefetch::CorePrefetch plan =
            prefetch::makeCorePrefetch(demand_kind);
        EXPECT_NE(plan.demand, nullptr) << demand_kind;
        EXPECT_FALSE(plan.attachBFetch) << demand_kind;
        EXPECT_FALSE(plan.perfectMem) << demand_kind;
    }
}

TEST(PrefetcherRegistry, ParamsReachDemandPrefetchers)
{
    EXPECT_NE(prefetch::makeCorePrefetch("stride:degree=1").demand,
              nullptr);
    EXPECT_NE(
        prefetch::makeCorePrefetch("sms:region_bytes=1024").demand,
        nullptr);
    expectSimError(
        [] { prefetch::makeCorePrefetch("stride:bogus=1"); },
        {"unknown parameter(s) [bogus]", "stride"});
    expectSimError([] { prefetch::makeCorePrefetch("flux"); },
                   {"unknown prefetcher 'flux'", "registered:",
                    "bfetch", "perfect"});
}

TEST(PrefetcherRegistry, DisplayNamesMatchPaperLegend)
{
    EXPECT_EQ(prefetch::prefetcherDisplayName("sms"), "SMS");
    EXPECT_EQ(prefetch::prefetcherDisplayName("Bfetch"), "Bfetch");
    EXPECT_EQ(prefetch::prefetcherDisplayName("nextn:degree=2"),
              "NextN:degree=2");
    EXPECT_EQ(prefetch::prefetcherDisplayName("mystery"), "mystery");
}

// ------------------------------------- tournament identity vs factory

TEST(TournamentIdentity, RegistryMatchesFactoryBehaviour)
{
    auto from_registry = branch::makePredictor("tournament");
    auto from_factory = branch::makeTournamentPredictor(1.0);
    EXPECT_EQ(from_registry->storageBits(),
              from_factory->storageBits());
    EXPECT_EQ(from_registry->historyBits(),
              from_factory->historyBits());
    std::uint32_t x = 98765;
    for (int i = 0; i < 5000; ++i) {
        x = x * 1664525u + 1013904223u;
        Addr pc = 0x400000 + (x % 29) * 4;
        bool taken = ((x >> 13) & 7) != 0;
        ASSERT_EQ(from_registry->predict(pc), from_factory->predict(pc));
        from_registry->update(pc, taken);
        from_factory->update(pc, taken);
        ASSERT_EQ(from_registry->history(), from_factory->history());
    }
}

// ----------------------------- harness integration (memo, JSON, tiers)

/** Each test gets clean memo/trace caches and its own store dir. */
class RegistryHarnessTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = testing::TempDir() + "bfsim_registry/" +
              testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        harness::clearMemoCaches();
        harness::clearTraceCache();
        harness::setTraceCacheEnabled(true);
        sim::trace_store::setDirectory("");
    }

    void
    TearDown() override
    {
        sim::trace_store::setDirectory("");
        harness::clearMemoCaches();
        harness::clearTraceCache();
        harness::setTraceCacheEnabled(true);
        std::filesystem::remove_all(dir);
    }

    static harness::RunOptions
    quick(const std::string &predictor = "tournament")
    {
        harness::RunOptions options;
        options.instructions = 30000;
        options.predictor = predictor;
        return options;
    }

    std::string dir;
};

TEST_F(RegistryHarnessTest, DefaultSpecMatchesExplicitTournament)
{
    // The explicit registry spellings must reproduce the default
    // configuration's CoreStats bit for bit — the refactor gate.
    harness::SingleResult def =
        harness::runSingle("libquantum", "Bfetch", quick());
    for (const char *spec :
         {"tournament", "Tournament", "tournament:scale=1.0"}) {
        harness::SingleResult explicit_spec =
            harness::runSingle("libquantum", "Bfetch", quick(spec));
        EXPECT_EQ(std::memcmp(&def.core, &explicit_spec.core,
                              sizeof(sim::CoreStats)),
                  0)
            << spec;
    }
}

TEST_F(RegistryHarnessTest, CacheKeyDistinguishesPredictors)
{
    harness::RunOptions tournament = quick("tournament");
    harness::RunOptions tage = quick("tage");
    EXPECT_NE(tournament.cacheKey(), tage.cacheKey());

    const harness::SingleResult &a =
        harness::runSingleCached("mcf", "None", tournament);
    const harness::SingleResult &b =
        harness::runSingleCached("mcf", "None", tage);
    EXPECT_NE(&a, &b); // distinct memo entries, no collision
    EXPECT_EQ(a.predictor, "tournament");
    EXPECT_EQ(b.predictor, "tage");

    // Same spec again is a memo hit, not a recomputation.
    const harness::SingleResult &a2 =
        harness::runSingleCached("mcf", "None", tournament);
    EXPECT_EQ(&a, &a2);
}

TEST_F(RegistryHarnessTest, PredictorNameAppearsInJsonReport)
{
    std::vector<harness::BatchJob> jobs{
        harness::BatchJob::single("mcf", "None", quick("tage"),
                                  "zoo/tage/mcf/None")};
    harness::BatchResult batch = harness::runBatch(jobs, 1, nullptr);
    ASSERT_EQ(batch.failures(), 0u);
    std::ostringstream os;
    harness::writeBatchReportJson(os, "registry_test", batch);
    EXPECT_NE(os.str().find("\"predictor\": \"tage\""),
              std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("\"prefetcher\": \"None\""),
              std::string::npos);
}

TEST_F(RegistryHarnessTest, UnknownPredictorFailsTheJobNotTheBatch)
{
    std::vector<harness::BatchJob> jobs{
        harness::BatchJob::single("mcf", "None", quick("neural")),
        harness::BatchJob::single("mcf", "None", quick())};
    harness::BatchResult batch = harness::runBatch(jobs, 1, nullptr);
    EXPECT_EQ(batch.failures(), 1u);
    EXPECT_TRUE(batch.items[0].failed);
    EXPECT_NE(batch.items[0].error.find("unknown predictor"),
              std::string::npos);
    EXPECT_FALSE(batch.items[1].failed);
}

TEST_F(RegistryHarnessTest, TageBitIdenticalAcrossTraceTiers)
{
    // Live execution, no trace sharing.
    harness::setTraceCacheEnabled(false);
    harness::SingleResult live =
        harness::runSingle("mcf", "Bfetch", quick("tage"));
    EXPECT_EQ(live.predictor, "tage");

    // Memory tier: capture, then replay the cached DynOp stream.
    harness::setTraceCacheEnabled(true);
    harness::clearTraceCache();
    harness::runSingle("mcf", "Bfetch", quick("tage")); // capture
    harness::SingleResult replay =
        harness::runSingle("mcf", "Bfetch", quick("tage"));
    EXPECT_EQ(std::memcmp(&live.core, &replay.core,
                          sizeof(sim::CoreStats)),
              0);

    // Disk tier: persist the artifact, then seed a cold buffer from it.
    sim::trace_store::setDirectory(dir);
    harness::clearTraceCache();
    harness::runSingle("mcf", "Bfetch", quick("tage")); // capture
    EXPECT_GE(harness::persistTraceStore(), 1u);
    harness::clearTraceCache();
    harness::SingleResult disk =
        harness::runSingle("mcf", "Bfetch", quick("tage"));
    EXPECT_EQ(std::memcmp(&live.core, &disk.core,
                          sizeof(sim::CoreStats)),
              0);
}

TEST_F(RegistryHarnessTest, TageBitIdenticalSerialVsParallel)
{
    std::vector<harness::BatchJob> jobs;
    for (const char *workload : {"mcf", "libquantum", "milc", "astar"})
        for (const char *kind : {"None", "Bfetch"})
            jobs.push_back(harness::BatchJob::single(workload, kind,
                                                     quick("tage")));

    harness::BatchResult serial = harness::runBatch(jobs, 1, nullptr);
    ASSERT_EQ(serial.failures(), 0u);
    std::vector<sim::CoreStats> reference;
    for (const harness::BatchItem &item : serial.items)
        reference.push_back(item.single->core);

    harness::clearMemoCaches();
    harness::clearTraceCache();
    harness::BatchResult parallel = harness::runBatch(jobs, 4, nullptr);
    ASSERT_EQ(parallel.failures(), 0u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(std::memcmp(&reference[i],
                              &parallel.items[i].single->core,
                              sizeof(sim::CoreStats)),
                  0)
            << jobs[i].workloads.front() << "/" << jobs[i].prefetcher;
    }
}

} // namespace
} // namespace bfsim
