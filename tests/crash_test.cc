/**
 * @file
 * Crash-resilience tests for the process-isolated batch backend
 * (harness/process_pool) and the sweep journal (harness/journal):
 * byte-identity of forked-worker results against the in-process
 * serial path, crash containment and poison quarantine under injected
 * worker deaths, deadline kills of wedged workers, graceful drain,
 * journal resume with zero recompute, and corrupt-record tolerance.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/signal_util.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/fault.hh"
#include "harness/journal.hh"

namespace bfsim::harness {
namespace {

RunOptions
quick()
{
    RunOptions options;
    options.instructions = 30000;
    return options;
}

/** Six distinct single-workload jobs; index 3 is "job 4" in specs. */
std::vector<BatchJob>
sixJobs()
{
    std::vector<BatchJob> jobs;
    for (const char *name :
         {"astar", "bzip2", "lbm", "libquantum", "mcf", "sjeng"}) {
        jobs.push_back(BatchJob::single(name, "None", quick()));
    }
    return jobs;
}

void
expectSameSingle(const SingleResult &a, const SingleResult &b)
{
    EXPECT_EQ(a.core.instructions, b.core.instructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.ipc, b.core.ipc); // bit-identical, not just near
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_EQ(a.mem.accesses, b.mem.accesses);
    EXPECT_EQ(a.mem.l1Hits, b.mem.l1Hits);
    EXPECT_EQ(a.mem.dramAccesses, b.mem.dramAccesses);
    EXPECT_EQ(a.mem.prefetchesIssued, b.mem.prefetchesIssued);
}

/** Copy the SingleResults out of a batch (memo clears invalidate
 *  the items' pointers). */
std::vector<SingleResult>
copySingles(const BatchResult &batch)
{
    std::vector<SingleResult> singles;
    for (const BatchItem &item : batch.items) {
        if (item.single)
            singles.push_back(*item.single);
        else
            singles.emplace_back();
    }
    return singles;
}

std::string
freshDir(const std::string &stem)
{
    std::string dir = ::testing::TempDir() + stem + "-" +
                      std::to_string(::getpid());
    std::filesystem::remove_all(dir);
    return dir;
}

BatchOptions
processOptions()
{
    BatchOptions options;
    options.isolate = IsolateMode::Process;
    return options;
}

TEST(ProcessIsolate, MatchesSerialRunByteIdentical)
{
    std::vector<BatchJob> jobs = sixJobs();

    clearMemoCaches();
    BatchResult forked = runBatch(jobs, 3, nullptr, processOptions());
    ASSERT_EQ(forked.items.size(), jobs.size());
    EXPECT_EQ(forked.isolate, IsolateMode::Process);
    EXPECT_EQ(forked.failures(), 0u);
    std::vector<SingleResult> forked_singles = copySingles(forked);

    clearMemoCaches();
    BatchResult serial = runBatch(jobs, 1, nullptr, BatchOptions{});
    ASSERT_EQ(serial.failures(), 0u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_NE(serial.items[i].single, nullptr);
        expectSameSingle(forked_singles[i], *serial.items[i].single);
    }
}

TEST(ProcessIsolate, AdoptedResultsAreMemoHits)
{
    std::vector<BatchJob> jobs = sixJobs();
    clearMemoCaches();
    MemoStats before = memoStats();
    BatchResult forked = runBatch(jobs, 2, nullptr, processOptions());
    ASSERT_EQ(forked.failures(), 0u);
    MemoStats after = memoStats();
    // Workers computed in their own processes; the parent only adopts.
    EXPECT_EQ(after.singleComputes, before.singleComputes);
    EXPECT_EQ(after.singleAdopts - before.singleAdopts, jobs.size());
    // Post-batch table assembly must hit the adopted entries.
    bool computed = true;
    runSingleCached(jobs[0].workloads[0], jobs[0].prefetcher,
                    jobs[0].options, &computed);
    EXPECT_FALSE(computed);
}

TEST(ProcessIsolate, CrashedJobPoisonedOthersByteIdentical)
{
    std::vector<BatchJob> jobs = sixJobs();

    clearMemoCaches();
    BatchOptions options = processOptions();
    options.poisonThreshold = 2;
    // Workers inherit the armed fault over fork, so every respawned
    // worker that picks job 4 up crashes again: deterministic poison.
    ScopedFault fault(fault::Site::WorkerCrash, 4);
    BatchResult batch = runBatch(jobs, 2, nullptr, options);
    ASSERT_EQ(batch.items.size(), jobs.size());

    EXPECT_TRUE(batch.items[3].failed);
    EXPECT_EQ(batch.items[3].crashes, 2u);
    EXPECT_NE(batch.items[3].error.find("poison"), std::string::npos)
        << batch.items[3].error;
    std::vector<SingleResult> survivors = copySingles(batch);

    clearMemoCaches();
    fault::disarm();
    BatchResult serial = runBatch(jobs, 1, nullptr, BatchOptions{});
    ASSERT_EQ(serial.failures(), 0u);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_FALSE(batch.items[i].failed) << batch.items[i].error;
        ASSERT_NE(serial.items[i].single, nullptr);
        expectSameSingle(survivors[i], *serial.items[i].single);
    }
}

TEST(ProcessIsolate, CrashSignalSelectsSigkill)
{
    std::vector<BatchJob> jobs = sixJobs();
    clearMemoCaches();
    ::setenv("BFSIM_CRASH_SIGNAL", "kill", 1);
    BatchOptions options = processOptions();
    options.poisonThreshold = 1;
    ScopedFault fault(fault::Site::WorkerCrash, 2);
    BatchResult batch = runBatch(jobs, 2, nullptr, options);
    ::unsetenv("BFSIM_CRASH_SIGNAL");
    ASSERT_TRUE(batch.items[1].failed);
    EXPECT_NE(batch.items[1].error.find("SIGKILL"), std::string::npos)
        << batch.items[1].error;
}

TEST(ProcessIsolate, DeadlineKillsWedgedWorker)
{
    std::vector<BatchJob> jobs;
    jobs.push_back(BatchJob::custom("wedge", [] {
        std::this_thread::sleep_for(std::chrono::seconds(30));
        return 1.0;
    }));
    jobs.push_back(BatchJob::custom("fine", [] { return 2.0; }));

    BatchOptions options = processOptions();
    options.jobDeadlineSeconds = 0.5;
    auto start = std::chrono::steady_clock::now();
    BatchResult batch = runBatch(jobs, 2, nullptr, options);
    double waited = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();

    ASSERT_EQ(batch.items.size(), 2u);
    EXPECT_TRUE(batch.items[0].failed);
    EXPECT_NE(batch.items[0].error.find("deadline"), std::string::npos)
        << batch.items[0].error;
    // A deadline kill is not a crash: no poison accounting.
    EXPECT_EQ(batch.items[0].crashes, 0u);
    EXPECT_FALSE(batch.items[1].failed);
    EXPECT_EQ(batch.items[1].value, 2.0);
    // The worker was killed, not joined: nowhere near the 30s sleep.
    EXPECT_LT(waited, 15.0);
}

TEST(ProcessIsolate, ShutdownSignalDrainsQueuedJobs)
{
    std::vector<BatchJob> jobs = sixJobs();
    clearMemoCaches();
    signal_util::requestShutdownForTest();
    BatchResult batch = runBatch(jobs, 2, nullptr, processOptions());
    signal_util::resetShutdownState();
    ASSERT_EQ(batch.items.size(), jobs.size());
    EXPECT_EQ(batch.failures(), jobs.size());
    for (const BatchItem &item : batch.items)
        EXPECT_NE(item.error.find("interrupt"), std::string::npos)
            << item.error;
}

TEST(Journal, ResumeRestoresEverythingWithZeroRecompute)
{
    std::string dir = freshDir("bfsim-journal-resume");
    std::vector<BatchJob> jobs = sixJobs();

    clearMemoCaches();
    BatchOptions options;
    options.journalDir = dir;
    BatchResult first = runBatch(jobs, 2, nullptr, options);
    ASSERT_EQ(first.failures(), 0u);
    EXPECT_EQ(first.journaled(), 0u);
    std::vector<SingleResult> originals = copySingles(first);

    // A "restarted daemon": cold memo cache, same journal directory.
    clearMemoCaches();
    MemoStats before = memoStats();
    BatchResult resumed = runBatch(jobs, 2, nullptr, options);
    MemoStats after = memoStats();

    ASSERT_EQ(resumed.failures(), 0u);
    EXPECT_EQ(resumed.journaled(), jobs.size());
    EXPECT_EQ(after.singleComputes, before.singleComputes)
        << "journal resume must recompute nothing";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(resumed.items[i].journaled);
        ASSERT_NE(resumed.items[i].single, nullptr);
        expectSameSingle(originals[i], *resumed.items[i].single);
    }
    std::filesystem::remove_all(dir);
}

TEST(Journal, PartialSweepResumesOnlyMissingJobs)
{
    std::string dir = freshDir("bfsim-journal-partial");
    std::vector<BatchJob> jobs = sixJobs();

    // First attempt "dies" after completing only the first three jobs.
    std::vector<BatchJob> firstHalf(jobs.begin(), jobs.begin() + 3);
    clearMemoCaches();
    BatchOptions options;
    options.journalDir = dir;
    ASSERT_EQ(runBatch(firstHalf, 2, nullptr, options).failures(), 0u);

    clearMemoCaches();
    MemoStats before = memoStats();
    BatchResult resumed = runBatch(jobs, 2, nullptr, options);
    MemoStats after = memoStats();

    ASSERT_EQ(resumed.failures(), 0u);
    EXPECT_EQ(resumed.journaled(), 3u);
    EXPECT_EQ(after.singleComputes - before.singleComputes, 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_TRUE(resumed.items[i].journaled);
    for (std::size_t i = 3; i < jobs.size(); ++i)
        EXPECT_FALSE(resumed.items[i].journaled);
    std::filesystem::remove_all(dir);
}

TEST(Journal, FailedJobsAreNeverJournaled)
{
    std::string dir = freshDir("bfsim-journal-failed");
    std::vector<BatchJob> jobs = sixJobs();

    clearMemoCaches();
    BatchOptions options;
    options.journalDir = dir;
    {
        ScopedFault fault(fault::Site::CacheAccess, 4);
        BatchResult batch = runBatch(jobs, 1, nullptr, options);
        EXPECT_EQ(batch.failures(), 1u);
        EXPECT_TRUE(batch.items[3].failed);
    }

    // The rerun restores the five successes and recomputes only the
    // previously failed job.
    clearMemoCaches();
    MemoStats before = memoStats();
    BatchResult resumed = runBatch(jobs, 1, nullptr, options);
    MemoStats after = memoStats();
    EXPECT_EQ(resumed.failures(), 0u);
    EXPECT_EQ(resumed.journaled(), jobs.size() - 1);
    EXPECT_EQ(after.singleComputes - before.singleComputes, 1u);
    EXPECT_FALSE(resumed.items[3].journaled);
    std::filesystem::remove_all(dir);
}

TEST(Journal, CorruptRecordsAreSkippedNotFatal)
{
    std::string dir = freshDir("bfsim-journal-corrupt");
    std::vector<BatchJob> jobs = sixJobs();

    clearMemoCaches();
    BatchOptions options;
    options.journalDir = dir;
    ASSERT_EQ(runBatch(jobs, 2, nullptr, options).failures(), 0u);

    // Truncate one record and scribble over another: both must be
    // detected by the CRC/structure checks and recomputed, with every
    // intact record still restored.
    std::vector<std::string> records;
    for (const auto &entry : std::filesystem::directory_iterator(dir))
        if (entry.path().extension() == ".rec")
            records.push_back(entry.path().string());
    ASSERT_EQ(records.size(), jobs.size());
    std::sort(records.begin(), records.end());
    std::filesystem::resize_file(records[0], 5);
    {
        std::ofstream scribble(records[1],
                               std::ios::binary | std::ios::in);
        scribble.seekp(16);
        scribble.write("GARBAGEGARBAGE", 14);
    }

    SweepJournal journal(dir);
    EXPECT_EQ(journal.corruptCount(), 2u);
    EXPECT_EQ(journal.loadedCount(), jobs.size() - 2);

    clearMemoCaches();
    BatchResult resumed = runBatch(jobs, 2, nullptr, options);
    EXPECT_EQ(resumed.failures(), 0u);
    EXPECT_EQ(resumed.journaled(), jobs.size() - 2);
    std::filesystem::remove_all(dir);
}

TEST(Journal, ProcessBackendJournalsAndResumes)
{
    std::string dir = freshDir("bfsim-journal-process");
    std::vector<BatchJob> jobs = sixJobs();

    clearMemoCaches();
    BatchOptions options = processOptions();
    options.journalDir = dir;
    BatchResult first = runBatch(jobs, 2, nullptr, options);
    ASSERT_EQ(first.failures(), 0u);
    std::vector<SingleResult> originals = copySingles(first);

    clearMemoCaches();
    BatchResult resumed = runBatch(jobs, 2, nullptr, options);
    ASSERT_EQ(resumed.failures(), 0u);
    EXPECT_EQ(resumed.journaled(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        ASSERT_NE(resumed.items[i].single, nullptr);
        expectSameSingle(originals[i], *resumed.items[i].single);
    }
    std::filesystem::remove_all(dir);
}

TEST(AbandonedPools, DrainReapsDeadlineStragglers)
{
    std::vector<BatchJob> jobs;
    jobs.push_back(BatchJob::custom("slow", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1500));
        return 1.0;
    }));
    BatchOptions options;
    options.jobDeadlineSeconds = 0.1;
    BatchResult batch = runBatch(jobs, 1, nullptr, options);
    ASSERT_TRUE(batch.items[0].failed);
    // The wedged worker finishes its sleep well inside this bound and
    // the registry joins it; nothing is left for the atexit hook.
    EXPECT_EQ(drainAbandonedPools(30.0), 0u);
}

} // namespace
} // namespace bfsim::harness
