/**
 * @file
 * Timing-model tests: IPC limits under width/dependences, branch
 * misprediction penalties, LSQ-bounded memory parallelism, the Fig. 7
 * branches-per-cycle accounting, and the Perfect-prefetch mode.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "mem/hierarchy.hh"
#include "sim/ooo_core.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Program;

CoreStats
runProgram(const Program &program, const CoreConfig &cfg,
           std::uint64_t insts, mem::HierarchyConfig hier_cfg = {})
{
    mem::Hierarchy hierarchy(hier_cfg);
    OooCore core(0, cfg, program, hierarchy);
    while (core.retired() < insts && core.stepInstruction()) {
    }
    return core.stats();
}

/** An endless loop of independent single-cycle ALU ops. */
Program
independentAluLoop(int body_ops)
{
    Assembler as;
    as.label("top");
    for (int i = 0; i < body_ops; ++i)
        as.addi(static_cast<RegIndex>(1 + (i % 20)), isa::R0, i);
    as.jmp("top");
    return as.assemble();
}

/** An endless loop forming one long dependency chain. */
Program
dependencyChainLoop(int body_ops)
{
    Assembler as;
    as.label("top");
    for (int i = 0; i < body_ops; ++i)
        as.addi(isa::R1, isa::R1, 1);
    as.jmp("top");
    return as.assemble();
}

TEST(OooCore, WideMachineReachesHighIpcOnIndependentOps)
{
    CoreConfig cfg;
    cfg.width = 4;
    CoreStats s = runProgram(independentAluLoop(40), cfg, 50000);
    EXPECT_GT(s.ipc, 2.5);
    EXPECT_LE(s.ipc, 4.05);
}

TEST(OooCore, DependencyChainLimitsIpcToOne)
{
    CoreConfig cfg;
    cfg.width = 4;
    CoreStats s = runProgram(dependencyChainLoop(40), cfg, 50000);
    EXPECT_LE(s.ipc, 1.1);
}

TEST(OooCore, WiderPipelinesAreFaster)
{
    Program p = independentAluLoop(60);
    CoreConfig narrow, wide;
    narrow.width = 2;
    wide.width = 8;
    CoreStats s2 = runProgram(p, narrow, 50000);
    CoreStats s8 = runProgram(p, wide, 50000);
    EXPECT_GT(s8.ipc, s2.ipc * 1.5);
}

TEST(OooCore, MispredictedBranchesCostCycles)
{
    // Branch on an LCG bit: essentially random, ~50% mispredictions.
    Assembler as;
    as.movi(isa::R20, 6364136223846793005LL);
    as.movi(isa::R21, 1442695040888963407LL);
    as.movi(isa::R7, 12345);
    as.label("top");
    as.mul(isa::R7, isa::R7, isa::R20);
    as.add(isa::R7, isa::R7, isa::R21);
    as.srli(isa::R1, isa::R7, 33); // high LCG bits are pseudo-random
    as.andi(isa::R1, isa::R1, 1);
    as.addi(isa::R2, isa::R2, 1);
    as.addi(isa::R3, isa::R3, 1);
    as.beq(isa::R1, isa::R0, "top");
    as.jmp("top");
    Program random_branchy = as.assemble();

    // The identical shape with a constant (always-taken) condition.
    Assembler as2;
    as2.movi(isa::R20, 6364136223846793005LL);
    as2.movi(isa::R21, 1442695040888963407LL);
    as2.movi(isa::R7, 12345);
    as2.label("top");
    as2.mul(isa::R7, isa::R7, isa::R20);
    as2.add(isa::R7, isa::R7, isa::R21);
    as2.srli(isa::R1, isa::R7, 33);
    as2.andi(isa::R1, isa::R1, 0); // always zero -> branch always taken
    as2.addi(isa::R2, isa::R2, 1);
    as2.addi(isa::R3, isa::R3, 1);
    as2.beq(isa::R1, isa::R0, "top");
    as2.jmp("top");
    Program predictable_branchy = as2.assemble();

    CoreConfig cfg;
    CoreStats s = runProgram(random_branchy, cfg, 50000);
    EXPECT_GT(s.branchMissRate, 0.25);
    CoreStats predictable = runProgram(predictable_branchy, cfg, 50000);
    EXPECT_GT(predictable.ipc, s.ipc * 1.2);
}

TEST(OooCore, PredictableLoopBranchesAreLearned)
{
    CoreStats s = runProgram(independentAluLoop(10), CoreConfig{}, 50000);
    EXPECT_EQ(s.mispredicts, 0u); // unconditional jumps only
}

TEST(OooCore, LoadLatencyBoundsThroughput)
{
    // Pointer-chase: each load's address is the previous load's value.
    constexpr int nodes = 4096;
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.load(isa::R1, isa::R1, 0);
    as.jmp("top");
    for (int i = 0; i < nodes; ++i) {
        int next = (i + 1667) % nodes; // coprime stride permutation
        as.data(0x100000 + static_cast<Addr>(i) * 64,
                0x100000 + static_cast<Addr>(next) * 64);
    }
    CoreConfig cfg;
    CoreStats s = runProgram(as.assemble(), cfg, 20000);
    // Serialized misses: far below 0.5 IPC.
    EXPECT_LT(s.ipc, 0.5);
}

TEST(OooCore, PerfectPrefetchMakesLoadsL1Hits)
{
    // Streaming loads over a large array.
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.load(isa::R2, isa::R1, 0);
    as.load(isa::R3, isa::R1, 8);
    as.addi(isa::R1, isa::R1, 64);
    as.jmp("top");
    Program stream = as.assemble();

    CoreConfig base, perfect;
    perfect.prefetcher = "Perfect";
    CoreStats s_base = runProgram(stream, base, 30000);
    CoreStats s_perf = runProgram(stream, perfect, 30000);
    EXPECT_GT(s_perf.ipc, s_base.ipc * 1.5);
}

TEST(OooCore, LqSizeLimitsMemoryParallelism)
{
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    for (int i = 0; i < 8; ++i)
        as.load(static_cast<RegIndex>(2 + i), isa::R1, i * 64);
    as.addi(isa::R1, isa::R1, 512);
    as.jmp("top");
    Program stream = as.assemble();

    CoreConfig small, big;
    small.lqSize = 4;
    big.lqSize = 64;
    CoreStats s_small = runProgram(stream, small, 20000);
    CoreStats s_big = runProgram(stream, big, 20000);
    EXPECT_GT(s_big.ipc, s_small.ipc * 1.2);
}

TEST(OooCore, BranchesPerCycleHistogramAccumulates)
{
    CoreStats s = runProgram(independentAluLoop(3), CoreConfig{}, 20000);
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < s.branchesPerFetchCycle.size(); ++i)
        total += s.branchesPerFetchCycle[i];
    EXPECT_GT(total, 0u);
    EXPECT_EQ(total, s.fetchCyclesWithBranch);
    // A jmp every 4 instructions: never more than 2 branches/cycle.
    EXPECT_EQ(s.branchesPerFetchCycle[3], 0u);
}

TEST(OooCore, StatsCountInstructionClasses)
{
    Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.load(isa::R2, isa::R1, 0);
    as.store(isa::R2, isa::R1, 8);
    as.addi(isa::R1, isa::R1, 64);
    as.blt(isa::R1, isa::R3, "top");
    as.jmp("top");
    CoreStats s = runProgram(as.assemble(), CoreConfig{}, 10000);
    EXPECT_GT(s.loads, 0u);
    EXPECT_GT(s.stores, 0u);
    EXPECT_GT(s.condBranches, 0u);
    EXPECT_NEAR(static_cast<double>(s.loads) / s.stores, 1.0, 0.01);
}

TEST(OooCore, HaltTerminatesStepping)
{
    Assembler as;
    as.nop();
    as.halt();
    Program p = as.assemble();
    mem::Hierarchy hierarchy(mem::HierarchyConfig{});
    OooCore core(0, CoreConfig{}, p, hierarchy);
    EXPECT_TRUE(core.stepInstruction());
    EXPECT_FALSE(core.stepInstruction());
    EXPECT_TRUE(core.halted());
}

TEST(OooCore, BfetchKindInstantiatesEngine)
{
    Program p = independentAluLoop(4);
    mem::Hierarchy hierarchy(mem::HierarchyConfig{});
    CoreConfig cfg;
    cfg.prefetcher = "Bfetch";
    OooCore core(0, cfg, p, hierarchy);
    EXPECT_NE(core.bfetchEngine(), nullptr);
    EXPECT_EQ(core.demandPrefetcher(), nullptr);
}

TEST(OooCore, PrefetcherNames)
{
    EXPECT_EQ(prefetcherName("None"), "None");
    EXPECT_EQ(prefetcherName("Stride"), "Stride");
    EXPECT_EQ(prefetcherName("SMS"), "SMS");
    EXPECT_EQ(prefetcherName("Bfetch"), "Bfetch");
    EXPECT_EQ(prefetcherName("Perfect"), "Perfect");
    // Registry specs normalize case and keep parameter clauses.
    EXPECT_EQ(prefetcherName("sms"), "SMS");
    EXPECT_EQ(prefetcherName("nextn"), "NextN");
    EXPECT_EQ(prefetcherName("stride:degree=2"), "Stride:degree=2");
    // Unknown names pass through verbatim (lenient display helper;
    // construction is where unknown specs fail).
    EXPECT_EQ(prefetcherName("mystery"), "mystery");
}

} // namespace
} // namespace bfsim::sim
