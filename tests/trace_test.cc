/**
 * @file
 * DynOp trace-layer tests: executor determinism (the property the
 * entire trace cache rests on), live-vs-replay stream identity, lazy
 * buffer extension, concurrent shared-buffer cursors, and timing
 * identity of OooCore runs over live and replayed sources — including
 * the Perfect oracle prefetcher mode of Fig. 1.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "mem/hierarchy.hh"
#include "sim/dyn_op_source.hh"
#include "sim/ooo_core.hh"
#include "sim/trace.hh"
#include "workloads/workload.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Program;

/** Drain up to `max_ops` ops from a source. */
std::vector<DynOp>
collect(DynOpSource &source, std::uint64_t max_ops)
{
    std::vector<DynOp> ops;
    DynOp op;
    while (ops.size() < max_ops && source.next(op))
        ops.push_back(op);
    return ops;
}

void
expectSameOp(const DynOp &a, const DynOp &b, std::uint64_t i)
{
    EXPECT_EQ(a.pcIndex, b.pcIndex) << "op " << i;
    EXPECT_EQ(a.pc, b.pc) << "op " << i;
    EXPECT_EQ(a.inst, b.inst) << "op " << i;
    EXPECT_EQ(a.seq, b.seq) << "op " << i;
    EXPECT_EQ(a.taken, b.taken) << "op " << i;
    EXPECT_EQ(a.targetPc, b.targetPc) << "op " << i;
    EXPECT_EQ(a.effAddr, b.effAddr) << "op " << i;
    EXPECT_EQ(a.writesReg, b.writesReg) << "op " << i;
    EXPECT_EQ(a.result, b.result) << "op " << i;
}

void
expectSameStream(const std::vector<DynOp> &a, const std::vector<DynOp> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectSameOp(a[i], b[i], i);
}

/** A short program exercising branches, loads, stores and r0. */
Program
mixedHaltingProgram()
{
    Assembler as;
    as.movi(isa::R1, 50);          // loop counter
    as.movi(isa::R2, 0x8000);      // buffer base
    as.movi(isa::R3, 0);           // accumulator
    as.label("loop");
    as.store(isa::R1, isa::R2, 0);
    as.load(isa::R4, isa::R2, 0);
    as.add(isa::R3, isa::R3, isa::R4);
    as.movi(isa::R0, 7);           // r0 write: must stay zero
    as.addi(isa::R2, isa::R2, 8);
    as.addi(isa::R1, isa::R1, -1);
    as.bne(isa::R1, isa::R0, "loop");
    as.halt();
    return as.assemble();
}

const Program &
workloadProgram(const char *name)
{
    return workloads::workloadByName(name).program;
}

// -------------------------------------------------- executor determinism

TEST(ExecutorDeterminism, IdenticalStreamAcrossRuns)
{
    const Program &p = workloadProgram("libquantum");
    LiveSource a(p), b(p);
    expectSameStream(collect(a, 50000), collect(b, 50000));
}

TEST(ExecutorDeterminism, IdenticalStreamOnBranchyWorkload)
{
    // sjeng's random table probes + branchy control flow make any
    // hidden executor state (uninitialized reads, iteration-order
    // dependence) show up as a stream divergence.
    const Program &p = workloadProgram("sjeng");
    LiveSource a(p), b(p);
    expectSameStream(collect(a, 50000), collect(b, 50000));
}

// -------------------------------------------------- live vs replay

TEST(TraceReplay, MatchesLiveStreamExactly)
{
    const Program &p = workloadProgram("mcf");
    LiveSource live(p);
    TraceCapture capture(p);
    expectSameStream(collect(live, 30000), collect(capture, 30000));

    // A second cursor over the already-recorded buffer sees the same
    // stream again, with zero additional functional execution.
    std::uint64_t executed = capture.buffer()->size();
    TraceReplay replay(capture.buffer());
    LiveSource live2(p);
    expectSameStream(collect(live2, 30000), collect(replay, 30000));
    EXPECT_EQ(capture.buffer()->size(), executed);
}

TEST(TraceReplay, HaltReplaysAtTheSamePoint)
{
    Program p = mixedHaltingProgram();
    LiveSource live(p);
    std::vector<DynOp> reference = collect(live, 1 << 20);
    ASSERT_TRUE(live.halted());

    TraceCapture capture(p);
    std::vector<DynOp> captured = collect(capture, 1 << 20);
    expectSameStream(reference, captured);
    EXPECT_TRUE(capture.halted());
    EXPECT_TRUE(capture.buffer()->halted());

    TraceReplay replay(capture.buffer());
    std::vector<DynOp> replayed = collect(replay, 1 << 20);
    expectSameStream(reference, replayed);
    EXPECT_TRUE(replay.halted());

    // Past the halt, next() keeps returning false (as Executor::step).
    DynOp op;
    EXPECT_FALSE(replay.next(op));
    EXPECT_EQ(replay.produced(), reference.size());
}

// -------------------------------------------------- buffer behaviour

TEST(TraceBuffer, ExtendsLazilyOnDemand)
{
    const Program &p = workloadProgram("gamess");
    auto buffer = std::make_shared<TraceBuffer>(p);
    EXPECT_EQ(buffer->size(), 0u);

    TraceReplay cursor(buffer);
    collect(cursor, 10000);
    std::uint64_t after_first = buffer->size();
    EXPECT_GE(after_first, 10000u);
    // Demand-driven: nowhere near a full workload budget.
    EXPECT_LT(after_first, 10000u + 2 * TraceBuffer::chunkOps);

    // A second cursor with the same demand re-reads, never re-executes.
    TraceReplay cursor2(buffer);
    collect(cursor2, 10000);
    EXPECT_EQ(buffer->size(), after_first);
    EXPECT_GT(buffer->memoryBytes(), 0u);
}

TEST(TraceBuffer, ConcurrentCursorsSeeIdenticalStreams)
{
    const Program &p = workloadProgram("hmmer");
    constexpr std::uint64_t ops_per_cursor = 30000;
    LiveSource live(p);
    std::vector<DynOp> reference = collect(live, ops_per_cursor);

    // All cursors race to extend one shared buffer while reading it.
    auto buffer = std::make_shared<TraceBuffer>(p);
    constexpr int n_threads = 4;
    std::vector<std::vector<DynOp>> streams(n_threads);
    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t) {
        threads.emplace_back([&, t] {
            TraceReplay cursor(buffer);
            streams[t] = collect(cursor, ops_per_cursor);
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (int t = 0; t < n_threads; ++t)
        expectSameStream(reference, streams[t]);
}

// -------------------------------------------------- timing identity

CoreStats
runCore(std::unique_ptr<DynOpSource> source, const CoreConfig &cfg,
        std::uint64_t insts)
{
    mem::Hierarchy hierarchy({});
    OooCore core(0, cfg, std::move(source), hierarchy);
    while (core.retired() < insts && core.stepInstruction()) {
    }
    return core.stats();
}

void
expectSameStats(const CoreStats &a, const CoreStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc); // bit-identical, not just near
    EXPECT_EQ(a.condBranches, b.condBranches);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
    EXPECT_EQ(a.branchMissRate, b.branchMissRate);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.branchesPerFetchCycle, b.branchesPerFetchCycle);
    EXPECT_EQ(a.fetchCyclesWithBranch, b.fetchCyclesWithBranch);
}

TEST(TraceTiming, OooCoreStatsIdenticalLiveVsReplay)
{
    const Program &p = workloadProgram("libquantum");
    CoreConfig cfg;
    cfg.prefetcher = "Bfetch";

    CoreStats live =
        runCore(std::make_unique<LiveSource>(p), cfg, 20000);
    TraceCapture warm(p);
    collect(warm, 1); // materialize the buffer before sharing it
    auto buffer = warm.buffer();
    CoreStats replay =
        runCore(std::make_unique<TraceReplay>(buffer), cfg, 20000);
    expectSameStats(live, replay);
}

TEST(TraceTiming, PerfectPrefetcherIdenticalUnderReplay)
{
    const Program &p = workloadProgram("mcf");
    CoreConfig perfect;
    perfect.prefetcher = "Perfect";

    CoreStats live =
        runCore(std::make_unique<LiveSource>(p), perfect, 20000);
    TraceCapture warm(p);
    collect(warm, 1);
    CoreStats replay = runCore(
        std::make_unique<TraceReplay>(warm.buffer()), perfect, 20000);
    expectSameStats(live, replay);

    // The oracle must still behave as an oracle when replayed: faster
    // than the no-prefetch baseline over the same trace buffer.
    CoreConfig none;
    none.prefetcher = "None";
    CoreStats base = runCore(
        std::make_unique<TraceReplay>(warm.buffer()), none, 20000);
    EXPECT_LT(replay.cycles, base.cycles);
}

} // namespace
} // namespace bfsim::sim
