/**
 * @file
 * Memory-hierarchy timing tests: per-level latencies, MSHR merging and
 * capacity, prefetch injection and usefulness feedback, late-prefetch
 * upgrading, DRAM bandwidth/priority, and cross-core L3 sharing.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/hierarchy.hh"

namespace bfsim::mem {
namespace {

HierarchyConfig
baseConfig(unsigned cores = 1)
{
    HierarchyConfig cfg;
    cfg.numCores = cores;
    return cfg;
}

TEST(Dram, FixedLatencyWhenIdle)
{
    Dram dram;
    EXPECT_EQ(dram.read(1000), 1000 + dram.config().accessLatency);
}

TEST(Dram, BackToBackReadsQueueOnTheBus)
{
    Dram dram;
    Cycle first = dram.read(0);
    Cycle second = dram.read(0);
    EXPECT_EQ(second - first, dram.config().cyclesPerBlock);
}

TEST(Dram, DemandBypassesPrefetchBacklog)
{
    Dram dram;
    for (int i = 0; i < 10; ++i)
        dram.read(0, false); // prefetch backlog
    Cycle demand = dram.read(0, true);
    // The demand queues only behind demand traffic (none yet).
    EXPECT_EQ(demand, 0 + dram.config().accessLatency);
}

TEST(Dram, WritebacksConsumeBandwidth)
{
    Dram dram;
    dram.writeback(0);
    Cycle read = dram.read(0, false);
    EXPECT_EQ(read, dram.config().cyclesPerBlock +
                        dram.config().accessLatency);
    EXPECT_EQ(dram.writebacks(), 1u);
}

TEST(Hierarchy, ColdMissPaysFullPath)
{
    Hierarchy mem(baseConfig());
    AccessOutcome out = mem.access(0, 0x10000, false, 0);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_FALSE(out.l2Hit);
    EXPECT_FALSE(out.l3Hit);
    // L1 + L2 + L3 lookup latencies plus DRAM access.
    EXPECT_GE(out.latency, 200u);
}

TEST(Hierarchy, SecondAccessHitsL1AtHitLatency)
{
    Hierarchy mem(baseConfig());
    AccessOutcome first = mem.access(0, 0x10000, false, 0);
    Cycle later = first.latency + 10;
    AccessOutcome second = mem.access(0, 0x10000, false, later);
    EXPECT_TRUE(second.l1Hit);
    EXPECT_EQ(second.latency, mem.config().l1d.hitLatency);
}

TEST(Hierarchy, InFlightMissMergesInsteadOfReissuing)
{
    Hierarchy mem(baseConfig());
    AccessOutcome first = mem.access(0, 0x10000, false, 0);
    // Same block, 10 cycles later, still in flight.
    AccessOutcome merged = mem.access(0, 0x10008, false, 10);
    EXPECT_TRUE(merged.l1Hit);
    EXPECT_EQ(10 + merged.latency,
              first.latency + mem.config().l1d.hitLatency);
    EXPECT_EQ(mem.dram().reads(), 1u);
}

TEST(Hierarchy, MshrCapacityDelaysExtraMisses)
{
    HierarchyConfig cfg = baseConfig();
    cfg.l1Mshrs = 2;
    Hierarchy mem(cfg);
    Cycle l0 = mem.access(0, 0x100000, false, 0).latency;
    mem.access(0, 0x200000, false, 0);
    // Third concurrent miss must wait for an MSHR.
    AccessOutcome third = mem.access(0, 0x300000, false, 0);
    EXPECT_GT(third.latency, l0);
}

TEST(Hierarchy, L2HitIsCheaperThanL3Hit)
{
    Hierarchy mem(baseConfig());
    // Fill the block, then evict it from L1 only by filling the set.
    mem.access(0, 0x10000, false, 0);
    std::size_t l1_sets = 64 * 1024 / (8 * blockSizeBytes);
    for (unsigned i = 1; i <= 8; ++i)
        mem.access(0, 0x10000 + i * l1_sets * blockSizeBytes, false,
                   100000 + i);
    AccessOutcome out = mem.access(0, 0x10000, false, 500000);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.l2Hit);
    EXPECT_EQ(out.latency,
              mem.config().l1d.hitLatency + mem.config().l2.hitLatency);
}

TEST(Hierarchy, PrefetchFillsL1)
{
    Hierarchy mem(baseConfig());
    EXPECT_EQ(mem.prefetch(0, 0x20000, 0, 0x3a), PrefetchResult::Issued);
    EXPECT_TRUE(mem.inL1(0, 0x20000));
    EXPECT_EQ(mem.stats(0).prefetchesIssued, 1u);
}

TEST(Hierarchy, DuplicatePrefetchIsRejected)
{
    Hierarchy mem(baseConfig());
    mem.prefetch(0, 0x20000, 0, 0x3a);
    EXPECT_EQ(mem.prefetch(0, 0x20000, 1, 0x3a),
              PrefetchResult::AlreadyPresent);
    EXPECT_EQ(mem.stats(0).prefetchesDuplicate, 1u);
}

TEST(Hierarchy, UsefulPrefetchFeedbackFires)
{
    Hierarchy mem(baseConfig());
    std::uint16_t fed_hash = 0;
    bool fed_useful = false;
    mem.setPrefetchFeedback(0, [&](std::uint16_t hash, bool useful) {
        fed_hash = hash;
        fed_useful = useful;
    });
    mem.prefetch(0, 0x20000, 0, 0x155);
    AccessOutcome out = mem.access(0, 0x20000, false, 100000);
    EXPECT_TRUE(out.usedPrefetch);
    EXPECT_EQ(fed_hash, 0x155);
    EXPECT_TRUE(fed_useful);
    EXPECT_EQ(mem.stats(0).usefulPrefetches, 1u);
    // Only the first use counts.
    out = mem.access(0, 0x20000, false, 100010);
    EXPECT_FALSE(out.usedPrefetch);
    EXPECT_EQ(mem.stats(0).usefulPrefetches, 1u);
}

TEST(Hierarchy, UselessPrefetchFeedbackOnEviction)
{
    Hierarchy mem(baseConfig());
    int useless_events = 0;
    mem.setPrefetchFeedback(0, [&](std::uint16_t, bool useful) {
        if (!useful)
            ++useless_events;
    });
    std::size_t l1_sets = 64 * 1024 / (8 * blockSizeBytes);
    mem.prefetch(0, 0x20000, 0, 0x77);
    // Push the set until the prefetched block is evicted untouched.
    for (unsigned i = 1; i <= 8; ++i)
        mem.access(0, 0x20000 + i * l1_sets * blockSizeBytes, false,
                   1000 * i);
    EXPECT_EQ(useless_events, 1);
    EXPECT_EQ(mem.stats(0).uselessPrefetches, 1u);
}

TEST(Hierarchy, LatePrefetchStillWaitsButUpgrades)
{
    Hierarchy mem(baseConfig());
    mem.prefetch(0, 0x30000, 0, 0x11);
    // Demand follows immediately: data not there yet.
    AccessOutcome out = mem.access(0, 0x30000, false, 5);
    EXPECT_TRUE(out.l1Hit);
    EXPECT_TRUE(out.latePrefetch);
    EXPECT_GT(out.latency, mem.config().l1d.hitLatency);
    // The wait is capped at a fresh demand miss's cost.
    Cycle cap = mem.config().l2.hitLatency + mem.config().l3HitLatency +
                mem.dram().config().accessLatency +
                mem.config().l1d.hitLatency;
    EXPECT_LE(out.latency, cap + mem.config().l1d.hitLatency);
    EXPECT_EQ(mem.stats(0).latePrefetches, 1u);
}

TEST(Hierarchy, CoresHaveDisjointAddressSpaces)
{
    Hierarchy mem(baseConfig(2));
    mem.access(0, 0x10000, false, 0);
    AccessOutcome other = mem.access(1, 0x10000, false, 1000);
    EXPECT_FALSE(other.l1Hit);
    EXPECT_FALSE(other.l2Hit);
    EXPECT_FALSE(other.l3Hit); // different physical addresses
}

TEST(Hierarchy, SharedL3IsSizedPerCore)
{
    HierarchyConfig one = baseConfig(1);
    HierarchyConfig four = baseConfig(4);
    Hierarchy mem1(one), mem4(four);
    // Indirect check: the 4-core config accepts 4x the distinct blocks
    // before its first L3 eviction. We simply verify construction and
    // the config plumb-through.
    EXPECT_EQ(mem1.config().l3PerCoreBytes * 1,
              one.l3PerCoreBytes * one.numCores);
    EXPECT_EQ(mem4.config().numCores, 4u);
}

TEST(Hierarchy, StoresMarkBlocksDirtyAndWriteBack)
{
    Hierarchy mem(baseConfig());
    mem.access(0, 0x40000, true, 0); // write-allocate
    std::size_t l1_sets = 64 * 1024 / (8 * blockSizeBytes);
    for (unsigned i = 1; i <= 8; ++i)
        mem.access(0, 0x40000 + i * l1_sets * blockSizeBytes, false,
                   1000 * i);
    EXPECT_GE(mem.stats(0).writebacks, 1u);
}

} // namespace
} // namespace bfsim::mem
