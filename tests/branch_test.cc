/**
 * @file
 * Branch predictor tests: saturating counters, each predictor's learning
 * behaviour on canonical patterns (parameterized), history probing, and
 * storage accounting including the Fig. 13 size scaling.
 */

#include <functional>
#include <memory>

#include <gtest/gtest.h>

#include "branch/predictor.hh"
#include "branch/tage.hh"
#include "common/sim_error.hh"

namespace bfsim::branch {
namespace {

TEST(SatCounter, SaturatesBothWays)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.max(), 3u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
}

TEST(SatCounter, IsSetAtUpperHalf)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.isSet());
    c.increment(); // 1
    EXPECT_FALSE(c.isSet());
    c.increment(); // 2
    EXPECT_TRUE(c.isSet());
}

TEST(SatCounter, SetClampsToMax)
{
    SatCounter c(3, 0);
    c.set(100);
    EXPECT_EQ(c.value(), 7u);
}

/** Train a predictor with a repeating direction pattern; return final
 *  accuracy over the last `measure` outcomes. */
double
trainAccuracy(DirectionPredictor &pred, const std::vector<bool> &pattern,
              int repetitions, Addr pc = 0x400100)
{
    int correct = 0, measured = 0;
    int warmup = repetitions / 2;
    for (int rep = 0; rep < repetitions; ++rep) {
        for (bool taken : pattern) {
            bool predicted = pred.predict(pc);
            if (rep >= warmup) {
                ++measured;
                correct += (predicted == taken);
            }
            pred.update(pc, taken);
        }
    }
    return static_cast<double>(correct) / measured;
}

using PredictorFactory =
    std::function<std::unique_ptr<DirectionPredictor>()>;

struct PredictorCase
{
    const char *name;
    PredictorFactory make;
};

class PredictorLearning : public ::testing::TestWithParam<PredictorCase>
{
};

TEST_P(PredictorLearning, AlwaysTakenIsLearned)
{
    auto pred = GetParam().make();
    EXPECT_GT(trainAccuracy(*pred, {true}, 200), 0.99);
}

TEST_P(PredictorLearning, AlwaysNotTakenIsLearned)
{
    auto pred = GetParam().make();
    EXPECT_GT(trainAccuracy(*pred, {false}, 200), 0.99);
}

TEST_P(PredictorLearning, StronglyBiasedIsMostlyCorrect)
{
    auto pred = GetParam().make();
    // 7 taken : 1 not-taken.
    std::vector<bool> pattern(8, true);
    pattern[7] = false;
    EXPECT_GT(trainAccuracy(*pred, pattern, 100), 0.8);
}

TEST_P(PredictorLearning, StorageIsNonZero)
{
    auto pred = GetParam().make();
    EXPECT_GT(pred->storageBits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPredictors, PredictorLearning,
    ::testing::Values(
        PredictorCase{"bimodal",
                      [] {
                          return std::make_unique<BimodalPredictor>(4096);
                      }},
        PredictorCase{"gshare",
                      [] {
                          return std::make_unique<GSharePredictor>(4096);
                      }},
        PredictorCase{"local",
                      [] {
                          return std::make_unique<LocalPredictor>();
                      }},
        PredictorCase{"tournament",
                      [] {
                          return std::make_unique<TournamentPredictor>();
                      }},
        PredictorCase{"tage",
                      [] {
                          return std::make_unique<TagePredictor>();
                      }}),
    [](const ::testing::TestParamInfo<PredictorCase> &info) {
        return info.param.name;
    });

TEST(GShare, HistoryAdvancesOnUpdate)
{
    GSharePredictor pred(1024);
    EXPECT_EQ(pred.history(), 0u);
    pred.update(0x400000, true);
    EXPECT_EQ(pred.history() & 1, 1u);
    pred.update(0x400000, false);
    EXPECT_EQ(pred.history() & 1, 0u);
}

TEST(GShare, PatternWithHistoryIsLearned)
{
    // Alternating T/N is hopeless for bimodal but trivial with history.
    GSharePredictor gshare(4096);
    BimodalPredictor bimodal(4096);
    std::vector<bool> alternating{true, false};
    EXPECT_GT(trainAccuracy(gshare, alternating, 400), 0.95);
    EXPECT_LT(trainAccuracy(bimodal, alternating, 400), 0.7);
}

TEST(Local, PeriodicLoopExitIsLearned)
{
    // Period-5 loop: taken x4 then not-taken; a local 10-bit history
    // captures this exactly.
    LocalPredictor pred;
    std::vector<bool> pattern{true, true, true, true, false};
    EXPECT_GT(trainAccuracy(pred, pattern, 400), 0.95);
}

TEST(Tournament, BeatsComponentsOnMixedPatterns)
{
    // Two branches: one needs global history, one is biased; the
    // tournament should do well on both simultaneously.
    TournamentPredictor pred;
    std::vector<bool> alternating{true, false};
    double acc_alt = trainAccuracy(pred, alternating, 400, 0x400100);
    std::vector<bool> biased(10, true);
    double acc_biased = trainAccuracy(pred, biased, 100, 0x400200);
    EXPECT_GT(acc_alt, 0.9);
    EXPECT_GT(acc_biased, 0.99);
}

TEST(Tournament, ProbeIsSideEffectFree)
{
    TournamentPredictor pred;
    for (int i = 0; i < 50; ++i)
        pred.update(0x400100, true);
    std::uint64_t history = pred.history();
    bool first = pred.probe(0x400100, history);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(pred.probe(0x400100, history), first);
    EXPECT_EQ(pred.history(), history);
}

TEST(Tournament, ProbeMatchesPredictUnderCurrentHistory)
{
    TournamentPredictor pred;
    for (int i = 0; i < 500; ++i) {
        Addr pc = 0x400000 + (i % 7) * 4;
        EXPECT_EQ(pred.predict(pc), pred.probe(pc, pred.history()));
        pred.update(pc, (i % 3) != 0);
    }
}

TEST(Tournament, SizeScalingChangesStorage)
{
    TournamentConfig half;
    half.sizeScale = 0.5;
    TournamentConfig full;
    TournamentConfig quad;
    quad.sizeScale = 4.0;
    TournamentPredictor p_half(half), p_full(full), p_quad(quad);
    EXPECT_LT(p_half.storageBits(), p_full.storageBits());
    EXPECT_GT(p_quad.storageBits(), p_full.storageBits());
    // The baseline predictor is in the ballpark of the paper's 6.55KB.
    double kb = static_cast<double>(p_full.storageBits()) / 8.0 / 1024.0;
    EXPECT_GT(kb, 4.0);
    EXPECT_LT(kb, 9.0);
}

TEST(Tournament, FactoryProducesWorkingPredictor)
{
    auto pred = makeTournamentPredictor(1.0);
    EXPECT_GT(trainAccuracy(*pred, {true}, 100), 0.99);
    EXPECT_GT(pred->historyBits(), 0u);
}

TEST(Tage, LongPeriodPatternBeatsGshare)
{
    // Period-12 loop exit: 44 bits of geometric history capture it;
    // gshare's single hashed history length struggles at 4K entries.
    std::vector<bool> pattern(12, true);
    pattern[11] = false;
    TagePredictor tage;
    GSharePredictor gshare(4096);
    double acc_tage = trainAccuracy(tage, pattern, 400);
    EXPECT_GT(acc_tage, 0.95);
    EXPECT_GE(acc_tage, trainAccuracy(gshare, pattern, 400) - 0.01);
}

TEST(Tage, ProbeIsSideEffectFree)
{
    TagePredictor pred;
    std::vector<bool> pattern{true, true, false};
    trainAccuracy(pred, pattern, 100);
    std::uint64_t history = pred.history();
    bool first = pred.probe(0x400100, history);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(pred.probe(0x400100, history), first);
    EXPECT_EQ(pred.history(), history);
}

TEST(Tage, ProbeMatchesPredictUnderCurrentHistory)
{
    TagePredictor pred;
    for (int i = 0; i < 2000; ++i) {
        Addr pc = 0x400000 + (i % 13) * 4;
        EXPECT_EQ(pred.predict(pc), pred.probe(pc, pred.history()));
        pred.update(pc, (i % 5) != 0);
    }
}

TEST(Tage, HistoryBitsFitBFetchMask)
{
    // core/bfetch.cc masks speculative history with
    // (1 << historyBits()) - 1, so 64+ bits would overflow.
    TagePredictor pred;
    EXPECT_LE(pred.historyBits(), 63u);
    TageConfig wide;
    wide.maxHistory = 64;
    EXPECT_THROW(TagePredictor{wide}, SimError);
}

TEST(Tage, ConfigValidationRejectsNonsense)
{
    TageConfig no_tables;
    no_tables.numTables = 0;
    EXPECT_THROW(TagePredictor{no_tables}, SimError);
    TageConfig inverted;
    inverted.minHistory = 30;
    inverted.maxHistory = 10;
    EXPECT_THROW(TagePredictor{inverted}, SimError);
}

TEST(Tage, SizeScalingChangesStorage)
{
    TageConfig half;
    half.sizeScale = 0.5;
    TageConfig full;
    TageConfig quad;
    quad.sizeScale = 4.0;
    TagePredictor p_half(half), p_full(full), p_quad(quad);
    EXPECT_LT(p_half.storageBits(), p_full.storageBits());
    EXPECT_GT(p_quad.storageBits(), p_full.storageBits());
}

TEST(Tage, IdenticalUpdateStreamsConverge)
{
    // Determinism: two instances fed the same stream always agree —
    // the LFSR-driven allocation is internal state, not wall clock.
    TagePredictor a, b;
    std::uint32_t x = 12345;
    for (int i = 0; i < 5000; ++i) {
        x = x * 1664525u + 1013904223u;
        Addr pc = 0x400000 + (x % 31) * 4;
        bool taken = ((x >> 16) & 3) != 0;
        EXPECT_EQ(a.predict(pc), b.predict(pc));
        a.update(pc, taken);
        b.update(pc, taken);
        ASSERT_EQ(a.history(), b.history());
    }
}

} // namespace
} // namespace bfsim::branch
