/**
 * @file
 * Prefetcher tests: the queue's dedup/capacity behaviour, Next-N,
 * the stride RPT state machine, and SMS generation/pattern mechanics.
 */

#include <gtest/gtest.h>

#include "prefetch/next_n_line.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/queue.hh"
#include "prefetch/sms.hh"
#include "prefetch/stride.hh"

namespace bfsim::prefetch {
namespace {

DemandAccess
loadAt(Addr pc, Addr vaddr, bool hit = false)
{
    DemandAccess access;
    access.pc = pc;
    access.vaddr = vaddr;
    access.isLoad = true;
    access.l1Hit = hit;
    return access;
}

std::vector<Addr>
drain(PrefetchQueue &queue)
{
    std::vector<Addr> blocks;
    while (!queue.empty())
        blocks.push_back(queue.pop().blockAddr);
    return blocks;
}

TEST(PrefetchQueue, BlockAlignsAndDedups)
{
    PrefetchQueue queue(10);
    EXPECT_TRUE(queue.push(0x1008, 1));
    EXPECT_FALSE(queue.push(0x1030, 2)); // same block
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.pop().blockAddr, 0x1000u);
    EXPECT_EQ(queue.duplicates(), 1u);
}

TEST(PrefetchQueue, CapacityDropsOverflow)
{
    PrefetchQueue queue(3);
    for (Addr a = 0; a < 5; ++a)
        queue.push(a * blockSizeBytes, 0);
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.dropped(), 2u);
}

TEST(PrefetchQueue, FifoOrderAndReinsertAfterPop)
{
    PrefetchQueue queue(10);
    queue.push(0x1000, 1);
    queue.push(0x2000, 2);
    PrefetchCandidate first = queue.pop();
    EXPECT_EQ(first.blockAddr, 0x1000u);
    EXPECT_EQ(first.loadPcHash, 1);
    // After popping, the block may be queued again.
    EXPECT_TRUE(queue.push(0x1000, 3));
}

TEST(PrefetchQueue, ClearEmptiesEverything)
{
    PrefetchQueue queue(10);
    queue.push(0x1000, 1);
    queue.clear();
    EXPECT_TRUE(queue.empty());
    EXPECT_TRUE(queue.push(0x1000, 1));
}

TEST(PcHash, TenBitsStable)
{
    EXPECT_EQ(pcHash10(0x400100), pcHash10(0x400100));
    EXPECT_LT(pcHash10(0x400100), 1024);
}

TEST(NextN, PrefetchesSequentialLinesOnMiss)
{
    NextNLinePrefetcher pf(3);
    PrefetchQueue queue(10);
    pf.observe(loadAt(0x400000, 0x10000), queue);
    auto blocks = drain(queue);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_EQ(blocks[0], 0x10040u);
    EXPECT_EQ(blocks[1], 0x10080u);
    EXPECT_EQ(blocks[2], 0x100c0u);
}

TEST(NextN, QuietOnHits)
{
    NextNLinePrefetcher pf(3);
    PrefetchQueue queue(10);
    pf.observe(loadAt(0x400000, 0x10000, /*hit=*/true), queue);
    EXPECT_TRUE(queue.empty());
}

TEST(Stride, NeedsTwoMatchingDeltasToGoSteady)
{
    StridePrefetcher pf;
    PrefetchQueue queue(100);
    pf.observe(loadAt(0x400000, 0x10000), queue); // allocate
    pf.observe(loadAt(0x400000, 0x10100), queue); // learn stride
    EXPECT_TRUE(queue.empty());
    pf.observe(loadAt(0x400000, 0x10200), queue); // steady -> issue
    EXPECT_FALSE(queue.empty());
}

TEST(Stride, IssuesDegreeStridedBlocks)
{
    StrideConfig cfg;
    cfg.degree = 4;
    StridePrefetcher pf(cfg);
    PrefetchQueue queue(100);
    pf.observe(loadAt(0x400000, 0x10000), queue);
    pf.observe(loadAt(0x400000, 0x10100), queue);
    pf.observe(loadAt(0x400000, 0x10200), queue);
    auto blocks = drain(queue);
    ASSERT_EQ(blocks.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(blocks[i], 0x10200u + (i + 1) * 0x100);
}

TEST(Stride, NegativeStridesWork)
{
    StridePrefetcher pf;
    PrefetchQueue queue(100);
    pf.observe(loadAt(0x400000, 0x20000), queue);
    pf.observe(loadAt(0x400000, 0x1ff00), queue);
    pf.observe(loadAt(0x400000, 0x1fe00), queue);
    auto blocks = drain(queue);
    ASSERT_FALSE(blocks.empty());
    EXPECT_EQ(blocks[0], 0x1fd00u);
}

TEST(Stride, MissTriggeredOnly)
{
    StridePrefetcher pf;
    PrefetchQueue queue(100);
    pf.observe(loadAt(0x400000, 0x10000), queue);
    pf.observe(loadAt(0x400000, 0x10100), queue);
    // Steady but the access hits: no prefetch burst.
    pf.observe(loadAt(0x400000, 0x10200, /*hit=*/true), queue);
    EXPECT_TRUE(queue.empty());
}

TEST(Stride, BrokenPatternStopsPrefetching)
{
    StridePrefetcher pf;
    PrefetchQueue queue(100);
    pf.observe(loadAt(0x400000, 0x10000), queue);
    pf.observe(loadAt(0x400000, 0x10100), queue);
    pf.observe(loadAt(0x400000, 0x10200), queue);
    drain(queue);
    pf.observe(loadAt(0x400000, 0x90000), queue); // break
    pf.observe(loadAt(0x400000, 0x95000), queue); // different delta
    EXPECT_TRUE(queue.empty());
}

TEST(Stride, IgnoresStores)
{
    StridePrefetcher pf;
    PrefetchQueue queue(100);
    DemandAccess store = loadAt(0x400000, 0x10000);
    store.isLoad = false;
    for (int i = 0; i < 5; ++i) {
        store.vaddr += 0x100;
        pf.observe(store, queue);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(Stride, StorageMatchesConfig)
{
    StrideConfig cfg;
    cfg.entries = 512;
    StridePrefetcher pf(cfg);
    EXPECT_GT(pf.storageBits(), 0u);
    StrideConfig big;
    big.entries = 1024;
    EXPECT_EQ(StridePrefetcher(big).storageBits(),
              2 * pf.storageBits());
}

TEST(Sms, LearnsARegionPatternAcrossGenerations)
{
    SmsConfig cfg;
    cfg.agtEntries = 2; // force quick generation turnover
    SmsPrefetcher pf(cfg);
    PrefetchQueue queue(200);

    Addr region = 0x100000;
    Addr trigger_pc = 0x400800;
    // Generation 1: trigger at offset 0, then touch granules 2 and 5.
    pf.observe(loadAt(trigger_pc, region), queue);
    pf.observe(loadAt(0x400900, region + 2 * cfg.granuleBytes), queue);
    pf.observe(loadAt(0x400a00, region + 5 * cfg.granuleBytes), queue);
    // Evict the generation by triggering two other regions.
    pf.observe(loadAt(trigger_pc, 0x200000), queue);
    pf.observe(loadAt(trigger_pc, 0x300000), queue);
    drain(queue);

    // New visit to a region with the same trigger (pc, granule): the
    // learned pattern should stream granules 2 and 5.
    Addr region2 = 0x500000;
    pf.observe(loadAt(trigger_pc, region2), queue);
    auto blocks = drain(queue);
    std::vector<Addr> expected;
    for (unsigned g : {2u, 5u})
        for (unsigned b = 0; b < cfg.granuleBytes / blockSizeBytes; ++b)
            expected.push_back(region2 + g * cfg.granuleBytes +
                               b * blockSizeBytes);
    // Granule 0's partner block is also predicted (minus the trigger).
    EXPECT_GE(blocks.size(), expected.size());
    for (Addr e : expected)
        EXPECT_NE(std::find(blocks.begin(), blocks.end(), e),
                  blocks.end())
            << std::hex << e;
}

TEST(Sms, AccumulatesWithoutPredictingMidGeneration)
{
    SmsPrefetcher pf;
    PrefetchQueue queue(200);
    pf.observe(loadAt(0x400800, 0x100000), queue);
    drain(queue);
    // Accesses within the active generation never predict.
    pf.observe(loadAt(0x400900, 0x100000 + 128), queue);
    pf.observe(loadAt(0x400a00, 0x100000 + 512), queue);
    EXPECT_TRUE(queue.empty());
}

TEST(Sms, SingleTouchGenerationsAreNotRecorded)
{
    SmsConfig cfg;
    cfg.agtEntries = 1;
    SmsPrefetcher pf(cfg);
    PrefetchQueue queue(200);
    // Touch one region once (single granule), then turn over.
    pf.observe(loadAt(0x400800, 0x100000), queue);
    pf.observe(loadAt(0x400800, 0x200000), queue);
    drain(queue);
    // Same trigger again: no pattern should have been stored.
    pf.observe(loadAt(0x400800, 0x300000), queue);
    EXPECT_TRUE(queue.empty());
}

TEST(Sms, StorageMatchesTableIBudget)
{
    SmsPrefetcher pf;
    double kb = static_cast<double>(pf.storageBits()) / 8.0 / 1024.0;
    // Table I: 36.57KB for the paper's configuration.
    EXPECT_NEAR(kb, 36.57, 0.7);
}

TEST(Sms, PatternBitsFollowGranuleConfig)
{
    SmsConfig cfg;
    cfg.regionBytes = 2048;
    cfg.granuleBytes = 128;
    EXPECT_EQ(SmsPrefetcher(cfg).patternBits(), 16u);
    cfg.granuleBytes = 64;
    EXPECT_EQ(SmsPrefetcher(cfg).patternBits(), 32u);
}

} // namespace
} // namespace bfsim::prefetch
