/**
 * @file
 * Tests for the bfsimd sweep service: protocol parsing/validation
 * (service/protocol.hh) and an end-to-end daemon conversation over a
 * real Unix-domain socket — hello/ping/error handling, a small sweep
 * streamed as JSON lines, journal-directory stability across identical
 * requests, and clean shutdown.
 *
 * Also the TCP half of the service (service/transport.hh): the framed
 * line protocol over a real loopback socket, concurrent client
 * connections, transport robustness against truncated / oversized /
 * garbage frames and mid-sweep disconnects, the remote-job dialect
 * (WireJob/WireResult) and remote trace-store dialect
 * (StoreGet/StorePut), and the sharded-sweep coordinator driving real
 * in-process worker daemons — including one that dies holding a job.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/signal_util.hh"
#include "common/sim_error.hh"
#include "common/subprocess.hh"
#include "harness/experiment.hh"
#include "harness/journal.hh"
#include "harness/wire.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "sim/trace_store.hh"

namespace bfsim::service {
namespace {

TEST(Protocol, SplitTokens)
{
    EXPECT_TRUE(splitTokens("").empty());
    EXPECT_TRUE(splitTokens("   \t ").empty());
    std::vector<std::string> tokens =
        splitTokens("  job   single mcf\tbfetch ");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0], "job");
    EXPECT_EQ(tokens[3], "bfetch");
}

TEST(Protocol, OptionsApplyToSubsequentJobs)
{
    SweepRequest request;
    applyOption(request, "instructions", "12345");
    applyOption(request, "retries", "2");
    applyOption(request, "deadline", "1.5");
    applyOption(request, "isolate", "none");
    applyOption(request, "workers", "3");
    addJob(request, splitTokens("job single mcf bfetch point"));
    applyOption(request, "instructions", "99999");
    addJob(request, splitTokens("job mix mcf,lbm stride"));

    ASSERT_EQ(request.jobs.size(), 2u);
    EXPECT_EQ(request.jobs[0].options.instructions, 12345u);
    EXPECT_EQ(request.jobs[0].label, "point");
    EXPECT_EQ(request.jobs[1].options.instructions, 99999u);
    ASSERT_EQ(request.jobs[1].workloads.size(), 2u);
    EXPECT_EQ(request.batch.retries, 2u);
    EXPECT_EQ(request.batch.jobDeadlineSeconds, 1.5);
    EXPECT_EQ(request.batch.isolate, harness::IsolateMode::None);
    EXPECT_EQ(request.workers, 3u);
}

TEST(Protocol, PriorityIsAHintNotIdentity)
{
    SweepRequest plain;
    applyOption(plain, "instructions", "30000");
    addJob(plain, splitTokens("job single mcf none"));

    SweepRequest hinted;
    applyOption(hinted, "instructions", "30000");
    applyOption(hinted, "priority", "5");
    addJob(hinted, splitTokens("job single mcf none"));
    applyOption(hinted, "priority", "-2");

    EXPECT_EQ(plain.jobs[0].priority, 0);
    EXPECT_EQ(hinted.jobs[0].priority, 5);
    EXPECT_EQ(hinted.priority, -2);
    // Priority changes scheduling, never results: identical points
    // share a journal whatever their priorities, so a re-submitted
    // sweep with different hints still resumes from the old journal.
    EXPECT_EQ(canonicalKey(plain), canonicalKey(hinted));
    EXPECT_EQ(journalDirFor("/tmp/root", plain),
              journalDirFor("/tmp/root", hinted));

    EXPECT_THROW(applyOption(hinted, "priority", "high"), SimError);
    EXPECT_THROW(applyOption(hinted, "priority", ""), SimError);
}

TEST(Wire, BatchJobRoundTrip)
{
    namespace wire = harness::wire;

    harness::RunOptions options;
    options.instructions = 12345;
    harness::BatchJob job =
        harness::BatchJob::single("mcf", "Bfetch", options, "pt");
    job.priority = 7;

    wire::Writer w;
    wire::encodeBatchJob(w, job);
    wire::Reader r(w.bytes());
    harness::BatchJob back = wire::decodeBatchJob(r);

    EXPECT_EQ(back.kind, harness::BatchJob::Kind::Single);
    EXPECT_EQ(back.label, "pt");
    ASSERT_EQ(back.workloads.size(), 1u);
    EXPECT_EQ(back.workloads[0], "mcf");
    EXPECT_EQ(back.prefetcher, "Bfetch");
    EXPECT_EQ(back.priority, 7);
    EXPECT_EQ(back.options.instructions, 12345u);
    // The full option set survives: the journal key (which hashes the
    // canonical option rendering) must be stable across the wire, or a
    // sharded worker would journal under a different sweep identity.
    EXPECT_EQ(harness::SweepJournal::jobKeyString(back),
              harness::SweepJournal::jobKeyString(job));

    harness::BatchJob mix = harness::BatchJob::mix(
        {"mcf", "lbm"}, "stride", options, "pair");
    wire::Writer wm;
    wire::encodeBatchJob(wm, mix);
    wire::Reader rm(wm.bytes());
    harness::BatchJob mix_back = wire::decodeBatchJob(rm);
    EXPECT_EQ(mix_back.kind, harness::BatchJob::Kind::Mix);
    ASSERT_EQ(mix_back.workloads.size(), 2u);
    EXPECT_EQ(mix_back.workloads[1], "lbm");
    EXPECT_EQ(harness::SweepJournal::jobKeyString(mix_back),
              harness::SweepJournal::jobKeyString(mix));
}

TEST(Wire, CustomJobsCannotCrossTheWire)
{
    namespace wire = harness::wire;
    harness::BatchJob job =
        harness::BatchJob::custom("opaque", [] { return 1.0; });
    wire::Writer w;
    EXPECT_THROW(wire::encodeBatchJob(w, job), SimError);
}

TEST(Protocol, RejectsBadInput)
{
    SweepRequest request;
    EXPECT_THROW(applyOption(request, "bogus", "1"), SimError);
    EXPECT_THROW(applyOption(request, "instructions", "zero?"),
                 SimError);
    EXPECT_THROW(applyOption(request, "isolate", "container"),
                 SimError);
    EXPECT_THROW(addJob(request, splitTokens("job single nosuch none")),
                 SimError);
    EXPECT_THROW(addJob(request,
                        splitTokens("job single mcf nosuchpf")),
                 SimError);
    EXPECT_THROW(addJob(request, splitTokens("job mix mcf none")),
                 SimError);
    EXPECT_THROW(addJob(request, splitTokens("job triple mcf none")),
                 SimError);
    EXPECT_TRUE(request.jobs.empty());
}

TEST(Protocol, JournalDirIsStableAndRequestKeyed)
{
    SweepRequest a;
    applyOption(a, "instructions", "30000");
    addJob(a, splitTokens("job single mcf bfetch"));
    SweepRequest b;
    applyOption(b, "instructions", "30000");
    addJob(b, splitTokens("job single mcf bfetch label-only-differs"));
    SweepRequest c;
    applyOption(c, "instructions", "31000");
    addJob(c, splitTokens("job single mcf bfetch"));

    EXPECT_EQ(journalDirFor("", a), "");
    std::string dirA = journalDirFor("/tmp/root", a);
    EXPECT_EQ(dirA.rfind("/tmp/root/sweep-", 0), 0u) << dirA;
    // Identical points -> identical journal (resume works across
    // daemon restarts); different options -> different journal.
    EXPECT_EQ(dirA, journalDirFor("/tmp/root", a));
    EXPECT_NE(dirA, journalDirFor("/tmp/root", b)); // label is identity
    EXPECT_NE(dirA, journalDirFor("/tmp/root", c));
}

TEST(Protocol, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("x\ny"), "x\\ny");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

/** Blocking line-oriented test client over a Unix socket. */
class TestClient
{
  public:
    explicit TestClient(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof addr.sun_path - 1);
        // The daemon thread may not have bound yet: bounded retry.
        for (int attempt = 0; attempt < 100; ++attempt) {
            if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                          sizeof addr) == 0)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        ADD_FAILURE() << "cannot connect to " << path;
    }

    ~TestClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    send(const std::string &line)
    {
        std::string framed = line + "\n";
        ASSERT_EQ(::write(fd, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
    }

    /** Next response line ("" on EOF). */
    std::string
    readLine()
    {
        std::string line;
        std::size_t pos;
        while ((pos = buffer.find('\n')) == std::string::npos) {
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n <= 0)
                return "";
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
        line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        return line;
    }

  private:
    int fd = -1;
    std::string buffer;
};

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

struct DaemonFixture
{
    explicit DaemonFixture(DaemonOptions options)
        : daemon(std::move(options))
    {
        daemon.bind();
        server = std::thread([this] { exitCode = daemon.serve(); });
    }

    ~DaemonFixture()
    {
        if (server.joinable())
            server.join();
        signal_util::resetShutdownState();
    }

    Daemon daemon;
    std::thread server;
    int exitCode = -1;
};

std::string
tempPath(const std::string &stem)
{
    return ::testing::TempDir() + stem + "-" +
           std::to_string(::getpid());
}

TEST(DaemonEndToEnd, PingSweepShutdown)
{
    std::string socket_path = tempPath("bfsimd-e2e.sock");
    std::string journal_root = tempPath("bfsimd-e2e-journal");
    std::filesystem::remove_all(journal_root);
    ::unlink(socket_path.c_str());

    DaemonOptions options;
    options.socketPath = socket_path;
    options.journalRoot = journal_root;
    options.workers = 2;
    // In-process backend keeps the end-to-end test lean; the process
    // backend has its own battery in crash_test.
    options.isolate = harness::IsolateMode::None;

    harness::clearMemoCaches();
    DaemonFixture fixture(options);
    {
        TestClient client(socket_path);
        EXPECT_TRUE(contains(client.readLine(), "\"hello\""));

        client.send("ping");
        EXPECT_TRUE(contains(client.readLine(), "\"pong\""));

        client.send("bogus-command");
        EXPECT_TRUE(contains(client.readLine(), "\"error\""));

        client.send("run"); // outside a sweep
        EXPECT_TRUE(contains(client.readLine(), "\"error\""));

        client.send("sweep");
        EXPECT_TRUE(contains(client.readLine(), "\"ok\""));
        client.send("opt instructions 30000");
        EXPECT_TRUE(contains(client.readLine(), "\"ok\""));
        client.send("job single mcf none first");
        EXPECT_TRUE(contains(client.readLine(), "\"index\": 0"));
        client.send("job single lbm none second");
        EXPECT_TRUE(contains(client.readLine(), "\"index\": 1"));
        client.send("job bogus");
        EXPECT_TRUE(contains(client.readLine(), "\"error\""));

        client.send("run");
        std::string start = client.readLine();
        EXPECT_TRUE(contains(start, "\"start\"")) << start;
        EXPECT_TRUE(contains(start, "\"jobs\": 2")) << start;
        EXPECT_TRUE(contains(start, journal_root)) << start;
        std::string job1 = client.readLine();
        std::string job2 = client.readLine();
        EXPECT_TRUE(contains(job1, "\"job\"")) << job1;
        EXPECT_TRUE(contains(job2, "\"job\"")) << job2;
        EXPECT_TRUE(contains(job1, "\"failed\": false")) << job1;
        std::string done = client.readLine();
        EXPECT_TRUE(contains(done, "\"done\"")) << done;
        EXPECT_TRUE(contains(done, "\"failures\": 0")) << done;

        client.send("shutdown");
        EXPECT_TRUE(contains(client.readLine(), "\"bye\""));
    }
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);

    // The sweep journaled both points under its canonical directory.
    std::size_t records = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(journal_root))
        records += entry.path().extension() == ".rec" ? 1 : 0;
    EXPECT_EQ(records, 2u);
    std::filesystem::remove_all(journal_root);
}

TEST(DaemonEndToEnd, ResubmittedSweepRestoresFromJournal)
{
    std::string socket_path = tempPath("bfsimd-resume.sock");
    std::string journal_root = tempPath("bfsimd-resume-journal");
    std::filesystem::remove_all(journal_root);
    ::unlink(socket_path.c_str());

    DaemonOptions options;
    options.socketPath = socket_path;
    options.journalRoot = journal_root;
    options.workers = 2;
    options.isolate = harness::IsolateMode::None;

    auto submit = [&socket_path](bool expect_journaled) {
        TestClient client(socket_path);
        client.readLine(); // hello
        for (const char *line :
             {"sweep", "opt instructions 30000",
              "job single mcf none", "job single lbm none", "run"}) {
            client.send(line);
        }
        // Skip the acks, collect the stream.
        std::string line;
        std::size_t journaled_jobs = 0;
        bool done = false;
        while (!(line = client.readLine()).empty()) {
            if (contains(line, "\"journaled\": true"))
                ++journaled_jobs;
            if (contains(line, "\"type\": \"done\"")) {
                done = true;
                break;
            }
        }
        EXPECT_TRUE(done);
        EXPECT_EQ(journaled_jobs, expect_journaled ? 2u : 0u);
        client.send("shutdown");
        client.readLine();
    };

    harness::clearMemoCaches();
    {
        DaemonFixture first(options);
        submit(false);
    }
    // "Daemon restarted": cold process state, same journal root.
    harness::clearMemoCaches();
    signal_util::resetShutdownState();
    {
        DaemonFixture second(options);
        harness::MemoStats before = harness::memoStats();
        submit(true);
        harness::MemoStats after = harness::memoStats();
        EXPECT_EQ(after.singleComputes, before.singleComputes)
            << "resumed sweep must recompute nothing";
    }
    std::filesystem::remove_all(journal_root);
}

/**
 * Blocking framed test client over loopback TCP: protocol lines ride
 * in Line frames; the binary dialects (WireJob, StoreGet/StorePut) are
 * driven directly for the remote-job and remote-store tests; sendRaw
 * injects arbitrary bytes for the robustness battery.
 */
class TcpTestClient
{
  public:
    explicit TcpTestClient(std::uint16_t port)
    {
        std::string why;
        for (int attempt = 0; attempt < 100 && fd < 0; ++attempt) {
            fd = subprocess::dialTcp("127.0.0.1", port, 1.0, why);
            if (fd < 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
        }
        if (fd < 0)
            ADD_FAILURE() << "cannot connect to 127.0.0.1:" << port
                          << ": " << why;
    }

    ~TcpTestClient() { close(); }

    void
    close()
    {
        if (fd >= 0)
            ::close(fd);
        fd = -1;
    }

    void
    sendFrame(subprocess::FrameType type, const void *data,
              std::size_t len)
    {
        EXPECT_TRUE(subprocess::writeFrame(fd, type, data, len));
    }

    void
    sendLine(const std::string &line)
    {
        sendFrame(subprocess::FrameType::Line, line.data(),
                  line.size());
    }

    void
    sendRaw(const void *data, std::size_t len)
    {
        EXPECT_EQ(::write(fd, data, len), static_cast<ssize_t>(len));
    }

    /** Next frame of any type. @return false on EOF. */
    bool
    readFrame(subprocess::FrameType &type,
              std::vector<unsigned char> &payload)
    {
        return subprocess::readFrame(fd, type, payload);
    }

    /** Next protocol line, skipping binary frames ("" on EOF). */
    std::string
    readLine()
    {
        subprocess::FrameType type;
        std::vector<unsigned char> payload;
        while (readFrame(type, payload)) {
            if (type == subprocess::FrameType::Line)
                return std::string(payload.begin(), payload.end());
        }
        return "";
    }

    int fd = -1;
};

TEST(DaemonEndToEnd, TcpFramedConversation)
{
    std::string socket_path = tempPath("bfsimd-tcp.sock");
    std::string port_file = tempPath("bfsimd-tcp.port");
    ::unlink(socket_path.c_str());

    DaemonOptions options;
    options.socketPath = socket_path;
    options.listenSpec = "127.0.0.1:0"; // ephemeral port
    options.portFile = port_file;
    options.workers = 1;
    options.isolate = harness::IsolateMode::None;

    harness::clearMemoCaches();
    DaemonFixture fixture(options);
    std::uint16_t port = fixture.daemon.boundPort();
    ASSERT_NE(port, 0);

    // bind() published the ephemeral port for scripts to discover.
    std::ifstream ports(port_file);
    int written_port = 0;
    ports >> written_port;
    EXPECT_EQ(written_port, port);

    {
        TcpTestClient client(port);
        std::string hello = client.readLine();
        EXPECT_TRUE(contains(hello, "\"hello\"")) << hello;
        // The framed hello advertises remote-job capacity.
        EXPECT_TRUE(contains(hello, "\"workers\": 1")) << hello;

        client.sendLine("ping");
        EXPECT_TRUE(contains(client.readLine(), "\"pong\""));

        // A full sweep over TCP produces the same line stream the Unix
        // transport does.
        client.sendLine("sweep");
        EXPECT_TRUE(contains(client.readLine(), "\"ok\""));
        client.sendLine("opt instructions 30000");
        EXPECT_TRUE(contains(client.readLine(), "\"ok\""));
        client.sendLine("job single mcf none tcp-point");
        EXPECT_TRUE(contains(client.readLine(), "\"index\": 0"));
        client.sendLine("run");
        EXPECT_TRUE(contains(client.readLine(), "\"start\""));
        std::string job = client.readLine();
        EXPECT_TRUE(contains(job, "\"job\"")) << job;
        EXPECT_TRUE(contains(job, "\"label\": \"tcp-point\"")) << job;
        EXPECT_TRUE(contains(job, "\"failed\": false")) << job;
        EXPECT_TRUE(contains(client.readLine(), "\"done\""));

        client.sendLine("shutdown");
        EXPECT_TRUE(contains(client.readLine(), "\"bye\""));
    }
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
    ::unlink(port_file.c_str());
}

TEST(DaemonEndToEnd, ConcurrentConnections)
{
    std::string socket_path = tempPath("bfsimd-conc.sock");
    ::unlink(socket_path.c_str());

    DaemonOptions options;
    options.socketPath = socket_path;
    options.workers = 1;
    options.isolate = harness::IsolateMode::None;

    DaemonFixture fixture(options);
    {
        // Two clients connected at once; command traffic interleaves.
        TestClient a(socket_path);
        TestClient b(socket_path);
        EXPECT_TRUE(contains(a.readLine(), "\"hello\""));
        EXPECT_TRUE(contains(b.readLine(), "\"hello\""));

        a.send("sweep"); // a starts building a request...
        EXPECT_TRUE(contains(a.readLine(), "\"ok\""));
        b.send("ping"); // ...while b's commands are served promptly.
        EXPECT_TRUE(contains(b.readLine(), "\"pong\""));
        a.send("job single mcf none");
        EXPECT_TRUE(contains(a.readLine(), "\"index\": 0"));
        b.send("ping");
        EXPECT_TRUE(contains(b.readLine(), "\"pong\""));

        b.send("shutdown");
        EXPECT_TRUE(contains(b.readLine(), "\"bye\""));
    }
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
}

/** Daemon listening on an ephemeral TCP port for robustness tests. */
struct TcpDaemonFixture : DaemonFixture
{
    static DaemonOptions
    tcpOptions(const std::string &stem)
    {
        DaemonOptions options;
        options.socketPath = tempPath(stem + ".sock");
        ::unlink(options.socketPath.c_str());
        options.listenSpec = "127.0.0.1:0";
        options.workers = 1;
        options.isolate = harness::IsolateMode::None;
        return options;
    }

    explicit TcpDaemonFixture(const std::string &stem)
        : DaemonFixture(tcpOptions(stem))
    {}

    explicit TcpDaemonFixture(DaemonOptions options)
        : DaemonFixture(std::move(options))
    {}

    std::uint16_t port() const { return daemon.boundPort(); }

    /** The daemon must still answer a fresh client, then shut down. */
    void
    expectAliveAndStop()
    {
        TcpTestClient probe(port());
        EXPECT_TRUE(contains(probe.readLine(), "\"hello\""));
        probe.sendLine("ping");
        EXPECT_TRUE(contains(probe.readLine(), "\"pong\""));
        probe.sendLine("shutdown");
        EXPECT_TRUE(contains(probe.readLine(), "\"bye\""));
    }
};

TEST(TransportRobustness, TruncatedFrameThenDisconnect)
{
    TcpDaemonFixture fixture("bfsimd-trunc");
    {
        TcpTestClient client(fixture.port());
        client.readLine(); // hello
        // Header promises 100 payload bytes; deliver 10 and vanish.
        unsigned char header[8] = {100, 0, 0, 0, 6, 0, 0, 0};
        client.sendRaw(header, sizeof header);
        client.sendRaw("truncated!", 10);
        client.close();
    }
    fixture.expectAliveAndStop();
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
}

TEST(TransportRobustness, OversizedLengthPrefixDropsConnection)
{
    TcpDaemonFixture fixture("bfsimd-oversize");
    {
        TcpTestClient client(fixture.port());
        client.readLine(); // hello
        // 0x7fffffff exceeds maxFramePayload: the decoder must poison
        // and the daemon drop the connection without allocating 2 GiB.
        unsigned char header[8] = {0xff, 0xff, 0xff, 0x7f, 6, 0, 0, 0};
        client.sendRaw(header, sizeof header);
        EXPECT_EQ(client.readLine(), ""); // EOF: we were dropped
    }
    fixture.expectAliveAndStop();
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
}

TEST(TransportRobustness, GarbageBytesPoisonOnlyTheirConnection)
{
    TcpDaemonFixture fixture("bfsimd-garbage");
    {
        TcpTestClient client(fixture.port());
        client.readLine(); // hello
        std::vector<unsigned char> garbage(64, 0xab);
        client.sendRaw(garbage.data(), garbage.size());
        EXPECT_EQ(client.readLine(), ""); // dropped, not crashed
    }
    {
        // A well-framed frame of an unknown type is skipped, and the
        // connection stays usable.
        TcpTestClient client(fixture.port());
        client.readLine(); // hello
        unsigned char unknown[8] = {0, 0, 0, 0, 77, 0, 0, 0};
        client.sendRaw(unknown, sizeof unknown);
        client.sendLine("ping");
        EXPECT_TRUE(contains(client.readLine(), "\"pong\""));
    }
    fixture.expectAliveAndStop();
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
}

TEST(TransportRobustness, MidSweepDisconnectDoesNotKillTheDaemon)
{
    std::string journal_root = tempPath("bfsimd-midsweep-journal");
    std::filesystem::remove_all(journal_root);
    DaemonOptions options =
        TcpDaemonFixture::tcpOptions("bfsimd-midsweep");
    options.journalRoot = journal_root;

    harness::clearMemoCaches();
    TcpDaemonFixture fixture(options);
    {
        TcpTestClient client(fixture.port());
        client.readLine(); // hello
        for (const char *line :
             {"sweep", "opt instructions 30000",
              "job single mcf none", "run"})
            client.sendLine(line);
        // Read up to the start line so the sweep is provably running
        // (closing with the request still queued in the kernel would
        // RST it away before the daemon ever saw `run`), then vanish:
        // the daemon finishes and journals the sweep anyway.
        std::string line;
        while (!(line = client.readLine()).empty() &&
               !contains(line, "\"start\""))
            ;
        EXPECT_TRUE(contains(line, "\"start\"")) << line;
        client.close();
    }
    // Wait for the abandoned sweep's journal record to land.
    bool journaled = false;
    for (int attempt = 0; attempt < 500 && !journaled; ++attempt) {
        if (std::filesystem::exists(journal_root))
            for (const auto &entry : std::filesystem::
                     recursive_directory_iterator(journal_root))
                journaled |= entry.path().extension() == ".rec";
        if (!journaled)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(journaled)
        << "abandoned sweep was not finished and journaled";
    fixture.expectAliveAndStop();
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
    std::filesystem::remove_all(journal_root);
}

TEST(DaemonEndToEnd, ServesRemoteJobs)
{
    TcpDaemonFixture fixture("bfsimd-wirejob");
    harness::clearMemoCaches();
    {
        TcpTestClient client(fixture.port());
        client.readLine(); // hello

        harness::RunOptions run;
        run.instructions = 30000;
        harness::BatchJob job =
            harness::BatchJob::single("mcf", "none", run, "remote");

        namespace wire = harness::wire;
        wire::Writer w;
        w.u64(42); // coordinator-assigned global ordinal
        w.u32(0);  // no retries
        wire::encodeBatchJob(w, job);
        client.sendFrame(subprocess::FrameType::WireJob,
                         w.bytes().data(), w.bytes().size());

        subprocess::FrameType type;
        std::vector<unsigned char> payload;
        bool got_result = false;
        while (!got_result && client.readFrame(type, payload)) {
            if (type != subprocess::FrameType::WireResult)
                continue; // skip interleaved Line frames
            wire::Reader r(payload);
            EXPECT_EQ(r.u64(), 42u); // ordinal echoes back
            wire::DecodedItem decoded = wire::decodeBatchItem(r);
            EXPECT_FALSE(decoded.item.failed);
            EXPECT_EQ(decoded.item.label, "remote");
            EXPECT_TRUE(decoded.single.has_value());
            got_result = true;
        }
        EXPECT_TRUE(got_result);

        client.sendLine("shutdown");
        EXPECT_TRUE(contains(client.readLine(), "\"bye\""));
    }
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
}

/**
 * Minimal raw-TCP "worker daemon" for the requeue test: accepts one
 * coordinator connection, advertises capacity, then dies holding the
 * first job it is shipped — the coordinator must requeue that job onto
 * a surviving worker.
 */
class DyingFakeWorker
{
  public:
    DyingFakeWorker()
    {
        std::string why;
        listenFd = subprocess::listenTcp("127.0.0.1", 0, port, why);
        EXPECT_GE(listenFd, 0) << why;
        thread = std::thread([this] { serveOne(); });
    }

    ~DyingFakeWorker()
    {
        if (thread.joinable())
            thread.join();
        if (listenFd >= 0)
            ::close(listenFd);
    }

    std::uint16_t port = 0;

  private:
    void
    serveOne()
    {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            return;
        std::string hello = "{\"type\": \"hello\", \"workers\": 1}";
        subprocess::writeFrame(fd, subprocess::FrameType::Line,
                               hello.data(), hello.size());
        subprocess::FrameType type;
        std::vector<unsigned char> payload;
        while (subprocess::readFrame(fd, type, payload)) {
            if (type == subprocess::FrameType::WireJob)
                break; // die with the job in flight
        }
        ::close(fd);
    }

    int listenFd = -1;
    std::thread thread;
};

/** Drive a sweep script and collect the streamed response lines. */
struct SweepOutcome
{
    std::vector<std::string> jobLabels; ///< in arrival order
    std::string doneLine;
    std::string allLines; ///< newline-joined full stream
};

SweepOutcome
runSweepScript(TestClient &client,
               const std::vector<std::string> &script)
{
    client.readLine(); // hello
    for (const std::string &line : script)
        client.send(line);
    SweepOutcome outcome;
    std::string line;
    while (!(line = client.readLine()).empty()) {
        outcome.allLines += line + "\n";
        std::size_t label = line.find("\"label\": \"");
        if (contains(line, "\"type\": \"job\"") &&
            label != std::string::npos) {
            label += 10;
            outcome.jobLabels.push_back(
                line.substr(label, line.find('"', label) - label));
        }
        if (contains(line, "\"type\": \"done\"")) {
            outcome.doneLine = line;
            break;
        }
    }
    return outcome;
}

TEST(CoordinatorEndToEnd, ShardsAcrossTwoWorkerDaemons)
{
    std::string journal_root = tempPath("bfsimd-shard-journal");
    std::filesystem::remove_all(journal_root);

    harness::clearMemoCaches();
    TcpDaemonFixture worker1("bfsimd-shard-w1");
    TcpDaemonFixture worker2("bfsimd-shard-w2");

    DaemonOptions coord;
    coord.socketPath = tempPath("bfsimd-shard-coord.sock");
    ::unlink(coord.socketPath.c_str());
    coord.journalRoot = journal_root;
    coord.coordinators = {
        "127.0.0.1:" + std::to_string(worker1.port()),
        "127.0.0.1:" + std::to_string(worker2.port()),
    };
    DaemonFixture coordinator(coord);
    {
        TestClient client(coord.socketPath);
        SweepOutcome outcome = runSweepScript(
            client, {"sweep", "opt instructions 30000",
                     "job single mcf none a", "job single lbm none b",
                     "opt priority 5", "job single mcf bfetch c",
                     "job single lbm bfetch d", "run"});

        // Results stream in global submission order whatever shard
        // computed them (and whatever order they finished in).
        EXPECT_EQ(outcome.jobLabels,
                  (std::vector<std::string>{"a", "b", "c", "d"}));
        EXPECT_TRUE(contains(outcome.allLines,
                             "\"isolate\": \"sharded\""));
        EXPECT_TRUE(contains(outcome.allLines, "\"shards\": 2"));
        EXPECT_TRUE(contains(outcome.doneLine, "\"failures\": 0"))
            << outcome.doneLine;
        EXPECT_TRUE(contains(outcome.doneLine, "\"total\": 4"))
            << outcome.doneLine;

        client.send("shutdown");
        client.readLine();
    }
    coordinator.server.join();
    EXPECT_EQ(coordinator.exitCode, 0);

    // The coordinator journaled every remotely computed point.
    std::size_t records = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(journal_root))
        records += entry.path().extension() == ".rec" ? 1 : 0;
    EXPECT_EQ(records, 4u);

    worker1.daemon.requestStop();
    worker2.daemon.requestStop();
    worker1.server.join();
    worker2.server.join();
    std::filesystem::remove_all(journal_root);
}

TEST(CoordinatorEndToEnd, DeadWorkerJobsAreRequeued)
{
    harness::clearMemoCaches();
    TcpDaemonFixture survivor("bfsimd-requeue-w1");
    DyingFakeWorker casualty;

    DaemonOptions coord;
    coord.socketPath = tempPath("bfsimd-requeue-coord.sock");
    ::unlink(coord.socketPath.c_str());
    coord.coordinators = {
        "127.0.0.1:" + std::to_string(survivor.port()),
        "127.0.0.1:" + std::to_string(casualty.port),
    };
    DaemonFixture coordinator(coord);
    {
        TestClient client(coord.socketPath);
        SweepOutcome outcome = runSweepScript(
            client, {"sweep", "opt instructions 30000",
                     "job single mcf none a", "job single lbm none b",
                     "run"});

        // The job the dying worker held was requeued and completed on
        // the survivor: full result set, zero failures.
        EXPECT_EQ(outcome.jobLabels,
                  (std::vector<std::string>{"a", "b"}));
        EXPECT_TRUE(contains(outcome.doneLine, "\"failures\": 0"))
            << outcome.doneLine;
        EXPECT_TRUE(contains(outcome.allLines, "\"event\": \"dead\""))
            << outcome.allLines;
        EXPECT_TRUE(
            contains(outcome.allLines, "\"event\": \"requeue\""))
            << outcome.allLines;

        client.send("shutdown");
        client.readLine();
    }
    coordinator.server.join();
    EXPECT_EQ(coordinator.exitCode, 0);
    survivor.daemon.requestStop();
    survivor.server.join();
}

TEST(CoordinatorEndToEnd, AllWorkersDeadFallsBackToLocal)
{
    // Reserve a port with nothing behind it: bind, read it back, close.
    std::string why;
    std::uint16_t dead_port = 0;
    int probe = subprocess::listenTcp("127.0.0.1", 0, dead_port, why);
    ASSERT_GE(probe, 0) << why;
    ::close(probe);

    harness::clearMemoCaches();
    DaemonOptions coord;
    coord.socketPath = tempPath("bfsimd-fallback-coord.sock");
    ::unlink(coord.socketPath.c_str());
    coord.workers = 1;
    coord.isolate = harness::IsolateMode::None;
    coord.coordinators = {"127.0.0.1:" + std::to_string(dead_port)};
    DaemonFixture coordinator(coord);
    {
        TestClient client(coord.socketPath);
        SweepOutcome outcome = runSweepScript(
            client, {"sweep", "opt instructions 30000",
                     "job single mcf none only", "run"});

        EXPECT_TRUE(
            contains(outcome.allLines, "\"event\": \"unreachable\""))
            << outcome.allLines;
        EXPECT_TRUE(
            contains(outcome.allLines, "\"event\": \"fallback\""))
            << outcome.allLines;
        EXPECT_EQ(outcome.jobLabels,
                  (std::vector<std::string>{"only"}));
        EXPECT_TRUE(contains(outcome.doneLine, "\"failures\": 0"))
            << outcome.doneLine;

        client.send("shutdown");
        client.readLine();
    }
    coordinator.server.join();
    EXPECT_EQ(coordinator.exitCode, 0);
}

/** Remote trace-store tests share global store state; serialize it. */
class RemoteStoreTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        dirA = tempPath("bfsimd-store-a");
        dirB = tempPath("bfsimd-store-b");
        std::filesystem::remove_all(dirA);
        std::filesystem::remove_all(dirB);
        resetStoreState();
    }

    void
    TearDown() override
    {
        resetStoreState();
        std::filesystem::remove_all(dirA);
        std::filesystem::remove_all(dirB);
    }

    static void
    resetStoreState()
    {
        sim::trace_store::setDirectory("");
        sim::trace_store::setRemoteEndpoint("");
        harness::clearMemoCaches();
        harness::clearTraceCache();
        harness::setTraceCacheEnabled(true);
    }

    /** Capture one real artifact into dirA; return its file name. */
    std::string
    captureArtifact()
    {
        sim::trace_store::setDirectory(dirA);
        harness::RunOptions run;
        run.instructions = 30000;
        harness::runSingle("mcf", "None", run);
        EXPECT_GE(harness::persistTraceStore(), 1u);
        for (const auto &entry :
             std::filesystem::directory_iterator(dirA))
            if (entry.path().extension() == ".bft")
                return entry.path().filename().string();
        ADD_FAILURE() << "no artifact captured into " << dirA;
        return "";
    }

    std::string dirA, dirB;
};

TEST_F(RemoteStoreTest, ValidRemoteNameRejectsEscapes)
{
    using sim::trace_store::validRemoteName;
    EXPECT_TRUE(validRemoteName("mcf-1234abcd.bft"));
    EXPECT_FALSE(validRemoteName(""));
    EXPECT_FALSE(validRemoteName(".bft"));
    EXPECT_FALSE(validRemoteName("noext"));
    EXPECT_FALSE(validRemoteName("../escape.bft"));
    EXPECT_FALSE(validRemoteName("sub/dir.bft"));
    EXPECT_FALSE(validRemoteName(std::string("nul\0byte.bft", 12)));
    EXPECT_FALSE(validRemoteName(std::string(300, 'a') + ".bft"));
}

TEST_F(RemoteStoreTest, AcceptArtifactBytesIsExactlyOnce)
{
    std::string name = captureArtifact();
    ASSERT_FALSE(name.empty());
    std::vector<unsigned char> bytes;
    ASSERT_TRUE(sim::trace_store::readArtifactBytes(name, bytes));
    ASSERT_FALSE(bytes.empty());

    // Fresh store: the first install writes, the replay is skipped
    // because the existing artifact already covers the stream.
    sim::trace_store::setDirectory(dirB);
    EXPECT_EQ(sim::trace_store::acceptArtifactBytes(
                  name, bytes.data(), bytes.size()),
              1);
    EXPECT_TRUE(std::filesystem::exists(dirB + "/" + name));
    EXPECT_EQ(sim::trace_store::acceptArtifactBytes(
                  name, bytes.data(), bytes.size()),
              0);

    // Foreign bytes are refused outright, and never land on disk.
    std::vector<unsigned char> junk(128, 0x5a);
    EXPECT_EQ(sim::trace_store::acceptArtifactBytes(
                  "junk.bft", junk.data(), junk.size()),
              -1);
    EXPECT_FALSE(std::filesystem::exists(dirB + "/junk.bft"));
}

TEST_F(RemoteStoreTest, MalformedEndpointDisablesRemoteTier)
{
    sim::trace_store::setDirectory(dirA);
    sim::trace_store::setRemoteEndpoint("127.0.0.1:1");
    EXPECT_TRUE(sim::trace_store::remoteEnabled());
    sim::trace_store::setRemoteEndpoint("not-a-host-port");
    EXPECT_FALSE(sim::trace_store::remoteEnabled());
    // The remote tier layers under the local cache: no local
    // directory, no remote tier.
    sim::trace_store::setRemoteEndpoint("127.0.0.1:1");
    sim::trace_store::setDirectory("");
    EXPECT_FALSE(sim::trace_store::remoteEnabled());
}

TEST_F(RemoteStoreTest, DaemonServesStoreGetAndPut)
{
    std::string name = captureArtifact();
    ASSERT_FALSE(name.empty());
    std::vector<unsigned char> bytes;
    ASSERT_TRUE(sim::trace_store::readArtifactBytes(name, bytes));

    // The daemon serves whatever the process-wide store directory
    // holds — dirA, where captureArtifact published.
    TcpDaemonFixture fixture("bfsimd-store");
    {
        TcpTestClient client(fixture.port());
        client.readLine(); // hello

        // GET hit: the exact published bytes come back.
        client.sendFrame(subprocess::FrameType::StoreGet, name.data(),
                         name.size());
        subprocess::FrameType type;
        std::vector<unsigned char> payload;
        ASSERT_TRUE(client.readFrame(type, payload));
        EXPECT_EQ(type, subprocess::FrameType::StoreData);
        EXPECT_EQ(payload, bytes);

        // GET miss.
        std::string absent = "absent-artifact.bft";
        client.sendFrame(subprocess::FrameType::StoreGet,
                         absent.data(), absent.size());
        ASSERT_TRUE(client.readFrame(type, payload));
        EXPECT_EQ(type, subprocess::FrameType::StoreMiss);

        // GET with a path-escaping name: a miss, never a read outside
        // the store directory.
        std::string evil = "../../etc/passwd.bft";
        client.sendFrame(subprocess::FrameType::StoreGet, evil.data(),
                         evil.size());
        ASSERT_TRUE(client.readFrame(type, payload));
        EXPECT_EQ(type, subprocess::FrameType::StoreMiss);

        // PUT of an already-covered artifact: acknowledged as skipped
        // (ack 0) — the fleet captures each trace exactly once.
        std::vector<unsigned char> put;
        std::uint32_t name_len =
            static_cast<std::uint32_t>(name.size());
        for (int i = 0; i < 4; ++i)
            put.push_back(
                static_cast<unsigned char>(name_len >> (i * 8)));
        put.insert(put.end(), name.begin(), name.end());
        put.insert(put.end(), bytes.begin(), bytes.end());
        client.sendFrame(subprocess::FrameType::StorePut, put.data(),
                         put.size());
        ASSERT_TRUE(client.readFrame(type, payload));
        EXPECT_EQ(type, subprocess::FrameType::StoreAck);
        ASSERT_EQ(payload.size(), 1u);
        EXPECT_EQ(payload[0], 0);

        // Malformed PUT (garbage name length): refused, ack 0.
        std::vector<unsigned char> bogus = {0xff, 0xff, 0xff, 0x0f};
        client.sendFrame(subprocess::FrameType::StorePut, bogus.data(),
                         bogus.size());
        ASSERT_TRUE(client.readFrame(type, payload));
        EXPECT_EQ(type, subprocess::FrameType::StoreAck);
        ASSERT_EQ(payload.size(), 1u);
        EXPECT_EQ(payload[0], 0);

        client.sendLine("shutdown");
        EXPECT_TRUE(contains(client.readLine(), "\"bye\""));
    }
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);
}

} // namespace
} // namespace bfsim::service
