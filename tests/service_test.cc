/**
 * @file
 * Tests for the bfsimd sweep service: protocol parsing/validation
 * (service/protocol.hh) and an end-to-end daemon conversation over a
 * real Unix-domain socket — hello/ping/error handling, a small sweep
 * streamed as JSON lines, journal-directory stability across identical
 * requests, and clean shutdown.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/signal_util.hh"
#include "common/sim_error.hh"
#include "harness/experiment.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"

namespace bfsim::service {
namespace {

TEST(Protocol, SplitTokens)
{
    EXPECT_TRUE(splitTokens("").empty());
    EXPECT_TRUE(splitTokens("   \t ").empty());
    std::vector<std::string> tokens =
        splitTokens("  job   single mcf\tbfetch ");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0], "job");
    EXPECT_EQ(tokens[3], "bfetch");
}

TEST(Protocol, OptionsApplyToSubsequentJobs)
{
    SweepRequest request;
    applyOption(request, "instructions", "12345");
    applyOption(request, "retries", "2");
    applyOption(request, "deadline", "1.5");
    applyOption(request, "isolate", "none");
    applyOption(request, "workers", "3");
    addJob(request, splitTokens("job single mcf bfetch point"));
    applyOption(request, "instructions", "99999");
    addJob(request, splitTokens("job mix mcf,lbm stride"));

    ASSERT_EQ(request.jobs.size(), 2u);
    EXPECT_EQ(request.jobs[0].options.instructions, 12345u);
    EXPECT_EQ(request.jobs[0].label, "point");
    EXPECT_EQ(request.jobs[1].options.instructions, 99999u);
    ASSERT_EQ(request.jobs[1].workloads.size(), 2u);
    EXPECT_EQ(request.batch.retries, 2u);
    EXPECT_EQ(request.batch.jobDeadlineSeconds, 1.5);
    EXPECT_EQ(request.batch.isolate, harness::IsolateMode::None);
    EXPECT_EQ(request.workers, 3u);
}

TEST(Protocol, RejectsBadInput)
{
    SweepRequest request;
    EXPECT_THROW(applyOption(request, "bogus", "1"), SimError);
    EXPECT_THROW(applyOption(request, "instructions", "zero?"),
                 SimError);
    EXPECT_THROW(applyOption(request, "isolate", "container"),
                 SimError);
    EXPECT_THROW(addJob(request, splitTokens("job single nosuch none")),
                 SimError);
    EXPECT_THROW(addJob(request,
                        splitTokens("job single mcf nosuchpf")),
                 SimError);
    EXPECT_THROW(addJob(request, splitTokens("job mix mcf none")),
                 SimError);
    EXPECT_THROW(addJob(request, splitTokens("job triple mcf none")),
                 SimError);
    EXPECT_TRUE(request.jobs.empty());
}

TEST(Protocol, JournalDirIsStableAndRequestKeyed)
{
    SweepRequest a;
    applyOption(a, "instructions", "30000");
    addJob(a, splitTokens("job single mcf bfetch"));
    SweepRequest b;
    applyOption(b, "instructions", "30000");
    addJob(b, splitTokens("job single mcf bfetch label-only-differs"));
    SweepRequest c;
    applyOption(c, "instructions", "31000");
    addJob(c, splitTokens("job single mcf bfetch"));

    EXPECT_EQ(journalDirFor("", a), "");
    std::string dirA = journalDirFor("/tmp/root", a);
    EXPECT_EQ(dirA.rfind("/tmp/root/sweep-", 0), 0u) << dirA;
    // Identical points -> identical journal (resume works across
    // daemon restarts); different options -> different journal.
    EXPECT_EQ(dirA, journalDirFor("/tmp/root", a));
    EXPECT_NE(dirA, journalDirFor("/tmp/root", b)); // label is identity
    EXPECT_NE(dirA, journalDirFor("/tmp/root", c));
}

TEST(Protocol, JsonEscape)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("x\ny"), "x\\ny");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

/** Blocking line-oriented test client over a Unix socket. */
class TestClient
{
  public:
    explicit TestClient(const std::string &path)
    {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        struct sockaddr_un addr;
        std::memset(&addr, 0, sizeof addr);
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof addr.sun_path - 1);
        // The daemon thread may not have bound yet: bounded retry.
        for (int attempt = 0; attempt < 100; ++attempt) {
            if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                          sizeof addr) == 0)
                return;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        ADD_FAILURE() << "cannot connect to " << path;
    }

    ~TestClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    void
    send(const std::string &line)
    {
        std::string framed = line + "\n";
        ASSERT_EQ(::write(fd, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
    }

    /** Next response line ("" on EOF). */
    std::string
    readLine()
    {
        std::string line;
        std::size_t pos;
        while ((pos = buffer.find('\n')) == std::string::npos) {
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof chunk);
            if (n <= 0)
                return "";
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
        line = buffer.substr(0, pos);
        buffer.erase(0, pos + 1);
        return line;
    }

  private:
    int fd = -1;
    std::string buffer;
};

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

struct DaemonFixture
{
    explicit DaemonFixture(DaemonOptions options)
        : daemon(std::move(options))
    {
        daemon.bind();
        server = std::thread([this] { exitCode = daemon.serve(); });
    }

    ~DaemonFixture()
    {
        if (server.joinable())
            server.join();
        signal_util::resetShutdownState();
    }

    Daemon daemon;
    std::thread server;
    int exitCode = -1;
};

std::string
tempPath(const std::string &stem)
{
    return ::testing::TempDir() + stem + "-" +
           std::to_string(::getpid());
}

TEST(DaemonEndToEnd, PingSweepShutdown)
{
    std::string socket_path = tempPath("bfsimd-e2e.sock");
    std::string journal_root = tempPath("bfsimd-e2e-journal");
    std::filesystem::remove_all(journal_root);
    ::unlink(socket_path.c_str());

    DaemonOptions options;
    options.socketPath = socket_path;
    options.journalRoot = journal_root;
    options.workers = 2;
    // In-process backend keeps the end-to-end test lean; the process
    // backend has its own battery in crash_test.
    options.isolate = harness::IsolateMode::None;

    harness::clearMemoCaches();
    DaemonFixture fixture(options);
    {
        TestClient client(socket_path);
        EXPECT_TRUE(contains(client.readLine(), "\"hello\""));

        client.send("ping");
        EXPECT_TRUE(contains(client.readLine(), "\"pong\""));

        client.send("bogus-command");
        EXPECT_TRUE(contains(client.readLine(), "\"error\""));

        client.send("run"); // outside a sweep
        EXPECT_TRUE(contains(client.readLine(), "\"error\""));

        client.send("sweep");
        EXPECT_TRUE(contains(client.readLine(), "\"ok\""));
        client.send("opt instructions 30000");
        EXPECT_TRUE(contains(client.readLine(), "\"ok\""));
        client.send("job single mcf none first");
        EXPECT_TRUE(contains(client.readLine(), "\"index\": 0"));
        client.send("job single lbm none second");
        EXPECT_TRUE(contains(client.readLine(), "\"index\": 1"));
        client.send("job bogus");
        EXPECT_TRUE(contains(client.readLine(), "\"error\""));

        client.send("run");
        std::string start = client.readLine();
        EXPECT_TRUE(contains(start, "\"start\"")) << start;
        EXPECT_TRUE(contains(start, "\"jobs\": 2")) << start;
        EXPECT_TRUE(contains(start, journal_root)) << start;
        std::string job1 = client.readLine();
        std::string job2 = client.readLine();
        EXPECT_TRUE(contains(job1, "\"job\"")) << job1;
        EXPECT_TRUE(contains(job2, "\"job\"")) << job2;
        EXPECT_TRUE(contains(job1, "\"failed\": false")) << job1;
        std::string done = client.readLine();
        EXPECT_TRUE(contains(done, "\"done\"")) << done;
        EXPECT_TRUE(contains(done, "\"failures\": 0")) << done;

        client.send("shutdown");
        EXPECT_TRUE(contains(client.readLine(), "\"bye\""));
    }
    fixture.server.join();
    EXPECT_EQ(fixture.exitCode, 0);

    // The sweep journaled both points under its canonical directory.
    std::size_t records = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(journal_root))
        records += entry.path().extension() == ".rec" ? 1 : 0;
    EXPECT_EQ(records, 2u);
    std::filesystem::remove_all(journal_root);
}

TEST(DaemonEndToEnd, ResubmittedSweepRestoresFromJournal)
{
    std::string socket_path = tempPath("bfsimd-resume.sock");
    std::string journal_root = tempPath("bfsimd-resume-journal");
    std::filesystem::remove_all(journal_root);
    ::unlink(socket_path.c_str());

    DaemonOptions options;
    options.socketPath = socket_path;
    options.journalRoot = journal_root;
    options.workers = 2;
    options.isolate = harness::IsolateMode::None;

    auto submit = [&socket_path](bool expect_journaled) {
        TestClient client(socket_path);
        client.readLine(); // hello
        for (const char *line :
             {"sweep", "opt instructions 30000",
              "job single mcf none", "job single lbm none", "run"}) {
            client.send(line);
        }
        // Skip the acks, collect the stream.
        std::string line;
        std::size_t journaled_jobs = 0;
        bool done = false;
        while (!(line = client.readLine()).empty()) {
            if (contains(line, "\"journaled\": true"))
                ++journaled_jobs;
            if (contains(line, "\"type\": \"done\"")) {
                done = true;
                break;
            }
        }
        EXPECT_TRUE(done);
        EXPECT_EQ(journaled_jobs, expect_journaled ? 2u : 0u);
        client.send("shutdown");
        client.readLine();
    };

    harness::clearMemoCaches();
    {
        DaemonFixture first(options);
        submit(false);
    }
    // "Daemon restarted": cold process state, same journal root.
    harness::clearMemoCaches();
    signal_util::resetShutdownState();
    {
        DaemonFixture second(options);
        harness::MemoStats before = harness::memoStats();
        submit(true);
        harness::MemoStats after = harness::memoStats();
        EXPECT_EQ(after.singleComputes, before.singleComputes)
            << "resumed sweep must recompute nothing";
    }
    std::filesystem::remove_all(journal_root);
}

} // namespace
} // namespace bfsim::service
