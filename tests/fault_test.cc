/**
 * @file
 * Fault-tolerance tests: the deterministic fault-injection core, the
 * batch runner's per-job failure isolation / bounded retry / fail-fast
 * / wall-clock deadline policies, the poisoned-memo-cache eviction, the
 * trace-capture fallback, the commit-progress watchdog, and the
 * crash-safe report writer.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/fault.hh"
#include "harness/report.hh"

namespace bfsim::harness {
namespace {

RunOptions
quick()
{
    RunOptions options;
    options.instructions = 30000;
    return options;
}

/** Ten distinct single-workload jobs; index 3 is "job 4" in specs. */
std::vector<BatchJob>
tenJobs()
{
    std::vector<BatchJob> jobs;
    for (const char *name :
         {"astar", "bzip2", "gamess", "gromacs", "h264ref", "hmmer",
          "lbm", "libquantum", "mcf", "sjeng"}) {
        jobs.push_back(BatchJob::single(
            name, "None", quick()));
    }
    return jobs;
}

void
expectSameSingle(const SingleResult &a, const SingleResult &b)
{
    EXPECT_EQ(a.core.instructions, b.core.instructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.ipc, b.core.ipc); // bit-identical, not just near
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_EQ(a.mem.accesses, b.mem.accesses);
    EXPECT_EQ(a.mem.l1Hits, b.mem.l1Hits);
    EXPECT_EQ(a.mem.dramAccesses, b.mem.dramAccesses);
    EXPECT_EQ(a.mem.prefetchesIssued, b.mem.prefetchesIssued);
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

TEST(FaultSpec, SiteNamesRoundTrip)
{
    for (unsigned s = 0;
         s < static_cast<unsigned>(fault::Site::siteCount); ++s) {
        fault::Site site = static_cast<fault::Site>(s);
        fault::Site parsed;
        ASSERT_TRUE(fault::parseSite(fault::siteName(site), parsed));
        EXPECT_EQ(parsed, site);
    }
    fault::Site site;
    EXPECT_FALSE(fault::parseSite("bogus", site));
}

TEST(FaultSpec, ArmFromSpecParsesAndRejects)
{
    for (const char *good : {"cache:4", "trace:1:7", "step:0",
                             "report:0:123"}) {
        ScopedFault armed{std::string(good)};
        EXPECT_TRUE(armed.ok()) << good;
        EXPECT_TRUE(fault::armed()) << good;
    }
    EXPECT_FALSE(fault::armed()); // ScopedFault disarmed on scope exit
    for (const char *bad :
         {"", "cache", "bogus:1", "cache:x", "cache:1:y", ":4"}) {
        ScopedFault armed{std::string(bad)};
        EXPECT_FALSE(armed.ok()) << bad;
        EXPECT_FALSE(fault::armed()) << bad;
    }
}

TEST(FaultSpec, PlannedHitIsDeterministicAndBounded)
{
    EXPECT_EQ(fault::plannedHit(0), 1u);
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        std::uint64_t hit = fault::plannedHit(seed);
        EXPECT_GE(hit, 2u) << "seed " << seed;
        EXPECT_LE(hit, 9u) << "seed " << seed;
        EXPECT_EQ(hit, fault::plannedHit(seed)) << "seed " << seed;
    }
}

TEST(FaultInjection, FiresExactlyOnceThenSelfDisarms)
{
    clearMemoCaches();
    {
        ScopedFault armed(fault::Site::CacheAccess, 0);
        EXPECT_THROW(
            runSingle("libquantum", "None", quick()),
            SimError);
        EXPECT_TRUE(armed.fired());
        EXPECT_FALSE(fault::armed()); // one-shot: self-disarmed
        // With the fault spent, the same run now succeeds.
        SingleResult r =
            runSingle("libquantum", "None", quick());
        EXPECT_GT(r.core.cycles, 0u);
    }
    clearMemoCaches();
}

TEST(FaultInjection, SimErrorCarriesJobContext)
{
    clearMemoCaches();
    ScopedFault armed(fault::Site::CacheAccess, 0);
    try {
        SimJobScope scope("libquantum", "libquantum/none");
        runSingle("libquantum", "None", quick());
        FAIL() << "expected SimError";
    } catch (const SimError &error) {
        EXPECT_EQ(error.component(), "hierarchy");
        EXPECT_EQ(error.workload(), "libquantum");
        EXPECT_EQ(error.label(), "libquantum/none");
        EXPECT_NE(std::string(error.what()).find("injected fault"),
                  std::string::npos);
    }
    clearMemoCaches();
}

TEST(FaultInjection, FailedMemoEntryIsEvictedNotPoisoned)
{
    clearMemoCaches();
    {
        ScopedFault armed(fault::Site::CacheAccess, 0);
        EXPECT_THROW(runSingleCached("lbm", "Bfetch",
                                     quick()),
                     SimError);
    }
    // Regression: the failed future must have been evicted, so the same
    // key recomputes cleanly instead of rethrowing a stored exception.
    const SingleResult &r =
        runSingleCached("lbm", "Bfetch", quick());
    EXPECT_GT(r.core.cycles, 0u);
    MemoStats stats = memoStats();
    EXPECT_EQ(stats.singleComputes, 2u); // failed attempt + clean redo
    clearMemoCaches();
}

TEST(Batch, OneFaultedJobFailsAloneSerialAndParallelIdentically)
{
    std::vector<BatchJob> jobs = tenJobs();
    BatchOptions options; // no retries: the fault must surface

    clearMemoCaches();
    BatchResult serial;
    {
        ScopedFault armed(fault::Site::CacheAccess, 4); // job 4 = idx 3
        serial = runBatch(jobs, 1, nullptr, options);
        EXPECT_TRUE(armed.fired());
    }
    ASSERT_EQ(serial.items.size(), jobs.size());
    EXPECT_EQ(serial.failures(), 1u);
    // Snapshot results before the caches are cleared again.
    std::vector<SingleResult> serial_singles(jobs.size());
    for (std::size_t i = 0; i < serial.items.size(); ++i) {
        if (i == 3) {
            EXPECT_TRUE(serial.items[i].failed);
            EXPECT_EQ(serial.items[i].attempts, 1u);
            EXPECT_NE(serial.items[i].error.find("injected fault"),
                      std::string::npos);
            EXPECT_EQ(serial.items[i].single, nullptr);
        } else {
            EXPECT_FALSE(serial.items[i].failed) << "job " << i;
            ASSERT_NE(serial.items[i].single, nullptr) << "job " << i;
            serial_singles[i] = *serial.items[i].single;
        }
    }

    clearMemoCaches();
    BatchResult parallel;
    {
        ScopedFault armed(fault::Site::CacheAccess, 4);
        parallel = runBatch(jobs, 4, nullptr, options);
        EXPECT_TRUE(armed.fired());
    }
    ASSERT_EQ(parallel.items.size(), jobs.size());
    EXPECT_EQ(parallel.failures(), 1u);
    for (std::size_t i = 0; i < parallel.items.size(); ++i) {
        // Identical victim and identical survivors, any thread count.
        EXPECT_EQ(parallel.items[i].failed, serial.items[i].failed)
            << "job " << i;
        if (!parallel.items[i].failed) {
            ASSERT_NE(parallel.items[i].single, nullptr) << "job " << i;
            expectSameSingle(serial_singles[i],
                             *parallel.items[i].single);
        }
    }
    clearMemoCaches();
}

TEST(Batch, BoundedRetrySucceedsOnSecondAttempt)
{
    std::vector<BatchJob> jobs = tenJobs();
    BatchOptions options;
    options.retries = 2;

    clearMemoCaches();
    ScopedFault armed(fault::Site::CacheAccess, 4);
    BatchResult batch = runBatch(jobs, 1, nullptr, options);
    EXPECT_TRUE(armed.fired());
    ASSERT_EQ(batch.items.size(), jobs.size());
    EXPECT_EQ(batch.failures(), 0u);
    for (std::size_t i = 0; i < batch.items.size(); ++i) {
        EXPECT_FALSE(batch.items[i].failed) << "job " << i;
        EXPECT_EQ(batch.items[i].attempts, i == 3 ? 2u : 1u)
            << "job " << i;
        ASSERT_NE(batch.items[i].single, nullptr) << "job " << i;
        EXPECT_GT(batch.items[i].single->core.cycles, 0u);
    }
    clearMemoCaches();
}

TEST(Batch, CustomJobRetriesAreIsolatedAndCounted)
{
    std::atomic<int> calls{0};
    std::vector<BatchJob> jobs{
        BatchJob::custom("steady", [] { return 1.0; }),
        BatchJob::custom("flaky",
                         [&calls]() -> double {
                             if (calls.fetch_add(1) == 0)
                                 throw std::runtime_error(
                                     "flaky first attempt");
                             return 2.5;
                         }),
    };
    BatchOptions options;
    options.retries = 1;
    BatchResult batch = runBatch(jobs, 2, nullptr, options);
    ASSERT_EQ(batch.items.size(), 2u);
    EXPECT_EQ(batch.failures(), 0u);
    EXPECT_EQ(batch.items[0].attempts, 1u);
    EXPECT_DOUBLE_EQ(batch.items[0].value, 1.0);
    EXPECT_EQ(batch.items[1].attempts, 2u);
    EXPECT_DOUBLE_EQ(batch.items[1].value, 2.5);
    EXPECT_EQ(calls.load(), 2);
}

TEST(Batch, ExhaustedRetriesReportTheFinalError)
{
    std::vector<BatchJob> jobs{
        BatchJob::custom("always-fails", []() -> double {
            throw std::runtime_error("permanent failure");
        }),
    };
    BatchOptions options;
    options.retries = 2;
    BatchResult batch = runBatch(jobs, 1, nullptr, options);
    ASSERT_EQ(batch.items.size(), 1u);
    EXPECT_TRUE(batch.items[0].failed);
    EXPECT_EQ(batch.items[0].attempts, 3u); // 1 try + 2 retries
    EXPECT_NE(batch.items[0].error.find("permanent failure"),
              std::string::npos);
}

TEST(Batch, FailFastSkipsJobsAfterTheFirstFailure)
{
    std::vector<BatchJob> jobs;
    jobs.push_back(BatchJob::custom("boom", []() -> double {
        throw std::runtime_error("first job fails");
    }));
    for (int i = 0; i < 3; ++i) {
        jobs.push_back(BatchJob::custom(
            "after/" + std::to_string(i), [] { return 1.0; }));
    }
    BatchOptions options;
    options.failFast = true;
    BatchResult batch = runBatch(jobs, 1, nullptr, options);
    ASSERT_EQ(batch.items.size(), 4u);
    EXPECT_EQ(batch.failures(), 4u);
    EXPECT_EQ(batch.items[0].attempts, 1u);
    for (std::size_t i = 1; i < batch.items.size(); ++i) {
        EXPECT_TRUE(batch.items[i].failed) << "job " << i;
        EXPECT_EQ(batch.items[i].attempts, 0u) << "job " << i;
        EXPECT_NE(batch.items[i].error.find("skipped"),
                  std::string::npos)
            << "job " << i;
    }
}

TEST(Batch, WallClockDeadlineAbandonsAWedgedJob)
{
    std::vector<BatchJob> jobs{
        BatchJob::custom("wedged",
                         [] {
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(400));
                             return 1.0;
                         }),
        BatchJob::custom("prompt", [] { return 2.0; }),
    };
    BatchOptions options;
    options.jobDeadlineSeconds = 0.08;
    BatchResult batch = runBatch(jobs, 2, nullptr, options);
    ASSERT_EQ(batch.items.size(), 2u);
    EXPECT_TRUE(batch.items[0].failed);
    EXPECT_NE(batch.items[0].error.find("deadline"), std::string::npos);
    EXPECT_GE(batch.items[0].seconds, options.jobDeadlineSeconds);
    EXPECT_FALSE(batch.items[1].failed);
    EXPECT_DOUBLE_EQ(batch.items[1].value, 2.0);
    // The zombie worker drains on a detached thread; give it time to
    // park before the test binary moves on (not required, just tidy).
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
}

TEST(Batch, OptionsReadTheEnvironment)
{
    unsetenv("BFSIM_RETRIES");
    unsetenv("BFSIM_FAIL_FAST");
    unsetenv("BFSIM_JOB_DEADLINE");
    BatchOptions defaults = BatchOptions::fromEnv();
    EXPECT_EQ(defaults.retries, 0u);
    EXPECT_FALSE(defaults.failFast);
    EXPECT_DOUBLE_EQ(defaults.jobDeadlineSeconds, 0.0);

    setenv("BFSIM_RETRIES", "3", 1);
    setenv("BFSIM_FAIL_FAST", "1", 1);
    setenv("BFSIM_JOB_DEADLINE", "2.5", 1);
    BatchOptions configured = BatchOptions::fromEnv();
    EXPECT_EQ(configured.retries, 3u);
    EXPECT_TRUE(configured.failFast);
    EXPECT_DOUBLE_EQ(configured.jobDeadlineSeconds, 2.5);

    setenv("BFSIM_RETRIES", "bogus", 1);
    setenv("BFSIM_FAIL_FAST", "0", 1);
    setenv("BFSIM_JOB_DEADLINE", "-1", 1);
    BatchOptions malformed = BatchOptions::fromEnv();
    EXPECT_EQ(malformed.retries, 0u);
    EXPECT_FALSE(malformed.failFast);
    EXPECT_DOUBLE_EQ(malformed.jobDeadlineSeconds, 0.0);

    unsetenv("BFSIM_RETRIES");
    unsetenv("BFSIM_FAIL_FAST");
    unsetenv("BFSIM_JOB_DEADLINE");
}

TEST(Watchdog, DeadlockedCoreThrowsInsteadOfSpinning)
{
    clearMemoCaches();
    RunOptions options = quick();
    // A 1-cycle commit-progress budget trips during pipeline fill, long
    // before the run could complete: the watchdog must convert what
    // would be an infinite spin into a structured SimError.
    options.deadlockCycles = 1;
    try {
        runSingle("gamess", "None", options);
        FAIL() << "expected SimError from the commit watchdog";
    } catch (const SimError &error) {
        EXPECT_EQ(error.component(), "ooo_core");
        EXPECT_NE(std::string(error.what()).find("no commit progress"),
                  std::string::npos);
        EXPECT_NE(
            std::string(error.what()).find("BFSIM_DEADLOCK_CYCLES"),
            std::string::npos);
    }
    clearMemoCaches();
}

TEST(Watchdog, DeadlockBecomesAFailedBatchItem)
{
    clearMemoCaches();
    RunOptions hung = quick();
    hung.deadlockCycles = 1;
    std::vector<BatchJob> jobs{
        BatchJob::single("gamess", "None", quick()),
        BatchJob::single("gamess", "None", hung,
                         "gamess/hung"),
    };
    BatchResult batch = runBatch(jobs, 1, nullptr, BatchOptions{});
    ASSERT_EQ(batch.items.size(), 2u);
    EXPECT_FALSE(batch.items[0].failed);
    EXPECT_TRUE(batch.items[1].failed);
    EXPECT_NE(batch.items[1].error.find("no commit progress"),
              std::string::npos);
    clearMemoCaches();
}

TEST(Watchdog, DeadlockBudgetIsPartOfTheMemoKey)
{
    RunOptions a = quick(), b = quick();
    b.deadlockCycles = 123456;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
}

TEST(TraceFault, CaptureProbeFailureDegradesToLiveBitIdentically)
{
    bool was_enabled = traceCacheEnabled();
    clearMemoCaches();
    clearTraceCache();

    setTraceCacheEnabled(false);
    SingleResult live =
        runSingle("libquantum", "Bfetch", quick());

    setTraceCacheEnabled(true);
    takeThreadCacheCounters(); // drain earlier activity
    {
        // Seed 0 targets the scope's FIRST trace extension — the
        // harness's capture probe — so the failure happens while
        // falling back to live execution is still possible.
        ScopedFault armed(fault::Site::TraceExtend, 0, 0);
        SingleResult degraded =
            runSingle("libquantum", "Bfetch",
                      quick());
        EXPECT_TRUE(armed.fired());
        expectSameSingle(live, degraded);
    }
    ThreadCacheCounters counters = takeThreadCacheCounters();
    EXPECT_EQ(counters.traceFallbacks, 1u);
    EXPECT_EQ(counters.traceHits, 0u);
    EXPECT_EQ(counters.traceMisses, 0u);

    // The poisoned cache entry was evicted: the next run captures a
    // fresh trace and still matches the live results.
    SingleResult recaptured =
        runSingle("libquantum", "Bfetch", quick());
    expectSameSingle(live, recaptured);
    EXPECT_EQ(takeThreadCacheCounters().traceMisses, 1u);

    clearMemoCaches();
    clearTraceCache();
    setTraceCacheEnabled(was_enabled);
}

TEST(TraceFault, MidRunExtensionFailurePropagates)
{
    bool was_enabled = traceCacheEnabled();
    clearMemoCaches();
    clearTraceCache();
    setTraceCacheEnabled(true);

    // Any non-zero seed maps past the capture probe (hits 2..9, all
    // reached by a 30k-instruction run at 4096-op extension batches);
    // pick the earliest post-probe hit for robustness.
    std::uint64_t seed = 1;
    while (fault::plannedHit(seed) != 2)
        ++seed;
    {
        ScopedFault armed(fault::Site::TraceExtend, 0, seed);
        EXPECT_THROW(runSingle("libquantum",
                               "Bfetch", quick()),
                     SimError);
        EXPECT_TRUE(armed.fired());
    }

    clearMemoCaches();
    clearTraceCache();
    setTraceCacheEnabled(was_enabled);
}

TEST(Report, FailedItemsCarryErrorsAndTheFailureCount)
{
    std::vector<BatchJob> jobs{
        BatchJob::custom("ok", [] { return 3.5; }),
        BatchJob::custom("broken", []() -> double {
            throw std::runtime_error("it broke \"badly\"");
        }),
    };
    BatchResult batch = runBatch(jobs, 1, nullptr, BatchOptions{});
    std::ostringstream os;
    writeBatchReportJson(os, "fault_test", batch);
    std::string json = os.str();
    EXPECT_NE(json.find("\"failures\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
    EXPECT_NE(json.find("\"attempts\": 1"), std::string::npos);
    // Errors are JSON-escaped and replace the metrics of failed items.
    EXPECT_NE(json.find("\"error\": \"it broke \\\"badly\\\"\""),
              std::string::npos);
    EXPECT_NE(json.find("\"value\": 3.5"), std::string::npos);
}

TEST(Report, FileWriteIsAtomicAndLeavesNoTmp)
{
    std::vector<BatchJob> jobs{
        BatchJob::custom("ok", [] { return 1.0; }),
    };
    BatchResult batch = runBatch(jobs, 1, nullptr, BatchOptions{});
    const std::string path =
        testing::TempDir() + "fault_test_report.json";
    std::remove(path.c_str());

    ASSERT_TRUE(writeBatchReportFile(path, "fault_test", batch));
    EXPECT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(Report, InjectedWriteFailureLeavesNoPartialFile)
{
    std::vector<BatchJob> jobs{
        BatchJob::custom("ok", [] { return 1.0; }),
    };
    BatchResult batch = runBatch(jobs, 1, nullptr, BatchOptions{});
    const std::string path =
        testing::TempDir() + "fault_test_report_faulted.json";
    std::remove(path.c_str());

    ScopedFault armed(fault::Site::ReportWrite, 0);
    EXPECT_FALSE(writeBatchReportFile(path, "fault_test", batch));
    EXPECT_TRUE(armed.fired());
    // Neither a truncated report nor a leftover temp file remains.
    EXPECT_FALSE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));
}

} // namespace
} // namespace bfsim::harness
