/**
 * @file
 * Harness tests: single runs, memoization, mixes / FOA selection,
 * weighted speedups, report tables, and the parallel batch runner
 * (serial/parallel result identity, memo-once, JSON report).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/batch.hh"
#include "harness/experiment.hh"
#include "harness/mixes.hh"
#include "harness/report.hh"

namespace bfsim::harness {
namespace {

RunOptions
quick()
{
    RunOptions options;
    options.instructions = 30000;
    return options;
}

TEST(Experiment, SingleRunProducesCoherentStats)
{
    SingleResult r =
        runSingle("libquantum", "None", quick());
    EXPECT_EQ(r.workload, "libquantum");
    EXPECT_GE(r.core.instructions, 30000u);
    EXPECT_GT(r.core.cycles, 0u);
    EXPECT_GT(r.core.ipc, 0.0);
    EXPECT_GT(r.mem.accesses, 0u);
    EXPECT_EQ(r.mem.prefetchesIssued, 0u);
}

TEST(Experiment, BfetchRunExposesEngineStats)
{
    SingleResult r =
        runSingle("libquantum", "Bfetch", quick());
    EXPECT_GT(r.bfetch.lookaheadWalks, 0u);
    EXPECT_GT(r.avgLookaheadDepth, 0.0);
    EXPECT_GT(r.mem.prefetchesIssued, 0u);
}

TEST(Experiment, CachedRunnerReturnsSameObject)
{
    const SingleResult &a =
        runSingleCached("gamess", "None", quick());
    const SingleResult &b =
        runSingleCached("gamess", "None", quick());
    EXPECT_EQ(&a, &b);
}

TEST(Experiment, CacheKeyDistinguishesOptions)
{
    RunOptions a = quick(), b = quick();
    b.width = 8;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    b = quick();
    b.bfetch.pathConfidenceThreshold = 0.45;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
}

TEST(Experiment, SpeedupOfBaselineIsOne)
{
    double s = speedupVsBaseline("gamess", "None",
                                 quick());
    EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Experiment, PrefetchingHelpsAStreamingKernel)
{
    double s = speedupVsBaseline("libquantum",
                                 "Bfetch", quick());
    EXPECT_GT(s, 1.2);
}

TEST(Experiment, MixRunsAllCores)
{
    MixResult r = runMix({"libquantum", "gamess"},
                         "None", quick());
    ASSERT_EQ(r.cores.size(), 2u);
    EXPECT_GE(r.cores[0].instructions, 30000u);
    EXPECT_GE(r.cores[1].instructions, 30000u);
    EXPECT_GT(r.weightedSpeedup, 0.0);
    // Weighted speedup of a no-prefetch mix is at most numCores.
    EXPECT_LE(r.weightedSpeedup, 2.0 + 1e-9);
}

TEST(Experiment, BenchBudgetReadsEnvironment)
{
    unsetenv("BFSIM_INSTRUCTIONS");
    unsetenv("BFSIM_INSTS");
    EXPECT_EQ(benchInstructionBudget(123), 123u);
    setenv("BFSIM_INSTS", "4567", 1);
    EXPECT_EQ(benchInstructionBudget(123), 4567u);
    setenv("BFSIM_INSTS", "bogus", 1);
    EXPECT_EQ(benchInstructionBudget(123), 123u);
    // The documented name wins over the historical alias.
    setenv("BFSIM_INSTS", "4567", 1);
    setenv("BFSIM_INSTRUCTIONS", "8910", 1);
    EXPECT_EQ(benchInstructionBudget(123), 8910u);
    unsetenv("BFSIM_INSTRUCTIONS");
    unsetenv("BFSIM_INSTS");
}

TEST(Mixes, FoaProfilesDistinguishPressure)
{
    double quiet = foaProfile("gamess");      // L1-resident
    double loud = foaProfile("libquantum");   // streaming
    EXPECT_GE(quiet, 0.0);
    EXPECT_GT(loud, quiet);
}

TEST(Mixes, SelectionIsDeterministicAndSized)
{
    auto a = selectMixes(2, 5);
    auto b = selectMixes(2, 5);
    ASSERT_EQ(a.size(), 5u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].workloads, b[i].workloads);
}

TEST(Mixes, MixesAreSortedByContention)
{
    auto mixes = selectMixes(2, 10);
    for (std::size_t i = 1; i < mixes.size(); ++i)
        EXPECT_GE(mixes[i - 1].contentionScore,
                  mixes[i].contentionScore);
}

TEST(Mixes, MixSizeIsRespected)
{
    for (unsigned size : {2u, 4u}) {
        auto mixes = selectMixes(size, 3);
        for (const auto &mix : mixes) {
            EXPECT_EQ(mix.workloads.size(), size);
            // Members are distinct.
            std::set<std::string> unique(mix.workloads.begin(),
                                         mix.workloads.end());
            EXPECT_EQ(unique.size(), size);
        }
    }
}

std::vector<BatchJob>
batchSweep()
{
    // Duplicate baselines on purpose: both singles and the mixes need
    // the no-prefetch libquantum/gamess runs.
    std::vector<BatchJob> jobs;
    for (const char *name : {"libquantum", "gamess"}) {
        jobs.push_back(BatchJob::single(
            name, "None", quick()));
        jobs.push_back(BatchJob::single(
            name, "Bfetch", quick()));
    }
    jobs.push_back(BatchJob::mix({"libquantum", "gamess"},
                                 "None", quick()));
    jobs.push_back(BatchJob::mix({"libquantum", "gamess"},
                                 "Bfetch", quick()));
    return jobs;
}

void
expectSameSingle(const SingleResult &a, const SingleResult &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.prefetcher, b.prefetcher);
    EXPECT_EQ(a.core.instructions, b.core.instructions);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.core.ipc, b.core.ipc); // bit-identical, not just near
    EXPECT_EQ(a.core.mispredicts, b.core.mispredicts);
    EXPECT_EQ(a.mem.accesses, b.mem.accesses);
    EXPECT_EQ(a.mem.l1Hits, b.mem.l1Hits);
    EXPECT_EQ(a.mem.dramAccesses, b.mem.dramAccesses);
    EXPECT_EQ(a.mem.prefetchesIssued, b.mem.prefetchesIssued);
    EXPECT_EQ(a.mem.usefulPrefetches, b.mem.usefulPrefetches);
    EXPECT_EQ(a.bfetch.lookaheadWalks, b.bfetch.lookaheadWalks);
    EXPECT_EQ(a.avgLookaheadDepth, b.avgLookaheadDepth);
}

void
expectSameMix(const MixResult &a, const MixResult &b)
{
    EXPECT_EQ(a.workloads, b.workloads);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (std::size_t c = 0; c < a.cores.size(); ++c) {
        EXPECT_EQ(a.cores[c].instructions, b.cores[c].instructions);
        EXPECT_EQ(a.cores[c].cycles, b.cores[c].cycles);
        EXPECT_EQ(a.cores[c].ipc, b.cores[c].ipc);
        EXPECT_EQ(a.mem[c].accesses, b.mem[c].accesses);
        EXPECT_EQ(a.mem[c].dramAccesses, b.mem[c].dramAccesses);
    }
    EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup);
}

TEST(Batch, SerialAndParallelProduceIdenticalResults)
{
    std::vector<BatchJob> jobs = batchSweep();

    clearMemoCaches();
    BatchResult serial = runBatch(jobs, 1, nullptr);
    // Snapshot before the caches are cleared again.
    std::vector<SingleResult> serial_singles;
    std::vector<MixResult> serial_mixes;
    for (const BatchItem &item : serial.items) {
        if (item.single)
            serial_singles.push_back(*item.single);
        if (item.mix)
            serial_mixes.push_back(*item.mix);
    }

    clearMemoCaches();
    BatchResult parallel = runBatch(jobs, 4, nullptr);
    // The parallel items point into the live caches; don't clear them
    // until after the comparisons below.

    ASSERT_EQ(parallel.items.size(), jobs.size());
    EXPECT_EQ(parallel.threads, 4u);
    std::size_t singles = 0, mixes = 0;
    for (std::size_t i = 0; i < parallel.items.size(); ++i) {
        // Deterministic job order regardless of completion order.
        EXPECT_EQ(parallel.items[i].label, jobs[i].label);
        EXPECT_EQ(serial.items[i].label, jobs[i].label);
        if (parallel.items[i].single)
            expectSameSingle(serial_singles.at(singles++),
                             *parallel.items[i].single);
        if (parallel.items[i].mix)
            expectSameMix(serial_mixes.at(mixes++),
                          *parallel.items[i].mix);
    }
    EXPECT_EQ(singles, 4u);
    EXPECT_EQ(mixes, 2u);
    EXPECT_GT(serial.wallSeconds, 0.0);
    EXPECT_GT(parallel.cpuSeconds, 0.0);
    clearMemoCaches(); // leave no dangling references for later tests
}

TEST(Batch, MemoComputesSharedBaselinesExactlyOnce)
{
    clearMemoCaches();
    std::vector<BatchJob> jobs = batchSweep();
    // Duplicate every job: the second copies must all be cache hits.
    std::vector<BatchJob> doubled = jobs;
    doubled.insert(doubled.end(), jobs.begin(), jobs.end());

    runBatch(doubled, 4, nullptr);
    MemoStats stats = memoStats();
    // Unique single keys: {libquantum, gamess} x {None, BFetch}. The
    // mixes' weighted-speedup baselines reuse the None singles.
    EXPECT_EQ(stats.singleComputes, 4u);
    // Unique mix keys: {None, BFetch} over one 2-app mix.
    EXPECT_EQ(stats.mixComputes, 2u);
    // Single lookups: 8 duplicated single jobs + 2 baselines from each
    // of the 2 computed mix runs = 12; 4 computed, the rest hit.
    EXPECT_EQ(stats.singleHits, 8u);
    EXPECT_EQ(stats.mixHits, 2u);
    clearMemoCaches();
}

TEST(Batch, CustomJobsCarryValues)
{
    std::vector<BatchJob> jobs;
    for (int i = 0; i < 5; ++i) {
        jobs.push_back(BatchJob::custom(
            "custom/" + std::to_string(i),
            [i] { return static_cast<double>(i) * 2.0; }));
    }
    BatchResult batch = runBatch(jobs, 2, nullptr);
    ASSERT_EQ(batch.items.size(), 5u);
    for (int i = 0; i < 5; ++i)
        EXPECT_DOUBLE_EQ(batch.items[i].value, i * 2.0);
}

TEST(Batch, JsonReportCarriesTimingAndResults)
{
    clearMemoCaches();
    std::vector<BatchJob> jobs{
        BatchJob::single("libquantum", "Bfetch",
                         quick()),
        BatchJob::mix({"libquantum", "gamess"},
                      "None", quick()),
        BatchJob::custom("storage", [] { return 12.84; }),
    };
    BatchResult batch = runBatch(jobs, 2, nullptr);

    std::ostringstream os;
    writeBatchReportJson(os, "harness_test", batch);
    std::string json = os.str();
    EXPECT_NE(json.find("\"bench\": \"harness_test\""),
              std::string::npos);
    EXPECT_NE(json.find("\"threads\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"jobs\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"cpu_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"speedup\""), std::string::npos);
    EXPECT_NE(json.find("libquantum/Bfetch"), std::string::npos);
    EXPECT_NE(json.find("\"weighted_speedup\""), std::string::npos);
    EXPECT_NE(json.find("\"value\": 12.84"), std::string::npos);
    clearMemoCaches();
}

TEST(TraceCache, ResultsByteIdenticalWithAndWithoutCache)
{
    bool was_enabled = traceCacheEnabled();
    clearMemoCaches();
    clearTraceCache();

    setTraceCacheEnabled(false);
    SingleResult live =
        runSingle("libquantum", "Bfetch", quick());
    EXPECT_EQ(traceCacheStats().buffers, 0u);

    setTraceCacheEnabled(true);
    SingleResult captured =
        runSingle("libquantum", "Bfetch", quick());
    SingleResult replayed =
        runSingle("libquantum", "Bfetch", quick());
    expectSameSingle(live, captured);
    expectSameSingle(live, replayed);

    TraceCacheStats stats = traceCacheStats();
    EXPECT_EQ(stats.buffers, 1u);  // first run captured
    EXPECT_EQ(stats.attaches, 1u); // second run replayed
    EXPECT_GT(stats.opsExecuted, 0u);
    EXPECT_GT(stats.residentBytes, 0u);

    clearTraceCache();
    setTraceCacheEnabled(was_enabled);
}

TEST(TraceCache, KeyedByInstructionBudget)
{
    bool was_enabled = traceCacheEnabled();
    setTraceCacheEnabled(true);
    clearMemoCaches();
    clearTraceCache();

    RunOptions longer = quick();
    longer.instructions = 40000;
    runSingle("gamess", "None", quick());
    runSingle("gamess", "None", longer);
    EXPECT_EQ(traceCacheStats().buffers, 2u);
    EXPECT_EQ(traceCacheStats().attaches, 0u);

    clearTraceCache();
    setTraceCacheEnabled(was_enabled);
}

TEST(TraceCache, BatchItemsCarryHitMissCounts)
{
    bool was_enabled = traceCacheEnabled();
    setTraceCacheEnabled(true);
    clearMemoCaches();
    clearTraceCache();

    std::vector<BatchJob> jobs;
    for (const char *kind :
         {"None", "Stride",
          "Bfetch"}) {
        jobs.push_back(
            BatchJob::single("libquantum", kind, quick()));
    }
    // Serial run: job order is execution order, so the first job is
    // the capture and each later one a replay of the shared trace.
    BatchResult batch = runBatch(jobs, 1, nullptr);
    ASSERT_EQ(batch.items.size(), 3u);
    EXPECT_EQ(batch.items[0].traceMisses, 1u);
    EXPECT_EQ(batch.items[0].traceHits, 0u);
    for (std::size_t i = 1; i < batch.items.size(); ++i) {
        EXPECT_EQ(batch.items[i].traceMisses, 0u) << "job " << i;
        EXPECT_EQ(batch.items[i].traceHits, 1u) << "job " << i;
    }

    std::ostringstream os;
    writeBatchReportJson(os, "trace_cache_test", batch);
    std::string json = os.str();
    EXPECT_NE(json.find("\"trace_hits\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"trace_misses\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"caches\""), std::string::npos);
    EXPECT_NE(json.find("\"buffers\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"attaches\": 2"), std::string::npos);

    clearMemoCaches();
    clearTraceCache();
    setTraceCacheEnabled(was_enabled);
}

TEST(Report, GeomeanAndTableRows)
{
    SpeedupSeries s1{"A", {{"w1", 2.0}, {"w2", 8.0}}};
    SpeedupSeries s2{"B", {{"w1", 1.0}, {"w2", 1.0}}};
    std::vector<std::string> order{"w1", "w2"};
    EXPECT_NEAR(seriesGeomean(s1, order), 4.0, 1e-9);
    TextTable table = speedupTable(order, {"w2"}, {s1, s2});
    std::string out = table.render();
    EXPECT_NE(out.find("Geomean"), std::string::npos);
    EXPECT_NE(out.find("pf. sens."), std::string::npos);
    EXPECT_NE(out.find("4.000"), std::string::npos); // geomean of A
    EXPECT_NE(out.find("8.000"), std::string::npos); // w2 under A
}

TEST(ReportDeath, MissingWorkloadIsFatal)
{
    SpeedupSeries s{"A", {{"w1", 2.0}}};
    EXPECT_EXIT(seriesGeomean(s, {"w1", "missing"}),
                testing::ExitedWithCode(1), "missing workload");
}

} // namespace
} // namespace bfsim::harness
