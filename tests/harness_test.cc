/**
 * @file
 * Harness tests: single runs, memoization, mixes / FOA selection,
 * weighted speedups and report tables.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/mixes.hh"
#include "harness/report.hh"

namespace bfsim::harness {
namespace {

RunOptions
quick()
{
    RunOptions options;
    options.instructions = 30000;
    return options;
}

TEST(Experiment, SingleRunProducesCoherentStats)
{
    SingleResult r =
        runSingle("libquantum", sim::PrefetcherKind::None, quick());
    EXPECT_EQ(r.workload, "libquantum");
    EXPECT_GE(r.core.instructions, 30000u);
    EXPECT_GT(r.core.cycles, 0u);
    EXPECT_GT(r.core.ipc, 0.0);
    EXPECT_GT(r.mem.accesses, 0u);
    EXPECT_EQ(r.mem.prefetchesIssued, 0u);
}

TEST(Experiment, BfetchRunExposesEngineStats)
{
    SingleResult r =
        runSingle("libquantum", sim::PrefetcherKind::BFetch, quick());
    EXPECT_GT(r.bfetch.lookaheadWalks, 0u);
    EXPECT_GT(r.avgLookaheadDepth, 0.0);
    EXPECT_GT(r.mem.prefetchesIssued, 0u);
}

TEST(Experiment, CachedRunnerReturnsSameObject)
{
    const SingleResult &a =
        runSingleCached("gamess", sim::PrefetcherKind::None, quick());
    const SingleResult &b =
        runSingleCached("gamess", sim::PrefetcherKind::None, quick());
    EXPECT_EQ(&a, &b);
}

TEST(Experiment, CacheKeyDistinguishesOptions)
{
    RunOptions a = quick(), b = quick();
    b.width = 8;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
    b = quick();
    b.bfetch.pathConfidenceThreshold = 0.45;
    EXPECT_NE(a.cacheKey(), b.cacheKey());
}

TEST(Experiment, SpeedupOfBaselineIsOne)
{
    double s = speedupVsBaseline("gamess", sim::PrefetcherKind::None,
                                 quick());
    EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Experiment, PrefetchingHelpsAStreamingKernel)
{
    double s = speedupVsBaseline("libquantum",
                                 sim::PrefetcherKind::BFetch, quick());
    EXPECT_GT(s, 1.2);
}

TEST(Experiment, MixRunsAllCores)
{
    MixResult r = runMix({"libquantum", "gamess"},
                         sim::PrefetcherKind::None, quick());
    ASSERT_EQ(r.cores.size(), 2u);
    EXPECT_GE(r.cores[0].instructions, 30000u);
    EXPECT_GE(r.cores[1].instructions, 30000u);
    EXPECT_GT(r.weightedSpeedup, 0.0);
    // Weighted speedup of a no-prefetch mix is at most numCores.
    EXPECT_LE(r.weightedSpeedup, 2.0 + 1e-9);
}

TEST(Experiment, BenchBudgetReadsEnvironment)
{
    unsetenv("BFSIM_INSTS");
    EXPECT_EQ(benchInstructionBudget(123), 123u);
    setenv("BFSIM_INSTS", "4567", 1);
    EXPECT_EQ(benchInstructionBudget(123), 4567u);
    setenv("BFSIM_INSTS", "bogus", 1);
    EXPECT_EQ(benchInstructionBudget(123), 123u);
    unsetenv("BFSIM_INSTS");
}

TEST(Mixes, FoaProfilesDistinguishPressure)
{
    double quiet = foaProfile("gamess");      // L1-resident
    double loud = foaProfile("libquantum");   // streaming
    EXPECT_GE(quiet, 0.0);
    EXPECT_GT(loud, quiet);
}

TEST(Mixes, SelectionIsDeterministicAndSized)
{
    auto a = selectMixes(2, 5);
    auto b = selectMixes(2, 5);
    ASSERT_EQ(a.size(), 5u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].workloads, b[i].workloads);
}

TEST(Mixes, MixesAreSortedByContention)
{
    auto mixes = selectMixes(2, 10);
    for (std::size_t i = 1; i < mixes.size(); ++i)
        EXPECT_GE(mixes[i - 1].contentionScore,
                  mixes[i].contentionScore);
}

TEST(Mixes, MixSizeIsRespected)
{
    for (unsigned size : {2u, 4u}) {
        auto mixes = selectMixes(size, 3);
        for (const auto &mix : mixes) {
            EXPECT_EQ(mix.workloads.size(), size);
            // Members are distinct.
            std::set<std::string> unique(mix.workloads.begin(),
                                         mix.workloads.end());
            EXPECT_EQ(unique.size(), size);
        }
    }
}

TEST(Report, GeomeanAndTableRows)
{
    SpeedupSeries s1{"A", {{"w1", 2.0}, {"w2", 8.0}}};
    SpeedupSeries s2{"B", {{"w1", 1.0}, {"w2", 1.0}}};
    std::vector<std::string> order{"w1", "w2"};
    EXPECT_NEAR(seriesGeomean(s1, order), 4.0, 1e-9);
    TextTable table = speedupTable(order, {"w2"}, {s1, s2});
    std::string out = table.render();
    EXPECT_NE(out.find("Geomean"), std::string::npos);
    EXPECT_NE(out.find("pf. sens."), std::string::npos);
    EXPECT_NE(out.find("4.000"), std::string::npos); // geomean of A
    EXPECT_NE(out.find("8.000"), std::string::npos); // w2 under A
}

TEST(ReportDeath, MissingWorkloadIsFatal)
{
    SpeedupSeries s{"A", {{"w1", 2.0}}};
    EXPECT_EXIT(seriesGeomean(s, {"w1", "missing"}),
                testing::ExitedWithCode(1), "missing workload");
}

} // namespace
} // namespace bfsim::harness
