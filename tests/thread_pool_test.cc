/**
 * @file
 * ThreadPool tests: FIFO ordering, result/exception propagation,
 * graceful shutdown and the BFSIM_JOBS default sizing.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace bfsim {
namespace {

TEST(ThreadPool, SingleWorkerRunsTasksInSubmissionOrder)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::mutex mutex;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([i, &order, &mutex] {
            std::lock_guard<std::mutex> lock(mutex);
            order.push_back(i);
        }));
    }
    for (auto &future : futures)
        future.get();
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ReturnsResultsThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, AllTasksCompleteAcrossWorkers)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(4);
        for (int i = 0; i < 256; ++i)
            pool.submit([&count] { ++count; });
        // Destructor drains the queue before joining.
    }
    EXPECT_EQ(count.load(), 256);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    std::future<int> future = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(
        {
            try {
                future.get();
            } catch (const std::runtime_error &error) {
                EXPECT_STREQ(error.what(), "boom");
                throw;
            }
        },
        std::runtime_error);

    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, SizeReflectsWorkerCount)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, DefaultThreadCountReadsEnvironment)
{
    unsetenv("BFSIM_JOBS");
    unsigned fallback = ThreadPool::defaultThreadCount();
    EXPECT_GE(fallback, 1u);

    setenv("BFSIM_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);

    setenv("BFSIM_JOBS", "bogus", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback);

    setenv("BFSIM_JOBS", "0", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), fallback);

    unsetenv("BFSIM_JOBS");
}

TEST(ThreadPool, ZeroRequestedThreadsUsesDefault)
{
    setenv("BFSIM_JOBS", "2", 1);
    ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 2u);
    unsetenv("BFSIM_JOBS");
}

TEST(ThreadPool, SubmitAfterStopReturnsExceptionalFuture)
{
    ThreadPool pool(2);
    pool.stop();
    std::future<int> future = pool.submit([] { return 42; });
    // The rejection surfaces through the future — never std::terminate.
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, StopIsIdempotentAndQueuedTasksStillDrain)
{
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([&count] {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                ++count;
            }));
        }
        pool.stop();
        pool.stop();
        // Destructor joins; every pre-stop task must still have run.
    }
    EXPECT_EQ(count.load(), 32);
    for (auto &future : futures)
        EXPECT_NO_THROW(future.get());
}

TEST(ThreadPool, ThrowingTasksDuringShutdownDoNotTerminate)
{
    // Queue more throwing tasks than workers and destroy the pool
    // immediately: the shutdown drain must swallow their exceptions
    // into the futures rather than unwinding out of a worker thread.
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 16; ++i) {
            futures.push_back(pool.submit(
                [] { throw std::runtime_error("shutdown boom"); }));
        }
    }
    for (auto &future : futures)
        EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyBlockingTasksDoNotDeadlock)
{
    // More tasks than workers, each briefly sleeping: exercises the
    // wait/notify path under contention.
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&count] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            ++count;
        }));
    }
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(count.load(), 64);
}

} // namespace
} // namespace bfsim
