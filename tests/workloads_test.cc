/**
 * @file
 * Workload-suite tests: registry completeness and, parameterized over
 * all 18 kernels, basic execution health (no faults, endless, real
 * memory and branch activity).
 */

#include <set>

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "sim/executor.hh"
#include "workloads/workload.hh"

namespace bfsim::workloads {
namespace {

TEST(Registry, HasAll18PaperBenchmarks)
{
    const std::set<std::string> expected{
        "astar",   "bwaves",     "bzip2",  "cactusADM", "calculix",
        "gamess",  "gromacs",    "h264ref", "hmmer",    "lbm",
        "leslie3d", "libquantum", "mcf",    "milc",     "sjeng",
        "soplex",  "sphinx",     "zeusmp"};
    std::set<std::string> actual;
    for (const auto &w : allWorkloads())
        actual.insert(w.name);
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(allWorkloads().size(), 18u);
}

TEST(Registry, AlphabeticalOrderMatchesFig8)
{
    auto names = workloadNames();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Registry, LookupByNameWorks)
{
    const Workload &w = workloadByName("mcf");
    EXPECT_EQ(w.name, "mcf");
    EXPECT_FALSE(w.program.empty());
}

TEST(RegistryErrors, UnknownNameThrows)
{
    EXPECT_THROW(workloadByName("doom3"), SimError);
}

TEST(Registry, SensitiveSubsetIsNonTrivial)
{
    auto sensitive = prefetchSensitiveNames();
    EXPECT_GT(sensitive.size(), 8u);
    EXPECT_LT(sensitive.size(), 18u);
}

class WorkloadHealth : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadHealth, Runs200kInstructionsWithoutHalting)
{
    const Workload &w = workloadByName(GetParam());
    sim::Executor exec(w.program);
    sim::DynOp op;
    for (int i = 0; i < 200000; ++i)
        ASSERT_TRUE(exec.step(op)) << "halted at " << i;
}

TEST_P(WorkloadHealth, HasRealisticMemoryAndBranchMix)
{
    const Workload &w = workloadByName(GetParam());
    sim::Executor exec(w.program);
    sim::DynOp op;
    std::uint64_t mem_ops = 0, branches = 0, total = 100000;
    for (std::uint64_t i = 0; i < total; ++i) {
        ASSERT_TRUE(exec.step(op));
        mem_ops += op.inst->isMemory();
        branches += op.inst->isControl();
    }
    // Memory instructions: at least a few percent, at most ~60%.
    EXPECT_GT(mem_ops, total / 50);
    EXPECT_LT(mem_ops, total * 7 / 10);
    // Control flow present but not degenerate.
    EXPECT_GT(branches, total / 100);
    EXPECT_LT(branches, total / 2);
}

TEST_P(WorkloadHealth, TouchesDeclaredFootprintScale)
{
    const Workload &w = workloadByName(GetParam());
    sim::Executor exec(w.program);
    sim::DynOp op;
    std::set<Addr> blocks;
    for (int i = 0; i < 300000; ++i) {
        ASSERT_TRUE(exec.step(op));
        if (op.inst->isMemory())
            blocks.insert(blockAlign(op.effAddr));
    }
    // Every kernel must exercise at least a handful of cache blocks;
    // the memory-hungry ones must span far more.
    EXPECT_GE(blocks.size(), 4u);
    if (w.footprintBytes > 4 * 1024 * 1024)
        EXPECT_GT(blocks.size(), 1000u);
}

TEST_P(WorkloadHealth, EffectiveAddressesStayAligned)
{
    const Workload &w = workloadByName(GetParam());
    sim::Executor exec(w.program);
    sim::DynOp op;
    for (int i = 0; i < 100000; ++i) {
        ASSERT_TRUE(exec.step(op));
        if (op.inst->isMemory())
            ASSERT_EQ(op.effAddr & 0x7, 0u) << "unaligned access";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, WorkloadHealth,
    ::testing::ValuesIn(workloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

} // namespace
} // namespace bfsim::workloads
