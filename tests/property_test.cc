/**
 * @file
 * Property-style tests: randomized and parameterized sweeps checking
 * invariants that must hold for *any* input — cache inclusion-free
 * consistency, stride detection for arbitrary strides, queue FIFO
 * discipline under fuzzing, ARF read/write coherence, timing-model
 * monotonicity in latency, and executor determinism.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/arf.hh"
#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "prefetch/queue.hh"
#include "prefetch/stride.hh"
#include "sim/executor.hh"
#include "sim/ooo_core.hh"

namespace bfsim {
namespace {

// ---------------------------------------------------------------- cache

TEST(CacheProperty, LookupAfterInsertAlwaysHits)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 4096;
    cfg.associativity = 4;
    mem::Cache cache(cfg);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = rng.below(1 << 20);
        mem::EvictInfo evict;
        cache.insert(addr, evict);
        EXPECT_NE(cache.lookup(addr), nullptr);
    }
}

TEST(CacheProperty, OccupancyNeverExceedsCapacity)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 2048;
    cfg.associativity = 2;
    mem::Cache cache(cfg);
    std::size_t capacity = cfg.sizeBytes / blockSizeBytes;
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        mem::EvictInfo evict;
        cache.insert(rng.below(1 << 22), evict);
        ASSERT_LE(cache.validBlockCount(), capacity);
    }
}

TEST(CacheProperty, EvictionConservesBlockCount)
{
    mem::CacheConfig cfg;
    cfg.sizeBytes = 1024;
    cfg.associativity = 2;
    mem::Cache cache(cfg);
    Rng rng(3);
    std::size_t inserted_new = 0, evicted = 0;
    for (int i = 0; i < 3000; ++i) {
        Addr addr = blockAlign(rng.below(1 << 18));
        bool present = cache.contains(addr);
        mem::EvictInfo evict;
        cache.insert(addr, evict);
        if (!present)
            ++inserted_new;
        if (evict.evicted)
            ++evicted;
        ASSERT_EQ(cache.validBlockCount(), inserted_new - evicted);
    }
}

// --------------------------------------------------------------- stride

class StrideSweep : public ::testing::TestWithParam<std::int64_t>
{
};

TEST_P(StrideSweep, ArbitraryStridesAreDetected)
{
    std::int64_t stride = GetParam();
    prefetch::StridePrefetcher pf;
    prefetch::PrefetchQueue queue(256);
    Addr addr = 0x40000000;
    prefetch::DemandAccess access;
    access.pc = 0x400400;
    access.isLoad = true;
    access.l1Hit = false;
    for (int i = 0; i < 4; ++i) {
        access.vaddr = addr;
        pf.observe(access, queue);
        addr += stride;
    }
    ASSERT_FALSE(queue.empty()) << "stride " << stride;
    // The burst starts when the third access goes steady: the first
    // candidate is one stride beyond that access (A2 + stride = A3).
    Addr expected =
        blockAlign(static_cast<Addr>(0x40000000 + 3 * stride));
    EXPECT_EQ(queue.pop().blockAddr, expected);
}

INSTANTIATE_TEST_SUITE_P(Strides, StrideSweep,
                         ::testing::Values(8, 64, 72, 256, 4096, -64,
                                           -8, -2048, 24, 1024 * 1024),
                         [](const auto &info) {
                             std::int64_t v = info.param;
                             return (v < 0 ? "neg" : "pos") +
                                    std::to_string(v < 0 ? -v : v);
                         });

// ---------------------------------------------------------------- queue

TEST(QueueProperty, FifoOrderUnderFuzz)
{
    prefetch::PrefetchQueue queue(64);
    Rng rng(4);
    std::deque<Addr> model;
    for (int i = 0; i < 20000; ++i) {
        if (rng.chance(0.6)) {
            Addr block = blockAlign(rng.below(1 << 24));
            bool in_model = std::find(model.begin(), model.end(),
                                      block) != model.end();
            bool accepted = queue.push(block, 0);
            if (model.size() >= 64 || in_model)
                ASSERT_FALSE(accepted);
            else {
                ASSERT_TRUE(accepted);
                model.push_back(block);
            }
        } else if (!model.empty()) {
            ASSERT_EQ(queue.pop().blockAddr, model.front());
            model.pop_front();
        }
        ASSERT_EQ(queue.size(), model.size());
    }
}

// ------------------------------------------------------------------ ARF

TEST(ArfProperty, ReadNeverReturnsAValueFromTheFuture)
{
    core::AlternateRegisterFile arf;
    Rng rng(5);
    // Model: list of (seq, visibleAt, value) accepted writes.
    std::vector<std::array<std::uint64_t, 3>> accepted;
    InstSeqNum max_seq = 0;
    for (int i = 0; i < 3000; ++i) {
        InstSeqNum seq = rng.below(1000);
        Cycle visible = rng.below(10000);
        RegVal value = rng.next();
        if (seq >= max_seq) {
            accepted.push_back({seq, visible, value});
            max_seq = seq;
        }
        arf.update(7, value, seq, visible);

        Cycle now = rng.below(12000);
        RegVal read = arf.read(7, now);
        if (read != 0) {
            // Whatever we read must correspond to an accepted write
            // whose producer completed by `now`.
            bool legal = false;
            for (const auto &w : accepted)
                if (w[2] == read && w[1] <= now)
                    legal = true;
            ASSERT_TRUE(legal) << "value from the future at " << now;
        }
    }
}

// ------------------------------------------------------------ hierarchy

TEST(HierarchyProperty, LatencyBoundedByColdMissCost)
{
    mem::HierarchyConfig cfg;
    mem::Hierarchy mem(cfg);
    Rng rng(6);
    // Upper bound: full path + maximal MSHR/bus queueing window.
    Cycle bound = 2 * (cfg.l1d.hitLatency + cfg.l2.hitLatency +
                       cfg.l3HitLatency) +
                  (cfg.l1Mshrs + 1) * (cfg.dram.accessLatency +
                                       16 * cfg.dram.cyclesPerBlock);
    // Advance time at least as fast as the bus can drain (one block
    // per cyclesPerBlock); otherwise queueing delay grows without
    // bound by design and no constant cap exists.
    Cycle now = 0;
    for (int i = 0; i < 5000; ++i) {
        now += cfg.dram.cyclesPerBlock + rng.below(20);
        mem::AccessOutcome out =
            mem.access(0, blockAlign(rng.below(1 << 24)), false, now);
        ASSERT_LE(out.latency, bound);
    }
}

TEST(HierarchyProperty, HitLatencyIsMinimal)
{
    mem::Hierarchy mem(mem::HierarchyConfig{});
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        Addr addr = blockAlign(rng.below(1 << 22));
        Cycle warm = 1000000 + i * 1000;
        mem.access(0, addr, false, warm - 500);
        mem::AccessOutcome out = mem.access(0, addr, false, warm);
        ASSERT_GE(out.latency, mem.config().l1d.hitLatency);
    }
}

// ------------------------------------------------------------- executor

TEST(ExecutorProperty, DeterministicAcrossRuns)
{
    // A small self-mutating program driven by an LCG must produce
    // bit-identical architectural state across executions.
    isa::Assembler as;
    as.movi(isa::R20, 6364136223846793005LL);
    as.movi(isa::R21, 1442695040888963407LL);
    as.movi(isa::R7, 99);
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.mul(isa::R7, isa::R7, isa::R20);
    as.add(isa::R7, isa::R7, isa::R21);
    as.srli(isa::R2, isa::R7, 20);
    as.andi(isa::R2, isa::R2, 0xfff8);
    as.add(isa::R3, isa::R1, isa::R2);
    as.load(isa::R4, isa::R3, 0);
    as.add(isa::R4, isa::R4, isa::R7);
    as.store(isa::R4, isa::R3, 0);
    as.jmp("top");
    isa::Program p = as.assemble();

    auto run = [&p] {
        sim::Executor exec(p);
        sim::DynOp op;
        for (int i = 0; i < 50000; ++i)
            exec.step(op);
        std::array<RegVal, numArchRegs> regs{};
        for (int r = 0; r < numArchRegs; ++r)
            regs[r] = exec.reg(static_cast<RegIndex>(r));
        return regs;
    };
    EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------- timing model

TEST(TimingProperty, SlowerMemoryNeverSpeedsExecution)
{
    // Same program, increasing DRAM latency: cycles must not decrease.
    isa::Assembler as;
    as.movi(isa::R1, 0x100000);
    as.label("top");
    as.load(isa::R2, isa::R1, 0);
    as.addi(isa::R1, isa::R1, 64);
    as.jmp("top");
    isa::Program p = as.assemble();

    Cycle prev_cycles = 0;
    for (Cycle dram_latency : {100u, 200u, 400u}) {
        mem::HierarchyConfig hier;
        hier.dram.accessLatency = dram_latency;
        mem::Hierarchy hierarchy(hier);
        sim::OooCore core(0, sim::CoreConfig{}, p, hierarchy);
        while (core.retired() < 20000 && core.stepInstruction()) {
        }
        Cycle cycles = core.stats().cycles;
        EXPECT_GE(cycles, prev_cycles);
        prev_cycles = cycles;
    }
}

TEST(TimingProperty, CommitCyclesAreMonotonicInInstructionCount)
{
    isa::Assembler as;
    as.label("top");
    as.addi(isa::R1, isa::R1, 1);
    as.jmp("top");
    isa::Program p = as.assemble();
    mem::Hierarchy hierarchy(mem::HierarchyConfig{});
    sim::OooCore core(0, sim::CoreConfig{}, p, hierarchy);
    Cycle prev = 0;
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(core.stepInstruction());
        ASSERT_GE(core.stats().cycles, prev);
        prev = core.stats().cycles;
    }
}

} // namespace
} // namespace bfsim
