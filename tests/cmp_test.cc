/**
 * @file
 * CMP container tests: per-core stat freezing at instruction targets,
 * shared-resource contention, and halted-program handling.
 */

#include <gtest/gtest.h>

#include "common/sim_error.hh"
#include "isa/assembler.hh"
#include "sim/cmp.hh"

namespace bfsim::sim {
namespace {

using isa::Assembler;
using isa::Program;

/** Endless streaming loads: a memory-hungry neighbour. */
Program
streamProgram()
{
    Assembler as;
    as.label("outer");
    as.movi(isa::R1, 0x100000);
    as.movi(isa::R4, 0x100000 + (8 << 20));
    as.label("top");
    as.load(isa::R2, isa::R1, 0);
    as.load(isa::R3, isa::R1, 8);
    as.addi(isa::R1, isa::R1, 64);
    as.blt(isa::R1, isa::R4, "top");
    as.jmp("outer");
    return as.assemble();
}

/** A tiny compute loop that halts after a fixed trip count. */
Program
haltingProgram(int trips)
{
    Assembler as;
    as.movi(isa::R1, trips);
    as.label("top");
    as.addi(isa::R1, isa::R1, -1);
    as.bne(isa::R1, isa::R0, "top");
    as.halt();
    return as.assemble();
}

TEST(Cmp, SingleCoreRunReachesTarget)
{
    Program p = streamProgram();
    std::vector<CoreConfig> cfgs(1);
    std::vector<const Program *> programs{&p};
    mem::HierarchyConfig hier;
    hier.numCores = 1;
    Cmp cmp(cfgs, programs, hier);
    CmpResult result = cmp.run(20000);
    EXPECT_GE(result.cores[0].instructions, 20000u);
    EXPECT_GT(result.cores[0].ipc, 0.0);
}

TEST(Cmp, AllCoresReachTheirTargets)
{
    Program p = streamProgram();
    std::vector<CoreConfig> cfgs(4);
    std::vector<const Program *> programs{&p, &p, &p, &p};
    mem::HierarchyConfig hier;
    hier.numCores = 4;
    Cmp cmp(cfgs, programs, hier);
    CmpResult result = cmp.run(10000);
    ASSERT_EQ(result.cores.size(), 4u);
    for (const CoreStats &s : result.cores)
        EXPECT_GE(s.instructions, 10000u);
}

TEST(Cmp, SharedResourcesCreateContention)
{
    Program p = streamProgram();
    mem::HierarchyConfig one;
    one.numCores = 1;
    std::vector<CoreConfig> cfg1(1);
    std::vector<const Program *> prog1{&p};
    Cmp solo(cfg1, prog1, one);
    double solo_ipc = solo.run(20000).cores[0].ipc;

    mem::HierarchyConfig four;
    four.numCores = 4;
    // Keep total L3 constant per core as the paper does (2MB/core), so
    // contention comes from DRAM bandwidth and inter-core conflict.
    std::vector<CoreConfig> cfg4(4);
    std::vector<const Program *> prog4{&p, &p, &p, &p};
    Cmp shared(cfg4, prog4, four);
    CmpResult result = shared.run(20000);
    for (const CoreStats &s : result.cores)
        EXPECT_LT(s.ipc, solo_ipc * 1.01);
    // At least some core must be visibly slowed by bus contention.
    double worst = result.cores[0].ipc;
    for (const CoreStats &s : result.cores)
        worst = std::min(worst, s.ipc);
    EXPECT_LT(worst, solo_ipc * 0.95);
}

TEST(Cmp, HaltedProgramsFreezeEarly)
{
    Program halting = haltingProgram(100);
    Program stream = streamProgram();
    std::vector<CoreConfig> cfgs(2);
    std::vector<const Program *> programs{&halting, &stream};
    mem::HierarchyConfig hier;
    hier.numCores = 2;
    Cmp cmp(cfgs, programs, hier);
    CmpResult result = cmp.run(50000);
    EXPECT_LT(result.cores[0].instructions, 1000u); // halted early
    EXPECT_GE(result.cores[1].instructions, 50000u);
}

TEST(CmpErrors, MismatchedConfigsThrow)
{
    Program p = streamProgram();
    std::vector<CoreConfig> cfgs(2);
    std::vector<const Program *> programs{&p};
    mem::HierarchyConfig hier;
    hier.numCores = 2;
    EXPECT_THROW(Cmp(cfgs, programs, hier), SimError);
}

} // namespace
} // namespace bfsim::sim
